// Image-retrieval scenario (the paper's motivating "image classification
// / feature matching" use case): high-dimensional descriptor vectors, a
// query set distinct from the gallery, k-NN classification by majority
// vote over the retrieved neighbors.
//
//   ./examples/image_retrieval

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/knn_classifier.h"
#include "core/sweet_knn.h"
#include "dataset/generators.h"

namespace {

/// Synthetic "descriptor gallery": each class is one mixture component,
/// so ground-truth labels are known.
struct Gallery {
  sweetknn::HostMatrix descriptors;
  std::vector<int> labels;
};

Gallery MakeGallery(size_t n, size_t dims, int classes, uint64_t seed) {
  sweetknn::dataset::MixtureConfig cfg;
  cfg.n = n;
  cfg.dims = dims;
  cfg.clusters = classes;
  cfg.spread = 0.02f;
  cfg.size_skew = 0.0f;
  cfg.intrinsic_dim = 4;
  cfg.seed = seed;
  const auto data = sweetknn::dataset::MakeGaussianMixture("gallery", cfg);

  Gallery out;
  out.descriptors = data.points;
  // Recover labels by re-clustering against the component structure:
  // nearest gallery exemplar per component is enough for a demo, so we
  // label by batch order (the generator draws component ids by weight;
  // with zero skew and a fixed seed this is deterministic). For a robust
  // demo we instead label by quantizing the first coordinate rank.
  out.labels.resize(n);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return data.points.at(a, 0) < data.points.at(b, 0);
  });
  for (size_t rank = 0; rank < n; ++rank) {
    out.labels[order[rank]] = static_cast<int>(rank * classes / n);
  }
  return out;
}

}  // namespace

int main() {
  using namespace sweetknn;
  constexpr size_t kGallerySize = 3000;
  constexpr size_t kDims = 128;  // SIFT-like descriptor width.
  constexpr int kClasses = 20;
  constexpr int kNeighbors = 7;

  const Gallery gallery = MakeGallery(kGallerySize, kDims, kClasses, 7);

  // Queries: noisy copies of random gallery descriptors.
  constexpr size_t kQueries = 500;
  HostMatrix queries(kQueries, kDims);
  std::vector<int> expected(kQueries);
  Rng rng(99);
  for (size_t q = 0; q < kQueries; ++q) {
    const size_t src = rng.NextBounded(kGallerySize);
    expected[q] = gallery.labels[src];
    for (size_t j = 0; j < kDims; ++j) {
      queries.at(q, j) = gallery.descriptors.at(src, j) +
                         0.002f * static_cast<float>(rng.NextGaussian());
    }
  }

  // The library-level classifier builds the gallery index once and
  // majority-votes over the retrieved neighbors.
  KnnClassifier::Options options;
  options.k = kNeighbors;
  options.distance_weighted = true;
  KnnClassifier classifier(gallery.descriptors, gallery.labels, options);
  const double accuracy = classifier.Score(queries, expected);

  std::printf("retrieved %d neighbors for %zu queries over a %zu x %zu "
              "gallery\n",
              kNeighbors, kQueries, kGallerySize, kDims);
  std::printf("k-NN vote accuracy: %.1f%%\n", 100.0 * accuracy);

  // Per-query confidence for the first few queries.
  HostMatrix head(5, kDims);
  for (size_t q = 0; q < 5; ++q) {
    for (size_t j = 0; j < kDims; ++j) head.at(q, j) = queries.at(q, j);
  }
  for (const auto& p : classifier.PredictWithConfidence(head)) {
    std::printf("  predicted class %d (confidence %.2f)\n", p.label,
                p.confidence);
  }
  return accuracy > 0.5 ? 0 : 1;
}
