// Spatial-network scenario (the paper's 3DNet motivation): closest-site
// queries over a low-dimensional road-network-like point cloud, comparing
// Sweet KNN against the brute-force GPU baseline and the basic TI
// implementation on the same simulated device.
//
//   ./examples/spatial_network [scale]

#include <cstdio>
#include <cstdlib>

#include "baseline/brute_force_gpu.h"
#include "core/sweet_knn.h"
#include "core/ti_knn_gpu.h"
#include "dataset/paper_datasets.h"

int main(int argc, char** argv) {
  using namespace sweetknn;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;

  // A scaled stand-in for the paper's "3D spatial network" dataset:
  // low-dimensional, strongly clustered (road segments).
  const dataset::Dataset net = dataset::MakePaperDataset(
      dataset::PaperDatasetByName("3DNet"), scale);
  std::printf("spatial network: %zu sites, %zu dims\n", net.n(), net.dims());
  constexpr int kNeighbors = 8;

  // Baseline: CUBLAS-style brute force.
  double base_ms = 0.0;
  {
    gpusim::Device dev(
        gpusim::DeviceSpec::ScaledK20c(dataset::ScaledDeviceMemoryBytes()));
    baseline::BruteForceOptions options;
    options.exact = false;
    baseline::BruteForceStats stats;
    baseline::BruteForceGpu(&dev, net.points, net.points, kNeighbors,
                            options, &stats);
    base_ms = stats.profile.TotalKernelTime() * 1e3;
    std::printf("brute force: %.2f ms in %d query partition(s)\n", base_ms,
                stats.query_partitions);
  }

  // Basic TI and Sweet KNN.
  for (const bool sweet : {false, true}) {
    gpusim::Device dev(
        gpusim::DeviceSpec::ScaledK20c(dataset::ScaledDeviceMemoryBytes()));
    core::KnnRunStats stats;
    core::TiKnnEngine::RunOnce(&dev, net.points, net.points, kNeighbors,
                               sweet ? core::TiOptions::Sweet()
                                     : core::TiOptions::BasicTi(),
                               &stats);
    const double ms = stats.profile.TotalKernelTime() * 1e3;
    std::printf("%-11s %.2f ms  (%.2fx, %.2f%% saved, warp eff %.1f%%)\n",
                sweet ? "Sweet KNN:" : "basic TI:", ms, base_ms / ms,
                stats.SavedFraction() * 100.0,
                stats.level2_warp_efficiency * 100.0);
  }

  // Show an actual nearest-site answer.
  SweetKnn knn;
  const KnnResult result = knn.SelfJoin(net.points, kNeighbors);
  std::printf("\nnearest sites to site 0: ");
  for (int i = 1; i < kNeighbors; ++i) {
    std::printf("%u ", result.row(0)[i].index);
  }
  std::printf("\n");
  return 0;
}
