// Network anomaly detection scenario (the paper's kdd dataset): flag the
// records whose kth-nearest-neighbor distance is unusually large — the
// classic distance-based outlier criterion — using the KNN join.
//
//   ./examples/anomaly_detection

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/sweet_knn.h"
#include "dataset/generators.h"

int main() {
  using namespace sweetknn;
  constexpr size_t kRecords = 4000;
  constexpr size_t kDims = 42;  // KDD Cup '99 feature width.
  constexpr int kNeighbors = 10;
  constexpr size_t kInjected = 25;

  // Normal traffic: dense micro-clusters of similar connections.
  dataset::MixtureConfig cfg;
  cfg.n = kRecords - kInjected;
  cfg.dims = kDims;
  cfg.clusters = 80;
  cfg.spread = 0.002f;
  cfg.intrinsic_dim = 3;
  cfg.seed = 13;
  const auto normal = dataset::MakeGaussianMixture("traffic", cfg);

  // Inject isolated anomalies far from every cluster.
  HostMatrix records(kRecords, kDims);
  for (size_t i = 0; i < normal.n(); ++i) {
    for (size_t j = 0; j < kDims; ++j) {
      records.at(i, j) = normal.points.at(i, j);
    }
  }
  Rng rng(1337);
  std::vector<size_t> injected;
  for (size_t a = 0; a < kInjected; ++a) {
    const size_t row = normal.n() + a;
    injected.push_back(row);
    for (size_t j = 0; j < kDims; ++j) {
      records.at(row, j) = 4.0f + 2.0f * rng.NextFloat();
    }
  }

  // KNN join of the record set against itself.
  SweetKnn knn;
  core::KnnRunStats stats;
  const KnnResult result = knn.SelfJoin(records, kNeighbors + 1, &stats);

  // Outlier score: distance to the kth non-self neighbor.
  std::vector<std::pair<float, size_t>> scores(kRecords);
  for (size_t i = 0; i < kRecords; ++i) {
    scores[i] = {result.row(i)[kNeighbors].distance, i};
  }
  std::sort(scores.rbegin(), scores.rend());

  // How many injected anomalies land in the top-kInjected scores?
  size_t hits = 0;
  for (size_t i = 0; i < kInjected; ++i) {
    if (std::find(injected.begin(), injected.end(), scores[i].second) !=
        injected.end()) {
      ++hits;
    }
  }

  std::printf("scanned %zu connection records (%zu dims), k=%d\n", kRecords,
              kDims, kNeighbors);
  std::printf("top outlier scores:\n");
  for (size_t i = 0; i < 5; ++i) {
    std::printf("  record %zu: kth-NN distance %.3f%s\n", scores[i].second,
                scores[i].first,
                std::find(injected.begin(), injected.end(),
                          scores[i].second) != injected.end()
                    ? "  <- injected anomaly"
                    : "");
  }
  std::printf("recall of injected anomalies in top-%zu: %zu/%zu\n",
              kInjected, hits, kInjected);
  std::printf("TI filtering saved %.1f%% of distance computations\n",
              stats.SavedFraction() * 100.0);
  return hits >= kInjected * 9 / 10 ? 0 : 1;
}
