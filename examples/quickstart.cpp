// Quickstart: the minimal Sweet KNN workflow — build a point set, run a
// self-join, inspect neighbors and the run profile.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/sweet_knn.h"
#include "dataset/generators.h"

int main() {
  using namespace sweetknn;

  // 2000 points in 16 dimensions with visible cluster structure.
  dataset::MixtureConfig cfg;
  cfg.n = 2000;
  cfg.dims = 16;
  cfg.clusters = 40;
  cfg.spread = 0.01f;
  cfg.intrinsic_dim = 3;
  cfg.seed = 42;
  const dataset::Dataset data = dataset::MakeGaussianMixture("demo", cfg);

  // Sweet KNN with default (adaptive) configuration on a simulated K20c.
  SweetKnn knn;
  core::KnnRunStats stats;
  const KnnResult result = knn.SelfJoin(data.points, /*k=*/10, &stats);

  std::printf("10 nearest neighbors of point 0:\n");
  for (int i = 0; i < result.k(); ++i) {
    const Neighbor& n = result.row(0)[i];
    std::printf("  #%d: point %u at distance %.4f\n", i, n.index,
                n.distance);
  }

  std::printf("\nrun profile:\n");
  std::printf("  distance computations saved: %.1f%%\n",
              stats.SavedFraction() * 100.0);
  std::printf("  level-2 warp efficiency:     %.1f%%\n",
              stats.level2_warp_efficiency * 100.0);
  std::printf("  landmarks:                   %d\n", stats.landmarks_target);
  std::printf("  simulated device time:       %.3f ms\n",
              stats.sim_time_s * 1e3);
  std::printf("  filter: %s, kNearests in %s, %d thread(s) per query\n",
              stats.filter_used == core::Level2Filter::kFull ? "full"
                                                             : "partial",
              stats.placement_used == core::KnearestsPlacement::kRegisters
                  ? "registers"
                  : stats.placement_used ==
                            core::KnearestsPlacement::kShared
                        ? "shared memory"
                        : "global memory",
              stats.threads_per_query);

  // Single ad-hoc query against the same target set.
  std::vector<float> probe(16, 0.5f);
  const auto neighbors = knn.Search(data.points, probe, 3);
  std::printf("\n3 nearest points to the hypercube center:\n");
  for (const Neighbor& n : neighbors) {
    std::printf("  point %u at distance %.4f\n", n.index, n.distance);
  }
  return 0;
}
