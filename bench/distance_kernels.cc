// Microbenchmark of the vectorized host distance kernels (src/simd):
// sweeps dims x n at constant total footprint, times QueryDistances at
// every compiled-in dispatch tier against the pinned-scalar baseline,
// and reports effective bandwidth (GB/s of target-matrix traffic) plus
// speedup. Every timed run is also checked bit-identical to the scalar
// kernel — the speedup claim is only meaningful because the answers are
// the same bytes.
//
// Emits BENCH_distance_kernels.json (with the host/build env block) for
// the CI artifact. Exits non-zero if any tier diverges from scalar or
// the dims >= 16 geomean speedup of the best tier falls below 4x while
// AVX2 is available — the acceptance bar of the SIMD kernel work.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "simd/simd_kernels.h"

namespace sweetknn::bench {
namespace {

constexpr size_t kDimsSweep[] = {2, 8, 16, 64, 128};
// Constant footprint per config: n * dims = 2^20 floats (4 MiB), so the
// sweep varies arithmetic intensity, not working-set size.
constexpr size_t kTotalFloats = size_t{1} << 20;
constexpr size_t kQueries = 8;
constexpr double kMinSeconds = 0.05;

struct Row {
  size_t dims = 0;
  size_t n = 0;
  simd::Level level = simd::Level::kScalar;
  double gbps = 0.0;
  double speedup = 1.0;  // vs pinned scalar on the same config
  bool identical = true;
};

/// Seconds per full query sweep (kQueries x QueryDistances over all n
/// rows), timed over enough repetitions to fill kMinSeconds.
double TimeSweep(const HostMatrix& queries, const simd::PackedTargets& packed,
                 std::vector<float>* out) {
  int reps = 0;
  const Stopwatch wall;
  double elapsed = 0.0;
  do {
    for (size_t q = 0; q < queries.rows(); ++q) {
      simd::QueryDistances(queries.row(q), packed, simd::Dist::kEuclidean,
                           out->data() + q * packed.n());
    }
    ++reps;
    elapsed = wall.ElapsedSeconds();
  } while (elapsed < kMinSeconds);
  return elapsed / reps;
}

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const EnvInfo env = DetectEnv();
  // Captured before any ForceLevelForTest pin: the tier the library
  // would dispatch to on its own (respects SWEETKNN_FORCE_SCALAR).
  const simd::Level best_level = simd::ActiveLevel();
  std::printf("SIMD distance kernels: host %u threads, %s\n",
              env.hardware_concurrency, env.compiler.c_str());
  std::printf("tiers: scalar%s%s (detected best: %s)\n\n",
              env.avx2_supported ? ", avx2" : "",
              env.avx512_supported ? ", avx512" : "",
              env.simd_level.c_str());
  PrintTableHeader({"dims", "n", "tier", "GB/s", "speedup", "identical"});

  std::vector<Row> rows;
  bool all_identical = true;
  double geomean_log_sum = 0.0;
  size_t geomean_count = 0;
  for (const size_t dims : kDimsSweep) {
    const size_t n = std::max<size_t>(
        simd::kTileLanes,
        static_cast<size_t>(static_cast<double>(kTotalFloats / dims) *
                            args.scale));
    Rng rng(20260809 + dims);
    HostMatrix targets(n, dims);
    HostMatrix queries(kQueries, dims);
    for (size_t r = 0; r < n; ++r) {
      for (size_t j = 0; j < dims; ++j) targets.at(r, j) = rng.NextFloat();
    }
    for (size_t q = 0; q < kQueries; ++q) {
      for (size_t j = 0; j < dims; ++j) queries.at(q, j) = rng.NextFloat();
    }
    const simd::PackedTargets packed =
        simd::PackedTargets::Pack(targets.data(), n, dims);

    simd::ForceLevelForTest(static_cast<int>(simd::Level::kScalar));
    std::vector<float> scalar_out(kQueries * n);
    const double scalar_s = TimeSweep(queries, packed, &scalar_out);

    const double bytes =
        static_cast<double>(kQueries) * static_cast<double>(n) *
        static_cast<double>(dims) * sizeof(float);
    for (const simd::Level level :
         {simd::Level::kScalar, simd::Level::kAvx2, simd::Level::kAvx512}) {
      if (!simd::CompiledIn(level) || !simd::CpuSupports(level)) continue;
      simd::ForceLevelForTest(static_cast<int>(level));
      std::vector<float> out(kQueries * n);
      const double seconds =
          level == simd::Level::kScalar ? scalar_s
                                        : TimeSweep(queries, packed, &out);
      Row row;
      row.dims = dims;
      row.n = n;
      row.level = level;
      row.gbps = bytes / seconds / 1e9;
      row.speedup = scalar_s / seconds;
      if (level != simd::Level::kScalar) {
        row.identical = std::memcmp(out.data(), scalar_out.data(),
                                    out.size() * sizeof(float)) == 0;
        all_identical = all_identical && row.identical;
        if (level == best_level && dims >= 16) {
          geomean_log_sum += std::log(row.speedup);
          ++geomean_count;
        }
      }
      rows.push_back(row);
      PrintTableRow({std::to_string(dims), std::to_string(n),
                     simd::LevelName(level), FormatDouble(row.gbps, 2),
                     FormatDouble(row.speedup, 2) + "x",
                     row.identical ? "yes" : "NO"});
    }
  }
  simd::ForceLevelForTest(-1);

  const double geomean =
      geomean_count == 0 ? 1.0
                         : std::exp(geomean_log_sum /
                                    static_cast<double>(geomean_count));
  std::printf("\ngeomean speedup (best tier, dims >= 16): %.2fx; "
              "bit-identical across tiers: %s\n",
              geomean, all_identical ? "yes" : "NO");

  FILE* json = std::fopen("BENCH_distance_kernels.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"distance_kernels\",\n%s"
                 "  \"queries\": %zu,\n  \"scale\": %g,\n  \"runs\": [\n",
                 EnvJson(env).c_str(), kQueries, args.scale);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(json,
                   "    {\"dims\": %zu, \"n\": %zu, \"tier\": \"%s\", "
                   "\"gbps\": %.3f, \"speedup\": %.3f, "
                   "\"identical\": %s}%s\n",
                   row.dims, row.n, simd::LevelName(row.level), row.gbps,
                   row.speedup, row.identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"geomean_speedup_dims_ge16\": %.3f,\n"
                 "  \"all_bit_identical\": %s\n}\n",
                 geomean, all_identical ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_distance_kernels.json\n");
  }

  if (!all_identical) return 1;
  // The acceptance bar only binds where a vector tier exists to win.
  if (env.avx2_supported && geomean_count > 0 && geomean < 4.0) {
    std::fprintf(stderr, "FAIL: dims >= 16 geomean speedup %.2fx < 4x\n",
                 geomean);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
