// Reproduces paper Table IV: saved distance computations and warp
// efficiency of the level-2 filtering kernel (Algorithm 2), for the basic
// KNN-TI and Sweet KNN, k = 20.
//
// Paper reference values (saved% / warp-eff% for basic, then Sweet):
//   3DNet 99.7/16.3 -> 99.7/29.4      kegg  99.5/8.7  -> 99.5/42.4
//   keggD 99.5/10.1 -> 99.5/35.5      ipums 99.4/11.8 -> 99.4/33.3
//   skin  99.7/19.6 -> 99.7/41.2      arcene 26.9/59.5 -> 1.82/89.8
//   kdd   99.6/7.1  -> 99.6/57.4      dor   91.5/20.9 -> 70.1/78.6
//   blog  99.5/21.2 -> 99.5/35.3
// Shape checks: >99% saved everywhere except arcene/dor; Sweet's warp
// efficiency is a multiple of basic's.

#include <cstdio>

#include "bench_common.h"
#include "core/options.h"

namespace sweetknn::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  constexpr int kNeighbors = 20;

  std::printf("=== Table IV: level-2 filter profile (k=%d) ===\n\n",
              kNeighbors);
  PrintTableHeader({"dataset", "ti-saved", "ti-eff", "sw-saved", "sw-eff"});
  for (const auto& info : dataset::PaperDatasets()) {
    if (!args.WantDataset(info.name)) continue;
    const dataset::Dataset data = LoadPaperDataset(info.name, args);
    const Measurement ti =
        RunTi(data, kNeighbors, core::TiOptions::BasicTi());
    const Measurement sweet =
        RunTi(data, kNeighbors, core::TiOptions::Sweet());
    PrintTableRow({info.name, FormatPercent(ti.saved_fraction),
                   FormatPercent(ti.warp_efficiency),
                   FormatPercent(sweet.saved_fraction),
                   FormatPercent(sweet.warp_efficiency)});
  }
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
