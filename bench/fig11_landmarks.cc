// Reproduces paper Figure 11: Sweet KNN speedup as a function of the
// number of landmarks (clusters), on kegg, keggD, and blog, k=20.
//
// Paper shape: performance improves as clusters increase toward the
// 3*sqrt(N) rule's value, then degrades from clustering overhead. (The
// paper's datasets have ~60k points, rule value ~745; our scaled
// datasets have 8192 points, rule value ~271, so the peak shifts left
// accordingly.)

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/options.h"

namespace sweetknn::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  constexpr int kNeighbors = 20;
  // The paper sweeps 100..3200 around its ~745 rule value (n ~ 60k); our
  // scaled datasets (n = 8192, rule value ~271) sweep proportionally.
  const std::vector<int> landmark_counts = {25, 50, 100, 200, 400, 800,
                                            1600};
  const char* kFigDatasets[] = {"kegg", "keggD", "blog"};

  std::printf("=== Figure 11: speedup vs number of landmarks (k=%d) ===\n\n",
              kNeighbors);
  std::vector<std::string> header = {"dataset"};
  for (int m : landmark_counts) header.push_back(std::to_string(m));
  header.push_back("rule(3sqrtN)");
  PrintTableHeader(header);

  for (const char* name : kFigDatasets) {
    if (!args.WantDataset(name)) continue;
    const dataset::Dataset data = LoadPaperDataset(name, args);
    const Measurement base = RunBaseline(data, kNeighbors);
    std::vector<std::string> row = {name};
    for (int m : landmark_counts) {
      core::TiOptions options = core::TiOptions::Sweet();
      options.landmarks_override = m;
      const Measurement sweet = RunTi(data, kNeighbors, options);
      row.push_back(FormatDouble(base.sim_time_s / sweet.sim_time_s, 2));
    }
    const Measurement rule = RunTi(data, kNeighbors,
                                   core::TiOptions::Sweet());
    row.push_back(FormatDouble(base.sim_time_s / rule.sim_time_s, 2) +
                  " (m=" + std::to_string(rule.landmarks) + ")");
    PrintTableRow(row);
  }
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
