#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/stopwatch.h"
#include "core/ti_knn_gpu.h"
#include "simd/simd_kernels.h"

namespace sweetknn::bench {

bool BenchArgs::WantDataset(const std::string& name) const {
  if (only.empty()) return true;
  return std::find(only.begin(), only.end(), name) != only.end();
}

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      args.scale = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--only=", 0) == 0) {
      std::stringstream ss(arg.substr(7));
      std::string name;
      while (std::getline(ss, name, ',')) args.only.push_back(name);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale=F] [--only=name1,name2]\n", argv[0]);
      std::exit(2);
    }
  }
  return args;
}

gpusim::Device MakeBenchDevice() {
  return gpusim::Device(
      gpusim::DeviceSpec::ScaledK20c(dataset::ScaledDeviceMemoryBytes()));
}

Measurement RunBaseline(const dataset::Dataset& data, int k) {
  gpusim::Device dev = MakeBenchDevice();
  baseline::BruteForceOptions options;
  options.exact = false;  // Modeled distances: profile-only run.
  baseline::BruteForceStats stats;
  const Stopwatch wall;
  baseline::BruteForceGpu(&dev, data.points, data.points, k, options,
                          &stats);
  Measurement m;
  m.wall_time_s = wall.ElapsedSeconds();
  // Kernel time only: PCIe transfers are identical for every engine and
  // excluded from the comparison, as GPU papers conventionally do.
  m.sim_time_s = stats.profile.TotalKernelTime();
  m.query_partitions = stats.query_partitions;
  m.saved_fraction = 0.0;  // Brute force computes every pair.
  m.warp_efficiency = stats.profile.AggregateStats().WarpEfficiency();
  return m;
}

Measurement RunTi(const dataset::Dataset& data, int k,
                  const core::TiOptions& options) {
  gpusim::Device dev = MakeBenchDevice();
  core::KnnRunStats stats;
  const Stopwatch wall;
  core::TiKnnEngine::RunOnce(&dev, data.points, data.points, k, options,
                             &stats);
  Measurement m;
  m.wall_time_s = wall.ElapsedSeconds();
  m.sim_time_s = stats.profile.TotalKernelTime();
  m.saved_fraction = stats.SavedFraction();
  m.warp_efficiency = stats.level2_warp_efficiency;
  m.query_partitions = stats.query_partitions;
  m.filter = stats.filter_used;
  m.placement = stats.placement_used;
  m.threads_per_query = stats.threads_per_query;
  m.landmarks = stats.landmarks_target;
  return m;
}

dataset::Dataset LoadPaperDataset(const std::string& name,
                                  const BenchArgs& args) {
  return dataset::MakePaperDataset(dataset::PaperDatasetByName(name),
                                   args.scale);
}

namespace {
constexpr int kColumnWidth = 12;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

EnvInfo DetectEnv() {
  EnvInfo env;
  env.hardware_concurrency = std::thread::hardware_concurrency();
#ifdef __VERSION__
  env.compiler = __VERSION__;
#endif
#ifdef SWEETKNN_BENCH_CXX_FLAGS
  env.compile_flags = SWEETKNN_BENCH_CXX_FLAGS;
#endif
  env.avx2_supported = simd::CpuSupports(simd::Level::kAvx2);
  env.avx512_supported = simd::CpuSupports(simd::Level::kAvx512);
  env.simd_level = simd::LevelName(simd::ActiveLevel());
  return env;
}

std::string EnvJson(const EnvInfo& env) {
  std::ostringstream out;
  out << "  \"env\": {\"hardware_concurrency\": "
      << env.hardware_concurrency << ", \"compiler\": \""
      << JsonEscape(env.compiler) << "\", \"compile_flags\": \""
      << JsonEscape(env.compile_flags) << "\", \"avx2_supported\": "
      << (env.avx2_supported ? "true" : "false")
      << ", \"avx512_supported\": "
      << (env.avx512_supported ? "true" : "false") << ", \"simd_level\": \""
      << JsonEscape(env.simd_level) << "\"},\n";
  return out.str();
}

void PrintTableHeader(const std::vector<std::string>& columns) {
  for (const std::string& c : columns) {
    std::printf("%-*s", kColumnWidth, c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size() * kColumnWidth; ++i) {
    std::printf("-");
  }
  std::printf("\n");
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) {
    std::printf("%-*s", kColumnWidth, c.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace sweetknn::bench
