// Measures the multi-process serving path: concurrent clients firing
// small JoinBatch requests at a router/worker cluster
// (docs/distributed.md), swept over the worker count. For each
// (dataset, workers) point it reports host throughput, request-latency
// and queue-wait percentiles from the router's metrics registry, and
// the failure-path counters (worker deaths, RPC timeouts, retried
// groups), while asserting that every clustered answer is bit-identical
// to an in-process KnnService over the same target and request
// sequence. Emits BENCH_cluster.json.
//
// The worker binary comes from --worker-binary=PATH or the
// SWEETKNN_CLI environment variable (ctest and CI export it); without
// one the benchmark reports a skip and exits 0.
//
// Usage: cluster_throughput [--scale=F] [--only=a,b] [--shards=N]
//        [--clients=N] [--replicas=R] [--worker-binary=PATH]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "serve/knn_service.h"
#include "serve/router.h"

namespace sweetknn::bench {
namespace {

constexpr int kNeighbors = 10;
constexpr int kRowsPerRequest = 2;

struct ClusterRun {
  std::string name;
  size_t n = 0;
  size_t num_queries = 0;
  int workers = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double latency_p50_s = 0.0;
  double latency_p90_s = 0.0;
  double latency_p99_s = 0.0;
  double queue_wait_p50_s = 0.0;
  double queue_wait_p90_s = 0.0;
  double queue_wait_p99_s = 0.0;
  uint64_t worker_deaths = 0;
  uint64_t rpc_timeouts = 0;
  uint64_t retried_groups = 0;
  bool exact = false;
};

/// The query workload: a prefix of the target set, matching
/// serving_throughput so the two benches are comparable point for point.
HostMatrix QueryPrefix(const HostMatrix& points) {
  const size_t rows = std::min<size_t>(points.rows(), 192);
  HostMatrix queries(rows, points.cols());
  std::memcpy(queries.mutable_data(), points.row(0),
              rows * points.cols() * sizeof(float));
  return queries;
}

HostMatrix RequestSlice(const HostMatrix& queries, size_t request) {
  const size_t begin = request * kRowsPerRequest;
  const size_t rows = std::min<size_t>(kRowsPerRequest, queries.rows() - begin);
  HostMatrix slice(rows, queries.cols());
  std::memcpy(slice.mutable_data(), queries.row(begin),
              rows * queries.cols() * sizeof(float));
  return slice;
}

ClusterRun RunOne(const dataset::Dataset& data, const HostMatrix& queries,
                  const std::vector<KnnResult>& reference,
                  const serve::ServiceConfig& service_config, int workers,
                  int replicas, const std::string& worker_binary,
                  int clients) {
  serve::RouterConfig config;
  config.service = service_config;
  config.num_workers = workers;
  config.replicas = replicas;
  config.worker_binary = worker_binary;
  Result<std::unique_ptr<serve::Router>> started =
      serve::Router::Start(data.points, config);
  if (!started.ok()) {
    std::fprintf(stderr, "Router::Start(%d workers) failed: %s\n", workers,
                 started.status().ToString().c_str());
    std::exit(1);
  }
  serve::Router& router = *started.value();

  const size_t requests_total =
      (queries.rows() + kRowsPerRequest - 1) / kRowsPerRequest;
  const size_t per_client =
      (requests_total + static_cast<size_t>(clients) - 1) /
      static_cast<size_t>(clients);
  std::vector<KnnResult> answers(requests_total);

  const Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const size_t first = static_cast<size_t>(c) * per_client;
      const size_t last = std::min(requests_total, first + per_client);
      for (size_t r = first; r < last; ++r) {
        answers[r] =
            router.JoinBatch(RequestSlice(queries, r), kNeighbors).value();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.ElapsedSeconds();

  bool exact = true;
  for (size_t r = 0; r < requests_total && exact; ++r) {
    const KnnResult& want = reference[r];
    const KnnResult& got = answers[r];
    exact = got.num_queries() == want.num_queries() && got.k() == want.k() &&
            std::memcmp(got.row(0), want.row(0),
                        want.num_queries() * static_cast<size_t>(want.k()) *
                            sizeof(Neighbor)) == 0;
  }

  const serve::RouterStats stats = router.stats();
  ClusterRun run;
  run.n = data.n();
  run.num_queries = queries.rows();
  run.workers = workers;
  run.wall_s = wall_s;
  run.qps = static_cast<double>(stats.queries) / wall_s;
  const common::HistogramSnapshot latency = router.metrics().SnapshotHistogram(
      "sweetknn_router_request_latency_seconds");
  run.latency_p50_s = latency.Percentile(0.50);
  run.latency_p90_s = latency.Percentile(0.90);
  run.latency_p99_s = latency.Percentile(0.99);
  const common::HistogramSnapshot queue_wait =
      router.metrics().SnapshotHistogram("sweetknn_router_queue_wait_seconds");
  run.queue_wait_p50_s = queue_wait.Percentile(0.50);
  run.queue_wait_p90_s = queue_wait.Percentile(0.90);
  run.queue_wait_p99_s = queue_wait.Percentile(0.99);
  run.worker_deaths = stats.worker_deaths;
  run.rpc_timeouts = stats.rpc_timeouts;
  run.retried_groups = stats.retried_groups;
  run.exact = exact;
  router.Shutdown();
  return run;
}

int Main(int argc, char** argv) {
  int shards = 4;
  int clients = 4;
  int replicas = 0;
  std::string worker_binary;
  if (const char* env = std::getenv("SWEETKNN_CLI")) worker_binary = env;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--replicas=", 0) == 0) {
      replicas = std::atoi(arg.c_str() + 11);
    } else if (arg.rfind("--worker-binary=", 0) == 0) {
      worker_binary = arg.substr(16);
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (worker_binary.empty()) {
    std::printf("cluster_throughput: no worker binary "
                "(--worker-binary or SWEETKNN_CLI); skipping\n");
    return 0;
  }
  const BenchArgs args =
      BenchArgs::Parse(static_cast<int>(rest.size()), rest.data());
  const std::vector<int> worker_counts = {1, 2, 4};

  std::printf("=== Cluster serving: %d shards, %d replicas, %d concurrent "
              "clients, %d-row requests, k=%d ===\n\n",
              shards, replicas, clients, kRowsPerRequest, kNeighbors);
  PrintTableHeader({"dataset", "n", "workers", "wall(s)", "qps", "p50(us)",
                    "p99(us)", "deaths", "timeouts", "exact"});

  std::vector<ClusterRun> runs;
  bool all_exact = true;
  for (const auto& info : dataset::PaperDatasets()) {
    if (!args.WantDataset(info.name)) continue;
    const dataset::Dataset data = LoadPaperDataset(info.name, args);
    const HostMatrix queries = QueryPrefix(data.points);

    // The reference: the in-process serving backend over the identical
    // target and request sequence. The cluster must reproduce it
    // byte for byte, whatever the worker count.
    serve::ServiceConfig service_config;
    service_config.num_shards = shards;
    service_config.max_batch_size = 8;
    service_config.max_batch_wait = std::chrono::microseconds(300);
    const size_t requests_total =
        (queries.rows() + kRowsPerRequest - 1) / kRowsPerRequest;
    std::vector<KnnResult> reference(requests_total);
    {
      serve::KnnService local(data.points, service_config);
      for (size_t r = 0; r < requests_total; ++r) {
        reference[r] =
            local.JoinBatch(RequestSlice(queries, r), kNeighbors).value();
      }
      local.Shutdown();
    }

    for (int workers : worker_counts) {
      if (workers > shards) continue;
      ClusterRun run = RunOne(data, queries, reference, service_config,
                              workers, replicas, worker_binary, clients);
      run.name = info.name;
      all_exact = all_exact && run.exact;
      PrintTableRow({run.name, std::to_string(run.n),
                     std::to_string(run.workers), FormatDouble(run.wall_s, 3),
                     FormatDouble(run.qps, 0),
                     FormatDouble(run.latency_p50_s * 1e6, 1),
                     FormatDouble(run.latency_p99_s * 1e6, 1),
                     std::to_string(run.worker_deaths),
                     std::to_string(run.rpc_timeouts),
                     run.exact ? "yes" : "NO"});
      runs.push_back(std::move(run));
    }
  }
  std::printf("\nall cluster answers bit-identical to in-process "
              "KnnService: %s\n",
              all_exact ? "yes" : "NO");

  FILE* json = std::fopen("BENCH_cluster.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"cluster_throughput\",\n%s"
                 "  \"shards\": %d,\n  \"replicas\": %d,\n"
                 "  \"clients\": %d,\n  \"rows_per_request\": %d,\n"
                 "  \"k\": %d,\n  \"scale\": %g,\n  \"runs\": [\n",
                 EnvJson(DetectEnv()).c_str(), shards, replicas, clients,
                 kRowsPerRequest, kNeighbors, args.scale);
    for (size_t i = 0; i < runs.size(); ++i) {
      const ClusterRun& run = runs[i];
      std::fprintf(
          json,
          "    {\"name\": \"%s\", \"n\": %zu, \"queries\": %zu, "
          "\"workers\": %d, \"wall_s\": %.6f, \"qps\": %.1f, "
          "\"latency_s\": {\"p50\": %.9g, \"p90\": %.9g, \"p99\": %.9g}, "
          "\"queue_wait_s\": {\"p50\": %.9g, \"p90\": %.9g, \"p99\": %.9g}, "
          "\"worker_deaths\": %llu, \"rpc_timeouts\": %llu, "
          "\"retried_groups\": %llu, \"exact\": %s}%s\n",
          run.name.c_str(), run.n, run.num_queries, run.workers, run.wall_s,
          run.qps, run.latency_p50_s, run.latency_p90_s, run.latency_p99_s,
          run.queue_wait_p50_s, run.queue_wait_p90_s, run.queue_wait_p99_s,
          static_cast<unsigned long long>(run.worker_deaths),
          static_cast<unsigned long long>(run.rpc_timeouts),
          static_cast<unsigned long long>(run.retried_groups),
          run.exact ? "true" : "false", i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"all_exact\": %s\n}\n",
                 all_exact ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_cluster.json\n");
  }
  return all_exact ? 0 : 1;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
