// Reproduces paper Figure 10: Sweet KNN speedup over the baseline for
// k in {1, 8, 20, 64, 512} (arcene has only 100 points, so no k=512).
//
// Paper shape: speedups generally dip as k grows toward 64 (bigger
// kNearests arrays, more divergence), then recover at k=512 where the
// adaptive scheme switches to the partial filter on the k/d > 8
// datasets (top speedups 120/77/52X at k=1 on 3DNet/skin/kdd).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/options.h"

namespace sweetknn::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::vector<int> ks = {1, 8, 20, 64, 512};

  std::printf("=== Figure 10: Sweet KNN speedup vs k ===\n\n");
  std::vector<std::string> header = {"dataset"};
  for (int k : ks) header.push_back("k=" + std::to_string(k));
  PrintTableHeader(header);

  for (const auto& info : dataset::PaperDatasets()) {
    if (!args.WantDataset(info.name)) continue;
    const dataset::Dataset data = LoadPaperDataset(info.name, args);
    std::vector<std::string> row = {info.name};
    for (int k : ks) {
      if (static_cast<size_t>(k) > data.n()) {
        row.push_back("-");
        continue;
      }
      const Measurement base = RunBaseline(data, k);
      const Measurement sweet = RunTi(data, k, core::TiOptions::Sweet());
      row.push_back(FormatDouble(base.sim_time_s / sweet.sim_time_s, 2) +
                    (sweet.filter == core::Level2Filter::kPartial ? "p"
                                                                  : ""));
    }
    PrintTableRow(row);
  }
  std::printf("\n('p' marks runs where the adaptive scheme chose the "
              "partial level-2 filter)\n");
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
