// Measures the parallel execution engine: host wall-clock of Sweet KNN
// runs with 1 worker (legacy serial engine) versus N workers, asserting
// along the way that simulated times and neighbor results are
// byte-identical — the engine only changes how fast the simulation runs,
// never what it computes. Emits BENCH_parallel_engine.json so the perf
// trajectory is tracked from this PR on.
//
// Usage: parallel_engine [--scale=F] [--only=a,b] [--threads=N]
// --threads defaults to SWEETKNN_SIM_THREADS when set (> 1), else the
// host's hardware concurrency (at least 2, so the parallel path is
// exercised even on small hosts).

#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/ti_knn_gpu.h"

namespace sweetknn::bench {
namespace {

struct EngineRun {
  KnnResult result{0, 1};
  double sim_time_s = 0.0;
  double wall_time_s = 0.0;
  std::vector<double> launch_times;
};

EngineRun RunSweet(const dataset::Dataset& data, int k, int sim_threads) {
  gpusim::Device dev = MakeBenchDevice();
  core::TiOptions options = core::TiOptions::Sweet();
  options.sim_threads = sim_threads;
  core::KnnRunStats stats;
  const Stopwatch wall;
  EngineRun run;
  run.result = core::TiKnnEngine::RunOnce(&dev, data.points, data.points, k,
                                          options, &stats);
  run.wall_time_s = wall.ElapsedSeconds();
  run.sim_time_s = stats.profile.TotalKernelTime();
  for (const gpusim::LaunchRecord& record : stats.profile.launches) {
    run.launch_times.push_back(record.sim_time_s);
  }
  return run;
}

bool Identical(const EngineRun& a, const EngineRun& b) {
  if (a.sim_time_s != b.sim_time_s) return false;
  if (a.launch_times != b.launch_times) return false;
  if (a.result.num_queries() != b.result.num_queries()) return false;
  if (a.result.k() != b.result.k()) return false;
  for (size_t q = 0; q < a.result.num_queries(); ++q) {
    for (int j = 0; j < a.result.k(); ++j) {
      if (a.result.row(q)[j].index != b.result.row(q)[j].index) return false;
      if (a.result.row(q)[j].distance != b.result.row(q)[j].distance) {
        return false;
      }
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  int threads = 0;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else {
      rest.push_back(argv[i]);
    }
  }
  const BenchArgs args =
      BenchArgs::Parse(static_cast<int>(rest.size()), rest.data());
  if (threads <= 0) threads = common::SimThreadsFromEnv();
  if (threads <= 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? static_cast<int>(hw) : 2;
  }
  const unsigned host_cores = std::thread::hardware_concurrency();
  constexpr int kNeighbors = 20;

  std::printf("=== Parallel execution engine: serial vs %d-worker "
              "wall-clock (Sweet KNN, k=%d) ===\n\n",
              threads, kNeighbors);
  PrintTableHeader({"dataset", "n", "serial(s)", "parallel(s)", "speedup",
                    "sim(ms)", "identical"});

  struct Row {
    std::string name;
    size_t n = 0;
    double serial_wall_s = 0.0;
    double parallel_wall_s = 0.0;
    double sim_time_s = 0.0;
    bool identical = false;
  };
  std::vector<Row> rows;
  double speedup_product = 1.0;
  bool all_identical = true;
  for (const auto& info : dataset::PaperDatasets()) {
    if (!args.WantDataset(info.name)) continue;
    const dataset::Dataset data = LoadPaperDataset(info.name, args);
    const EngineRun serial = RunSweet(data, kNeighbors, 1);
    const EngineRun parallel = RunSweet(data, kNeighbors, threads);
    Row row;
    row.name = info.name;
    row.n = data.n();
    row.serial_wall_s = serial.wall_time_s;
    row.parallel_wall_s = parallel.wall_time_s;
    row.sim_time_s = serial.sim_time_s;
    row.identical = Identical(serial, parallel);
    all_identical = all_identical && row.identical;
    speedup_product *= row.serial_wall_s / row.parallel_wall_s;
    rows.push_back(row);
    PrintTableRow({row.name, std::to_string(row.n),
                   FormatDouble(row.serial_wall_s, 3),
                   FormatDouble(row.parallel_wall_s, 3),
                   FormatDouble(row.serial_wall_s / row.parallel_wall_s, 2),
                   FormatDouble(row.sim_time_s * 1e3),
                   row.identical ? "yes" : "NO"});
  }
  const double geomean =
      rows.empty() ? 1.0
                   : std::pow(speedup_product, 1.0 / rows.size());
  std::printf("\ngeomean wall-clock speedup: %.2fX (%u host cores); "
              "sim results identical: %s\n",
              geomean, host_cores, all_identical ? "yes" : "NO");

  FILE* json = std::fopen("BENCH_parallel_engine.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"parallel_engine\",\n%s"
                 "  \"workers\": %d,\n  \"host_cores\": %u,\n"
                 "  \"scale\": %g,\n  \"datasets\": [\n",
                 EnvJson(DetectEnv()).c_str(), threads, host_cores,
                 args.scale);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(
          json,
          "    {\"name\": \"%s\", \"n\": %zu, \"serial_wall_s\": %.6f, "
          "\"parallel_wall_s\": %.6f, \"speedup\": %.3f, "
          "\"sim_time_s\": %.9g, \"sim_identical\": %s}%s\n",
          row.name.c_str(), row.n, row.serial_wall_s, row.parallel_wall_s,
          row.serial_wall_s / row.parallel_wall_s, row.sim_time_s,
          row.identical ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"geomean_speedup\": %.3f,\n"
                 "  \"all_sim_identical\": %s\n}\n",
                 geomean, all_identical ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_parallel_engine.json\n");
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
