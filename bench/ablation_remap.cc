// Ablation for the thread-data remapping optimization (paper IV-C1,
// Tables I/II): Sweet KNN with and without the thread->query map that
// groups a warp's lanes onto queries of the same cluster.
//
// Expected shape: remapping raises the level-2 warp efficiency and
// lowers time on clustered datasets.

#include <cstdio>

#include "bench_common.h"
#include "core/options.h"

namespace sweetknn::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  constexpr int kNeighbors = 20;
  const char* kAblDatasets[] = {"3DNet", "kegg", "ipums"};

  std::printf("=== Ablation: thread-data remapping (k=%d) ===\n\n",
              kNeighbors);
  PrintTableHeader({"dataset", "off(ms)", "off-eff", "on(ms)", "on-eff",
                    "gain(X)"});
  for (const char* name : kAblDatasets) {
    if (!args.WantDataset(name)) continue;
    const dataset::Dataset data = LoadPaperDataset(name, args);

    core::TiOptions off = core::TiOptions::Sweet();
    off.remap_threads = false;
    const Measurement m_off = RunTi(data, kNeighbors, off);

    core::TiOptions on = core::TiOptions::Sweet();
    on.remap_threads = true;
    const Measurement m_on = RunTi(data, kNeighbors, on);

    PrintTableRow({name, FormatDouble(m_off.sim_time_s * 1e3),
                   FormatPercent(m_off.warp_efficiency),
                   FormatDouble(m_on.sim_time_s * 1e3),
                   FormatPercent(m_on.warp_efficiency),
                   FormatDouble(m_off.sim_time_s / m_on.sim_time_s, 2)});
  }
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
