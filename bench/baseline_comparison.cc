// Validates the paper's baseline choice (section V-A): the CUBLAS-based
// brute force of Garcia et al. outperforms plain-CUDA brute-force
// implementations by up to 10x, which is why it is the baseline all
// speedups are measured against. Also reports the sequential CPU TI-KNN
// for context (the TOP framework the algorithm originates from).

#include <cstdio>

#include "baseline/brute_force_gpu.h"
#include "bench_common.h"
#include "core/options.h"

namespace sweetknn::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  constexpr int kNeighbors = 20;

  std::printf("=== Baseline comparison: CUBLAS vs pure-CUDA brute force "
              "(k=%d) ===\n\n", kNeighbors);
  PrintTableHeader({"dataset", "cublas(ms)", "cuda(ms)", "cublas(X)",
                    "sweet(X)"});
  for (const char* name : {"3DNet", "kegg", "ipums", "kdd"}) {
    if (!args.WantDataset(name)) continue;
    const dataset::Dataset data = LoadPaperDataset(name, args);
    const Measurement cublas = RunBaseline(data, kNeighbors);

    double cuda_ms = 0.0;
    {
      gpusim::Device dev = MakeBenchDevice();
      baseline::BruteForceOptions options;
      options.variant = baseline::BruteForceVariant::kPureCuda;
      options.exact = false;
      baseline::BruteForceStats stats;
      baseline::BruteForceGpu(&dev, data.points, data.points, kNeighbors,
                              options, &stats);
      cuda_ms = stats.profile.TotalKernelTime() * 1e3;
    }
    const Measurement sweet =
        RunTi(data, kNeighbors, core::TiOptions::Sweet());
    PrintTableRow({name, FormatDouble(cublas.sim_time_s * 1e3),
                   FormatDouble(cuda_ms),
                   FormatDouble(cuda_ms / (cublas.sim_time_s * 1e3), 2),
                   FormatDouble(cuda_ms / (sweet.sim_time_s * 1e3), 2)});
  }
  std::printf("\n(cublas(X): how much faster the CUBLAS baseline is than "
              "the plain-CUDA one;\n sweet(X): Sweet KNN's speedup over "
              "the plain-CUDA brute force)\n");
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
