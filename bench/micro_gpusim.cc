// Micro-benchmarks (google-benchmark) for the simulator substrate and the
// hot host-side data structures: how fast the SIMT interpreter executes
// warp instructions, memory-instruction accounting, and top-k selection.
// These measure *host* wall-clock cost of simulation, not simulated time.

#include <benchmark/benchmark.h>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/topk.h"
#include "gpusim/cache_sim.h"
#include "gpusim/device.h"
#include "gpusim/warp.h"

namespace sweetknn {
namespace {

void BM_WarpOpThroughput(benchmark::State& state) {
  gpusim::KernelStats stats;
  gpusim::Warp warp(&stats, 0, 256, 0, gpusim::kFullMask);
  gpusim::Reg<float> acc;
  for (auto _ : state) {
    warp.Op([&](int lane) { acc[lane] += 1.0f; });
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_WarpOpThroughput);

void BM_WarpBallot(benchmark::State& state) {
  gpusim::KernelStats stats;
  gpusim::Warp warp(&stats, 0, 256, 0, gpusim::kFullMask);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        warp.Ballot([](int lane) { return lane % 3 == 0; }));
  }
}
BENCHMARK(BM_WarpBallot);

void BM_CoalescedLoad(benchmark::State& state) {
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  auto buf = dev.Alloc<float>(1 << 16, "buf");
  gpusim::KernelStats stats;
  gpusim::CacheSim cache(10240);
  gpusim::Warp warp(&stats, 0, 256, 0, gpusim::kFullMask, &cache);
  size_t base = 0;
  for (auto _ : state) {
    warp.Load(buf, [&](int lane) { return (base + lane) & 0xffff; },
              [](int, float) {});
    base += 32;
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_CoalescedLoad);

void BM_ScatteredLoad(benchmark::State& state) {
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  auto buf = dev.Alloc<float>(1 << 16, "buf");
  gpusim::KernelStats stats;
  gpusim::CacheSim cache(10240);
  gpusim::Warp warp(&stats, 0, 256, 0, gpusim::kFullMask, &cache);
  for (auto _ : state) {
    warp.Load(buf, [](int lane) { return lane * 1024; }, [](int, float) {});
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ScatteredLoad);

void BM_LoadRangePoint(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  auto buf = dev.Alloc<float>(64 * dims, "points");
  gpusim::KernelStats stats;
  gpusim::CacheSim cache(10240);
  gpusim::Warp warp(&stats, 0, 256, 0, gpusim::kFullMask, &cache);
  for (auto _ : state) {
    warp.LoadRange(buf, [&](int lane) { return (lane % 64) * dims; }, dims,
                   4, [](int, const float*) {});
  }
}
BENCHMARK(BM_LoadRangePoint)->Arg(4)->Arg(64)->Arg(1024);

void BM_TopKInsertion(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<float> values(4096);
  for (float& v : values) v = rng.NextFloat();
  for (auto _ : state) {
    TopK heap(k);
    for (uint32_t i = 0; i < values.size(); ++i) {
      heap.PushIfCloser({i, values[i]});
    }
    benchmark::DoNotOptimize(heap.max());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_TopKInsertion)->Arg(1)->Arg(20)->Arg(512);

void BM_CacheSimAccess(benchmark::State& state) {
  gpusim::CacheSim cache(10240);
  uint64_t seg = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(seg++ % 20000));
  }
}
BENCHMARK(BM_CacheSimAccess);

void BM_EuclideanDistance(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<float> a(dims);
  std::vector<float> b(dims);
  for (size_t i = 0; i < dims; ++i) {
    a[i] = rng.NextFloat();
    b[i] = rng.NextFloat();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EuclideanDistance(a.data(), b.data(), dims));
  }
}
BENCHMARK(BM_EuclideanDistance)->Arg(4)->Arg(29)->Arg(281);

}  // namespace
}  // namespace sweetknn

BENCHMARK_MAIN();
