// Ablations for the data-layout design choices:
//  - paper Fig. 6: kNearests pool layout (blocked vs interleaved) with
//    the global-memory placement;
//  - paper Fig. 7 / IV-C3: point layout (column-major vs row-major, and
//    row-major with scalar vs float4 vector loads) for the TI kernels.

#include <cstdio>

#include "bench_common.h"
#include "core/options.h"

namespace sweetknn::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  constexpr int kNeighbors = 20;

  std::printf("=== Ablation A (Fig. 6): global kNearests layout (k=%d) "
              "===\n\n", kNeighbors);
  PrintTableHeader({"dataset", "blocked(ms)", "interleav(ms)", "gain(X)"});
  for (const char* name : {"kegg", "ipums"}) {
    if (!args.WantDataset(name)) continue;
    const dataset::Dataset data = LoadPaperDataset(name, args);
    core::TiOptions blocked = core::TiOptions::Sweet();
    blocked.placement_override = core::KnearestsPlacement::kGlobal;
    blocked.knearests_layout = core::KnearestsLayout::kBlocked;
    const Measurement m_blocked = RunTi(data, kNeighbors, blocked);
    core::TiOptions inter = blocked;
    inter.knearests_layout = core::KnearestsLayout::kInterleaved;
    const Measurement m_inter = RunTi(data, kNeighbors, inter);
    PrintTableRow({name, FormatDouble(m_blocked.sim_time_s * 1e3),
                   FormatDouble(m_inter.sim_time_s * 1e3),
                   FormatDouble(m_blocked.sim_time_s / m_inter.sim_time_s,
                                2)});
  }

  std::printf("\n=== Ablation B (Fig. 7): point layout for TI kernels "
              "(k=%d) ===\n\n", kNeighbors);
  PrintTableHeader({"dataset", "colmajor(ms)", "row-sc(ms)", "row-f4(ms)",
                    "col/f4(X)"});
  for (const char* name : {"kegg", "ipums"}) {
    if (!args.WantDataset(name)) continue;
    const dataset::Dataset data = LoadPaperDataset(name, args);
    core::TiOptions col = core::TiOptions::Sweet();
    col.layout = core::PointLayout::kColumnMajor;
    const Measurement m_col = RunTi(data, kNeighbors, col);
    core::TiOptions row1 = core::TiOptions::Sweet();
    row1.layout = core::PointLayout::kRowMajor;
    row1.point_vector_width = 1;
    const Measurement m_row1 = RunTi(data, kNeighbors, row1);
    core::TiOptions row4 = core::TiOptions::Sweet();
    row4.layout = core::PointLayout::kRowMajor;
    row4.point_vector_width = 4;
    const Measurement m_row4 = RunTi(data, kNeighbors, row4);
    PrintTableRow({name, FormatDouble(m_col.sim_time_s * 1e3),
                   FormatDouble(m_row1.sim_time_s * 1e3),
                   FormatDouble(m_row4.sim_time_s * 1e3),
                   FormatDouble(m_col.sim_time_s / m_row4.sim_time_s, 2)});
  }
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
