// Measures the KnnService serving layer: concurrent clients firing
// small JoinBatch requests at a sharded index, swept over the
// micro-batch size knob. For each (dataset, max_batch_size) point it
// reports host throughput, mean batch size, batch occupancy, and the
// amortized simulated device time per query — the number dynamic
// micro-batching drives down — plus request-latency and queue-wait
// percentiles and the per-stage simulated-time split from the service's
// metrics registry, while asserting that every served answer is
// bit-identical to a single-engine RunOnce over the unsharded target
// set. Emits BENCH_serving.json.
//
// Usage: serving_throughput [--scale=F] [--only=a,b] [--shards=N]
//        [--clients=N]

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "core/ti_knn_gpu.h"
#include "serve/knn_service.h"

namespace sweetknn::bench {
namespace {

constexpr int kNeighbors = 10;
constexpr int kRowsPerRequest = 2;

struct ServingRun {
  std::string name;
  size_t n = 0;
  size_t num_queries = 0;
  int max_batch_size = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double mean_batch = 0.0;
  double occupancy = 0.0;
  double amortized_sim_s = 0.0;
  double critical_sim_s = 0.0;
  double total_sim_s = 0.0;
  // End-to-end request latency and queue-wait percentiles (seconds),
  // pulled from the service's metrics registry.
  double latency_p50_s = 0.0;
  double latency_p90_s = 0.0;
  double latency_p99_s = 0.0;
  double queue_wait_p50_s = 0.0;
  double queue_wait_p90_s = 0.0;
  double queue_wait_p99_s = 0.0;
  // Per-stage simulated time over all shards (seconds).
  double sim_level1_s = 0.0;
  double sim_level2_s = 0.0;
  double sim_transfer_s = 0.0;
  double sim_preprocess_s = 0.0;
  bool exact = false;
};

/// Reads one counter back out of a parsed JSON metrics export.
/// GetCounter registers on first use, so an absent name reads as 0.
double CounterValue(common::MetricsRegistry* parsed, const char* name) {
  return parsed->GetCounter(name, "")->value();
}

/// The query workload: a prefix of the target set, so every request has
/// in-distribution points and the single-engine reference stays small.
HostMatrix QueryPrefix(const HostMatrix& points) {
  const size_t rows = std::min<size_t>(points.rows(), 192);
  HostMatrix queries(rows, points.cols());
  std::memcpy(queries.mutable_data(), points.row(0),
              rows * points.cols() * sizeof(float));
  return queries;
}

ServingRun RunOne(const dataset::Dataset& data, const HostMatrix& queries,
                  const KnnResult& reference, int shards, int clients,
                  int max_batch_size) {
  serve::ServiceConfig config;
  config.num_shards = shards;
  config.max_batch_size = max_batch_size;
  config.max_batch_wait = std::chrono::microseconds(300);
  serve::KnnService service(data.points, config);

  const size_t requests_total =
      (queries.rows() + kRowsPerRequest - 1) / kRowsPerRequest;
  const size_t per_client =
      (requests_total + static_cast<size_t>(clients) - 1) /
      static_cast<size_t>(clients);
  std::vector<KnnResult> answers(requests_total);

  const Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const size_t first = static_cast<size_t>(c) * per_client;
      const size_t last = std::min(requests_total, first + per_client);
      for (size_t r = first; r < last; ++r) {
        const size_t begin = r * kRowsPerRequest;
        const size_t rows =
            std::min<size_t>(kRowsPerRequest, queries.rows() - begin);
        HostMatrix slice(rows, queries.cols());
        std::memcpy(slice.mutable_data(), queries.row(begin),
                    rows * queries.cols() * sizeof(float));
        answers[r] = service.JoinBatch(slice, kNeighbors).value();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.ElapsedSeconds();
  service.Shutdown();

  bool exact = true;
  for (size_t r = 0; r < requests_total && exact; ++r) {
    const size_t begin = r * kRowsPerRequest;
    for (size_t q = 0; q < answers[r].num_queries() && exact; ++q) {
      for (int i = 0; i < kNeighbors; ++i) {
        const Neighbor& want = reference.row(begin + q)[i];
        const Neighbor& got = answers[r].row(q)[i];
        if (want.index != got.index || want.distance != got.distance) {
          exact = false;
          break;
        }
      }
    }
  }

  const serve::ServiceStats stats = service.stats();
  ServingRun run;
  run.n = data.n();
  run.num_queries = queries.rows();
  run.max_batch_size = max_batch_size;
  run.wall_s = wall_s;
  run.qps = static_cast<double>(stats.queries) / wall_s;
  run.mean_batch = stats.MeanBatchSize();
  run.occupancy = stats.BatchOccupancy(max_batch_size);
  run.amortized_sim_s = stats.AmortizedSimTimePerQuery();
  run.critical_sim_s = stats.critical_sim_time_s;
  run.total_sim_s = stats.total_sim_time_s;
  const common::HistogramSnapshot latency =
      service.metrics().SnapshotHistogram("sweetknn_request_latency_seconds");
  run.latency_p50_s = latency.Percentile(0.50);
  run.latency_p90_s = latency.Percentile(0.90);
  run.latency_p99_s = latency.Percentile(0.99);
  const common::HistogramSnapshot queue_wait =
      service.metrics().SnapshotHistogram("sweetknn_queue_wait_seconds");
  run.queue_wait_p50_s = queue_wait.Percentile(0.50);
  run.queue_wait_p90_s = queue_wait.Percentile(0.90);
  run.queue_wait_p99_s = queue_wait.Percentile(0.99);
  common::MetricsRegistry parsed;
  if (common::ParseMetricsJson(service.ExportMetricsJson(), &parsed).ok()) {
    run.sim_level1_s =
        CounterValue(&parsed, "sweetknn_sim_level1_seconds_total");
    run.sim_level2_s =
        CounterValue(&parsed, "sweetknn_sim_level2_seconds_total");
    run.sim_transfer_s =
        CounterValue(&parsed, "sweetknn_sim_transfer_seconds_total");
    run.sim_preprocess_s =
        CounterValue(&parsed, "sweetknn_sim_preprocess_seconds_total");
  }
  run.exact = exact;
  return run;
}

int Main(int argc, char** argv) {
  int shards = 2;
  int clients = 4;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = std::atoi(arg.c_str() + 10);
    } else {
      rest.push_back(argv[i]);
    }
  }
  const BenchArgs args =
      BenchArgs::Parse(static_cast<int>(rest.size()), rest.data());
  const std::vector<int> batch_sizes = {1, 8, 64};

  std::printf("=== Serving layer: %d shards, %d concurrent clients, "
              "%d-row requests, k=%d ===\n\n",
              shards, clients, kRowsPerRequest, kNeighbors);
  PrintTableHeader({"dataset", "n", "batch", "wall(s)", "qps", "mean_b",
                    "occup", "amort_sim(us)", "p50(us)", "p99(us)",
                    "exact"});

  std::vector<ServingRun> runs;
  bool all_exact = true;
  for (const auto& info : dataset::PaperDatasets()) {
    if (!args.WantDataset(info.name)) continue;
    const dataset::Dataset data = LoadPaperDataset(info.name, args);
    const HostMatrix queries = QueryPrefix(data.points);
    gpusim::Device dev = MakeBenchDevice();
    const KnnResult reference = core::TiKnnEngine::RunOnce(
        &dev, queries, data.points, kNeighbors, core::TiOptions::Sweet(),
        nullptr);
    for (int batch : batch_sizes) {
      ServingRun run =
          RunOne(data, queries, reference, shards, clients, batch);
      run.name = info.name;
      all_exact = all_exact && run.exact;
      PrintTableRow({run.name, std::to_string(run.n),
                     std::to_string(run.max_batch_size),
                     FormatDouble(run.wall_s, 3), FormatDouble(run.qps, 0),
                     FormatDouble(run.mean_batch, 2),
                     FormatPercent(run.occupancy),
                     FormatDouble(run.amortized_sim_s * 1e6, 3),
                     FormatDouble(run.latency_p50_s * 1e6, 1),
                     FormatDouble(run.latency_p99_s * 1e6, 1),
                     run.exact ? "yes" : "NO"});
      runs.push_back(std::move(run));
    }
  }
  std::printf("\nall answers bit-identical to single-engine RunOnce: %s\n",
              all_exact ? "yes" : "NO");

  FILE* json = std::fopen("BENCH_serving.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"serving_throughput\",\n%s"
                 "  \"shards\": %d,\n  \"clients\": %d,\n"
                 "  \"rows_per_request\": %d,\n  \"k\": %d,\n"
                 "  \"scale\": %g,\n  \"runs\": [\n",
                 EnvJson(DetectEnv()).c_str(), shards, clients,
                 kRowsPerRequest, kNeighbors, args.scale);
    for (size_t i = 0; i < runs.size(); ++i) {
      const ServingRun& run = runs[i];
      std::fprintf(
          json,
          "    {\"name\": \"%s\", \"n\": %zu, \"queries\": %zu, "
          "\"max_batch_size\": %d, \"wall_s\": %.6f, \"qps\": %.1f, "
          "\"mean_batch_size\": %.3f, \"batch_occupancy\": %.4f, "
          "\"amortized_sim_s_per_query\": %.9g, "
          "\"critical_sim_s\": %.9g, \"total_sim_s\": %.9g, "
          "\"latency_s\": {\"p50\": %.9g, \"p90\": %.9g, \"p99\": %.9g}, "
          "\"queue_wait_s\": {\"p50\": %.9g, \"p90\": %.9g, \"p99\": %.9g}, "
          "\"sim_stage_s\": {\"level1\": %.9g, \"level2\": %.9g, "
          "\"transfer\": %.9g, \"preprocess\": %.9g}, "
          "\"exact\": %s}%s\n",
          run.name.c_str(), run.n, run.num_queries, run.max_batch_size,
          run.wall_s, run.qps, run.mean_batch, run.occupancy,
          run.amortized_sim_s, run.critical_sim_s, run.total_sim_s,
          run.latency_p50_s, run.latency_p90_s, run.latency_p99_s,
          run.queue_wait_p50_s, run.queue_wait_p90_s, run.queue_wait_p99_s,
          run.sim_level1_s, run.sim_level2_s, run.sim_transfer_s,
          run.sim_preprocess_s,
          run.exact ? "true" : "false", i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"all_exact\": %s\n}\n",
                 all_exact ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_serving.json\n");
  }
  return all_exact ? 0 : 1;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
