// Measures multi-tenant serving isolation under controlled overload: a
// heavy (weight 4) and a light (weight 1) tenant share one KnnService
// behind the weighted-fair admission scheduler, and paced open-loop
// producers offer 0.5x, 1x, and 2x the service's calibrated capacity.
// For each load level it reports per-tenant offered/served/shed counts,
// the shed rate, and the per-tenant latency p50/p99 — the numbers that
// show load-shedding kicking in at the bound and the DRR scheduler
// keeping the weighted shares honest while it does. Emits
// BENCH_multitenant.json.
//
// Usage: multitenant_throughput [--scale=F]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "serve/knn_service.h"

namespace sweetknn::bench {
namespace {

constexpr int kNeighbors = 10;
constexpr int kDims = 8;
constexpr int kShards = 2;
constexpr int kProducersPerTenant = 8;
// Deliberately below the producer count (2 x 8 outstanding max): the
// bound must be reachable or overload can never shed — each producer
// blocks on its own in-flight request, capping queued depth at the
// producer count.
constexpr size_t kMaxQueueDepth = 12;
constexpr double kHeavyWeight = 4.0;
constexpr double kLightWeight = 1.0;
constexpr auto kLevelDuration = std::chrono::milliseconds(1200);

HostMatrix MakeTarget(size_t rows) {
  Rng rng(20260809);
  HostMatrix points(rows, kDims);
  for (size_t r = 0; r < rows; ++r) {
    for (int c = 0; c < kDims; ++c) {
      points.at(r, static_cast<size_t>(c)) = rng.NextFloat();
    }
  }
  return points;
}

serve::ServiceConfig BenchConfig() {
  serve::ServiceConfig config;
  config.num_shards = kShards;
  config.max_batch_size = 16;
  config.max_batch_wait = std::chrono::microseconds(200);
  config.auto_compact = false;
  return config;
}

/// Closed-loop calibration with the SAME two-tenant shape the load
/// sweep uses (weighted tenants, one producer pool per tenant, no
/// admission bound): micro-batches are single-tenant, so a one-tenant
/// calibration would overstate capacity by the batch-size ratio. The
/// measured rate is the "1x capacity" the sweep paces against.
double CalibrateCapacityQps(const HostMatrix& points) {
  serve::KnnService service(points, BenchConfig());
  if (!service.SetIndexWeight(serve::kDefaultTenant, kHeavyWeight).ok() ||
      !service.CreateIndex("light", points, kLightWeight).ok()) {
    return 0.0;
  }
  std::atomic<uint64_t> served{0};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(800);
  std::vector<std::thread> clients;
  for (int c = 0; c < 2 * kProducersPerTenant; ++c) {
    clients.emplace_back([&, c] {
      serve::CallOptions opts;
      opts.tenant = c % 2 == 0 ? serve::kDefaultTenant : "light";
      std::vector<float> point(kDims, 0.01f * static_cast<float>(c + 1));
      while (std::chrono::steady_clock::now() < deadline) {
        if (service.Search(opts, point, kNeighbors).ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  const Stopwatch wall;
  for (std::thread& t : clients) t.join();
  const double elapsed = wall.ElapsedSeconds();
  return static_cast<double>(served.load()) / elapsed;
}

struct TenantOutcome {
  std::string name;
  double weight = 0.0;
  uint64_t offered = 0;
  uint64_t served = 0;
  uint64_t shed = 0;
  double p50_s = 0.0;
  double p99_s = 0.0;

  double ShedRate() const {
    return offered == 0
               ? 0.0
               : static_cast<double>(shed) / static_cast<double>(offered);
  }
};

struct LoadLevelRun {
  double load_factor = 0.0;
  double offered_qps = 0.0;
  std::vector<TenantOutcome> tenants;
  bool clean = true;  ///< only ok / shed statuses observed
};

/// One load level against a fresh service: paced producers offer
/// `capacity_qps * factor` single-row searches split evenly between the
/// heavy and the light tenant; the admission bound sheds the overflow.
LoadLevelRun RunLevel(const HostMatrix& points, double capacity_qps,
                      double factor) {
  serve::ServiceConfig config = BenchConfig();
  config.max_queue_depth = kMaxQueueDepth;
  serve::KnnService service(points, config);
  if (!service.SetIndexWeight(serve::kDefaultTenant, kHeavyWeight).ok() ||
      !service.CreateIndex("light", points, kLightWeight).ok()) {
    LoadLevelRun failed;
    failed.clean = false;
    return failed;
  }

  const double per_producer_qps =
      capacity_qps * factor / (2.0 * kProducersPerTenant);
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / per_producer_qps));

  struct Tally {
    std::atomic<uint64_t> offered{0};
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> shed{0};
  };
  Tally heavy_tally;
  Tally light_tally;
  std::atomic<bool> dirty{false};

  auto producer = [&](const std::string& tenant, Tally* tally, int lane) {
    serve::CallOptions opts;
    opts.tenant = tenant;
    std::vector<float> point(kDims, 0.01f * static_cast<float>(lane + 1));
    const auto start = std::chrono::steady_clock::now();
    const auto stop = start + kLevelDuration;
    // Phase-stagger the lanes: with a common phase all producers would
    // arrive simultaneously every slot and the synchronized spike would
    // shed against the bound even far below capacity.
    auto next_send =
        start + interval * lane / (2 * kProducersPerTenant);
    while (next_send < stop) {
      std::this_thread::sleep_until(next_send);
      // Skip slots a slow (blocked) call burned instead of firing a
      // catch-up burst: bursts would pile the queue past the bound and
      // shed even when the average offered rate is below capacity.
      const auto now = std::chrono::steady_clock::now();
      next_send += interval;
      if (next_send < now) next_send = now;
      tally->offered.fetch_add(1, std::memory_order_relaxed);
      const Result<std::vector<Neighbor>> result =
          service.Search(opts, point, kNeighbors);
      if (result.ok()) {
        tally->served.fetch_add(1, std::memory_order_relaxed);
      } else if (result.status().code() == StatusCode::kUnavailable) {
        tally->shed.fetch_add(1, std::memory_order_relaxed);
      } else {
        dirty.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducersPerTenant; ++p) {
    producers.emplace_back(producer, serve::kDefaultTenant, &heavy_tally, p);
    producers.emplace_back(producer, "light", &light_tally,
                           p + kProducersPerTenant);
  }
  for (std::thread& t : producers) t.join();

  auto outcome = [&](const std::string& name, double weight, Tally* tally) {
    TenantOutcome out;
    out.name = name;
    out.weight = weight;
    out.offered = tally->offered.load();
    out.served = tally->served.load();
    out.shed = tally->shed.load();
    const common::HistogramSnapshot latency =
        service.metrics().SnapshotHistogram(
            "sweetknn_tenant_request_latency_seconds{" +
            common::TenantLabel(name) + "}");
    out.p50_s = latency.Percentile(0.50);
    out.p99_s = latency.Percentile(0.99);
    return out;
  };

  LoadLevelRun run;
  run.load_factor = factor;
  run.offered_qps = capacity_qps * factor;
  run.tenants.push_back(
      outcome(serve::kDefaultTenant, kHeavyWeight, &heavy_tally));
  run.tenants.push_back(outcome("light", kLightWeight, &light_tally));
  run.clean = !dirty.load();
  return run;
}

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const size_t rows =
      std::max<size_t>(200, static_cast<size_t>(3000 * args.scale));
  const HostMatrix points = MakeTarget(rows);

  std::printf("=== Multi-tenant serving: %d shards, heavy:light weights "
              "%.0f:%.0f, %d paced producers per tenant, k=%d ===\n\n",
              kShards, kHeavyWeight, kLightWeight, kProducersPerTenant,
              kNeighbors);

  const double capacity_qps = CalibrateCapacityQps(points);
  std::printf("calibrated capacity: %.0f single-row queries/s\n\n",
              capacity_qps);

  PrintTableHeader({"load", "tenant", "weight", "offered", "served", "shed",
                    "shed_rate", "p50(us)", "p99(us)"});
  std::vector<LoadLevelRun> runs;
  bool all_clean = true;
  for (const double factor : {0.5, 1.0, 2.0}) {
    LoadLevelRun run = RunLevel(points, capacity_qps, factor);
    all_clean = all_clean && run.clean;
    for (const TenantOutcome& t : run.tenants) {
      PrintTableRow({FormatDouble(factor, 1) + "x", t.name,
                     FormatDouble(t.weight, 1), std::to_string(t.offered),
                     std::to_string(t.served), std::to_string(t.shed),
                     FormatPercent(t.ShedRate()),
                     FormatDouble(t.p50_s * 1e6, 1),
                     FormatDouble(t.p99_s * 1e6, 1)});
    }
    runs.push_back(std::move(run));
  }
  std::printf("\nonly clean ok/shed statuses observed: %s\n",
              all_clean ? "yes" : "NO");

  FILE* json = std::fopen("BENCH_multitenant.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"multitenant_throughput\",\n%s"
                 "  \"shards\": %d,\n  \"producers_per_tenant\": %d,\n"
                 "  \"k\": %d,\n  \"target_rows\": %zu,\n"
                 "  \"scale\": %g,\n  \"capacity_qps\": %.1f,\n"
                 "  \"runs\": [\n",
                 EnvJson(DetectEnv()).c_str(), kShards, kProducersPerTenant,
                 kNeighbors, rows, args.scale, capacity_qps);
    for (size_t i = 0; i < runs.size(); ++i) {
      const LoadLevelRun& run = runs[i];
      std::fprintf(json,
                   "    {\"load_factor\": %g, \"offered_qps\": %.1f, "
                   "\"tenants\": [\n",
                   run.load_factor, run.offered_qps);
      for (size_t t = 0; t < run.tenants.size(); ++t) {
        const TenantOutcome& out = run.tenants[t];
        std::fprintf(
            json,
            "      {\"tenant\": \"%s\", \"weight\": %g, \"offered\": %llu, "
            "\"served\": %llu, \"shed\": %llu, \"shed_rate\": %.4f, "
            "\"latency_s\": {\"p50\": %.9g, \"p99\": %.9g}}%s\n",
            out.name.c_str(), out.weight,
            static_cast<unsigned long long>(out.offered),
            static_cast<unsigned long long>(out.served),
            static_cast<unsigned long long>(out.shed), out.ShedRate(),
            out.p50_s, out.p99_s, t + 1 < run.tenants.size() ? "," : "");
      }
      std::fprintf(json, "    ]}%s\n", i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"all_clean\": %s\n}\n",
                 all_clean ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_multitenant.json\n");
  }
  return all_clean ? 0 : 1;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
