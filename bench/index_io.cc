// Measures what the snapshot store buys at startup: cold index
// preparation (upload + Step-1 landmark clustering) vs warm-starting the
// same index from a snapshot file. For each paper dataset it reports the
// cold build time, the one-off save time, the warm load time, the
// speedup, and the snapshot size on disk — while asserting that the
// warm-loaded index answers a probe batch bit-identically to the
// cold-built one. Emits BENCH_index_io.json.
//
// Usage: index_io [--scale=F] [--only=a,b]

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/sweet_knn.h"

namespace sweetknn::bench {
namespace {

constexpr int kNeighbors = 10;
constexpr size_t kProbeQueries = 64;

struct IoRun {
  std::string name;
  size_t n = 0;
  size_t dims = 0;
  double cold_build_s = 0.0;
  double save_s = 0.0;
  double warm_load_s = 0.0;
  double speedup = 0.0;  // cold_build_s / warm_load_s
  uintmax_t snapshot_bytes = 0;
  bool exact = false;
};

HostMatrix ProbePrefix(const HostMatrix& points) {
  const size_t rows = std::min(points.rows(), kProbeQueries);
  HostMatrix queries(rows, points.cols());
  std::memcpy(queries.mutable_data(), points.row(0),
              rows * points.cols() * sizeof(float));
  return queries;
}

bool BitIdentical(const KnnResult& a, const KnnResult& b) {
  if (a.num_queries() != b.num_queries() || a.k() != b.k()) return false;
  for (size_t q = 0; q < a.num_queries(); ++q) {
    if (std::memcmp(a.row(q), b.row(q),
                    static_cast<size_t>(a.k()) * sizeof(Neighbor)) != 0) {
      return false;
    }
  }
  return true;
}

IoRun RunOne(const dataset::Dataset& data, const std::string& path) {
  IoRun run;
  run.n = data.n();
  run.dims = data.dims();

  const Stopwatch cold_sw;
  SweetKnnIndex cold(data.points);
  run.cold_build_s = cold_sw.ElapsedSeconds();

  const Stopwatch save_sw;
  const Status saved = cold.Save(path, data.name);
  run.save_s = save_sw.ElapsedSeconds();
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return run;
  }
  std::error_code ec;
  run.snapshot_bytes = std::filesystem::file_size(path, ec);

  const Stopwatch load_sw;
  Result<std::unique_ptr<SweetKnnIndex>> warm = SweetKnnIndex::Load(path);
  run.warm_load_s = load_sw.ElapsedSeconds();
  if (!warm.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 warm.status().ToString().c_str());
    return run;
  }
  run.speedup = run.warm_load_s > 0.0 ? run.cold_build_s / run.warm_load_s
                                      : 0.0;

  const HostMatrix probe = ProbePrefix(data.points);
  run.exact = BitIdentical(cold.Query(probe, kNeighbors),
                           warm.value()->Query(probe, kNeighbors));
  return run;
}

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::string path = std::filesystem::temp_directory_path() /
                           "bench_index_io.sksnap";

  std::printf("=== Index persistence: cold Prepare vs snapshot load, "
              "k=%d probe ===\n\n",
              kNeighbors);
  PrintTableHeader({"dataset", "n", "d", "cold(s)", "save(s)", "load(s)",
                    "speedup", "bytes", "exact"});

  std::vector<IoRun> runs;
  bool all_exact = true;
  for (const auto& info : dataset::PaperDatasets()) {
    if (!args.WantDataset(info.name)) continue;
    const dataset::Dataset data = LoadPaperDataset(info.name, args);
    IoRun run = RunOne(data, path);
    run.name = info.name;
    all_exact = all_exact && run.exact;
    PrintTableRow({run.name, std::to_string(run.n),
                   std::to_string(run.dims),
                   FormatDouble(run.cold_build_s, 4),
                   FormatDouble(run.save_s, 4),
                   FormatDouble(run.warm_load_s, 4),
                   FormatDouble(run.speedup, 1),
                   std::to_string(run.snapshot_bytes),
                   run.exact ? "yes" : "NO"});
    runs.push_back(std::move(run));
  }
  std::remove(path.c_str());
  std::printf("\nwarm-loaded answers bit-identical to cold-built: %s\n",
              all_exact ? "yes" : "NO");

  FILE* json = std::fopen("BENCH_index_io.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"index_io\",\n%s  \"k\": %d,\n"
                 "  \"scale\": %g,\n  \"runs\": [\n",
                 EnvJson(DetectEnv()).c_str(), kNeighbors, args.scale);
    for (size_t i = 0; i < runs.size(); ++i) {
      const IoRun& run = runs[i];
      std::fprintf(
          json,
          "    {\"name\": \"%s\", \"n\": %zu, \"dims\": %zu, "
          "\"cold_build_s\": %.6f, \"save_s\": %.6f, "
          "\"warm_load_s\": %.6f, \"speedup\": %.3f, "
          "\"snapshot_bytes\": %ju, \"exact\": %s}%s\n",
          run.name.c_str(), run.n, run.dims, run.cold_build_s, run.save_s,
          run.warm_load_s, run.speedup,
          static_cast<uintmax_t>(run.snapshot_bytes),
          run.exact ? "true" : "false", i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"all_exact\": %s\n}\n",
                 all_exact ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_index_io.json\n");
  }
  return all_exact ? 0 : 1;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
