// Ablation for the optional k-means landmark refinement (an extension
// beyond the paper, which uses sampled landmarks only but cites
// k-means-based pivot selection as an alternative): how a few Lloyd
// iterations affect the cluster radii, the saved computations, and the
// end-to-end time (refinement itself costs preprocessing).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/options.h"

namespace sweetknn::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  constexpr int kNeighbors = 20;
  const std::vector<int> iteration_counts = {0, 1, 2, 5};

  std::printf("=== Ablation: k-means landmark refinement (k=%d) ===\n\n",
              kNeighbors);
  std::vector<std::string> header = {"dataset"};
  for (int it : iteration_counts) {
    header.push_back("it=" + std::to_string(it));
    header.push_back("saved");
  }
  PrintTableHeader(header);
  for (const char* name : {"kegg", "ipums", "dor"}) {
    if (!args.WantDataset(name)) continue;
    const dataset::Dataset data = LoadPaperDataset(name, args);
    std::vector<std::string> row = {name};
    for (int iterations : iteration_counts) {
      core::TiOptions options = core::TiOptions::Sweet();
      options.kmeans_iterations = iterations;
      const Measurement m = RunTi(data, kNeighbors, options);
      row.push_back(FormatDouble(m.sim_time_s * 1e3) + "ms");
      row.push_back(FormatPercent(m.saved_fraction));
    }
    PrintTableRow(row);
  }
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
