// Reproduces paper Figure 12: Sweet KNN speedup vs the number of threads
// cooperating on one query point, on the two small datasets (arcene,
// dor), k=20.
//
// Paper shape: performance rises with threads-per-query until around the
// adaptive scheme's choice (r*max_cur/|Q|: ~66 for arcene's 100 points,
// ~4 for dor's 1950), then falls from merge overhead and weakened
// filtering.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/options.h"

namespace sweetknn::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  constexpr int kNeighbors = 20;
  const std::vector<int> thread_counts = {2, 4, 8, 16, 32, 64, 128, 256};
  const char* kFigDatasets[] = {"arcene", "dor"};

  std::printf(
      "=== Figure 12: speedup vs threads per query point (k=%d) ===\n\n",
      kNeighbors);
  std::vector<std::string> header = {"dataset"};
  for (int t : thread_counts) header.push_back(std::to_string(t));
  header.push_back("adaptive");
  PrintTableHeader(header);

  for (const char* name : kFigDatasets) {
    if (!args.WantDataset(name)) continue;
    const dataset::Dataset data = LoadPaperDataset(name, args);
    const Measurement base = RunBaseline(data, kNeighbors);
    std::vector<std::string> row = {name};
    for (int t : thread_counts) {
      core::TiOptions options = core::TiOptions::Sweet();
      options.threads_per_query_override = t;
      const Measurement sweet = RunTi(data, kNeighbors, options);
      row.push_back(FormatDouble(base.sim_time_s / sweet.sim_time_s, 2));
    }
    const Measurement adaptive = RunTi(data, kNeighbors,
                                       core::TiOptions::Sweet());
    row.push_back(
        FormatDouble(base.sim_time_s / adaptive.sim_time_s, 2) + " (t=" +
        std::to_string(adaptive.threads_per_query) + ")");
    PrintTableRow(row);
  }
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
