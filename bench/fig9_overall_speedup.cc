// Reproduces paper Figure 9: overall speedups of basic KNN-TI and Sweet
// KNN over the CUBLAS-based brute-force baseline, k = 20, on all nine
// datasets (query set == target set).
//
// Paper reference values (speedup over baseline): 3DNet 22/44, kegg
// 1.7/5.7, keggD 2.1/4.6, ipums 1.2/5.2, skin 15/24, arcene 0.9/9.2,
// kdd 1.2/4.2, dor 0.9/5.6, blog 0.85/2.3 (KNN-TI / Sweet KNN; values
// read off the figure). We check shape, not absolute equality.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/options.h"

namespace sweetknn::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  constexpr int kNeighbors = 20;

  std::printf("=== Figure 9: overall speedups over CUBLAS-based basic KNN "
              "(k=%d) ===\n\n", kNeighbors);
  PrintTableHeader({"dataset", "n", "dims", "base(ms)", "ti(ms)",
                    "sweet(ms)", "ti(X)", "sweet(X)", "wall(s)"});

  double ti_product = 1.0;
  double sweet_product = 1.0;
  int count = 0;
  for (const auto& info : dataset::PaperDatasets()) {
    if (!args.WantDataset(info.name)) continue;
    const dataset::Dataset data = LoadPaperDataset(info.name, args);
    const Measurement base = RunBaseline(data, kNeighbors);
    const Measurement ti =
        RunTi(data, kNeighbors, core::TiOptions::BasicTi());
    const Measurement sweet =
        RunTi(data, kNeighbors, core::TiOptions::Sweet());
    const double ti_x = base.sim_time_s / ti.sim_time_s;
    const double sweet_x = base.sim_time_s / sweet.sim_time_s;
    ti_product *= ti_x;
    sweet_product *= sweet_x;
    ++count;
    PrintTableRow({info.name, std::to_string(data.n()),
                   std::to_string(data.dims()),
                   FormatDouble(base.sim_time_s * 1e3),
                   FormatDouble(ti.sim_time_s * 1e3),
                   FormatDouble(sweet.sim_time_s * 1e3),
                   FormatDouble(ti_x, 2), FormatDouble(sweet_x, 2),
                   FormatDouble(base.wall_time_s + ti.wall_time_s +
                                    sweet.wall_time_s,
                                3)});
  }
  if (count > 0) {
    std::printf("\ngeomean speedup: KNN-TI %.2fX, Sweet KNN %.2fX\n",
                std::pow(ti_product, 1.0 / count),
                std::pow(sweet_product, 1.0 / count));
  }
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
