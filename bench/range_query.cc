// Measures the range modalities (docs/modalities.md) on the paper
// datasets: RadiusSearch through the TI-pruned route vs the exhaustive
// host scan across a radius sweep (wall time, candidate fraction,
// pruning counters, speedup), plus one SelfJoin and one KnnGraph
// timing per dataset. Every sweep point verifies the two routes answer
// bit-identically — the number next to a speedup is worthless if the
// fast route changed the answer. Emits BENCH_range.json.
//
// Usage: range_query [--scale=F] [--only=kegg,...]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/range_result.h"
#include "common/stopwatch.h"
#include "core/range_search.h"
#include "core/sweet_knn.h"

namespace sweetknn::bench {
namespace {

constexpr int kGraphNeighbors = 10;

struct RangeRun {
  std::string dataset;
  float radius = 0.0f;
  double radius_factor = 0.0;
  uint64_t matches = 0;
  double selectivity = 0.0;         // matches / (|Q| * n)
  double candidate_fraction = 0.0;  // TI route: evaluated / total pairs
  uint64_t clusters_pruned = 0;
  uint64_t members_pruned = 0;
  double ti_wall_s = 0.0;
  double host_wall_s = 0.0;
  double speedup = 0.0;
  bool exact = false;
};

/// The dataset's distance scale: the mean kth-neighbor distance of a
/// small self-query sample, the anchor the radius sweep multiplies.
float BaseRadius(SweetKnnIndex* index, const HostMatrix& points) {
  const size_t sample = std::min<size_t>(points.rows(), 16);
  HostMatrix queries(sample, points.cols());
  for (size_t r = 0; r < sample; ++r) {
    std::memcpy(queries.mutable_row(r), points.row(r),
                points.cols() * sizeof(float));
  }
  const KnnResult result = index->Query(queries, kGraphNeighbors);
  double sum = 0.0;
  size_t counted = 0;
  for (size_t q = 0; q < result.num_queries(); ++q) {
    for (int i = result.k() - 1; i >= 0; --i) {
      if (result.row(q)[i].index != kInvalidNeighbor) {
        sum += result.row(q)[i].distance;
        ++counted;
        break;
      }
    }
  }
  return counted == 0 ? 1.0f
                      : static_cast<float>(sum / static_cast<double>(counted));
}

}  // namespace

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double factors[] = {0.5, 1.0, 2.0, 4.0};

  std::vector<RangeRun> runs;
  struct DatasetSummary {
    std::string name;
    size_t n = 0;
    size_t dims = 0;
    size_t join_pairs = 0;
    double join_wall_s = 0.0;
    double graph_wall_s = 0.0;
  };
  std::vector<DatasetSummary> datasets;
  bool all_exact = true;

  PrintTableHeader({"dataset", "radius", "matches", "sel%", "cand%",
                    "ti ms", "host ms", "speedup", "exact"});
  for (const char* name : {"kegg", "3DNet"}) {
    if (!args.WantDataset(name)) continue;
    const dataset::Dataset data = LoadPaperDataset(name, args);

    SweetKnn::Config ti_config;
    ti_config.planner.mode = core::PlannerMode::kForceDevice;
    SweetKnn::Config host_config;
    host_config.planner.mode = core::PlannerMode::kForceHost;
    SweetKnnIndex ti_index(data.points, ti_config);
    SweetKnnIndex host_index(data.points, host_config);
    const float base_radius = BaseRadius(&ti_index, data.points);

    for (const double factor : factors) {
      RangeRun run;
      run.dataset = name;
      run.radius_factor = factor;
      run.radius = static_cast<float>(factor) * base_radius;

      core::RangeScanStats ti_stats;
      const Stopwatch ti_watch;
      const RangeResult ti_result =
          ti_index.RadiusSearch(data.points, run.radius, &ti_stats);
      run.ti_wall_s = ti_watch.ElapsedSeconds();

      const Stopwatch host_watch;
      const RangeResult host_result =
          host_index.RadiusSearch(data.points, run.radius);
      run.host_wall_s = host_watch.ElapsedSeconds();

      run.matches = ti_result.total_matches();
      const double total =
          static_cast<double>(data.n()) * static_cast<double>(data.n());
      run.selectivity = static_cast<double>(run.matches) / total;
      run.candidate_fraction =
          ti_stats.total_pairs == 0
              ? 0.0
              : static_cast<double>(ti_stats.candidates) /
                    static_cast<double>(ti_stats.total_pairs);
      run.clusters_pruned = ti_stats.clusters_pruned;
      run.members_pruned = ti_stats.members_pruned;
      run.speedup = run.ti_wall_s == 0.0 ? 0.0
                                         : run.host_wall_s / run.ti_wall_s;
      run.exact = BitIdentical(ti_result, host_result);
      all_exact = all_exact && run.exact;

      PrintTableRow({run.dataset, FormatDouble(run.radius, 4),
                     std::to_string(run.matches),
                     FormatDouble(run.selectivity * 100.0, 2),
                     FormatDouble(run.candidate_fraction * 100.0, 2),
                     FormatDouble(run.ti_wall_s * 1e3, 2),
                     FormatDouble(run.host_wall_s * 1e3, 2),
                     FormatDouble(run.speedup, 2),
                     run.exact ? "yes" : "NO"});
      runs.push_back(run);
    }

    DatasetSummary summary;
    summary.name = name;
    summary.n = data.n();
    summary.dims = data.dims();
    const Stopwatch join_watch;
    summary.join_pairs = ti_index.SelfJoin(base_radius).size();
    summary.join_wall_s = join_watch.ElapsedSeconds();
    const Stopwatch graph_watch;
    const SweetKnnIndex::KnnGraphResult graph =
        ti_index.KnnGraph(kGraphNeighbors);
    summary.graph_wall_s = graph_watch.ElapsedSeconds();
    std::printf("%s: self-join(r=%.4g) %zu pairs in %.2f ms, "
                "knn-graph(k=%d) %zu rows in %.2f ms\n",
                name, static_cast<double>(base_radius), summary.join_pairs,
                summary.join_wall_s * 1e3, kGraphNeighbors,
                graph.ids.size(), summary.graph_wall_s * 1e3);
    datasets.push_back(summary);
  }

  std::printf("\nall radius sweeps bit-identical across routes: %s\n",
              all_exact ? "yes" : "NO");

  FILE* json = std::fopen("BENCH_range.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"range_query\",\n%s"
                 "  \"graph_k\": %d,\n  \"scale\": %g,\n  \"runs\": [\n",
                 EnvJson(DetectEnv()).c_str(), kGraphNeighbors, args.scale);
    for (size_t i = 0; i < runs.size(); ++i) {
      const RangeRun& run = runs[i];
      std::fprintf(
          json,
          "    {\"dataset\": \"%s\", \"radius\": %.9g, "
          "\"radius_factor\": %g, \"matches\": %llu, "
          "\"selectivity\": %.6g, \"candidate_fraction\": %.6g, "
          "\"clusters_pruned\": %llu, \"members_pruned\": %llu, "
          "\"ti_wall_s\": %.6f, \"host_wall_s\": %.6f, "
          "\"speedup\": %.3f, \"exact\": %s}%s\n",
          run.dataset.c_str(), static_cast<double>(run.radius),
          run.radius_factor, static_cast<unsigned long long>(run.matches),
          run.selectivity, run.candidate_fraction,
          static_cast<unsigned long long>(run.clusters_pruned),
          static_cast<unsigned long long>(run.members_pruned), run.ti_wall_s,
          run.host_wall_s, run.speedup, run.exact ? "true" : "false",
          i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"datasets\": [\n");
    for (size_t i = 0; i < datasets.size(); ++i) {
      const DatasetSummary& d = datasets[i];
      std::fprintf(json,
                   "    {\"dataset\": \"%s\", \"n\": %zu, \"dims\": %zu, "
                   "\"self_join_pairs\": %zu, \"self_join_wall_s\": %.6f, "
                   "\"knn_graph_wall_s\": %.6f}%s\n",
                   d.name.c_str(), d.n, d.dims, d.join_pairs, d.join_wall_s,
                   d.graph_wall_s, i + 1 < datasets.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"all_exact\": %s\n}\n",
                 all_exact ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_range.json\n");
  }
  return all_exact ? 0 : 1;
}

}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
