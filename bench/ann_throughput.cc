// Measures what the approximate tier buys: exact vs approx query
// throughput on the same ANN-enabled index, swept over base size and
// recall target. For every sweep point it reports QPS, the speedup over
// the exact path, the TRUE recall@k of the approx answers against the
// exact ones, and the graph-search work counters (hops and distance
// evaluations per query) — plus the one-off graph build cost per scale.
// Emits BENCH_ann.json.
//
// The run fails (exit 1) if the default mode (recall_target 0.9) does
// not beat exact throughput at the largest scale, or if any sweep
// point's measured recall falls below its target — the recall SLA,
// checked on the bench's own workload.
//
// Usage: ann_throughput [--scale=F] [--k=N] [--queries=N]

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/sweet_knn.h"

namespace sweetknn::bench {
namespace {

constexpr size_t kDims = 16;
constexpr int kClusters = 32;

struct AnnRun {
  size_t rows = 0;
  double recall_target = 0.0;  // 0 = the exact reference row
  int ef = 0;
  double qps = 0.0;
  double speedup = 1.0;
  double recall = 1.0;
  double hops_per_query = 0.0;
  double dists_per_query = 0.0;
};

HostMatrix ClusteredPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  HostMatrix m(n, kDims);
  std::vector<std::vector<float>> centers(kClusters,
                                          std::vector<float>(kDims));
  for (auto& c : centers) {
    for (float& x : c) x = static_cast<float>(rng.NextDouble());
  }
  for (size_t i = 0; i < n; ++i) {
    const auto& c = centers[i % kClusters];
    for (size_t j = 0; j < kDims; ++j) {
      m.at(i, j) = c[j] + static_cast<float>(rng.NextDouble() * 0.1 - 0.05);
    }
  }
  return m;
}

double RecallAgainstExact(const KnnResult& exact, const KnnResult& approx,
                          int k) {
  double sum = 0.0;
  size_t measured = 0;
  for (size_t q = 0; q < exact.num_queries(); ++q) {
    std::set<uint32_t> want;
    for (int i = 0; i < k; ++i) {
      if (exact.row(q)[i].index == kInvalidNeighbor) break;
      want.insert(exact.row(q)[i].index);
    }
    if (want.empty()) continue;
    size_t hits = 0;
    for (int i = 0; i < k; ++i) {
      if (want.count(approx.row(q)[i].index) != 0) ++hits;
    }
    sum += static_cast<double>(hits) / static_cast<double>(want.size());
    ++measured;
  }
  return measured == 0 ? 1.0 : sum / static_cast<double>(measured);
}

/// Wall-clock of `reps` identical batches, after one untimed warm-up.
template <typename Fn>
double TimeBatches(int reps, const Fn& run) {
  run();
  const Stopwatch wall;
  for (int r = 0; r < reps; ++r) run();
  return wall.ElapsedSeconds() / static_cast<double>(reps);
}

int Main(int argc, char** argv) {
  int k = 10;
  size_t num_queries = 256;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--k=", 0) == 0) {
      k = std::atoi(arg.c_str() + 4);
    } else if (arg.rfind("--queries=", 0) == 0) {
      num_queries = static_cast<size_t>(std::atoll(arg.c_str() + 10));
    } else {
      rest.push_back(argv[i]);
    }
  }
  const BenchArgs args =
      BenchArgs::Parse(static_cast<int>(rest.size()), rest.data());
  // The largest scale sits past the exact/approx crossover: the exact TI
  // engine's cost grows with the base while the graph walk's is budget-
  // bound, so this is where the approximate tier must win to earn its
  // keep (the exit-code gate below).
  const std::vector<size_t> base_scales = {2000, 8000, 32000, 128000};
  const std::vector<double> recall_targets = {0.9, 0.95, 0.99};

  std::printf("=== ANN tier throughput: dims=%zu, k=%d, %zu queries "
              "per batch ===\n\n",
              kDims, k, num_queries);
  PrintTableHeader({"rows", "mode", "ef", "QPS", "speedup", "recall",
                    "hops/q", "dists/q"});

  std::vector<AnnRun> runs;
  std::vector<double> build_seconds;
  std::vector<size_t> scales;
  bool sla_met = true;
  double largest_scale_speedup = 0.0;
  for (const size_t base : base_scales) {
    const size_t n = static_cast<size_t>(
        static_cast<double>(base) * args.scale);
    if (n < 64) continue;
    scales.push_back(n);
    const HostMatrix target = ClusteredPoints(n, 42 + n);
    const HostMatrix queries = ClusteredPoints(num_queries, 4242 + n);

    SweetKnn::Config config;
    config.enable_ann = true;
    const Stopwatch build_wall;
    SweetKnnIndex index(target, config);
    build_seconds.push_back(build_wall.ElapsedSeconds());

    KnnResult exact(0, 0);
    const double exact_s =
        TimeBatches(3, [&] { exact = index.Query(queries, k); });
    const double exact_qps = static_cast<double>(num_queries) / exact_s;
    AnnRun exact_run;
    exact_run.rows = n;
    exact_run.qps = exact_qps;
    runs.push_back(exact_run);
    PrintTableRow({std::to_string(n), "exact", "-",
                   FormatDouble(exact_qps, 0), "1.00", "1.000", "-", "-"});

    for (const double target_recall : recall_targets) {
      const ann::SearchMode mode = ann::SearchMode::Approx(target_recall);
      KnnResult approx(0, 0);
      ann::AnnSearchStats stats;
      const double approx_s = TimeBatches(3, [&] {
        stats = ann::AnnSearchStats();
        approx = index.Query(queries, k, mode, nullptr, &stats);
      });
      AnnRun run;
      run.rows = n;
      run.recall_target = target_recall;
      run.ef = ann::EffectiveEf(mode, k);
      run.qps = static_cast<double>(num_queries) / approx_s;
      run.speedup = run.qps / exact_qps;
      run.recall = RecallAgainstExact(exact, approx, k);
      run.hops_per_query = static_cast<double>(stats.hops) /
                           static_cast<double>(num_queries);
      run.dists_per_query = static_cast<double>(stats.candidates_visited) /
                            static_cast<double>(num_queries);
      if (run.recall < target_recall) sla_met = false;
      if (target_recall == 0.9 && base == base_scales.back()) {
        largest_scale_speedup = run.speedup;
      }
      PrintTableRow({std::to_string(n),
                     "approx@" + FormatDouble(target_recall, 2),
                     std::to_string(run.ef), FormatDouble(run.qps, 0),
                     FormatDouble(run.speedup, 2),
                     FormatDouble(run.recall, 3),
                     FormatDouble(run.hops_per_query, 1),
                     FormatDouble(run.dists_per_query, 0)});
      runs.push_back(run);
    }
    std::printf("  graph build: %.3f s (%zu rows)\n", build_seconds.back(),
                n);
  }

  const bool approx_wins = largest_scale_speedup > 1.0;
  std::printf("\nrecall SLA met on every sweep point: %s\n",
              sla_met ? "yes" : "NO");
  std::printf("approx@0.90 beats exact at the largest scale: %s "
              "(speedup %.2fx)\n",
              approx_wins ? "yes" : "NO", largest_scale_speedup);

  FILE* json = std::fopen("BENCH_ann.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"ann_throughput\",\n%s"
                 "  \"dims\": %zu,\n  \"k\": %d,\n  \"queries\": %zu,\n"
                 "  \"scale\": %g,\n  \"graph_build_s\": [",
                 EnvJson(DetectEnv()).c_str(), kDims, k, num_queries,
                 args.scale);
    for (size_t i = 0; i < build_seconds.size(); ++i) {
      std::fprintf(json, "%s{\"rows\": %zu, \"seconds\": %.4f}",
                   i == 0 ? "" : ", ", scales[i], build_seconds[i]);
    }
    std::fprintf(json, "],\n  \"runs\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
      const AnnRun& run = runs[i];
      if (run.recall_target == 0.0) {
        std::fprintf(json,
                     "    {\"rows\": %zu, \"mode\": \"exact\", "
                     "\"qps\": %.1f}%s\n",
                     run.rows, run.qps, i + 1 < runs.size() ? "," : "");
        continue;
      }
      std::fprintf(
          json,
          "    {\"rows\": %zu, \"mode\": \"approx\", "
          "\"recall_target\": %g, \"ef\": %d, \"qps\": %.1f, "
          "\"speedup\": %.3f, \"recall\": %.4f, "
          "\"hops_per_query\": %.2f, \"dists_per_query\": %.1f}%s\n",
          run.rows, run.recall_target, run.ef, run.qps, run.speedup,
          run.recall, run.hops_per_query, run.dists_per_query,
          i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"sla_met\": %s,\n"
                 "  \"approx_beats_exact_at_largest_scale\": %s\n}\n",
                 sla_met ? "true" : "false",
                 approx_wins ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_ann.json\n");
  }
  return (sla_met && approx_wins) ? 0 : 1;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
