// Ablation for the kNearests placement decision (paper IV-C2 / IV-D2):
// forcing the array into global memory, shared memory, or registers, at
// several k values, against the adaptive choice.
//
// Expected shape: the adaptive choice tracks the best forced placement:
// shared memory wins for tiny k (4k <= th1 = 24B), registers for
// moderate k, global memory for large k (register pressure / spills
// would kill occupancy).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/options.h"

namespace sweetknn::bench {
namespace {

std::string PlacementName(core::KnearestsPlacement p) {
  switch (p) {
    case core::KnearestsPlacement::kGlobal:
      return "global";
    case core::KnearestsPlacement::kShared:
      return "shared";
    case core::KnearestsPlacement::kRegisters:
      return "regs";
  }
  return "?";
}

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::vector<int> ks = {4, 20, 64, 512};

  std::printf("=== Ablation: kNearests placement on kegg ===\n\n");
  PrintTableHeader({"k", "global(ms)", "shared(ms)", "regs(ms)",
                    "adaptive(ms)", "choice"});
  const dataset::Dataset data = LoadPaperDataset("kegg", args);
  for (int k : ks) {
    std::vector<std::string> row = {std::to_string(k)};
    for (core::KnearestsPlacement placement :
         {core::KnearestsPlacement::kGlobal,
          core::KnearestsPlacement::kShared,
          core::KnearestsPlacement::kRegisters}) {
      core::TiOptions options = core::TiOptions::Sweet();
      options.filter_override = core::Level2Filter::kFull;
      options.placement_override = placement;
      const Measurement m = RunTi(data, k, options);
      row.push_back(FormatDouble(m.sim_time_s * 1e3));
    }
    core::TiOptions adaptive = core::TiOptions::Sweet();
    adaptive.filter_override = core::Level2Filter::kFull;
    const Measurement m = RunTi(data, k, adaptive);
    row.push_back(FormatDouble(m.sim_time_s * 1e3));
    row.push_back(PlacementName(m.placement));
    PrintTableRow(row);
  }
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
