// Cross-device sanity sweep: the paper's conclusion claims the
// elastic/adaptive principles generalize beyond one GPU. This bench runs
// the kegg-class workload on three simulated devices (K20c, K40, and a
// small 5-SM part) and checks that Sweet KNN's advantage over the basic
// TI implementation and the brute-force baseline persists on every one.

#include <cstdio>

#include "baseline/brute_force_gpu.h"
#include "bench_common.h"
#include "core/ti_knn_gpu.h"

namespace sweetknn::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  constexpr int kNeighbors = 20;
  const dataset::Dataset data = LoadPaperDataset("kegg", args);

  struct NamedSpec {
    const char* label;
    gpusim::DeviceSpec spec;
  };
  const NamedSpec devices[] = {
      {"K20c", gpusim::DeviceSpec::TeslaK20c()},
      {"K40", gpusim::DeviceSpec::TeslaK40()},
      {"GTX-small", gpusim::DeviceSpec::GtxSmall()},
  };

  std::printf("=== Cross-device: kegg workload, k=%d ===\n\n", kNeighbors);
  PrintTableHeader({"device", "base(ms)", "ti(ms)", "sweet(ms)", "ti(X)",
                    "sweet(X)"});
  for (const NamedSpec& device : devices) {
    double base_ms = 0.0;
    {
      gpusim::Device dev(device.spec);
      baseline::BruteForceOptions options;
      options.exact = false;
      baseline::BruteForceStats stats;
      baseline::BruteForceGpu(&dev, data.points, data.points, kNeighbors,
                              options, &stats);
      base_ms = stats.profile.TotalKernelTime() * 1e3;
    }
    double ti_ms = 0.0;
    double sweet_ms = 0.0;
    for (const bool sweet : {false, true}) {
      gpusim::Device dev(device.spec);
      core::KnnRunStats stats;
      core::TiKnnEngine::RunOnce(&dev, data.points, data.points, kNeighbors,
                                 sweet ? core::TiOptions::Sweet()
                                       : core::TiOptions::BasicTi(),
                                 &stats);
      (sweet ? sweet_ms : ti_ms) = stats.profile.TotalKernelTime() * 1e3;
    }
    PrintTableRow({device.label, FormatDouble(base_ms),
                   FormatDouble(ti_ms), FormatDouble(sweet_ms),
                   FormatDouble(base_ms / ti_ms, 2),
                   FormatDouble(base_ms / sweet_ms, 2)});
  }
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
