#ifndef SWEETKNN_BENCH_BENCH_COMMON_H_
#define SWEETKNN_BENCH_BENCH_COMMON_H_

#include <optional>
#include <string>
#include <vector>

#include "baseline/brute_force_gpu.h"
#include "core/options.h"
#include "dataset/dataset.h"
#include "dataset/paper_datasets.h"
#include "gpusim/device.h"

namespace sweetknn::bench {

/// Shared command-line options of all benchmark binaries.
struct BenchArgs {
  /// Scales every dataset's point count (quick runs use < 1).
  double scale = 1.0;
  /// When set, only datasets whose short name matches run.
  std::vector<std::string> only;

  bool WantDataset(const std::string& name) const;
  static BenchArgs Parse(int argc, char** argv);
};

/// One engine measurement in paper units.
struct Measurement {
  double sim_time_s = 0.0;
  /// Host wall-clock of the whole run (simulation cost, not a paper
  /// number) — what the parallel execution engine improves.
  double wall_time_s = 0.0;
  double saved_fraction = 0.0;    // level-2 saved distance computations
  double warp_efficiency = 0.0;   // of the level-2 filter kernel
  int query_partitions = 1;
  core::Level2Filter filter = core::Level2Filter::kFull;
  core::KnearestsPlacement placement = core::KnearestsPlacement::kGlobal;
  int threads_per_query = 1;
  int landmarks = 0;
};

/// Fresh scaled-K20c device (DESIGN.md section 2).
gpusim::Device MakeBenchDevice();

/// The paper's baseline (CUBLAS-style brute force) in modeled mode.
Measurement RunBaseline(const dataset::Dataset& data, int k);

/// A TI engine (basic or Sweet) on the simulated device.
Measurement RunTi(const dataset::Dataset& data, int k,
                  const core::TiOptions& options);

/// Generates the scaled stand-in for a paper dataset.
dataset::Dataset LoadPaperDataset(const std::string& name,
                                  const BenchArgs& args);

/// Host/build provenance stamped into every BENCH_*.json: a perf number
/// is meaningless without the machine and build that produced it
/// (docs/performance.md).
struct EnvInfo {
  unsigned hardware_concurrency = 0;
  std::string compiler;       ///< __VERSION__ of the compiler that built this
  std::string compile_flags;  ///< CMake's CXX flags for the bench build
  bool avx2_supported = false;
  bool avx512_supported = false;
  /// The dispatch tier the SIMD kernels actually run at (respects
  /// SWEETKNN_FORCE_SCALAR).
  std::string simd_level;
};

EnvInfo DetectEnv();

/// `env` as one `"env": {...},` JSON line (two-space indent, trailing
/// comma + newline) for splicing right after a BENCH_*.json's opening
/// brace.
std::string EnvJson(const EnvInfo& env);

/// Fixed-width table printing helpers.
void PrintTableHeader(const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);
std::string FormatDouble(double v, int precision = 2);
std::string FormatPercent(double fraction, int precision = 1);

}  // namespace sweetknn::bench

#endif  // SWEETKNN_BENCH_BENCH_COMMON_H_
