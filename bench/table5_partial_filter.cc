// Reproduces paper Table V: full vs partial level-2 filter at k=512 on
// the six datasets with k/d > 8 (3DNet, kegg, keggD, ipums, skin, kdd) —
// the cases where Sweet KNN's adaptive scheme chooses the partial filter.
//
// Paper reference (saved comp / speedup, full then partial):
//   3DNet 99%/23.5X -> 96%/35.3X      kegg 98%/1.3X  -> 97%/6.3X
//   keggD 98%/2.7X  -> 97%/5.8X       ipums 98%/10.9X -> 95%/14.1X
//   skin  99%/10.3X -> 96%/23.2X      kdd  99%/5.9X  -> 98%/30.5X
// Shape: the partial filter saves slightly fewer computations but wins
// on time on every dataset.

#include <cstdio>

#include "bench_common.h"
#include "core/options.h"

namespace sweetknn::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  constexpr int kNeighbors = 512;
  const char* kTableDatasets[] = {"3DNet", "kegg", "keggD",
                                  "ipums", "skin", "kdd"};

  std::printf("=== Table V: full vs partial level-2 filter (k=%d) ===\n\n",
              kNeighbors);
  PrintTableHeader({"dataset", "full-saved", "full(X)", "part-saved",
                    "part(X)"});
  for (const char* name : kTableDatasets) {
    if (!args.WantDataset(name)) continue;
    const dataset::Dataset data = LoadPaperDataset(name, args);
    if (data.n() <= static_cast<size_t>(kNeighbors)) {
      PrintTableRow({name, "-", "-", "-", "-"});
      continue;
    }
    const Measurement base = RunBaseline(data, kNeighbors);

    core::TiOptions full = core::TiOptions::Sweet();
    full.filter_override = core::Level2Filter::kFull;
    const Measurement m_full = RunTi(data, kNeighbors, full);

    core::TiOptions partial = core::TiOptions::Sweet();
    partial.filter_override = core::Level2Filter::kPartial;
    const Measurement m_partial = RunTi(data, kNeighbors, partial);

    PrintTableRow({name, FormatPercent(m_full.saved_fraction),
                   FormatDouble(base.sim_time_s / m_full.sim_time_s, 2),
                   FormatPercent(m_partial.saved_fraction),
                   FormatDouble(base.sim_time_s / m_partial.sim_time_s, 2)});
  }
  return 0;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
