// Measures the mutable serving layer: a mutator stream of inserts and
// removes against a live KnnService while query clients keep firing,
// swept over the compaction-trigger knob (compact_delta_fraction). For
// each sweep point it reports sustained mutations/sec, the request
// latency p99 *during* the mutation/compaction storm, how many
// background compactions ran, and the residual delta size — and then
// verifies (after a final CompactAll) that the stormed service answers
// bit-identically to a cold service built over the surviving points.
// Emits BENCH_mutation.json.
//
// Usage: mutation_throughput [--scale=F] [--shards=N] [--clients=N]
//        [--mutations=N]

#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "serve/knn_service.h"

namespace sweetknn::bench {
namespace {

constexpr int kNeighbors = 10;
constexpr size_t kDims = 8;

struct MutationRun {
  double fraction = 0.0;
  size_t initial_rows = 0;
  size_t inserts = 0;
  size_t removes = 0;
  double mutation_wall_s = 0.0;
  double mutations_per_s = 0.0;
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
  uint64_t compactions = 0;
  uint64_t compaction_aborts = 0;
  size_t residual_delta = 0;
  size_t residual_tombstones = 0;
  bool exact = false;
};

HostMatrix RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  HostMatrix m(n, kDims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < kDims; ++j) {
      m.at(i, j) = static_cast<float>(rng.NextDouble() * 4.0 - 2.0);
    }
  }
  return m;
}

MutationRun RunOne(const HostMatrix& target, double fraction, int shards,
                   int clients, size_t mutations) {
  serve::ServiceConfig config;
  config.num_shards = shards;
  config.max_batch_size = 8;
  config.max_batch_wait = std::chrono::microseconds(200);
  config.compact_delta_fraction = fraction;
  config.auto_compact = true;
  serve::KnnService service(target, config);

  // Query pressure for the whole mutation window: the latency histogram
  // these clients fill is the "p99 during compaction" headline. Each
  // client runs a fixed request count so the overlap window is long
  // enough to catch compactions in flight (a raw mutation is just a
  // locked append — orders of magnitude cheaper than a query).
  constexpr size_t kRequestsPerClient = 250;
  std::atomic<int> clients_remaining{clients};
  std::vector<std::thread> query_threads;
  for (int c = 0; c < clients; ++c) {
    query_threads.emplace_back([&, c] {
      Rng rng(500 + static_cast<uint64_t>(c));
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        std::vector<float> q(kDims);
        for (float& x : q) {
          x = static_cast<float>(rng.NextDouble() * 4.0 - 2.0);
        }
        (void)service.Search(q, kNeighbors);
      }
      clients_remaining.fetch_sub(1, std::memory_order_acq_rel);
    });
  }

  // The mutator stream: ~3 inserts per remove, removes drawn from our
  // own earlier inserts so the survivor set is known exactly. Runs for
  // as long as the query storm does (capped at `mutations` ops).
  MutationRun run;
  run.fraction = fraction;
  run.initial_rows = target.rows();
  std::map<uint32_t, std::vector<float>> survivors;
  Rng rng(77);
  size_t ops = 0;
  const Stopwatch wall;
  while (ops < mutations &&
         clients_remaining.load(std::memory_order_acquire) > 0) {
    if (!survivors.empty() && rng.NextBounded(4) == 0) {
      auto it = survivors.begin();
      std::advance(it, rng.NextBounded(survivors.size()));
      if (service.Remove(it->first).value()) {
        survivors.erase(it);
        ++run.removes;
      }
    } else {
      std::vector<float> p(kDims);
      for (float& x : p) {
        x = static_cast<float>(rng.NextDouble() * 4.0 - 2.0);
      }
      const uint32_t id = service.Insert(p).value();
      survivors[id] = std::move(p);
      ++run.inserts;
    }
    ++ops;
    std::this_thread::yield();  // share the core with the clients
  }
  run.mutation_wall_s = wall.ElapsedSeconds();
  run.mutations_per_s = static_cast<double>(ops) / run.mutation_wall_s;

  for (std::thread& t : query_threads) t.join();

  const common::HistogramSnapshot latency =
      service.metrics().SnapshotHistogram("sweetknn_request_latency_seconds");
  run.latency_p50_s = latency.Percentile(0.50);
  run.latency_p99_s = latency.Percentile(0.99);
  serve::ServiceStats stats = service.stats();
  run.compactions = stats.compactions;
  run.compaction_aborts = stats.compaction_aborts;
  run.residual_delta = stats.delta_points;
  run.residual_tombstones = stats.tombstones;

  // Exactness: fold the residual overlay, then the stormed service must
  // answer bit-identically to a cold service over the survivors.
  // Background compactions may still be installing; a capture that loses
  // the epoch race aborts, so retry until quiescent.
  for (int attempt = 0; attempt < 64 && !service.CompactAll().ok();
       ++attempt) {
  }
  HostMatrix live(target.rows() + survivors.size(), kDims);
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < target.rows(); ++i) {
    std::memcpy(live.mutable_row(i), target.row(i), kDims * sizeof(float));
    ids.push_back(static_cast<uint32_t>(i));
  }
  size_t row = target.rows();
  for (const auto& [id, p] : survivors) {
    std::memcpy(live.mutable_row(row++), p.data(), kDims * sizeof(float));
    ids.push_back(id);
  }
  serve::ServiceConfig cold_config = config;
  cold_config.auto_compact = false;
  serve::KnnService cold(live, cold_config);
  const HostMatrix probes = RandomPoints(32, 99);
  const KnnResult got = service.JoinBatch(probes, kNeighbors).value();
  const KnnResult want = cold.JoinBatch(probes, kNeighbors).value();
  run.exact = true;
  for (size_t q = 0; q < probes.rows() && run.exact; ++q) {
    for (int i = 0; i < kNeighbors; ++i) {
      const Neighbor& w = want.row(q)[i];
      const uint32_t want_id =
          w.index == kInvalidNeighbor ? kInvalidNeighbor : ids[w.index];
      if (got.row(q)[i].index != want_id ||
          got.row(q)[i].distance != w.distance) {
        run.exact = false;
        break;
      }
    }
  }
  return run;
}

int Main(int argc, char** argv) {
  int shards = 2;
  int clients = 3;
  size_t mutations = 600;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--mutations=", 0) == 0) {
      mutations = static_cast<size_t>(std::atoll(arg.c_str() + 12));
    } else {
      rest.push_back(argv[i]);
    }
  }
  const BenchArgs args =
      BenchArgs::Parse(static_cast<int>(rest.size()), rest.data());
  const size_t n = static_cast<size_t>(2000 * args.scale);
  const HostMatrix target = RandomPoints(n, 13);

  // fraction 2.0 never triggers (pure delta accumulation): the control
  // showing what background compaction buys.
  const std::vector<double> fractions = {2.0, 0.5, 0.1, 0.02};

  std::printf("=== Mutation throughput: %zu base rows, %d shards, "
              "%d query clients, %zu mutations, k=%d ===\n\n",
              n, shards, clients, mutations, kNeighbors);
  PrintTableHeader({"fraction", "muts/s", "p50(us)", "p99(us)",
                    "compactions", "aborts", "delta_left", "exact"});

  std::vector<MutationRun> runs;
  bool all_exact = true;
  for (const double fraction : fractions) {
    MutationRun run = RunOne(target, fraction, shards, clients, mutations);
    all_exact = all_exact && run.exact;
    PrintTableRow({FormatDouble(run.fraction, 2),
                   FormatDouble(run.mutations_per_s, 0),
                   FormatDouble(run.latency_p50_s * 1e6, 1),
                   FormatDouble(run.latency_p99_s * 1e6, 1),
                   std::to_string(run.compactions),
                   std::to_string(run.compaction_aborts),
                   std::to_string(run.residual_delta),
                   run.exact ? "yes" : "NO"});
    runs.push_back(run);
  }
  std::printf("\nall post-storm answers bit-identical to cold rebuild: %s\n",
              all_exact ? "yes" : "NO");

  FILE* json = std::fopen("BENCH_mutation.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"mutation_throughput\",\n%s"
                 "  \"base_rows\": %zu,\n  \"dims\": %zu,\n"
                 "  \"shards\": %d,\n  \"query_clients\": %d,\n"
                 "  \"mutations\": %zu,\n  \"k\": %d,\n"
                 "  \"scale\": %g,\n  \"runs\": [\n",
                 EnvJson(DetectEnv()).c_str(), n, kDims, shards,
                 clients, mutations, kNeighbors, args.scale);
    for (size_t i = 0; i < runs.size(); ++i) {
      const MutationRun& run = runs[i];
      std::fprintf(
          json,
          "    {\"compact_delta_fraction\": %g, \"inserts\": %zu, "
          "\"removes\": %zu, \"mutation_wall_s\": %.6f, "
          "\"mutations_per_s\": %.1f, "
          "\"query_latency_s\": {\"p50\": %.9g, \"p99\": %.9g}, "
          "\"compactions\": %llu, \"compaction_aborts\": %llu, "
          "\"residual_delta_points\": %zu, "
          "\"residual_tombstones\": %zu, \"exact\": %s}%s\n",
          run.fraction, run.inserts, run.removes, run.mutation_wall_s,
          run.mutations_per_s, run.latency_p50_s, run.latency_p99_s,
          static_cast<unsigned long long>(run.compactions),
          static_cast<unsigned long long>(run.compaction_aborts),
          run.residual_delta, run.residual_tombstones,
          run.exact ? "true" : "false", i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"all_exact\": %s\n}\n",
                 all_exact ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_mutation.json\n");
  }
  return all_exact ? 0 : 1;
}

}  // namespace
}  // namespace sweetknn::bench

int main(int argc, char** argv) { return sweetknn::bench::Main(argc, argv); }
