// The portable fallback tier, and the definition of the canonical
// accumulation order: every vector tier must reproduce these loops
// bit for bit. Per row, the j-loop matches core::AccessorDistance
// exactly (float accumulator, ascending j, std::sqrt at the end), so
// rewired callers keep the repo's bit-exactness invariants.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "simd/kernels_impl.h"

namespace sweetknn::simd::internal {

void QueryDistancesScalar(const float* query, const float* tiles, size_t dims,
                          size_t row_begin, size_t row_end, Dist dist,
                          float* out) {
  for (size_t row = row_begin; row < row_end; ++row) {
    const float* col =
        tiles + (row / kTileLanes) * kTileLanes * dims + row % kTileLanes;
    float acc = 0.0f;
    if (dist == Dist::kManhattan) {
      for (size_t j = 0; j < dims; ++j) {
        acc += std::fabs(query[j] - col[j * kTileLanes]);
      }
    } else {
      for (size_t j = 0; j < dims; ++j) {
        const float diff = query[j] - col[j * kTileLanes];
        acc += diff * diff;
      }
      if (dist == Dist::kEuclidean) acc = std::sqrt(acc);
    }
    out[row - row_begin] = acc;
  }
}

void SelectNearestScalar(const float* dists, size_t n, uint32_t index_base,
                         TopK* heap) {
  for (size_t i = 0; i < n; ++i) {
    heap->PushIfCloser(
        Neighbor{index_base + static_cast<uint32_t>(i), dists[i]});
  }
}

void AddRowScalar(float* acc, const float* row, size_t dims) {
  for (size_t j = 0; j < dims; ++j) acc[j] += row[j];
}

}  // namespace sweetknn::simd::internal
