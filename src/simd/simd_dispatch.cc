// Runtime dispatch for the vectorized host kernels: picks the best
// compiled-in tier the CPU supports once, honors SWEETKNN_FORCE_SCALAR,
// and exposes a test hook for pinning the tier. Also holds the
// tier-independent pieces: packing, chunking, and PackedKnn.

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/parallel_for.h"
#include "simd/kernels_impl.h"
#include "simd/simd_kernels.h"

namespace sweetknn::simd {

namespace {

// Target-row chunk per SelectNearest pass of PackedKnn: 4096 rows of
// distances (16 KiB) stay L1-resident between the distance and select
// sweeps. Tile-aligned as QueryDistances requires.
constexpr size_t kKnnChunkRows = 4096;
static_assert(kKnnChunkRows % kTileLanes == 0);

std::atomic<int> g_forced_level{-1};

bool ForceScalarFromEnv() {
  const char* env = std::getenv("SWEETKNN_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

Level DetectLevel() {
  if (ForceScalarFromEnv()) return Level::kScalar;
  if (CompiledIn(Level::kAvx512) && CpuSupports(Level::kAvx512)) {
    return Level::kAvx512;
  }
  if (CompiledIn(Level::kAvx2) && CpuSupports(Level::kAvx2)) {
    return Level::kAvx2;
  }
  return Level::kScalar;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool CompiledIn(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
      return SWEETKNN_SIMD_HAVE_AVX2 != 0;
    case Level::kAvx512:
      return SWEETKNN_SIMD_HAVE_AVX512 != 0;
  }
  return false;
}

bool CpuSupports(Level level) {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Level::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
#else
  return level == Level::kScalar;
#endif
}

Level ActiveLevel() {
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const Level level = static_cast<Level>(forced);
    if (CompiledIn(level) && CpuSupports(level)) return level;
    return Level::kScalar;
  }
  static const Level detected = DetectLevel();
  return detected;
}

void ForceLevelForTest(int level) {
  g_forced_level.store(level, std::memory_order_relaxed);
}

PackedTargets PackedTargets::PackStrided(const float* base, size_t n,
                                         size_t dims, size_t row_stride,
                                         size_t col_stride) {
  PackedTargets out;
  out.n_ = n;
  out.dims_ = dims;
  out.data_.assign(out.num_tiles() * kTileLanes * dims, 0.0f);
  for (size_t r = 0; r < n; ++r) {
    float* tile = out.data_.data() + (r / kTileLanes) * kTileLanes * dims;
    const size_t lane = r % kTileLanes;
    const float* src = base + r * row_stride;
    for (size_t j = 0; j < dims; ++j) {
      tile[j * kTileLanes + lane] = src[j * col_stride];
    }
  }
  return out;
}

void QueryDistances(const float* query, const PackedTargets& targets,
                    size_t row_begin, size_t row_end, Dist dist, float* out) {
  SK_DCHECK(row_begin % kTileLanes == 0);
  SK_DCHECK(row_end <= targets.n());
  if (row_begin >= row_end) return;
  switch (ActiveLevel()) {
#if SWEETKNN_SIMD_HAVE_AVX512
    case Level::kAvx512:
      internal::QueryDistancesAvx512(query, targets.tiles(), targets.dims(),
                                     row_begin, row_end, dist, out);
      return;
#endif
#if SWEETKNN_SIMD_HAVE_AVX2
    case Level::kAvx2:
      internal::QueryDistancesAvx2(query, targets.tiles(), targets.dims(),
                                   row_begin, row_end, dist, out);
      return;
#endif
    default:
      internal::QueryDistancesScalar(query, targets.tiles(), targets.dims(),
                                     row_begin, row_end, dist, out);
      return;
  }
}

void BlockDistances(const float* queries, size_t nq,
                    const PackedTargets& targets, Dist dist, float* out) {
  for (size_t q = 0; q < nq; ++q) {
    QueryDistances(queries + q * targets.dims(), targets, 0, targets.n(),
                   dist, out + q * targets.n());
  }
}

void QueryBlockDistances(const float* query, const float* rows, size_t n,
                         size_t dims, Dist dist, float* out) {
  // Pack one tile-sized stripe at a time; the stripe result is identical
  // to the corresponding rows of a full pack.
  for (size_t begin = 0; begin < n; begin += kTileLanes) {
    const size_t count = std::min(kTileLanes, n - begin);
    const PackedTargets stripe =
        PackedTargets::Pack(rows + begin * dims, count, dims);
    QueryDistances(query, stripe, 0, count, dist, out + begin);
  }
}

void AddRow(float* acc, const float* row, size_t dims) {
  switch (ActiveLevel()) {
#if SWEETKNN_SIMD_HAVE_AVX512
    case Level::kAvx512:
      internal::AddRowAvx512(acc, row, dims);
      return;
#endif
#if SWEETKNN_SIMD_HAVE_AVX2
    case Level::kAvx2:
      internal::AddRowAvx2(acc, row, dims);
      return;
#endif
    default:
      internal::AddRowScalar(acc, row, dims);
      return;
  }
}

void SelectNearest(const float* dists, size_t n, uint32_t index_base,
                   TopK* heap) {
  switch (ActiveLevel()) {
#if SWEETKNN_SIMD_HAVE_AVX512
    case Level::kAvx512:
      internal::SelectNearestAvx512(dists, n, index_base, heap);
      return;
#endif
#if SWEETKNN_SIMD_HAVE_AVX2
    case Level::kAvx2:
      internal::SelectNearestAvx2(dists, n, index_base, heap);
      return;
#endif
    default:
      internal::SelectNearestScalar(dists, n, index_base, heap);
      return;
  }
}

KnnResult PackedKnn(const HostMatrix& queries, const PackedTargets& targets,
                    int k, Dist dist, int workers) {
  SK_CHECK_EQ(queries.cols(), targets.dims());
  KnnResult result(queries.rows(), k);
  common::ParallelFor(
      workers, queries.rows(), /*grain=*/8, [&](size_t begin, size_t end) {
        std::vector<float> dists(std::min(targets.n(), kKnnChunkRows));
        for (size_t q = begin; q < end; ++q) {
          TopK heap(k);
          for (size_t chunk = 0; chunk < targets.n();
               chunk += kKnnChunkRows) {
            const size_t chunk_end =
                std::min(targets.n(), chunk + kKnnChunkRows);
            QueryDistances(queries.row(q), targets, chunk, chunk_end, dist,
                           dists.data());
            SelectNearest(dists.data(), chunk_end - chunk,
                          static_cast<uint32_t>(chunk), &heap);
          }
          result.SetRow(q, heap.Sorted());
        }
      });
  return result;
}

}  // namespace sweetknn::simd
