#ifndef SWEETKNN_SIMD_KERNELS_IMPL_H_
#define SWEETKNN_SIMD_KERNELS_IMPL_H_

#include <cstddef>
#include <cstdint>

#include "common/topk.h"
#include "simd/simd_kernels.h"

// Per-tier kernel entry points, one translation unit each so the vector
// tiers can carry -mavx2 / -mavx512f (and -ffp-contract=off) without
// leaking those flags into the rest of the build. The dispatch layer in
// simd_dispatch.cc is the only caller.
//
// Contract shared by all tiers (the canonical order simd_kernels.h
// documents): per output row, dimensions accumulate in ascending j into
// one float; tiles are processed in ascending order; within a tile,
// lane l is row tile*kTileLanes + l. `tiles` points at the tile stream
// of a PackedTargets; `row_begin` is tile-aligned.

namespace sweetknn::simd::internal {

void QueryDistancesScalar(const float* query, const float* tiles, size_t dims,
                          size_t row_begin, size_t row_end, Dist dist,
                          float* out);
void SelectNearestScalar(const float* dists, size_t n, uint32_t index_base,
                         TopK* heap);
void AddRowScalar(float* acc, const float* row, size_t dims);

#if SWEETKNN_SIMD_HAVE_AVX2
void QueryDistancesAvx2(const float* query, const float* tiles, size_t dims,
                        size_t row_begin, size_t row_end, Dist dist,
                        float* out);
void SelectNearestAvx2(const float* dists, size_t n, uint32_t index_base,
                       TopK* heap);
void AddRowAvx2(float* acc, const float* row, size_t dims);
#endif

#if SWEETKNN_SIMD_HAVE_AVX512
void QueryDistancesAvx512(const float* query, const float* tiles, size_t dims,
                          size_t row_begin, size_t row_end, Dist dist,
                          float* out);
void SelectNearestAvx512(const float* dists, size_t n, uint32_t index_base,
                         TopK* heap);
void AddRowAvx512(float* acc, const float* row, size_t dims);
#endif

}  // namespace sweetknn::simd::internal

#endif  // SWEETKNN_SIMD_KERNELS_IMPL_H_
