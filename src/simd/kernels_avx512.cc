// AVX-512F tier: one __m512 accumulator covers a whole 16-lane tile.
// Same canonical per-lane recurrence as the scalar tier. AVX-512F
// includes fused multiply-add forms, so this translation unit MUST keep
// -ffp-contract=off — a contracted vfmadd would change low bits and
// break the cross-tier bit-identity the equivalence suite enforces.

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "simd/kernels_impl.h"

#if !SWEETKNN_SIMD_HAVE_AVX512
#error "kernels_avx512.cc requires SWEETKNN_SIMD_HAVE_AVX512"
#endif

namespace sweetknn::simd::internal {

namespace {

inline __m512 Abs512(__m512 v) {
  return _mm512_castsi512_ps(_mm512_andnot_si512(
      _mm512_set1_epi32(static_cast<int>(0x80000000u)),
      _mm512_castps_si512(v)));
}

inline void TileDistances(const float* query, const float* tile, size_t dims,
                          Dist dist, float* out16) {
  __m512 acc = _mm512_setzero_ps();
  if (dist == Dist::kManhattan) {
    for (size_t j = 0; j < dims; ++j) {
      const __m512 qj = _mm512_set1_ps(query[j]);
      acc = _mm512_add_ps(
          acc, Abs512(_mm512_sub_ps(qj,
                                    _mm512_loadu_ps(tile + j * kTileLanes))));
    }
  } else {
    for (size_t j = 0; j < dims; ++j) {
      const __m512 qj = _mm512_set1_ps(query[j]);
      const __m512 d =
          _mm512_sub_ps(qj, _mm512_loadu_ps(tile + j * kTileLanes));
      acc = _mm512_add_ps(acc, _mm512_mul_ps(d, d));
    }
    if (dist == Dist::kEuclidean) acc = _mm512_sqrt_ps(acc);
  }
  _mm512_storeu_ps(out16, acc);
}

}  // namespace

void QueryDistancesAvx512(const float* query, const float* tiles, size_t dims,
                          size_t row_begin, size_t row_end, Dist dist,
                          float* out) {
  float lanes[kTileLanes];
  for (size_t row = row_begin; row < row_end; row += kTileLanes) {
    const float* tile = tiles + (row / kTileLanes) * kTileLanes * dims;
    const size_t active =
        row_end - row < kTileLanes ? row_end - row : kTileLanes;
    if (active == kTileLanes) {
      TileDistances(query, tile, dims, dist, out + (row - row_begin));
    } else {
      TileDistances(query, tile, dims, dist, lanes);
      std::memcpy(out + (row - row_begin), lanes, active * sizeof(float));
    }
  }
}

void SelectNearestAvx512(const float* dists, size_t n, uint32_t index_base,
                         TopK* heap) {
  size_t i = 0;
  while (i < n && !heap->full()) {
    heap->PushIfCloser(
        Neighbor{index_base + static_cast<uint32_t>(i), dists[i]});
    ++i;
  }
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(dists + i);
    const __m512 thr = _mm512_set1_ps(heap->max());
    if (_mm512_cmp_ps_mask(v, thr, _CMP_LT_OQ) == 0) continue;
    for (size_t l = 0; l < 16; ++l) {
      heap->PushIfCloser(
          Neighbor{index_base + static_cast<uint32_t>(i + l), dists[i + l]});
    }
  }
  for (; i < n; ++i) {
    heap->PushIfCloser(
        Neighbor{index_base + static_cast<uint32_t>(i), dists[i]});
  }
}

void AddRowAvx512(float* acc, const float* row, size_t dims) {
  size_t j = 0;
  for (; j + 16 <= dims; j += 16) {
    _mm512_storeu_ps(acc + j, _mm512_add_ps(_mm512_loadu_ps(acc + j),
                                            _mm512_loadu_ps(row + j)));
  }
  for (; j < dims; ++j) acc[j] += row[j];
}

}  // namespace sweetknn::simd::internal
