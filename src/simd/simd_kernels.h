#ifndef SWEETKNN_SIMD_SIMD_KERNELS_H_
#define SWEETKNN_SIMD_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/knn_result.h"
#include "common/logging.h"
#include "common/matrix.h"
#include "common/topk.h"

namespace sweetknn::simd {

// ---------------------------------------------------------------------------
// Vectorized host math for the exact distance paths (docs/performance.md).
//
// Every kernel here computes in the CANONICAL accumulation order: for each
// (query, target) pair, dimensions are accumulated strictly in ascending j
// into a single float, exactly like core::AccessorDistance. Vector lanes
// run *different target points*, never different dimensions of one pair,
// so no reassociation ever happens and every implementation — scalar
// fallback, AVX2, AVX-512 — returns bit-identical floats. The SIMD
// translation units are compiled without FMA and with -ffp-contract=off
// so mul+add never fuses; sqrtps/sqrtss are both IEEE correctly rounded.
// ---------------------------------------------------------------------------

/// Instruction-set tier of the kernel implementations.
enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

const char* LevelName(Level level);

/// True when this build contains the given tier (compile-time support).
bool CompiledIn(Level level);

/// True when the running CPU can execute the given tier (raw CPUID; the
/// SWEETKNN_FORCE_SCALAR override does not affect this).
bool CpuSupports(Level level);

/// The tier every kernel below dispatches to: the best compiled-in tier
/// the CPU supports, downgraded to kScalar when the environment variable
/// SWEETKNN_FORCE_SCALAR is set (non-empty, not "0"). Detection runs once
/// and is cached; ForceLevelForTest overrides it.
Level ActiveLevel();

/// Test hook: pins ActiveLevel() to `level` (clamped to scalar when the
/// tier is unavailable); pass -1 to restore normal detection. Used by the
/// equivalence suite and the mutation fuzz harness to toggle dispatch
/// per step.
void ForceLevelForTest(int level);

/// Distance kind. kEuclidean applies the final sqrt (matching
/// core::Metric::kEuclidean); kSquaredEuclidean stops at the sum.
enum class Dist : int {
  kEuclidean = 0,
  kSquaredEuclidean = 1,
  kManhattan = 2,
};

/// Rows per tile of a PackedTargets. Fixed at 16 for every tier: AVX-512
/// consumes a tile per step, AVX2 two halves, the scalar fallback walks
/// the lanes one by one — all in the same per-lane order.
inline constexpr size_t kTileLanes = 16;

/// Target points re-laid-out for lane-parallel distance kernels: rows are
/// grouped into tiles of kTileLanes, each tile stored dimension-major
/// (element (row r, dim j) lives at tile_base + j * kTileLanes + lane,
/// lane = r % kTileLanes). The last tile is zero-padded; padded lanes are
/// computed and discarded, never written to output. Packing is a plain
/// copy — pack once, amortize over every query row.
class PackedTargets {
 public:
  PackedTargets() = default;

  /// Packs `n` contiguous row-major rows of `dims` floats.
  static PackedTargets Pack(const float* rows, size_t n, size_t dims) {
    return PackStrided(rows, n, dims, dims, 1);
  }

  /// Packs from a strided source: element (r, j) = base[r * row_stride +
  /// j * col_stride] (covers column-major layouts: row_stride 1,
  /// col_stride n).
  static PackedTargets PackStrided(const float* base, size_t n, size_t dims,
                                   size_t row_stride, size_t col_stride);

  size_t n() const { return n_; }
  size_t dims() const { return dims_; }
  size_t num_tiles() const { return (n_ + kTileLanes - 1) / kTileLanes; }
  const float* tiles() const { return data_.data(); }

 private:
  size_t n_ = 0;
  size_t dims_ = 0;
  std::vector<float> data_;  // num_tiles * kTileLanes * dims, zero padded
};

/// out[i - row_begin] = distance(query, target row i) for rows
/// [row_begin, row_end) of `targets`. row_begin must be tile-aligned
/// (a multiple of kTileLanes); callers chunk on tile boundaries so the
/// working set stays cache-resident. `query` is `targets.dims()`
/// contiguous floats at any alignment.
void QueryDistances(const float* query, const PackedTargets& targets,
                    size_t row_begin, size_t row_end, Dist dist, float* out);

/// Whole-set convenience form.
inline void QueryDistances(const float* query, const PackedTargets& targets,
                           Dist dist, float* out) {
  QueryDistances(query, targets, 0, targets.n(), dist, out);
}

/// Block-vs-block: out[q * targets.n() + t] = distance(query row q,
/// target row t) for `nq` contiguous row-major query rows.
void BlockDistances(const float* queries, size_t nq,
                    const PackedTargets& targets, Dist dist, float* out);

/// One query row against an unpacked contiguous row-major block: packs
/// tile-sized stripes on the fly into a stack buffer. Same canonical
/// results as packing the whole block first; use when the block is
/// scanned once (single-shot verification paths).
void QueryBlockDistances(const float* query, const float* rows, size_t n,
                         size_t dims, Dist dist, float* out);

/// acc[j] += row[j] for j in [0, dims). Elementwise (lane-independent),
/// so vectorization cannot change any result bit.
void AddRow(float* acc, const float* row, size_t dims);

/// Scans dists[0..n) in ascending index order, offering neighbor
/// (index_base + i, dists[i]) to `heap` — bit-identical to the plain
/// PushIfCloser loop. Vector tiers skip whole blocks whose distances are
/// all >= the heap's current kth distance; the strict `<` block test is
/// exact because an ascending scan can never insert on a distance tie
/// (NeighborLess breaks ties toward the smaller index, which is already
/// in the heap). Callers must scan candidates in ascending index order
/// across successive calls for that argument to hold.
void SelectNearest(const float* dists, size_t n, uint32_t index_base,
                   TopK* heap);

/// Exact k-nearest of every query row over a packed target set: chunked
/// QueryDistances + SelectNearest per query, parallelized over query rows
/// on up to `workers` threads (results are independent of the worker
/// count). Neighbor indices are target row numbers; rows beyond the
/// target size pad with kInvalidNeighbor exactly like the scalar
/// brute-force loop.
KnnResult PackedKnn(const HostMatrix& queries, const PackedTargets& targets,
                    int k, Dist dist, int workers);

}  // namespace sweetknn::simd

#endif  // SWEETKNN_SIMD_SIMD_KERNELS_H_
