// AVX2 tier: each tile's 16 lanes run as two __m256 accumulators. The
// vector axis is the target-point axis, so every lane's j-loop is the
// same scalar recurrence as kernels_scalar.cc — sub, mul, add in
// ascending j — just 8 lanes at once. Compiled with -mavx2 (no FMA ISA)
// and -ffp-contract=off, so mul+add can never fuse; vsqrtps is IEEE
// correctly rounded like std::sqrt. See docs/performance.md.

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "simd/kernels_impl.h"

#if !SWEETKNN_SIMD_HAVE_AVX2
#error "kernels_avx2.cc requires SWEETKNN_SIMD_HAVE_AVX2"
#endif

namespace sweetknn::simd::internal {

namespace {

// abs by clearing the sign bit — exactly what std::fabs(float) does,
// including for NaN payloads.
inline __m256 Abs256(__m256 v) {
  return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v);
}

inline void TileDistances(const float* query, const float* tile, size_t dims,
                          Dist dist, float* out16) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  if (dist == Dist::kManhattan) {
    for (size_t j = 0; j < dims; ++j) {
      const __m256 qj = _mm256_set1_ps(query[j]);
      const float* row = tile + j * kTileLanes;
      acc0 = _mm256_add_ps(acc0, Abs256(_mm256_sub_ps(qj,
                                                      _mm256_loadu_ps(row))));
      acc1 = _mm256_add_ps(
          acc1, Abs256(_mm256_sub_ps(qj, _mm256_loadu_ps(row + 8))));
    }
  } else {
    for (size_t j = 0; j < dims; ++j) {
      const __m256 qj = _mm256_set1_ps(query[j]);
      const float* row = tile + j * kTileLanes;
      const __m256 d0 = _mm256_sub_ps(qj, _mm256_loadu_ps(row));
      const __m256 d1 = _mm256_sub_ps(qj, _mm256_loadu_ps(row + 8));
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(d0, d0));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(d1, d1));
    }
    if (dist == Dist::kEuclidean) {
      acc0 = _mm256_sqrt_ps(acc0);
      acc1 = _mm256_sqrt_ps(acc1);
    }
  }
  _mm256_storeu_ps(out16, acc0);
  _mm256_storeu_ps(out16 + 8, acc1);
}

}  // namespace

void QueryDistancesAvx2(const float* query, const float* tiles, size_t dims,
                        size_t row_begin, size_t row_end, Dist dist,
                        float* out) {
  float lanes[kTileLanes];
  for (size_t row = row_begin; row < row_end; row += kTileLanes) {
    const float* tile = tiles + (row / kTileLanes) * kTileLanes * dims;
    const size_t active =
        row_end - row < kTileLanes ? row_end - row : kTileLanes;
    if (active == kTileLanes) {
      TileDistances(query, tile, dims, dist, out + (row - row_begin));
    } else {
      TileDistances(query, tile, dims, dist, lanes);
      std::memcpy(out + (row - row_begin), lanes, active * sizeof(float));
    }
  }
}

void SelectNearestAvx2(const float* dists, size_t n, uint32_t index_base,
                       TopK* heap) {
  size_t i = 0;
  while (i < n && !heap->full()) {
    heap->PushIfCloser(
        Neighbor{index_base + static_cast<uint32_t>(i), dists[i]});
    ++i;
  }
  // Block-skip: 8 candidates at a time against the current kth distance.
  // The strict < test is exact for an ascending scan (simd_kernels.h);
  // surviving blocks re-test every lane through PushIfCloser, so a lane
  // that only qualified against the pre-block threshold is still
  // rejected correctly.
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(dists + i);
    const __m256 thr = _mm256_set1_ps(heap->max());
    if (_mm256_movemask_ps(_mm256_cmp_ps(v, thr, _CMP_LT_OQ)) == 0) continue;
    for (size_t l = 0; l < 8; ++l) {
      heap->PushIfCloser(
          Neighbor{index_base + static_cast<uint32_t>(i + l), dists[i + l]});
    }
  }
  for (; i < n; ++i) {
    heap->PushIfCloser(
        Neighbor{index_base + static_cast<uint32_t>(i), dists[i]});
  }
}

void AddRowAvx2(float* acc, const float* row, size_t dims) {
  size_t j = 0;
  for (; j + 8 <= dims; j += 8) {
    _mm256_storeu_ps(acc + j, _mm256_add_ps(_mm256_loadu_ps(acc + j),
                                            _mm256_loadu_ps(row + j)));
  }
  for (; j < dims; ++j) acc[j] += row[j];
}

}  // namespace sweetknn::simd::internal
