#include "ann/ann_index.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "common/thread_pool.h"

namespace sweetknn::ann {

namespace {

/// Queries per chunk: small enough to balance skewed search costs,
/// large enough to amortize the per-chunk scratch.
constexpr size_t kQueryGrain = 8;

}  // namespace

AnnIndex AnnIndex::Build(const HostMatrix& points, simd::Dist dist,
                         const GraphBuildParams& params,
                         std::vector<uint32_t> entry_points) {
  KnnGraph graph = BuildKnnGraph(points.data(), points.rows(), points.cols(),
                                 dist, params, std::move(entry_points));
  return AnnIndex(points, dist, std::move(graph));
}

AnnIndex AnnIndex::Adopt(const HostMatrix& points, simd::Dist dist,
                         KnnGraph graph) {
  SK_CHECK(graph.num_nodes == points.rows())
      << "ANN graph does not cover the point set";
  return AnnIndex(points, dist, std::move(graph));
}

KnnResult AnnIndex::Search(const HostMatrix& queries, int k, int ef,
                           int workers, AnnSearchStats* stats) const {
  KnnResult result(queries.rows(), k);
  if (queries.rows() == 0 || k <= 0) return result;
  SK_CHECK(queries.cols() == points_.cols() || graph_.empty())
      << "query dims do not match the indexed points";
  if (graph_.empty()) {
    // KnnResult zero-initializes its rows; an empty base must answer
    // explicit padding, not neighbor 0 at distance 0.
    for (size_t q = 0; q < queries.rows(); ++q) result.SetRow(q, {});
    return result;
  }

  if (workers <= 0) workers = common::SimThreadsFromEnv();
  const size_t num_chunks =
      common::NumChunks(queries.rows(), kQueryGrain);
  std::vector<AnnSearchStats> chunk_stats(num_chunks);
  common::ParallelForChunks(
      workers, queries.rows(), kQueryGrain,
      [&](size_t chunk, size_t begin, size_t end) {
        SearchScratch scratch;
        AnnSearchStats local;
        for (size_t q = begin; q < end; ++q) {
          const std::vector<Neighbor> nearest =
              SearchGraph(graph_, &reverse_, points_.data(), points_.cols(),
                          dist_, queries.row(q), k, ef, &scratch, &local);
          result.SetRow(q, nearest);
        }
        chunk_stats[chunk] = local;
      });
  if (stats != nullptr) {
    for (const AnnSearchStats& s : chunk_stats) *stats += s;
  }
  return result;
}

}  // namespace sweetknn::ann
