#ifndef SWEETKNN_ANN_ANN_INDEX_H_
#define SWEETKNN_ANN_ANN_INDEX_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "ann/graph_search.h"
#include "ann/knn_graph.h"
#include "common/knn_result.h"
#include "common/matrix.h"
#include "simd/simd_kernels.h"

namespace sweetknn::ann {

/// The approximate tier over one frozen base point set: the points plus
/// their kNN graph, answering batches of queries by best-first graph
/// search. Covers base rows only — mutable-overlay deltas are scanned
/// exactly by the caller (ScanDelta) and merged downstream, and the
/// owner rebuilds this index whenever the base changes (compaction
/// install, cold build, snapshot restore).
class AnnIndex {
 public:
  AnnIndex() = default;

  /// Builds the graph over `points` with NN-descent. `entry_points` are
  /// the Step-1 landmark picks (may be empty — a deterministic strided
  /// sample takes over).
  static AnnIndex Build(const HostMatrix& points, simd::Dist dist,
                        const GraphBuildParams& params,
                        std::vector<uint32_t> entry_points);

  /// Wraps an already-built graph (snapshot restore). The graph must
  /// cover exactly `points.rows()` nodes.
  static AnnIndex Adopt(const HostMatrix& points, simd::Dist dist,
                        KnnGraph graph);

  bool empty() const { return graph_.empty(); }
  size_t rows() const { return graph_.num_nodes; }
  const KnnGraph& graph() const { return graph_; }
  simd::Dist dist() const { return dist_; }

  /// Answers `queries` with the k nearest graph candidates per query,
  /// each query searched with candidate budget `ef` (clamped to >= k).
  /// Parallel over query rows (workers <= 0 = SimThreadsFromEnv());
  /// per-chunk stats are summed in chunk order, so both the result and
  /// the counters are bit-identical at any worker count. Short answers
  /// pad with {kInvalidNeighbor, inf} exactly like the exact kernels.
  KnnResult Search(const HostMatrix& queries, int k, int ef, int workers,
                   AnnSearchStats* stats) const;

 private:
  AnnIndex(HostMatrix points, simd::Dist dist, KnnGraph graph)
      : points_(std::move(points)),
        dist_(dist),
        graph_(std::move(graph)),
        reverse_(BuildReverseAdjacency(graph_)) {}

  HostMatrix points_;
  simd::Dist dist_ = simd::Dist::kEuclidean;
  KnnGraph graph_;
  /// Derived in-edge CSR (never persisted): search expands the union of
  /// out- and in-edges so fringe points with no in-links in the kNN rows
  /// stay reachable. Rebuilt here on every Build/Adopt.
  ReverseAdjacency reverse_;
};

}  // namespace sweetknn::ann

#endif  // SWEETKNN_ANN_ANN_INDEX_H_
