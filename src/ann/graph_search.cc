#include "ann/graph_search.h"

#include <algorithm>
#include <cstring>
#include <queue>

#include "simd/simd_kernels.h"

namespace sweetknn::ann {

namespace {

/// Min-heap ordering for the frontier: closest candidate on top.
struct FrontierGreater {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    return NeighborLess(b, a);
  }
};

/// Exact fallback: score every row with the vectorized whole-set kernel
/// and select through the same ascending-index TopK the packed host path
/// uses — bit-identical to simd::PackedKnn over these rows.
std::vector<Neighbor> FullScan(const float* points, size_t rows, size_t dims,
                               simd::Dist dist, const float* query, int k,
                               SearchScratch* scratch, AnnSearchStats* stats) {
  scratch->dist_buf.resize(rows);
  simd::QueryBlockDistances(query, points, rows, dims, dist,
                            scratch->dist_buf.data());
  TopK heap(k);
  simd::SelectNearest(scratch->dist_buf.data(), rows, /*index_base=*/0, &heap);
  if (stats != nullptr) {
    ++stats->full_scans;
    stats->candidates_visited += rows;
  }
  return heap.Sorted();
}

}  // namespace

std::vector<Neighbor> SearchGraph(const KnnGraph& graph,
                                  const ReverseAdjacency* reverse,
                                  const float* points, size_t dims,
                                  simd::Dist dist, const float* query, int k,
                                  int ef, SearchScratch* scratch,
                                  AnnSearchStats* stats) {
  if (graph.empty() || k <= 0) return {};
  const size_t rows = graph.num_nodes;
  ef = std::max(ef, k);
  if (static_cast<size_t>(ef) >= rows || static_cast<size_t>(k) >= rows) {
    return FullScan(points, rows, dims, dist, query, k, scratch, stats);
  }

  // Epoch-marked visited set: a slot is visited iff it holds the current
  // epoch, so reuse across searches costs one increment, not a clear.
  if (scratch->visited.size() < rows) scratch->visited.resize(rows, 0);
  if (++scratch->epoch == 0) {
    std::fill(scratch->visited.begin(), scratch->visited.end(), 0);
    scratch->epoch = 1;
  }
  const uint32_t epoch = scratch->epoch;

  TopK best(ef);
  std::priority_queue<Neighbor, std::vector<Neighbor>, FrontierGreater>
      frontier;
  for (const uint32_t seed : graph.entry_points) {
    if (scratch->visited[seed] == epoch) continue;
    scratch->visited[seed] = epoch;
    const float d =
        PointDistance(query, points + static_cast<size_t>(seed) * dims, dims,
                      dist);
    if (stats != nullptr) ++stats->candidates_visited;
    const Neighbor nb{seed, d};
    best.PushIfCloser(nb);
    frontier.push(nb);
  }

  while (!frontier.empty()) {
    const Neighbor cur = frontier.top();
    frontier.pop();
    // Everything reachable from here is no closer than cur; once the
    // candidate set is full and cur can't beat its worst, we're done.
    if (best.full() && cur.distance > best.max()) break;
    if (stats != nullptr) ++stats->hops;
    // Gather this hop's unvisited neighbors first, prefetching each
    // point row as it is claimed: the walk touches rows in random order,
    // so without the prefetch every distance stalls on a cache miss.
    scratch->gather_buf.clear();
    const auto claim = [&](uint32_t nb_id) {
      if (scratch->visited[nb_id] == epoch) return;
      scratch->visited[nb_id] = epoch;
      __builtin_prefetch(points + static_cast<size_t>(nb_id) * dims);
      scratch->gather_buf.push_back(nb_id);
    };
    const uint32_t* edges = graph.row(cur.index);
    for (uint32_t e = 0; e < graph.degree; ++e) {
      if (edges[e] == kInvalidNeighbor) break;  // padding tail
      claim(edges[e]);
    }
    if (reverse != nullptr && !reverse->empty()) {
      uint32_t count = 0;
      const uint32_t* in_edges = reverse->row(cur.index, &count);
      for (uint32_t e = 0; e < count; ++e) claim(in_edges[e]);
    }
    const size_t gathered = scratch->gather_buf.size();
    if (gathered == 0) continue;
    if (stats != nullptr) stats->candidates_visited += gathered;
    // Score the hop's candidates as one contiguous block through the
    // vectorized kernel: lanes run different rows in the canonical
    // accumulation order, so the distances are bit-identical to
    // PointDistance while the per-row serial dependency chain is gone.
    scratch->gather_rows.resize(gathered * dims);
    scratch->gather_dists.resize(gathered);
    for (size_t i = 0; i < gathered; ++i) {
      std::memcpy(scratch->gather_rows.data() + i * dims,
                  points + static_cast<size_t>(scratch->gather_buf[i]) * dims,
                  dims * sizeof(float));
    }
    simd::QueryBlockDistances(query, scratch->gather_rows.data(), gathered,
                              dims, dist, scratch->gather_dists.data());
    for (size_t i = 0; i < gathered; ++i) {
      const Neighbor nb{scratch->gather_buf[i], scratch->gather_dists[i]};
      if (best.PushIfCloser(nb)) frontier.push(nb);
    }
  }

  std::vector<Neighbor> sorted = best.Sorted();
  if (sorted.size() > static_cast<size_t>(k)) sorted.resize(k);
  return sorted;
}

}  // namespace sweetknn::ann
