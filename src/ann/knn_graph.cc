#include "ann/knn_graph.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/topk.h"

namespace sweetknn::ann {

namespace {

/// Nodes per ParallelForChunks chunk. Chunk boundaries depend only on
/// (n, grain), so per-chunk update counts sum deterministically.
constexpr size_t kNodeGrain = 64;

std::mutex& ObserverMutex() {
  static std::mutex mutex;
  return mutex;
}

std::function<void(int)>& ObserverSlot() {
  static std::function<void(int)> observer;
  return observer;
}

void NotifyObserver(int workers) {
  std::lock_guard<std::mutex> lock(ObserverMutex());
  if (ObserverSlot()) ObserverSlot()(workers);
}

}  // namespace

void SetGraphBuildObserverForTest(std::function<void(int)> observer) {
  std::lock_guard<std::mutex> lock(ObserverMutex());
  ObserverSlot() = std::move(observer);
}

std::vector<size_t> KnnGraph::DegreeHistogram() const {
  if (empty()) return {};
  std::vector<size_t> hist(static_cast<size_t>(degree) + 1, 0);
  for (uint32_t node = 0; node < num_nodes; ++node) {
    const uint32_t* edges = row(node);
    uint32_t live = 0;
    while (live < degree && edges[live] != kInvalidNeighbor) ++live;
    ++hist[live];
  }
  return hist;
}

ReverseAdjacency BuildReverseAdjacency(const KnnGraph& graph) {
  ReverseAdjacency reverse;
  if (graph.empty()) return reverse;
  reverse.offsets.assign(static_cast<size_t>(graph.num_nodes) + 1, 0);
  for (uint32_t node = 0; node < graph.num_nodes; ++node) {
    const uint32_t* edges = graph.row(node);
    for (uint32_t e = 0; e < graph.degree; ++e) {
      if (edges[e] == kInvalidNeighbor) break;
      ++reverse.offsets[edges[e] + 1];
    }
  }
  for (size_t v = 1; v < reverse.offsets.size(); ++v) {
    reverse.offsets[v] += reverse.offsets[v - 1];
  }
  reverse.edges.resize(reverse.offsets.back());
  std::vector<uint32_t> fill(reverse.offsets.begin(),
                             reverse.offsets.end() - 1);
  for (uint32_t node = 0; node < graph.num_nodes; ++node) {
    const uint32_t* edges = graph.row(node);
    for (uint32_t e = 0; e < graph.degree; ++e) {
      if (edges[e] == kInvalidNeighbor) break;
      reverse.edges[fill[edges[e]]++] = node;
    }
  }
  return reverse;
}

KnnGraph BuildKnnGraph(const float* points, size_t rows, size_t dims,
                       simd::Dist dist, const GraphBuildParams& params,
                       std::vector<uint32_t> entry_points) {
  KnnGraph graph;
  if (rows == 0) return graph;
  const uint32_t n = static_cast<uint32_t>(rows);
  const uint32_t degree = std::max<uint32_t>(
      1, std::min<uint64_t>(params.degree, std::max<size_t>(rows - 1, 1)));
  const int workers =
      params.workers > 0 ? params.workers : common::SimThreadsFromEnv();
  NotifyObserver(workers);
  const size_t num_chunks = (rows + kNodeGrain - 1) / kNodeGrain;

  // Random initial neighborhoods, one independent stream per node so the
  // chunking (and therefore the worker count) cannot reach the bits.
  std::vector<std::vector<Neighbor>> adj(rows);
  common::ParallelForChunks(
      workers, rows, kNodeGrain,
      [&](size_t /*chunk*/, size_t begin, size_t end) {
        std::vector<uint32_t> picks;
        for (size_t i = begin; i < end; ++i) {
          picks.clear();
          if (rows - 1 <= degree) {
            for (uint32_t c = 0; c < n; ++c) {
              if (c != static_cast<uint32_t>(i)) picks.push_back(c);
            }
          } else {
            Rng rng(SplitMix64(params.seed ^ static_cast<uint64_t>(i)));
            while (picks.size() < degree) {
              const auto c = static_cast<uint32_t>(rng.NextBounded(n));
              if (c == static_cast<uint32_t>(i)) continue;
              if (std::find(picks.begin(), picks.end(), c) == picks.end()) {
                picks.push_back(c);
              }
            }
          }
          std::vector<Neighbor>& mine = adj[i];
          mine.reserve(picks.size());
          for (const uint32_t c : picks) {
            mine.push_back(Neighbor{
                c, PointDistance(points + i * dims, points + c * dims, dims,
                                 dist)});
          }
          std::sort(mine.begin(), mine.end(), NeighborLess);
        }
      });

  // Synchronous NN-descent: each round reads the previous adjacency
  // read-only and writes a fresh one, so nodes refine independently. A
  // node's candidates are its forward and reverse neighbors plus their
  // neighborhoods (the local join), scored with the canonical distance
  // and folded through a (distance, id) TopK.
  uint32_t iters = 0;
  if (rows > 2) {
    std::vector<std::vector<uint32_t>> rev(rows);
    std::vector<uint64_t> chunk_updates(num_chunks);
    for (uint32_t round = 0; round < params.max_iters; ++round) {
      // Reverse adjacency in one deterministic serial pass, capped at
      // `degree` in-edges per node (ascending source order).
      for (std::vector<uint32_t>& r : rev) r.clear();
      for (uint32_t i = 0; i < n; ++i) {
        for (const Neighbor& nb : adj[i]) {
          if (rev[nb.index].size() < degree) rev[nb.index].push_back(i);
        }
      }
      std::vector<std::vector<Neighbor>> next(rows);
      std::fill(chunk_updates.begin(), chunk_updates.end(), 0);
      common::ParallelForChunks(
          workers, rows, kNodeGrain,
          [&](size_t chunk, size_t begin, size_t end) {
            std::vector<uint32_t> cand;
            std::vector<uint32_t> have;
            for (size_t i = begin; i < end; ++i) {
              const auto self = static_cast<uint32_t>(i);
              cand.clear();
              const auto add = [&](uint32_t c) {
                if (c != self) cand.push_back(c);
              };
              const auto expand = [&](uint32_t b) {
                add(b);
                for (const Neighbor& nb : adj[b]) add(nb.index);
                for (const uint32_t r : rev[b]) add(r);
              };
              for (const Neighbor& nb : adj[i]) expand(nb.index);
              for (const uint32_t r : rev[i]) expand(r);
              std::sort(cand.begin(), cand.end());
              cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
              have.clear();
              for (const Neighbor& nb : adj[i]) have.push_back(nb.index);
              std::sort(have.begin(), have.end());
              TopK heap(static_cast<int>(degree));
              for (const Neighbor& nb : adj[i]) heap.PushIfCloser(nb);
              uint64_t updates = 0;
              for (const uint32_t c : cand) {
                if (std::binary_search(have.begin(), have.end(), c)) continue;
                const float d =
                    PointDistance(points + i * dims, points + c * dims, dims,
                                  dist);
                if (heap.PushIfCloser(Neighbor{c, d})) ++updates;
              }
              next[i] = heap.Sorted();
              chunk_updates[chunk] += updates;
            }
          });
      adj.swap(next);
      ++iters;
      uint64_t updates = 0;
      for (const uint64_t u : chunk_updates) updates += u;
      if (static_cast<double>(updates) <=
          params.convergence_fraction * static_cast<double>(rows) *
              static_cast<double>(degree)) {
        break;
      }
    }
  }

  graph.num_nodes = n;
  graph.degree = degree;
  graph.build_iters = iters;
  graph.build_seed = params.seed;
  graph.neighbors.assign(static_cast<size_t>(n) * degree, kInvalidNeighbor);
  for (size_t i = 0; i < rows; ++i) {
    uint32_t* out = graph.neighbors.data() + i * degree;
    for (size_t j = 0; j < adj[i].size(); ++j) out[j] = adj[i][j].index;
  }

  // Entry seeds: the caller's landmark picks, cleaned up; a strided
  // deterministic sample when none survive.
  std::sort(entry_points.begin(), entry_points.end());
  entry_points.erase(std::unique(entry_points.begin(), entry_points.end()),
                     entry_points.end());
  while (!entry_points.empty() && entry_points.back() >= n) {
    entry_points.pop_back();
  }
  if (entry_points.empty()) {
    const uint32_t count = std::min<uint32_t>(8, n);
    for (uint32_t j = 0; j < count; ++j) {
      entry_points.push_back(j * n / count);
    }
    entry_points.erase(
        std::unique(entry_points.begin(), entry_points.end()),
        entry_points.end());
  }
  graph.entry_points = std::move(entry_points);
  return graph;
}

}  // namespace sweetknn::ann
