#ifndef SWEETKNN_ANN_SEARCH_MODE_H_
#define SWEETKNN_ANN_SEARCH_MODE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace sweetknn::ann {

/// Which backend answers a query (docs/approx.md).
enum class SearchKind : uint32_t {
  kExact = 0,   ///< The TI engine / vectorized host scan: exact by construction.
  kApprox = 1,  ///< The kNN-graph tier: bounded recall, large speedup.
};

/// Per-request search mode, selectable through SweetKnnIndex::Query,
/// KnnService and Router. Exact is the default everywhere, so every
/// pre-existing call site keeps its bit-identical answers.
struct SearchMode {
  SearchKind kind = SearchKind::kExact;
  /// Approx only: the recall SLA this request is willing to accept.
  /// Drives the candidate budget when `ef` is 0; >= 1.0 demands
  /// exactness and routes to the exact path outright.
  double recall_target = 0.0;
  /// Approx only: explicit candidate-queue budget for the graph search
  /// (HNSW's ef). 0 derives a budget from recall_target.
  int ef = 0;

  static SearchMode Exact() { return SearchMode{}; }
  static SearchMode Approx(double recall_target = 0.9, int ef = 0) {
    SearchMode mode;
    mode.kind = SearchKind::kApprox;
    mode.recall_target = recall_target;
    mode.ef = ef;
    return mode;
  }

  /// True when this request must run the exact path: either it asked for
  /// it, or its SLA (recall >= 1.0) is one only the exact path honors.
  bool EffectiveExact() const {
    return kind == SearchKind::kExact || recall_target >= 1.0;
  }

  friend bool operator==(const SearchMode& a, const SearchMode& b) {
    return a.kind == b.kind && a.recall_target == b.recall_target &&
           a.ef == b.ef;
  }
};

/// Canonical form used for batching and cache keys: every effectively
/// exact mode collapses to Exact(), so exact traffic groups identically
/// whether it arrived as exact or approx(recall_target = 1.0).
inline SearchMode Normalize(const SearchMode& mode) {
  return mode.EffectiveExact() ? SearchMode::Exact() : mode;
}

/// Strict weak ordering over normalized modes, for deterministic group
/// iteration in the dispatchers (exact groups sort first).
inline bool SearchModeLess(const SearchMode& a, const SearchMode& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.recall_target != b.recall_target) {
    return a.recall_target < b.recall_target;
  }
  return a.ef < b.ef;
}

/// The candidate-queue budget a request actually runs with: the explicit
/// ef when given, otherwise a budget derived from the recall target —
/// a floor of max(64, 4k) at recall 0.9, quadrupling for every halving
/// of the allowed miss rate (greedy best-first terminates once the
/// frontier stops improving, so the beam must widen super-linearly to
/// buy the last points of recall; at small bases a high target pushes
/// the budget past the point count, where the search degenerates to the
/// exact full scan — the honest cost of near-perfect recall). Always at
/// least k (the queue must be able to hold a full answer). Callers that
/// over-query (tombstone masking) clamp again with their widened k.
inline int EffectiveEf(const SearchMode& mode, int k) {
  if (mode.ef > 0) return std::max(mode.ef, k);
  const double slack =
      std::clamp(1.0 - mode.recall_target, 1e-3, 1.0);
  // The 1e-9 slop keeps float residue (1.0 - 0.9 > 0.1 in doubles) from
  // ceiling an intended-integral factor up a full step.
  const double ratio = 0.1 / slack;
  const double factor = std::max(1.0, std::ceil(ratio * ratio - 1e-9));
  const double base = std::max(64.0, 4.0 * static_cast<double>(k));
  const double ef = std::min(base * factor, 1e7);
  return std::max(k, static_cast<int>(ef));
}

}  // namespace sweetknn::ann

#endif  // SWEETKNN_ANN_SEARCH_MODE_H_
