#ifndef SWEETKNN_ANN_GRAPH_SEARCH_H_
#define SWEETKNN_ANN_GRAPH_SEARCH_H_

#include <cstdint>
#include <vector>

#include "ann/knn_graph.h"
#include "common/topk.h"

namespace sweetknn::ann {

/// Per-search work counters, summed across a batch in deterministic
/// (chunk) order and exported through the service metrics registry.
struct AnnSearchStats {
  /// Graph nodes expanded (popped off the frontier).
  uint64_t hops = 0;
  /// Distance evaluations (seeds + neighbor visits + fallback rows).
  uint64_t candidates_visited = 0;
  /// Queries answered by the exact full-scan fallback (ef >= rows).
  uint64_t full_scans = 0;

  AnnSearchStats& operator+=(const AnnSearchStats& o) {
    hops += o.hops;
    candidates_visited += o.candidates_visited;
    full_scans += o.full_scans;
    return *this;
  }
};

/// Reusable per-thread search state. The visited set is epoch-marked so
/// back-to-back searches reuse the allocation without clearing it.
struct SearchScratch {
  std::vector<uint32_t> visited;
  uint32_t epoch = 0;
  /// Whole-set distance buffer for the full-scan fallback.
  std::vector<float> dist_buf;
  /// Per-hop unvisited-neighbor gather: ids are collected (and their
  /// point rows prefetched) before any distance is computed, hiding the
  /// random-access latency the walk is otherwise bound by.
  std::vector<uint32_t> gather_buf;
  /// The gathered rows, copied contiguous so the hop's candidates score
  /// through the vectorized block kernel (bit-identical to the scalar
  /// accumulation) instead of one serial dependency chain per row.
  std::vector<float> gather_rows;
  std::vector<float> gather_dists;
};

/// Greedy best-first search over `graph`: seeds the frontier with the
/// entry points, then repeatedly expands the closest unexpanded node,
/// scoring its out-edges — and, when `reverse` is given, its in-edges —
/// with the canonical PointDistance. Terminates when the closest
/// frontier node cannot beat the worst of the best `ef` found so far.
/// Returns the k nearest of those candidates, ascending by
/// (distance, id) — local base-row ids, same index space as the exact
/// kernels.
///
/// Pass the graph's ReverseAdjacency whenever available: forward-only
/// walks cannot reach points no kNN row points at (cluster fringes lose
/// their in-edges to hubs), which caps recall below high SLA targets no
/// matter the budget.
///
/// Exactness escape hatch: when ef >= the node count (or the graph is
/// smaller than k) the graph walk cannot prune anything, so the search
/// runs an exact vectorized full scan instead — bit-identical to
/// simd::PackedKnn on the same rows. This is what makes
/// approx(recall 1.0 via huge ef) and the k >= live-points edge case
/// exactly correct rather than merely probably correct.
std::vector<Neighbor> SearchGraph(const KnnGraph& graph,
                                  const ReverseAdjacency* reverse,
                                  const float* points, size_t dims,
                                  simd::Dist dist, const float* query, int k,
                                  int ef, SearchScratch* scratch,
                                  AnnSearchStats* stats);

}  // namespace sweetknn::ann

#endif  // SWEETKNN_ANN_GRAPH_SEARCH_H_
