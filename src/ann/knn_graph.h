#ifndef SWEETKNN_ANN_KNN_GRAPH_H_
#define SWEETKNN_ANN_KNN_GRAPH_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/knn_result.h"
#include "simd/simd_kernels.h"

namespace sweetknn::ann {

/// Build knobs of the NN-descent construction (docs/approx.md).
struct GraphBuildParams {
  /// Out-degree of every node (edges kept per point). Clamped to the
  /// point count minus one at build time; the stored row stride stays
  /// `degree`, short rows pad with kInvalidNeighbor.
  uint32_t degree = 16;
  /// NN-descent refinement rounds. The build usually converges earlier
  /// (see convergence_fraction) — this is the hard cap.
  uint32_t max_iters = 10;
  /// Stop once a round improves fewer than this fraction of all edges.
  double convergence_fraction = 0.002;
  /// Seed of the random initial neighborhoods. Per-node streams are
  /// SplitMix64(seed ^ node), so the build is bit-identical at any
  /// worker count.
  uint64_t seed = 0x5ee7a9c3u;
  /// Host threads for the refinement rounds; 0 = SimThreadsFromEnv().
  /// Never affects the result, only wall-clock.
  int workers = 0;
};

/// A directed kNN graph over a frozen base point set: `degree` edges per
/// node toward its (approximately) nearest neighbors, plus the search
/// entry seeds. Node ids are local base rows — the same index space the
/// exact kernels report — so graph candidates merge through the existing
/// MergeMutableResults machinery unchanged.
struct KnnGraph {
  uint32_t num_nodes = 0;
  uint32_t degree = 0;
  /// num_nodes * degree edges, row-major; each row ascending by
  /// (distance, id) with kInvalidNeighbor padding at the tail.
  std::vector<uint32_t> neighbors;
  /// Search seeds: one per Step-1 landmark cluster (the member closest
  /// to each center), so best-first descent starts inside every region
  /// of the space.
  std::vector<uint32_t> entry_points;
  // Build provenance, persisted with the graph (.sksnap v3).
  uint32_t build_iters = 0;  ///< Refinement rounds the build actually ran.
  uint64_t build_seed = 0;

  bool empty() const { return num_nodes == 0; }
  const uint32_t* row(uint32_t node) const {
    return neighbors.data() + static_cast<size_t>(node) * degree;
  }
  /// hist[d] = number of nodes with exactly d live (non-padding) edges;
  /// size degree + 1. Empty for an empty graph.
  std::vector<size_t> DegreeHistogram() const;
};

/// In-edges of a KnnGraph in CSR form: node v's predecessors — every u
/// whose kNN row contains v — live in edges[offsets[v] .. offsets[v+1]),
/// ascending by u. A directed kNN graph starves fringe points of
/// in-edges (hubs soak them up), which makes those points unreachable by
/// forward-only best-first search at any budget; expanding the union of
/// out- and in-edges restores reachability. Derived, deterministic, and
/// cheap to rebuild, so it is NOT persisted — snapshots carry only the
/// kNN rows and adopters recompute this.
struct ReverseAdjacency {
  std::vector<uint32_t> offsets;  ///< num_nodes + 1 (empty when no graph).
  std::vector<uint32_t> edges;    ///< One entry per live graph edge.

  bool empty() const { return offsets.size() <= 1; }
  const uint32_t* row(uint32_t node, uint32_t* count) const {
    *count = offsets[node + 1] - offsets[node];
    return edges.data() + offsets[node];
  }
};

/// Builds the reverse adjacency by counting in-degrees and bucket-filling
/// in node order (so each bucket is already ascending by source id).
ReverseAdjacency BuildReverseAdjacency(const KnnGraph& graph);

/// The canonical scalar distance: single float accumulator, strictly
/// ascending dimensions — exactly core::AccessorDistance (and exactly
/// what every simd tier computes), so graph-candidate distances are
/// bit-comparable with the exact paths' through the shared merges.
inline float PointDistance(const float* a, const float* b, size_t dims,
                           simd::Dist dist) {
  float acc = 0.0f;
  if (dist == simd::Dist::kManhattan) {
    for (size_t j = 0; j < dims; ++j) acc += std::fabs(a[j] - b[j]);
    return acc;
  }
  for (size_t j = 0; j < dims; ++j) {
    const float diff = a[j] - b[j];
    acc += diff * diff;
  }
  return dist == simd::Dist::kEuclidean ? std::sqrt(acc) : acc;
}

/// Builds the kNN graph by synchronous NN-descent: random neighborhoods,
/// then rounds where every node offers itself the neighbors of its
/// (forward and reverse) neighbors, keeping the `degree` best under
/// (distance, id). Each round reads the previous round's adjacency
/// read-only and writes its own, parallelized over nodes with
/// ParallelForChunks — the result is bit-identical at any worker count.
///
/// `entry_points` seeds the search (invalid ids are dropped, duplicates
/// removed); when none survive, a deterministic strided sample is used.
/// `rows` may be 0 (an empty graph searches nothing).
KnnGraph BuildKnnGraph(const float* points, size_t rows, size_t dims,
                       simd::Dist dist, const GraphBuildParams& params,
                       std::vector<uint32_t> entry_points);

/// Test-only: observer invoked by every BuildKnnGraph call with the
/// worker count it resolved (params.workers, or the environment fallback
/// when unset). Thread-safe — builds may run concurrently on the host
/// pool. Pass nullptr to clear.
void SetGraphBuildObserverForTest(std::function<void(int)> observer);

}  // namespace sweetknn::ann

#endif  // SWEETKNN_ANN_KNN_GRAPH_H_
