#include "core/level1.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "core/ti_bounds.h"

namespace sweetknn::core {

namespace {

using gpusim::Device;
using gpusim::DeviceBuffer;
using gpusim::KernelMeta;
using gpusim::LaneMask;
using gpusim::LaunchConfig;
using gpusim::Reg;
using gpusim::Warp;

constexpr double kSortKeysPerSecond = 6e8;

/// Per-lane bounded max-heap over plain floats, used by the calUB kernel
/// to pool the k smallest upper bounds (functional state; the caller
/// charges the simulated instruction costs).
class BoundHeap {
 public:
  void Reset(int k) {
    k_ = k;
    heap_.clear();
  }
  bool Full() const { return static_cast<int>(heap_.size()) == k_; }
  float Max() const {
    return Full() ? heap_.front() : std::numeric_limits<float>::infinity();
  }
  /// Returns the number of sift steps performed (0 = rejected).
  int PushIfSmaller(float v) {
    if (!Full()) {
      heap_.push_back(v);
      std::push_heap(heap_.begin(), heap_.end());
      return static_cast<int>(std::log2(heap_.size() + 1)) + 1;
    }
    if (v >= heap_.front()) return 0;
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.back() = v;
    std::push_heap(heap_.begin(), heap_.end());
    return static_cast<int>(std::log2(heap_.size() + 1)) + 1;
  }
  const std::vector<float>& values() const { return heap_; }

 private:
  int k_ = 0;
  std::vector<float> heap_;
};

}  // namespace

Level1Result RunLevel1(Device* dev, const QueryClustering& qc,
                       const TargetClustering& tc, int k,
                       int block_threads) {
  SK_CHECK_GT(k, 0);
  const int mq = qc.num_clusters;
  const int mt = tc.num_clusters;
  const size_t dims = qc.centers.dims();
  const Metric metric = qc.centers.metric();

  Level1Result out;
  out.k = k;
  out.cluster_ub = dev->Alloc<float>(static_cast<size_t>(mq), "cluster UB");
  out.cluster_kubs = dev->Alloc<float>(
      static_cast<size_t>(mq) * static_cast<size_t>(k), "cluster kUBs");

  // ---- calUB kernels (section III-B), elastically parallel: tpc
  // threads cooperate on each query cluster, each sweeping a strided
  // subset of the target clusters into a local k-bound pool; a merge
  // kernel pools them and takes the kth smallest. With enough query
  // clusters tpc is 1 and this degenerates to the paper's one-thread-
  // per-cluster kernel. ----
  const int budget = dev->spec().MaxConcurrentThreads() / 4;
  // Each cooperating thread needs a k-float pool slot; cap the fan-out so
  // the pool buffer takes at most half of free device memory.
  const int by_memory = static_cast<int>(
      dev->free_bytes() / 2 /
      (static_cast<size_t>(std::max(1, mq)) * static_cast<size_t>(k) * 4));
  const int tpc = std::clamp(std::min(budget / std::max(1, mq), by_memory),
                             1, mt);
  const int64_t calub_threads = static_cast<int64_t>(mq) * tpc;
  DeviceBuffer<float> pools = dev->Alloc<float>(
      static_cast<size_t>(calub_threads) * static_cast<size_t>(k),
      "calUB pools");
  {
    KernelMeta meta{"level1_calub", 48, 0};
    dev->Launch(meta, LaunchConfig::Cover(calub_threads, block_threads),
                [&](Warp& w) {
      const LaneMask valid = w.Ballot([&](int lane) {
        return static_cast<int64_t>(w.GlobalThreadId(lane)) < calub_threads;
      });
      if (valid == 0) return;
      w.If(valid, [&] {
        Reg<int> cq;
        Reg<int> sub;
        w.Op([&](int lane) {
          cq[lane] = w.GlobalThreadId(lane) / tpc;
          sub[lane] = w.GlobalThreadId(lane) % tpc;
        });
        Reg<PointAccessor> qcenter;
        qc.centers.LoadPoints(
            w, [&](int lane) { return cq[lane]; },
            [&](int lane, PointAccessor acc) { qcenter[lane] = acc; });
        Reg<float> qmax;
        w.Load(qc.max_dist, [&](int lane) { return cq[lane]; },
               [&](int lane, float v) { qmax[lane] = v; });

        std::array<BoundHeap, gpusim::kWarpSize> heaps;
        w.Op([&](int lane) { heaps[static_cast<size_t>(lane)].Reset(k); });

        Reg<int> j;
        w.Op([&](int lane) { j[lane] = sub[lane]; });
        w.While(
            [&](int lane) { return j[lane] < mt; },
            [&] {
              Reg<uint32_t> begin;
              Reg<uint32_t> end;
              w.Load(tc.member_offsets, [&](int lane) { return j[lane]; },
                     [&](int lane, uint32_t v) { begin[lane] = v; });
              w.Load(tc.member_offsets,
                     [&](int lane) { return j[lane] + 1; },
                     [&](int lane, uint32_t v) { end[lane] = v; });
              const LaneMask nonempty = w.Ballot(
                  [&](int lane) { return end[lane] > begin[lane]; });
              w.If(nonempty, [&] {
                Reg<PointAccessor> tcenter;
                tc.centers.LoadPoints(
                    w, [&](int lane) { return j[lane]; },
                    [&](int lane, PointAccessor acc) {
                      tcenter[lane] = acc;
                    });
                Reg<float> ccdist;
                w.Op(
                    [&](int lane) {
                      ccdist[lane] = AccessorDistance(
                          qcenter[lane], tcenter[lane], dims, metric);
                    },
                    DistanceOpCost(dims));

                // 2-landmark upper bounds through the cluster's points
                // closest to its center (stored last: member_dists is
                // descending). Bounds grow with i, so each lane stops
                // early once a bound cannot enter its pool (the paper's
                // footnote 1).
                Reg<int> i;
                w.Op([&](int lane) { i[lane] = 0; });
                w.While(
                    [&](int lane) {
                      return i[lane] <
                             std::min<int>(
                                 k, static_cast<int>(end[lane] -
                                                     begin[lane]));
                    },
                    [&] {
                      Reg<float> closest;
                      w.Load(tc.member_dists,
                             [&](int lane) {
                               return end[lane] - 1 -
                                      static_cast<uint32_t>(i[lane]);
                             },
                             [&](int lane, float v) { closest[lane] = v; });
                      Reg<float> bound;
                      w.Op([&](int lane) {
                        bound[lane] = TwoLandmarkUpperBound(
                            ccdist[lane], qmax[lane], closest[lane]);
                      });
                      w.BreakIf(w.Ballot([&](int lane) {
                        return bound[lane] >=
                               heaps[static_cast<size_t>(lane)].Max();
                      }));
                      // Heap maintenance; the warp pays for the deepest
                      // sift among its lanes.
                      int max_steps = 0;
                      w.Op([&](int lane) {
                        max_steps = std::max(
                            max_steps, heaps[static_cast<size_t>(lane)]
                                           .PushIfSmaller(bound[lane]));
                      });
                      if (max_steps > 0) {
                        w.Op([](int) {}, static_cast<uint64_t>(max_steps));
                      }
                      w.Op([&](int lane) { ++i[lane]; });
                    });
              });
              w.Op([&](int lane) { j[lane] += tpc; });
            });

        w.StoreRange(
            pools,
            [&](int lane) {
              return static_cast<size_t>(w.GlobalThreadId(lane)) *
                     static_cast<size_t>(k);
            },
            static_cast<size_t>(k), /*vector_width=*/4,
            [&](int lane, size_t idx) {
              const auto& values = heaps[static_cast<size_t>(lane)].values();
              return idx < values.size()
                         ? values[idx]
                         : std::numeric_limits<float>::infinity();
            });
      });
    });
  }
  {
    // Merge the tpc pools of each query cluster: UB = kth smallest pooled
    // bound; the pooled k bounds are also kept (cluster_kubs).
    KernelMeta meta{"level1_calub_merge", 48, 0};
    dev->Launch(meta, LaunchConfig::Cover(mq, block_threads), [&](Warp& w) {
      const LaneMask valid = w.Ballot(
          [&](int lane) { return w.GlobalThreadId(lane) < mq; });
      if (valid == 0) return;
      w.If(valid, [&] {
        Reg<const float*> pool_ptr;
        w.LoadRange(
            pools,
            [&](int lane) {
              return static_cast<size_t>(w.GlobalThreadId(lane)) *
                     static_cast<size_t>(tpc) * static_cast<size_t>(k);
            },
            static_cast<size_t>(tpc) * static_cast<size_t>(k), 4,
            [&](int lane, const float* p) { pool_ptr[lane] = p; });
        std::array<BoundHeap, gpusim::kWarpSize> merged;
        w.Op([&](int lane) {
          auto& heap = merged[static_cast<size_t>(lane)];
          heap.Reset(k);
          for (size_t e = 0;
               e < static_cast<size_t>(tpc) * static_cast<size_t>(k); ++e) {
            heap.PushIfSmaller(pool_ptr[lane][e]);
          }
        });
        w.Op([](int) {},
             static_cast<uint64_t>(tpc) * static_cast<uint64_t>(k));
        w.Store(out.cluster_ub,
                [&](int lane) { return w.GlobalThreadId(lane); },
                [&](int lane) {
                  return merged[static_cast<size_t>(lane)].Max();
                });
        w.StoreRange(
            out.cluster_kubs,
            [&](int lane) {
              return static_cast<size_t>(w.GlobalThreadId(lane)) *
                     static_cast<size_t>(k);
            },
            static_cast<size_t>(k), /*vector_width=*/4,
            [&](int lane, size_t idx) {
              const auto& values =
                  merged[static_cast<size_t>(lane)].values();
              return idx < values.size()
                         ? values[idx]
                         : std::numeric_limits<float>::infinity();
            });
      });
    });
  }

  // ---- Group filter kernels: one thread per (query cluster, target
  // cluster) pair (Algorithm 1). Two passes — count, then fill into
  // exactly-sized arrays — so no mq x mt staging buffer is needed (it
  // would not fit for large landmark counts). ----
  DeviceBuffer<uint32_t> cand_count =
      dev->Alloc<uint32_t>(static_cast<size_t>(mq), "candidate counts");
  const int64_t pairs = static_cast<int64_t>(mq) * mt;
  // The pair predicate, shared by both passes.
  auto pair_kernel = [&](Warp& w, auto&& on_keep) {
    const LaneMask valid = w.Ballot([&](int lane) {
      return static_cast<int64_t>(w.GlobalThreadId(lane)) < pairs;
    });
    if (valid == 0) return;
    w.If(valid, [&] {
      Reg<int> cq;
      Reg<int> ct;
      w.Op([&](int lane) {
        const int64_t idx = w.GlobalThreadId(lane);
        cq[lane] = static_cast<int>(idx / mt);
        ct[lane] = static_cast<int>(idx % mt);
      });
      // Skip empty target clusters.
      Reg<uint32_t> tsize;
      w.Load(tc.member_offsets, [&](int lane) { return ct[lane]; },
             [&](int lane, uint32_t begin) {
               tsize[lane] =
                   tc.member_offsets[static_cast<size_t>(ct[lane]) + 1] -
                   begin;
             });
      const LaneMask nonempty =
          w.Ballot([&](int lane) { return tsize[lane] > 0; });
      w.If(nonempty, [&] {
        Reg<PointAccessor> qcenter;
        Reg<PointAccessor> tcenter;
        qc.centers.LoadPoints(
            w, [&](int lane) { return cq[lane]; },
            [&](int lane, PointAccessor acc) { qcenter[lane] = acc; });
        tc.centers.LoadPoints(
            w, [&](int lane) { return ct[lane]; },
            [&](int lane, PointAccessor acc) { tcenter[lane] = acc; });
        Reg<float> ccdist;
        w.Op(
            [&](int lane) {
              ccdist[lane] = AccessorDistance(qcenter[lane],
                                              tcenter[lane], dims, metric);
            },
            DistanceOpCost(dims));
        Reg<float> qmax;
        Reg<float> tmax;
        Reg<float> ub;
        w.Load(qc.max_dist, [&](int lane) { return cq[lane]; },
               [&](int lane, float v) { qmax[lane] = v; });
        w.Load(tc.max_dist, [&](int lane) { return ct[lane]; },
               [&](int lane, float v) { tmax[lane] = v; });
        w.Load(out.cluster_ub, [&](int lane) { return cq[lane]; },
               [&](int lane, float v) { ub[lane] = v; });
        const LaneMask keep = w.Ballot([&](int lane) {
          const float lb = TwoLandmarkLowerBound(ccdist[lane], qmax[lane],
                                                 tmax[lane]);
          // Inclusive: a cluster whose bound exactly equals UB can still
          // hold a kth-place tie (paper Alg. 1 uses strict <, which
          // loses tied neighbors on e.g. integer-grid data).
          return lb <= ub[lane];
        });
        w.If(keep, [&] { on_keep(w, cq, ct, ccdist); });
      });
    });
  };

  {
    KernelMeta meta{"level1_group_filter_count", 40, 0};
    dev->Launch(meta, LaunchConfig::Cover(pairs, block_threads),
                [&](Warp& w) {
      pair_kernel(w, [&](Warp& w2, Reg<int>& cq, Reg<int>&, Reg<float>&) {
        w2.AtomicAdd(
            cand_count, [&](int lane) { return cq[lane]; },
            [](int) { return uint32_t{1}; }, [](int, uint32_t) {});
      });
    });
  }

  out.cand_offsets =
      dev->Alloc<uint32_t>(static_cast<size_t>(mq) + 1, "cand offsets");
  uint64_t total = 0;
  for (int cq = 0; cq < mq; ++cq) {
    out.cand_offsets[cq] = static_cast<uint32_t>(total);
    total += cand_count[cq];
  }
  out.cand_offsets[mq] = static_cast<uint32_t>(total);
  out.total_candidates = total;
  dev->RecordAnalyticLaunch("scan_cand_offsets",
                            static_cast<double>(mq) / 2e9 +
                                dev->spec().kernel_launch_overhead_s);
  out.cand_clusters = dev->Alloc<uint32_t>(std::max<uint64_t>(total, 1),
                                           "cand clusters");
  out.cand_center_dist =
      dev->Alloc<float>(std::max<uint64_t>(total, 1), "cand center dists");

  {
    // Fill pass: cursors restart from zero.
    for (int cq = 0; cq < mq; ++cq) cand_count[cq] = 0;
    KernelMeta meta{"level1_group_filter_fill", 40, 0};
    // The fetch-add old value reserves the store slot, so the candidate
    // order (and the transaction pattern of the scatter) depends on block
    // execution order: keep this launch on the serial engine. It is O(mq *
    // mt) — negligible next to level 2 — and the per-cluster sort below
    // re-establishes a total order anyway.
    meta.host_serial = true;
    dev->Launch(meta, LaunchConfig::Cover(pairs, block_threads),
                [&](Warp& w) {
      pair_kernel(w, [&](Warp& w2, Reg<int>& cq, Reg<int>& ct,
                         Reg<float>& ccdist) {
        Reg<uint32_t> slot;
        w2.AtomicAdd(
            cand_count, [&](int lane) { return cq[lane]; },
            [](int) { return uint32_t{1}; },
            [&](int lane, uint32_t old) { slot[lane] = old; });
        w2.Store(out.cand_clusters,
                 [&](int lane) {
                   return out.cand_offsets[cq[lane]] + slot[lane];
                 },
                 [&](int lane) { return static_cast<uint32_t>(ct[lane]); });
        w2.Store(out.cand_center_dist,
                 [&](int lane) {
                   return out.cand_offsets[cq[lane]] + slot[lane];
                 },
                 [&](int lane) { return ccdist[lane]; });
      });
    });
  }

  // ---- Per-cluster ascending sort by center distance (Step 3
  // precondition). Functionally on the host, charged as a device
  // segmented sort. ----
  std::vector<uint32_t> order;
  for (int cq = 0; cq < mq; ++cq) {
    const uint32_t begin = out.cand_offsets[cq];
    const uint32_t end = out.cand_offsets[cq + 1];
    const uint32_t count = end - begin;
    order.resize(count);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const float da = out.cand_center_dist[begin + a];
      const float db = out.cand_center_dist[begin + b];
      if (da != db) return da < db;
      return out.cand_clusters[begin + a] < out.cand_clusters[begin + b];
    });
    std::vector<uint32_t> tmp_c(count);
    std::vector<float> tmp_d(count);
    for (uint32_t i = 0; i < count; ++i) {
      tmp_c[i] = out.cand_clusters[begin + order[i]];
      tmp_d[i] = out.cand_center_dist[begin + order[i]];
    }
    for (uint32_t i = 0; i < count; ++i) {
      out.cand_clusters[begin + i] = tmp_c[i];
      out.cand_center_dist[begin + i] = tmp_d[i];
    }
  }
  dev->RecordAnalyticLaunch(
      "sort_candidate_lists",
      static_cast<double>(total) / kSortKeysPerSecond +
          dev->spec().kernel_launch_overhead_s);
  return out;
}

}  // namespace sweetknn::core
