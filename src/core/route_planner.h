#ifndef SWEETKNN_CORE_ROUTE_PLANNER_H_
#define SWEETKNN_CORE_ROUTE_PLANNER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "core/options.h"

namespace sweetknn::core {

/// Which execution path answers a query fragment. Both paths return
/// bit-identical neighbor lists (the mutation-differential fuzz suite
/// proves engine == brute force, and the vectorized host path IS the
/// brute-force kernels), so routing is purely a latency decision.
enum class QueryRoute { kDevice, kHost };

enum class PlannerMode {
  kAuto,         ///< cost model decides per fragment
  kForceDevice,  ///< always the simulated-GPU TI engine (pre-planner behavior)
  kForceHost,    ///< always the vectorized host kernels
};

/// Calibrated per-fragment cost model, all costs in wall-clock seconds
/// of THIS process. The "device" runs on a cycle-accounting simulator,
/// so its wall-clock constants reflect simulation overhead per modeled
/// operation, not real GPU silicon; the TI filter's selectivity (the
/// fraction of candidate pairs whose distance the engine actually
/// evaluates) scales the device's dominant term and is learned online
/// from KnnRunStats of completed device runs.
struct PlannerConfig {
  PlannerMode mode = PlannerMode::kAuto;
  /// Host path: fixed + |Q| * n * dims * per_pair_dim.
  double host_fixed_s = 1e-5;
  double host_per_pair_dim_s = 2e-10;
  /// Device path: fixed + |Q| * per_query + |Q| * n * dims *
  /// per_pair_dim * predicted_selectivity.
  double device_fixed_s = 2e-3;
  double device_per_query_s = 2e-5;
  double device_per_pair_dim_s = 8e-9;
  /// EMA weight of the newest selectivity observation.
  double selectivity_alpha = 0.25;
  /// In kAuto, every explore_interval-th decision (starting with the
  /// first) runs on the device regardless of cost, so the selectivity
  /// estimate keeps tracking the workload. <= 0 disables exploration.
  int explore_interval = 16;
};

/// Thread-safe cost-based router between the simulated-GPU TI engine
/// and the vectorized host path. Choose() and the observers are
/// lock-free (plain atomics): the serving dispatcher calls Choose per
/// shard per group while tests and the fuzz harness flip the mode
/// concurrently.
class RoutePlanner {
 public:
  /// `config.mode` may be overridden by SWEETKNN_PLANNER
  /// ("auto" | "device" | "host"); unknown values are ignored.
  explicit RoutePlanner(const PlannerConfig& config = {});

  /// Routes one fragment of `num_queries` rows against `target_rows`
  /// points of dimension `dims`, and counts the decision.
  QueryRoute Choose(size_t num_queries, size_t target_rows, size_t dims);

  /// Feeds the selectivity EMA from a completed device run.
  void ObserveDeviceRun(const KnnRunStats& stats);

  /// Live mode switch (tests and the mutation fuzz harness).
  void set_mode(PlannerMode mode) {
    mode_.store(static_cast<int>(mode), std::memory_order_relaxed);
  }
  PlannerMode mode() const {
    return static_cast<PlannerMode>(mode_.load(std::memory_order_relaxed));
  }

  uint64_t device_routes() const {
    return device_routes_.load(std::memory_order_relaxed);
  }
  uint64_t host_routes() const {
    return host_routes_.load(std::memory_order_relaxed);
  }
  /// Current selectivity estimate in [0, 1] (1 until the first device
  /// run reports in — pessimistic about the filter, so a cold planner
  /// prefers the host path except for exploration).
  double PredictedSelectivity() const {
    return selectivity_.load(std::memory_order_relaxed);
  }

  /// Cost-model halves, exposed for tests and docs.
  double HostCost(size_t num_queries, size_t target_rows, size_t dims) const;
  double DeviceCost(size_t num_queries, size_t target_rows,
                    size_t dims) const;

  const PlannerConfig& config() const { return config_; }

 private:
  PlannerConfig config_;
  std::atomic<int> mode_;
  std::atomic<uint64_t> decisions_{0};
  std::atomic<uint64_t> device_routes_{0};
  std::atomic<uint64_t> host_routes_{0};
  std::atomic<double> selectivity_{1.0};
};

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_ROUTE_PLANNER_H_
