#ifndef SWEETKNN_CORE_LEVEL1_H_
#define SWEETKNN_CORE_LEVEL1_H_

#include <cstdint>

#include "core/clustering.h"
#include "core/options.h"
#include "gpusim/device.h"

namespace sweetknn::core {

/// Output of level-1 (group-level) filtering, paper Step 2: a per-query-
/// cluster upper bound on the kth-nearest-neighbor distance, the k pooled
/// upper bounds used to seed kNearests, and the surviving candidate
/// target clusters (sorted by ascending center-to-center distance, the
/// order Step 3 requires).
struct Level1Result {
  int k = 0;
  gpusim::DeviceBuffer<float> cluster_ub;        // per query cluster
  gpusim::DeviceBuffer<float> cluster_kubs;      // mq x k, row-major
  gpusim::DeviceBuffer<uint32_t> cand_offsets;   // mq + 1
  gpusim::DeviceBuffer<uint32_t> cand_clusters;  // flattened candidates
  gpusim::DeviceBuffer<float> cand_center_dist;  // parallel center dists
  uint64_t total_candidates = 0;

  /// Host-side candidate count of query cluster cq.
  uint32_t CandidateCount(int cq) const {
    return cand_offsets[cq + 1] - cand_offsets[cq];
  }
};

/// Runs the calUB kernel (per-query-cluster UB via pooled 2-landmark
/// bounds with early termination) and the group-filter kernel
/// (Algorithm 1), then orders each candidate list by center distance.
Level1Result RunLevel1(gpusim::Device* dev, const QueryClustering& qc,
                       const TargetClustering& tc, int k, int block_threads);

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_LEVEL1_H_
