#ifndef SWEETKNN_CORE_DELTA_OVERLAY_H_
#define SWEETKNN_CORE_DELTA_OVERLAY_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/knn_result.h"
#include "common/matrix.h"
#include "core/options.h"

namespace sweetknn::core {

/// The mutable overlay of a frozen TI index: points inserted since the
/// base was prepared (served by an exact brute-force side scan, see
/// ScanDelta) and base rows deleted since (masked out of merged answers
/// by stable id).
///
/// Rows are identified by *stable ids*, allocated monotonically by the
/// owning index and never reused. `ids` is kept strictly increasing
/// (appends draw from a monotone counter; erases preserve order), which
/// makes the overlay's id order agree with NeighborLess tie-breaking:
/// when a mutated index's answers are compared against a cold build over
/// the surviving points arranged in ascending-id order, equal-distance
/// ties resolve identically. docs/mutability.md has the full argument.
struct DeltaBuffer {
  size_t dims = 0;
  /// Stable ids of the delta points, strictly increasing.
  std::vector<uint32_t> ids;
  /// ids.size() x dims row-major coordinates, parallel to `ids`.
  std::vector<float> points;
  /// Stable ids masked out of answers: deleted rows that are still
  /// physically present in the frozen base (or, transiently during a
  /// compaction, in the delta prefix the compactor already copied).
  std::unordered_set<uint32_t> tombstones;

  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  size_t size() const { return ids.size(); }
  /// No delta points and no tombstones: the base answers alone.
  bool Pristine() const { return ids.empty() && tombstones.empty(); }
  const float* point(size_t i) const { return points.data() + i * dims; }

  /// Appends a point under `id`, which must exceed every id present.
  void Append(uint32_t id, const float* row);
  /// Position of `id` in `ids`, or kNotFound. O(log n).
  size_t Find(uint32_t id) const;
  /// Removes the point at `pos`, keeping order.
  void EraseAt(size_t pos);
  void Clear();
};

/// Exact top-k of the (non-tombstoned) delta points for every query row,
/// computed on the host with the same AccessorDistance the simulated
/// kernels and BruteForceCpu evaluate — so the distances are
/// bit-identical to what a cold-built index would report for the same
/// points. Neighbor indices are positions into `delta.ids` (the caller
/// maps them to stable ids); rows ascend under NeighborLess and pad with
/// kInvalidNeighbor, matching the engine's conventions.
///
/// Position order equals id order (`ids` is strictly increasing), so
/// tie-breaking on position is tie-breaking on stable id.
KnnResult ScanDelta(const DeltaBuffer& delta, const HostMatrix& queries,
                    int k, Metric metric);

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_DELTA_OVERLAY_H_
