#include "core/shard_merge.h"

#include <algorithm>

#include "common/logging.h"
#include "common/topk.h"

namespace sweetknn::core {

KnnResult MergeShardResults(const std::vector<KnnResult>& shard_results,
                            const std::vector<uint32_t>& shard_offsets,
                            int k) {
  SK_CHECK_GT(k, 0);
  SK_CHECK(!shard_results.empty());
  SK_CHECK_EQ(shard_results.size(), shard_offsets.size());
  const size_t num_queries = shard_results[0].num_queries();
  for (const KnnResult& r : shard_results) {
    SK_CHECK_EQ(r.num_queries(), num_queries);
    SK_CHECK_EQ(r.k(), k);
  }

  KnnResult merged(num_queries, k);
  std::vector<Neighbor> pool;
  pool.reserve(shard_results.size() * static_cast<size_t>(k));
  for (size_t q = 0; q < num_queries; ++q) {
    pool.clear();
    for (size_t s = 0; s < shard_results.size(); ++s) {
      const Neighbor* row = shard_results[s].row(q);
      for (int i = 0; i < k; ++i) {
        if (row[i].index == kInvalidNeighbor) break;  // padding: rest too
        pool.push_back(
            Neighbor{row[i].index + shard_offsets[s], row[i].distance});
      }
    }
    const size_t keep = std::min(pool.size(), static_cast<size_t>(k));
    std::partial_sort(pool.begin(), pool.begin() + keep, pool.end(),
                      NeighborLess);
    pool.resize(keep);
    merged.SetRow(q, pool);
  }
  return merged;
}

KnnResult MergeMutableResults(const std::vector<MergeSource>& sources,
                              int k) {
  SK_CHECK_GT(k, 0);
  size_t num_queries = 0;
  bool any = false;
  for (const MergeSource& src : sources) {
    if (src.result == nullptr) continue;
    if (!any) {
      num_queries = src.result->num_queries();
      any = true;
    } else {
      SK_CHECK_EQ(src.result->num_queries(), num_queries);
    }
    SK_CHECK_GE(src.result->k(), k);
  }
  SK_CHECK(any) << "MergeMutableResults needs at least one source";

  KnnResult merged(num_queries, k);
  std::vector<Neighbor> pool;
  for (size_t q = 0; q < num_queries; ++q) {
    pool.clear();
    for (const MergeSource& src : sources) {
      if (src.result == nullptr) continue;
      const Neighbor* row = src.result->row(q);
      const int source_k = src.result->k();
      // Per source, at most k *live* entries can make the global top-k;
      // everything masked on the way does not count toward that budget.
      int kept = 0;
      for (int i = 0; i < source_k && kept < k; ++i) {
        if (row[i].index == kInvalidNeighbor) break;  // padding: rest too
        const uint32_t id = src.id_map != nullptr
                                ? src.id_map[row[i].index]
                                : row[i].index + src.offset;
        if (src.tombstones != nullptr && src.tombstones->count(id) != 0) {
          continue;
        }
        pool.push_back(Neighbor{id, row[i].distance});
        ++kept;
      }
    }
    const size_t keep = std::min(pool.size(), static_cast<size_t>(k));
    std::partial_sort(pool.begin(), pool.begin() + keep, pool.end(),
                      NeighborLess);
    pool.resize(keep);
    merged.SetRow(q, pool);
  }
  return merged;
}

KnnResult MergeShardAnswers(const std::vector<ShardAnswer>& answers, int k) {
  SK_CHECK_GT(k, 0);
  SK_CHECK(!answers.empty());
  const size_t num_queries = answers[0].result.num_queries();
  for (const ShardAnswer& a : answers) {
    SK_CHECK_EQ(a.result.num_queries(), num_queries);
    SK_CHECK_EQ(a.result.k(), k);
  }

  KnnResult merged(num_queries, k);
  std::vector<Neighbor> pool;
  pool.reserve(answers.size() * static_cast<size_t>(k));
  for (size_t q = 0; q < num_queries; ++q) {
    pool.clear();
    for (const ShardAnswer& a : answers) {
      const Neighbor* row = a.result.row(q);
      for (int i = 0; i < k; ++i) {
        if (row[i].index == kInvalidNeighbor) break;  // padding: rest too
        // Pristine rows carry slice-local indices; mutated rows already
        // carry stable ids (their shard merged and masked locally).
        const uint32_t id =
            a.pristine ? row[i].index + a.offset : row[i].index;
        pool.push_back(Neighbor{id, row[i].distance});
      }
    }
    const size_t keep = std::min(pool.size(), static_cast<size_t>(k));
    std::partial_sort(pool.begin(), pool.begin() + keep, pool.end(),
                      NeighborLess);
    pool.resize(keep);
    merged.SetRow(q, pool);
  }
  return merged;
}

void AccumulateRunStats(const KnnRunStats& shard, KnnRunStats* total) {
  total->distance_calcs += shard.distance_calcs;
  total->total_pairs += shard.total_pairs;
  total->sim_time_s = std::max(total->sim_time_s, shard.sim_time_s);
  total->landmarks_query = std::max(total->landmarks_query,
                                    shard.landmarks_query);
  total->landmarks_target += shard.landmarks_target;
  total->query_partitions = std::max(total->query_partitions,
                                     shard.query_partitions);
  // Adaptive decisions may legitimately differ per shard (each shard sees
  // its own |T|); report the last shard's as representative.
  total->filter_used = shard.filter_used;
  total->placement_used = shard.placement_used;
  total->threads_per_query = shard.threads_per_query;
  for (const gpusim::LaunchRecord& record : shard.profile.launches) {
    total->profile.launches.push_back(record);
  }
  total->profile.transfer_time_s += shard.profile.transfer_time_s;
  gpusim::KernelStats filter_stats =
      total->profile.StatsForKernelsMatching("level2_full_filter");
  filter_stats.Merge(
      total->profile.StatsForKernelsMatching("level2_partial_filter"));
  total->level2_warp_efficiency = filter_stats.WarpEfficiency();
}

}  // namespace sweetknn::core
