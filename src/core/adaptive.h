#ifndef SWEETKNN_CORE_ADAPTIVE_H_
#define SWEETKNN_CORE_ADAPTIVE_H_

#include <cstddef>

#include "core/options.h"
#include "gpusim/device_spec.h"

namespace sweetknn::core {

/// The configuration the adaptive scheme settles on for one problem
/// instance (paper Fig. 8).
struct AdaptiveDecision {
  Level2Filter filter = Level2Filter::kFull;
  KnearestsPlacement placement = KnearestsPlacement::kRegisters;
  int threads_per_query = 1;
  int inner_stride = 1;
};

/// Shared-memory placement threshold th1 = shared bytes per SM / maximum
/// concurrent threads per SM (paper IV-D2; 24 bytes on Kepler).
int PlacementThreshold1(const gpusim::DeviceSpec& spec);

/// Register placement threshold th2 = max registers per thread * 4 bytes
/// (paper IV-D2; 1020 bytes on Kepler).
int PlacementThreshold2(const gpusim::DeviceSpec& spec);

/// Runs the decision tree of paper Fig. 8:
///  - k/d > 8       -> partial level-2 filter (no kNearests at all);
///  - otherwise the full filter with kNearests placed by 4k vs th1/th2;
///  - |Q| >= r*max_cur -> query-level parallelism, else r*max_cur/|Q|
///    threads per query, split between the point loop (factor ~|T|/|CT|)
///    and the candidate-cluster loop.
/// Overrides in `options` replace the corresponding branch.
AdaptiveDecision DecideConfiguration(const gpusim::DeviceSpec& spec,
                                     const TiOptions& options, size_t num_q,
                                     size_t num_t, size_t dims, int k,
                                     int num_target_clusters);

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_ADAPTIVE_H_
