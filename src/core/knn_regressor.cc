#include "core/knn_regressor.h"

namespace sweetknn {

KnnRegressor::KnnRegressor(const HostMatrix& train,
                           std::vector<float> values, const Options& options)
    : options_(options), values_(std::move(values)),
      index_(train, options.engine) {
  SK_CHECK_EQ(values_.size(), train.rows());
  SK_CHECK_GT(options_.k, 0);
}

std::vector<float> KnnRegressor::Predict(const HostMatrix& queries) {
  const KnnResult result = index_.Query(queries, options_.k);
  std::vector<float> out(queries.rows(), 0.0f);
  for (size_t q = 0; q < queries.rows(); ++q) {
    double weighted_sum = 0.0;
    double total_weight = 0.0;
    for (int i = 0; i < result.k(); ++i) {
      const Neighbor& n = result.row(q)[i];
      if (n.index == kInvalidNeighbor) continue;
      const double weight =
          options_.distance_weighted
              ? 1.0 / (static_cast<double>(n.distance) + 1e-8)
              : 1.0;
      weighted_sum += weight * values_[n.index];
      total_weight += weight;
    }
    if (total_weight > 0.0) {
      out[q] = static_cast<float>(weighted_sum / total_weight);
    }
  }
  return out;
}

double KnnRegressor::MseScore(const HostMatrix& queries,
                              const std::vector<float>& truth) {
  SK_CHECK_EQ(truth.size(), queries.rows());
  const std::vector<float> predicted = Predict(queries);
  double sum = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double err = predicted[i] - truth[i];
    sum += err * err;
  }
  return sum / static_cast<double>(truth.size());
}

}  // namespace sweetknn
