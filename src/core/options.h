#ifndef SWEETKNN_CORE_OPTIONS_H_
#define SWEETKNN_CORE_OPTIONS_H_

#include <cstdint>
#include <optional>
#include <string>

#include "gpusim/stats.h"

namespace sweetknn::core {

/// Distance metric. The triangle-inequality machinery is metric-
/// agnostic (the paper notes "some metric (e.g., Euclidean distance)");
/// the CUBLAS-style brute-force baseline supports Euclidean only (its
/// norm trick needs an inner-product form).
enum class Metric { kEuclidean, kManhattan };

/// Strength of the level-2 (point-level) filter (paper section IV-B1).
enum class Level2Filter {
  /// Algorithm 2 as written: per-thread kNearests heap, theta tightened
  /// after every insertion.
  kFull,
  /// Weakened filter: theta frozen at the level-1 upper bound, surviving
  /// distances spilled to global memory, k minima selected by a second
  /// kernel.
  kPartial,
};

/// Where the per-thread kNearests array lives (paper section IV-C2).
enum class KnearestsPlacement { kGlobal, kShared, kRegisters };

/// Point-matrix layout (paper Fig. 7).
enum class PointLayout {
  /// Dimension-major: element (p, j) at j*N + p. Used by GEMM-style
  /// baselines; coalesces when all lanes touch the same dimension of
  /// consecutive points.
  kColumnMajor,
  /// Point-major with float4 vector loads; fits TI-KNN's strided access.
  kRowMajor,
};

/// Memory layout of the global-memory kNearests pool (paper Fig. 6).
enum class KnearestsLayout {
  /// Layout 1: thread t owns the contiguous block [t*k, (t+1)*k).
  kBlocked,
  /// Layout 2: entry j of thread t at j*num_threads + t, so a warp
  /// stepping through entry j accesses consecutive addresses.
  kInterleaved,
};

/// Tuning knobs and adaptive-scheme overrides. Default-constructed
/// options mean "decide adaptively like Sweet KNN".
struct TiOptions {
  Metric metric = Metric::kEuclidean;
  int block_threads = 256;
  PointLayout layout = PointLayout::kRowMajor;
  /// Elements per point-load instruction; 4 = float4 vector loads
  /// (a Sweet optimization, paper IV-C3), 1 = scalar loads.
  int point_vector_width = 4;
  KnearestsLayout knearests_layout = KnearestsLayout::kInterleaved;
  /// Thread-data remapping (paper section IV-C1). Off in basic KNN-TI.
  bool remap_threads = true;
  /// Elastic multi-thread-per-query parallelism (section IV-B2). Off in
  /// basic KNN-TI.
  bool elastic_parallelism = true;
  /// Cache-conflict factor r of the parallelism model (section IV-D3).
  double parallelism_r = 0.25;
  /// 0 = the 3*sqrt(N) rule (memory-capped); otherwise a forced count.
  int landmarks_override = 0;
  /// Lloyd iterations refining the landmark centers (0 = paper default;
  /// see ClusteringConfig::kmeans_iterations).
  int kmeans_iterations = 0;
  /// Force a filter strength instead of the k/d > 8 rule.
  std::optional<Level2Filter> filter_override;
  /// Force a kNearests placement instead of the th1/th2 rule.
  std::optional<KnearestsPlacement> placement_override;
  /// Force the number of threads cooperating on one query (0 = adaptive).
  int threads_per_query_override = 0;
  /// k/d threshold for choosing the partial filter (paper: 8).
  double partial_filter_kd_threshold = 8.0;
  /// Host worker threads for the simulator's parallel execution engine
  /// and host-side sweeps. 0 = inherit the device's current setting
  /// (which defaults to SWEETKNN_SIM_THREADS, or 1); 1 = the exact legacy
  /// serial path. Any value produces bit-identical results and simulated
  /// times; only host wall-clock changes.
  int sim_threads = 0;

  /// Configuration of the paper's basic KNN-TI (section III): no Sweet
  /// optimizations — always the full filter with a global interleaved
  /// kNearests pool (the layout section III settles on), row-major
  /// scalar point loads (float4 vectorization and the layout study are
  /// Sweet-level optimizations), query-level parallelism only.
  static TiOptions BasicTi() {
    TiOptions opt;
    opt.layout = PointLayout::kRowMajor;
    opt.point_vector_width = 1;
    opt.knearests_layout = KnearestsLayout::kInterleaved;
    opt.remap_threads = false;
    opt.elastic_parallelism = false;
    opt.filter_override = Level2Filter::kFull;
    opt.placement_override = KnearestsPlacement::kGlobal;
    return opt;
  }

  /// Sweet KNN defaults: everything adaptive.
  static TiOptions Sweet() { return TiOptions(); }
};

/// What the run actually did, plus the profiling quantities the paper
/// reports (Table IV, Table V).
struct KnnRunStats {
  /// Point-to-point distance computations performed by the level-2 stage
  /// (the paper's profiling variable in section V-B).
  uint64_t distance_calcs = 0;
  /// |Q| * |T|.
  uint64_t total_pairs = 0;
  /// (total_pairs - distance_calcs) / total_pairs.
  double SavedFraction() const {
    if (total_pairs == 0) return 0.0;
    const double extra =
        static_cast<double>(total_pairs) - static_cast<double>(distance_calcs);
    return extra < 0 ? 0.0 : extra / static_cast<double>(total_pairs);
  }

  /// Total simulated time (kernels + transfers + preprocessing).
  double sim_time_s = 0.0;
  /// Warp efficiency of the level-2 filtering kernel(s), as Table IV
  /// profiles Algorithm 2.
  double level2_warp_efficiency = 0.0;

  // Decisions taken by the adaptive scheme (or forced by options).
  Level2Filter filter_used = Level2Filter::kFull;
  KnearestsPlacement placement_used = KnearestsPlacement::kGlobal;
  int threads_per_query = 1;
  int landmarks_query = 0;
  int landmarks_target = 0;
  int query_partitions = 1;

  /// Full launch-by-launch profile of the run.
  gpusim::Profile profile;
};

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_OPTIONS_H_
