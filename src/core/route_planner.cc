#include "core/route_planner.h"

#include <cstdlib>
#include <cstring>

namespace sweetknn::core {

namespace {

PlannerMode ModeFromEnv(PlannerMode fallback) {
  const char* env = std::getenv("SWEETKNN_PLANNER");
  if (env == nullptr) return fallback;
  if (std::strcmp(env, "auto") == 0) return PlannerMode::kAuto;
  if (std::strcmp(env, "device") == 0) return PlannerMode::kForceDevice;
  if (std::strcmp(env, "host") == 0) return PlannerMode::kForceHost;
  return fallback;
}

}  // namespace

RoutePlanner::RoutePlanner(const PlannerConfig& config)
    : config_(config),
      mode_(static_cast<int>(ModeFromEnv(config.mode))) {}

double RoutePlanner::HostCost(size_t num_queries, size_t target_rows,
                              size_t dims) const {
  const double pairs_dims = static_cast<double>(num_queries) *
                            static_cast<double>(target_rows) *
                            static_cast<double>(dims);
  return config_.host_fixed_s + pairs_dims * config_.host_per_pair_dim_s;
}

double RoutePlanner::DeviceCost(size_t num_queries, size_t target_rows,
                                size_t dims) const {
  const double pairs_dims = static_cast<double>(num_queries) *
                            static_cast<double>(target_rows) *
                            static_cast<double>(dims);
  return config_.device_fixed_s +
         static_cast<double>(num_queries) * config_.device_per_query_s +
         pairs_dims * config_.device_per_pair_dim_s * PredictedSelectivity();
}

QueryRoute RoutePlanner::Choose(size_t num_queries, size_t target_rows,
                                size_t dims) {
  const uint64_t decision =
      decisions_.fetch_add(1, std::memory_order_relaxed);
  QueryRoute route;
  switch (mode()) {
    case PlannerMode::kForceDevice:
      route = QueryRoute::kDevice;
      break;
    case PlannerMode::kForceHost:
      route = QueryRoute::kHost;
      break;
    case PlannerMode::kAuto:
    default:
      // Deterministic exploration keeps the selectivity EMA fed even
      // when the cost model has settled on the host path; starting with
      // decision 0 seeds the estimate with a real observation.
      if (config_.explore_interval > 0 &&
          decision % static_cast<uint64_t>(config_.explore_interval) == 0) {
        route = QueryRoute::kDevice;
      } else {
        route = DeviceCost(num_queries, target_rows, dims) <
                        HostCost(num_queries, target_rows, dims)
                    ? QueryRoute::kDevice
                    : QueryRoute::kHost;
      }
      break;
  }
  (route == QueryRoute::kDevice ? device_routes_ : host_routes_)
      .fetch_add(1, std::memory_order_relaxed);
  return route;
}

void RoutePlanner::ObserveDeviceRun(const KnnRunStats& stats) {
  if (stats.total_pairs == 0) return;
  const double observed = 1.0 - stats.SavedFraction();
  const double alpha = config_.selectivity_alpha;
  // Racy read-modify-write by design: concurrent observers may drop an
  // update, but the EMA only steers a latency heuristic and the atomics
  // keep every access data-race-free.
  const double old = selectivity_.load(std::memory_order_relaxed);
  selectivity_.store(alpha * observed + (1.0 - alpha) * old,
                     std::memory_order_relaxed);
}

}  // namespace sweetknn::core
