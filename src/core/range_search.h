#ifndef SWEETKNN_CORE_RANGE_SEARCH_H_
#define SWEETKNN_CORE_RANGE_SEARCH_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/range_result.h"
#include "core/clustering.h"
#include "core/delta_overlay.h"
#include "core/options.h"
#include "simd/simd_kernels.h"

namespace sweetknn::core {

/// Work counters of one range scan (docs/modalities.md). The TI route
/// reports how much of the base the landmark bounds pruned away; the
/// full-scan route evaluates every pair.
struct RangeScanStats {
  uint64_t candidates = 0;      ///< Pairs whose distance was evaluated.
  uint64_t total_pairs = 0;     ///< |Q| * base rows.
  uint64_t clusters_pruned = 0; ///< Level-1: whole clusters skipped.
  uint64_t members_pruned = 0;  ///< Level-2: members outside the annulus.

  void Accumulate(const RangeScanStats& other) {
    candidates += other.candidates;
    total_pairs += other.total_pairs;
    clusters_pruned += other.clusters_pruned;
    members_pruned += other.members_pruned;
  }
};

/// All base rows within the closed ball distance(q, t) <= radius, for
/// every query row, by exhaustive scan over the packed base: chunked
/// simd::QueryDistances (the canonical accumulation order) plus the
/// membership test. Neighbor indices are base row numbers; rows are
/// sorted ascending under NeighborLess.
RangeResult FullRangeScan(const HostMatrix& queries,
                          const simd::PackedTargets& targets, float radius,
                          simd::Dist dist_kind, RangeScanStats* stats = nullptr);

/// The same closed-ball membership, answered through the Step-1 landmark
/// clustering's triangle-inequality bounds (PAPER.md §III, repurposed
/// for range predicates; docs/modalities.md has the argument):
///
///  - level 1: cluster c is skipped when d(q, center_c) - max_dist_c
///    exceeds radius (+ a conservative float slack) — no member can be
///    within the ball;
///  - level 2: member t of a surviving cluster is skipped when
///    |d(q, center_c) - d(t, center_c)| exceeds radius (+ slack). The
///    per-cluster member lists are sorted descending by
///    distance-to-center, so the surviving window is found by binary
///    search and walked until the monotone lower bound crosses radius.
///
/// Candidates that survive both filters get their exact distance from
/// the same packed-tile kernels FullRangeScan runs, and the exact
/// closed-ball test decides membership — the slack only ever admits
/// extra candidates, so the result is bit-identical to FullRangeScan
/// whatever the pruning did.
RangeResult TiRangeScan(const HostMatrix& queries,
                        const simd::PackedTargets& targets,
                        const TargetClusteringHost& clustering, float radius,
                        simd::Dist dist_kind, RangeScanStats* stats = nullptr);

/// All non-tombstoned delta points within the closed ball, per query
/// row. Neighbor indices are positions into `delta.ids` (the caller maps
/// them to stable ids); position order equals id order, so tie-breaking
/// on position is tie-breaking on stable id. Same canonical distance
/// pipeline as ScanDelta.
RangeResult RangeScanDelta(const DeltaBuffer& delta, const HostMatrix& queries,
                           float radius, Metric metric);

/// One shard's complete contribution to a radius group, the range
/// counterpart of ShardAnswer. Unlike kNN answers there is no pristine
/// fast path: rows always carry stable ids (tombstones already masked,
/// id maps already applied, delta matches already merged in), so the
/// cross-shard merge never needs the shard's overlay. `result` rows are
/// each sorted ascending under NeighborLess on (distance, stable id).
struct RangeShardAnswer {
  RangeResult result;
  bool device_routed = false;  ///< TI-pruned route (vs full scan).
  double route_seconds = 0.0;  ///< Host wall-clock of this shard's scan.
  RangeScanStats stats;
};

/// Merges per-shard range answers into the global per-query match
/// lists. Every stable id lives in exactly one shard and every shard
/// reports its complete in-ball set, so the union is the global set;
/// re-sorting each pooled row under NeighborLess on (distance, stable
/// id) — a total order — makes the merged rows bit-identical to a
/// single-index scan over the same live points.
RangeResult MergeRangeShardAnswers(const std::vector<RangeShardAnswer>& answers,
                                   size_t num_queries);

/// The conservative float slack added to the TI pruning thresholds:
/// large enough to cover accumulated rounding in the center/member
/// distances, small enough that pruning still bites. Exactness never
/// depends on it (see TiRangeScan).
inline float RangePruneSlack(float radius, float a, float b) {
  return 1e-4f * (radius + a + b) + 1e-6f;
}

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_RANGE_SEARCH_H_
