#ifndef SWEETKNN_CORE_SHARD_MERGE_H_
#define SWEETKNN_CORE_SHARD_MERGE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/knn_result.h"
#include "core/options.h"

namespace sweetknn::core {

/// Merges per-shard KNN results into the exact global top-k.
///
/// Shard s holds a contiguous slice of the target set starting at global
/// row `shard_offsets[s]`, and `shard_results[s]` is the exact top-k of
/// that slice (rows ascending under NeighborLess, indices local to the
/// slice, padded with kInvalidNeighbor when the slice has fewer than k
/// rows). Because every global top-k neighbor lives in exactly one slice
/// and appears in that slice's top-k, the k smallest entries of the union
/// (after remapping local indices to global) are exactly the global
/// top-k; NeighborLess is a total order (distance, then index), so the
/// merged rows are bit-identical to a single-engine run over the whole
/// target set.
KnnResult MergeShardResults(const std::vector<KnnResult>& shard_results,
                            const std::vector<uint32_t>& shard_offsets,
                            int k);

/// One input of MergeMutableResults: a per-source exact KNN result plus
/// how its local indices translate to stable ids and which of those ids
/// are dead. Sources are views; the caller keeps everything alive for
/// the duration of the merge.
struct MergeSource {
  /// Exact top-k' of this source's point set, rows ascending under
  /// NeighborLess on (distance, local index), padded with
  /// kInvalidNeighbor. k' may differ per source (see the over-query
  /// requirement on MergeMutableResults).
  const KnnResult* result = nullptr;
  /// Maps local index i to stable id id_map[i]. Must be strictly
  /// increasing so local-index tie-breaking equals stable-id
  /// tie-breaking. nullptr: stable id = local index + offset.
  const uint32_t* id_map = nullptr;
  uint32_t offset = 0;
  /// Stable ids deleted from this source but still physically present in
  /// it (masked out during the merge). nullptr = none.
  const std::unordered_set<uint32_t>* tombstones = nullptr;
};

/// Merges per-source exact KNN results — frozen base shards plus delta
/// buffers — into the exact global top-k over the union of the sources'
/// *live* points, with neighbor indices remapped to stable ids.
///
/// Exactness requires each source's result to survive its own masking:
/// a source with t tombstoned rows must be queried at k' >= k + t, so
/// that after dropping the (at most t) dead entries it still contributes
/// its top-k live points. Every live global top-k point then appears in
/// exactly one source's surviving list, and the k smallest of the pooled
/// survivors under NeighborLess on (distance, stable id) are exactly the
/// global top-k; since every id_map is strictly increasing, that order
/// is the one a cold-built index over the live points in ascending-id
/// order would produce — the merged rows are bit-identical to it.
KnnResult MergeMutableResults(const std::vector<MergeSource>& sources,
                              int k);

/// Accumulates one shard's run stats into a service-level aggregate:
/// work counters (distance_calcs, total_pairs) and landmark counts add;
/// sim_time_s takes the max, since shards model devices running
/// concurrently and the batch completes when the slowest shard does;
/// launches are concatenated and level2_warp_efficiency is recomputed
/// over the merged profile.
void AccumulateRunStats(const KnnRunStats& shard, KnnRunStats* total);

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_SHARD_MERGE_H_
