#ifndef SWEETKNN_CORE_SHARD_MERGE_H_
#define SWEETKNN_CORE_SHARD_MERGE_H_

#include <cstdint>
#include <vector>

#include "common/knn_result.h"
#include "core/options.h"

namespace sweetknn::core {

/// Merges per-shard KNN results into the exact global top-k.
///
/// Shard s holds a contiguous slice of the target set starting at global
/// row `shard_offsets[s]`, and `shard_results[s]` is the exact top-k of
/// that slice (rows ascending under NeighborLess, indices local to the
/// slice, padded with kInvalidNeighbor when the slice has fewer than k
/// rows). Because every global top-k neighbor lives in exactly one slice
/// and appears in that slice's top-k, the k smallest entries of the union
/// (after remapping local indices to global) are exactly the global
/// top-k; NeighborLess is a total order (distance, then index), so the
/// merged rows are bit-identical to a single-engine run over the whole
/// target set.
KnnResult MergeShardResults(const std::vector<KnnResult>& shard_results,
                            const std::vector<uint32_t>& shard_offsets,
                            int k);

/// Accumulates one shard's run stats into a service-level aggregate:
/// work counters (distance_calcs, total_pairs) and landmark counts add;
/// sim_time_s takes the max, since shards model devices running
/// concurrently and the batch completes when the slowest shard does;
/// launches are concatenated and level2_warp_efficiency is recomputed
/// over the merged profile.
void AccumulateRunStats(const KnnRunStats& shard, KnnRunStats* total);

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_SHARD_MERGE_H_
