#ifndef SWEETKNN_CORE_SHARD_MERGE_H_
#define SWEETKNN_CORE_SHARD_MERGE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/knn_result.h"
#include "core/options.h"

namespace sweetknn::core {

/// Merges per-shard KNN results into the exact global top-k.
///
/// Shard s holds a contiguous slice of the target set starting at global
/// row `shard_offsets[s]`, and `shard_results[s]` is the exact top-k of
/// that slice (rows ascending under NeighborLess, indices local to the
/// slice, padded with kInvalidNeighbor when the slice has fewer than k
/// rows). Because every global top-k neighbor lives in exactly one slice
/// and appears in that slice's top-k, the k smallest entries of the union
/// (after remapping local indices to global) are exactly the global
/// top-k; NeighborLess is a total order (distance, then index), so the
/// merged rows are bit-identical to a single-engine run over the whole
/// target set.
KnnResult MergeShardResults(const std::vector<KnnResult>& shard_results,
                            const std::vector<uint32_t>& shard_offsets,
                            int k);

/// One input of MergeMutableResults: a per-source exact KNN result plus
/// how its local indices translate to stable ids and which of those ids
/// are dead. Sources are views; the caller keeps everything alive for
/// the duration of the merge.
struct MergeSource {
  /// Exact top-k' of this source's point set, rows ascending under
  /// NeighborLess on (distance, local index), padded with
  /// kInvalidNeighbor. k' may differ per source (see the over-query
  /// requirement on MergeMutableResults).
  const KnnResult* result = nullptr;
  /// Maps local index i to stable id id_map[i]. Must be strictly
  /// increasing so local-index tie-breaking equals stable-id
  /// tie-breaking. nullptr: stable id = local index + offset.
  const uint32_t* id_map = nullptr;
  uint32_t offset = 0;
  /// Stable ids deleted from this source but still physically present in
  /// it (masked out during the merge). nullptr = none.
  const std::unordered_set<uint32_t>* tombstones = nullptr;
};

/// Merges per-source exact KNN results — frozen base shards plus delta
/// buffers — into the exact global top-k over the union of the sources'
/// *live* points, with neighbor indices remapped to stable ids.
///
/// Exactness requires each source's result to survive its own masking:
/// a source with t tombstoned rows must be queried at k' >= k + t, so
/// that after dropping the (at most t) dead entries it still contributes
/// its top-k live points. Every live global top-k point then appears in
/// exactly one source's surviving list, and the k smallest of the pooled
/// survivors under NeighborLess on (distance, stable id) are exactly the
/// global top-k; since every id_map is strictly increasing, that order
/// is the one a cold-built index over the live points in ascending-id
/// order would produce — the merged rows are bit-identical to it.
KnnResult MergeMutableResults(const std::vector<MergeSource>& sources,
                              int k);

/// Accumulates one shard's run stats into a service-level aggregate:
/// work counters (distance_calcs, total_pairs) and landmark counts add;
/// sim_time_s takes the max, since shards model devices running
/// concurrently and the batch completes when the slowest shard does;
/// launches are concatenated and level2_warp_efficiency is recomputed
/// over the merged profile.
void AccumulateRunStats(const KnnRunStats& shard, KnnRunStats* total);

/// One shard's complete contribution to a same-k query group, in the
/// transport-free form both shard backends produce: the in-process
/// threads (KnnService) and the remote shard-worker processes hand the
/// router the same struct, so the final merge is one code path whichever
/// side of a socket the shard ran on.
///
/// A pristine shard (no overlay, identity ids) reports its raw engine /
/// host-kernel result: indices local to the slice, stable id = local
/// index + `offset`. A mutated shard reports its own exact live top-k
/// with stable ids already substituted (the shard-local
/// MergeMutableResults over its over-queried base and its delta scan).
/// The run-stat fields are the flattened subset the serving layer
/// aggregates; a host-routed shard ran no simulated device and reports
/// zeros with device_routed = false.
struct ShardAnswer {
  bool pristine = true;
  KnnResult result;     ///< k columns; see above for index semantics.
  uint32_t offset = 0;  ///< First stable id of a pristine slice.

  bool device_routed = true;
  double sim_time_s = 0.0;
  double level1_s = 0.0;      ///< Simulated level-1 kernel seconds.
  double level2_s = 0.0;      ///< Simulated level-2 kernel seconds.
  double transfer_s = 0.0;    ///< Simulated PCIe transfer seconds.
  double preprocess_s = 0.0;  ///< Everything else (upload, clustering).
  uint64_t distance_calcs = 0;
  uint64_t total_pairs = 0;
  Level2Filter filter_used = Level2Filter::kFull;
  KnearestsPlacement placement_used = KnearestsPlacement::kGlobal;
  int threads_per_query = 1;
  /// Host wall-clock of this shard's scan (route latency observation).
  double route_seconds = 0.0;

  /// Approximate tier: true when the base scan ran the ANN graph search
  /// instead of an exact kernel (device_routed is then false). The work
  /// counters feed the per-mode service metrics.
  bool approx = false;
  uint64_t ann_hops = 0;        ///< Graph nodes expanded, group total.
  uint64_t ann_candidates = 0;  ///< Distance evaluations, group total.
};

/// Merges per-shard answers into the exact global top-k. When every
/// answer is pristine this is MergeShardResults verbatim (offset remap,
/// pool, partial sort under NeighborLess); otherwise each answer's rows
/// are already that shard's exact live top-k under (distance, stable
/// id), every stable id lives in exactly one shard, and pooling the
/// per-shard lists and keeping the k smallest under the same total order
/// is exactly the flat MergeMutableResults over all base + delta
/// sources — so the merged rows are bit-identical to the in-process
/// single-merge path, which is itself fuzz-proven against brute force.
KnnResult MergeShardAnswers(const std::vector<ShardAnswer>& answers, int k);

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_SHARD_MERGE_H_
