#include "core/delta_overlay.h"

#include <algorithm>

#include "common/logging.h"
#include "common/topk.h"
#include "core/device_points.h"
#include "simd/simd_kernels.h"

namespace sweetknn::core {

void DeltaBuffer::Append(uint32_t id, const float* row) {
  SK_CHECK_GT(dims, 0u);
  SK_CHECK(ids.empty() || id > ids.back())
      << "delta ids must be appended in increasing order";
  ids.push_back(id);
  points.insert(points.end(), row, row + dims);
}

size_t DeltaBuffer::Find(uint32_t id) const {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) return kNotFound;
  return static_cast<size_t>(it - ids.begin());
}

void DeltaBuffer::EraseAt(size_t pos) {
  SK_CHECK(pos < ids.size());
  ids.erase(ids.begin() + static_cast<ptrdiff_t>(pos));
  points.erase(points.begin() + static_cast<ptrdiff_t>(pos * dims),
               points.begin() + static_cast<ptrdiff_t>((pos + 1) * dims));
}

void DeltaBuffer::Clear() {
  ids.clear();
  points.clear();
  tombstones.clear();
}

KnnResult ScanDelta(const DeltaBuffer& delta, const HostMatrix& queries,
                    int k, Metric metric) {
  SK_CHECK_GT(k, 0);
  SK_CHECK_EQ(queries.cols(), delta.dims);
  KnnResult result(queries.rows(), k);
  // Pack the delta once per scan; the batch kernels reproduce the old
  // per-pair AccessorDistance loop bit for bit. With tombstones present
  // the select falls back to the skip-aware scalar walk (same ascending
  // order, same PushIfCloser semantics).
  const simd::PackedTargets packed =
      simd::PackedTargets::Pack(delta.points.data(), delta.size(), delta.dims);
  std::vector<float> dists(delta.size());
  for (size_t q = 0; q < queries.rows(); ++q) {
    TopK topk(k);
    if (delta.size() > 0) {
      simd::QueryDistances(queries.row(q), packed, SimdDistFor(metric),
                           dists.data());
      if (delta.tombstones.empty()) {
        simd::SelectNearest(dists.data(), delta.size(), /*index_base=*/0,
                            &topk);
      } else {
        for (size_t i = 0; i < delta.size(); ++i) {
          if (delta.tombstones.count(delta.ids[i]) != 0) continue;
          topk.PushIfCloser(Neighbor{static_cast<uint32_t>(i), dists[i]});
        }
      }
    }
    result.SetRow(q, topk.Sorted());
  }
  return result;
}

}  // namespace sweetknn::core
