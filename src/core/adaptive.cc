#include "core/adaptive.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sweetknn::core {

int PlacementThreshold1(const gpusim::DeviceSpec& spec) {
  return spec.shared_mem_per_sm_bytes / spec.max_threads_per_sm;
}

int PlacementThreshold2(const gpusim::DeviceSpec& spec) {
  return spec.max_registers_per_thread * 4;
}

namespace {

/// Largest divisor of `n` that is <= `x` (used to make the inner/outer
/// parallelization factors compose exactly to threads_per_query).
int LargestDivisorAtMost(int n, int x) {
  x = std::clamp(x, 1, n);
  for (int d = x; d >= 1; --d) {
    if (n % d == 0) return d;
  }
  return 1;
}

}  // namespace

AdaptiveDecision DecideConfiguration(const gpusim::DeviceSpec& spec,
                                     const TiOptions& options, size_t num_q,
                                     size_t num_t, size_t dims, int k,
                                     int num_target_clusters) {
  SK_CHECK_GT(k, 0);
  SK_CHECK_GT(dims, 0u);
  AdaptiveDecision out;

  // Filter strength: k/d > 8 favors the partial filter (section IV-D1).
  if (options.filter_override.has_value()) {
    out.filter = *options.filter_override;
  } else {
    out.filter = static_cast<double>(k) / static_cast<double>(dims) >
                         options.partial_filter_kd_threshold
                     ? Level2Filter::kPartial
                     : Level2Filter::kFull;
  }

  // kNearests placement (full filter only; the partial filter has none).
  if (options.placement_override.has_value()) {
    out.placement = *options.placement_override;
  } else {
    const int bytes = 4 * k;  // The paper sizes the float distance array.
    if (bytes <= PlacementThreshold1(spec)) {
      out.placement = KnearestsPlacement::kShared;
    } else if (bytes <= PlacementThreshold2(spec)) {
      out.placement = KnearestsPlacement::kRegisters;
    } else {
      out.placement = KnearestsPlacement::kGlobal;
    }
  }

  // Parallelism (section IV-D3): total threads budget r * max_cur. The
  // raw per-query count is decomposed as inner_stride * outer so both
  // loop-parallelization factors are integral: the inner factor aims at
  // the average cluster size |T|/|CT| (section IV-B2), the outer factor
  // takes the rest (e.g. arcene: 6656/100 = 66.6 -> 3 x 22 = 66 threads
  // per query, matching the paper's 66).
  int tpq_raw = 1;
  if (options.threads_per_query_override > 0) {
    tpq_raw = options.threads_per_query_override;
  } else if (options.elastic_parallelism &&
             out.filter == Level2Filter::kFull) {
    const double budget = options.parallelism_r *
                          static_cast<double>(spec.MaxConcurrentThreads());
    if (static_cast<double>(num_q) < budget) {
      tpq_raw = std::max(
          1, static_cast<int>(budget / static_cast<double>(num_q)));
    }
  }
  if (tpq_raw > 1) {
    const int avg_cluster = std::max<int>(
        1, static_cast<int>(num_t /
                            std::max<size_t>(
                                1, static_cast<size_t>(num_target_clusters))));
    if (options.threads_per_query_override > 0) {
      // A forced count is honored exactly; the inner factor becomes its
      // largest divisor not exceeding the average cluster size.
      out.inner_stride = LargestDivisorAtMost(tpq_raw, avg_cluster);
      out.threads_per_query = tpq_raw;
    } else {
      const int inner = std::clamp(avg_cluster, 1, tpq_raw);
      const int outer = std::max(1, tpq_raw / inner);
      out.inner_stride = inner;
      out.threads_per_query = inner * outer;
    }
  } else {
    out.inner_stride = 1;
    out.threads_per_query = 1;
  }
  return out;
}

}  // namespace sweetknn::core
