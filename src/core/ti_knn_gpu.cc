#include "core/ti_knn_gpu.h"

#include <algorithm>

#include "core/adaptive.h"

namespace sweetknn::core {

namespace {
ClusteringConfig MakeClusteringConfig(const TiOptions& options) {
  ClusteringConfig ccfg;
  ccfg.landmarks_override = options.landmarks_override;
  ccfg.kmeans_iterations = options.kmeans_iterations;
  ccfg.block_threads = options.block_threads;
  return ccfg;
}
}  // namespace

void TiKnnEngine::PrepareTarget(const HostMatrix& target) {
  SK_CHECK(!target.empty());
  if (options_.sim_threads > 0) {
    dev_->set_execution_threads(options_.sim_threads);
  }
  dev_->ResetProfile();
  target_ = DevicePoints::Upload(dev_, target, options_.layout,
                                 "target points",
                                 options_.point_vector_width,
                                 options_.metric);
  tc_ = BuildTargetClustering(dev_, target_, MakeClusteringConfig(options_));
  prepare_profile_ = dev_->profile();
  target_prepared_ = true;
  prepared_ = false;
}

void TiKnnEngine::RestoreTarget(const HostMatrix& target,
                                const TargetClusteringHost& clustering) {
  SK_CHECK(!target.empty());
  SK_CHECK_EQ(clustering.assignment.size(), target.rows());
  if (options_.sim_threads > 0) {
    dev_->set_execution_threads(options_.sim_threads);
  }
  dev_->ResetProfile();
  target_ = DevicePoints::Upload(dev_, target, options_.layout,
                                 "target points",
                                 options_.point_vector_width,
                                 options_.metric);
  tc_ = UploadTargetClustering(dev_, clustering, options_.layout,
                               options_.point_vector_width, options_.metric);
  prepare_profile_ = dev_->profile();
  target_prepared_ = true;
  prepared_ = false;
}

HostMatrix TiKnnEngine::ExportTarget() const {
  SK_CHECK(target_prepared_) << "call PrepareTarget() or Prepare() first";
  HostMatrix out(target_.n(), target_.dims());
  for (size_t p = 0; p < target_.n(); ++p) {
    for (size_t j = 0; j < target_.dims(); ++j) {
      out.at(p, j) = target_.At(p, j);
    }
  }
  return out;
}

TargetClusteringHost TiKnnEngine::ExportTargetClustering() const {
  SK_CHECK(target_prepared_) << "call PrepareTarget() or Prepare() first";
  return DownloadTargetClustering(tc_);
}

void TiKnnEngine::Prepare(const HostMatrix& query, const HostMatrix& target) {
  SK_CHECK(!query.empty() && !target.empty());
  SK_CHECK_EQ(query.cols(), target.cols());
  PrepareTarget(target);
  dev_->ResetProfile();

  query_ = DevicePoints::Upload(dev_, query, options_.layout, "query points",
                                options_.point_vector_width,
                                options_.metric);
  if (&query == &target) {
    // Self-join (the paper's experimental setting): share the landmark
    // selection and assignment between the two sides.
    qc_ = QueryClusteringFromTarget(dev_, query_, tc_);
  } else {
    qc_ = BuildQueryClustering(dev_, query_, MakeClusteringConfig(options_));
  }

  for (const gpusim::LaunchRecord& record : dev_->profile().launches) {
    prepare_profile_.launches.push_back(record);
  }
  prepare_profile_.transfer_time_s += dev_->profile().transfer_time_s;
  prepared_ = true;
}

KnnResult TiKnnEngine::RunQueries(const HostMatrix& query, int k,
                                  KnnRunStats* stats) {
  SK_CHECK(target_prepared_) << "call PrepareTarget() or Prepare() first";
  SK_CHECK_EQ(query.cols(), target_.dims());
  if (options_.sim_threads > 0) {
    dev_->set_execution_threads(options_.sim_threads);
  }
  dev_->ResetProfile();
  query_ = DevicePoints::Upload(dev_, query, options_.layout, "query batch",
                                options_.point_vector_width,
                                options_.metric);
  qc_ = BuildQueryClustering(dev_, query_, MakeClusteringConfig(options_));
  // Query-side preparation is part of this batch's cost.
  gpusim::Profile batch_prep = dev_->profile();
  prepared_ = true;
  KnnResult result = RunPrepared(k, stats);
  if (stats != nullptr) {
    // Splice the batch's query-side preparation into the profile (the
    // target preparation is already included by RunPrepared).
    for (const gpusim::LaunchRecord& record : batch_prep.launches) {
      stats->profile.launches.push_back(record);
    }
    stats->profile.transfer_time_s += batch_prep.transfer_time_s;
    stats->sim_time_s = stats->profile.TotalTime();
  }
  return result;
}

KnnResult TiKnnEngine::Run(int k, KnnRunStats* stats) {
  SK_CHECK(prepared_) << "call Prepare() first";
  return RunPrepared(k, stats);
}

KnnResult TiKnnEngine::RunPrepared(int k, KnnRunStats* stats) {
  SK_CHECK_GT(k, 0);
  dev_->ResetProfile();

  const size_t num_q = query_.n();
  const size_t num_t = target_.n();
  const size_t dims = query_.dims();

  Level1Result l1 = RunLevel1(dev_, qc_, tc_, k, options_.block_threads);

  const AdaptiveDecision decision = DecideConfiguration(
      dev_->spec(), options_, num_q, num_t, dims, k, tc_.num_clusters);

  Level2Config cfg;
  cfg.k = k;
  cfg.filter = decision.filter;
  cfg.placement = decision.placement;
  cfg.knearests_layout = options_.knearests_layout;
  cfg.remap = options_.remap_threads;
  cfg.threads_per_query =
      decision.filter == Level2Filter::kPartial ? 1 : decision.threads_per_query;
  cfg.inner_stride =
      decision.filter == Level2Filter::kPartial ? 1 : decision.inner_stride;
  cfg.block_threads = options_.block_threads;

  // Partition the query slots so per-partition level-2 buffers fit in the
  // remaining device memory (the paper partitions the query set the same
  // way when memory is insufficient).
  KnnResult result(num_q, k);
  Level2Stats l2_stats;
  int partitions = 0;
  size_t slot = 0;
  const size_t budget = static_cast<size_t>(
      0.9 * static_cast<double>(dev_->free_bytes()));
  while (slot < num_q) {
    size_t end = num_q;
    while (end > slot + 1 &&
           Level2BufferBytes(cfg, qc_, tc_, l1, slot, end) > budget) {
      end = slot + (end - slot + 1) / 2;
    }
    RunLevel2(dev_, query_, target_, qc_, tc_, l1, cfg, slot, end, &result,
              &l2_stats);
    ++partitions;
    slot = end;
  }

  if (stats != nullptr) {
    stats->distance_calcs = l2_stats.distance_calcs;
    stats->total_pairs = static_cast<uint64_t>(num_q) * num_t;
    stats->filter_used = cfg.filter;
    stats->placement_used = cfg.placement;
    stats->threads_per_query = cfg.threads_per_query;
    stats->landmarks_query = qc_.num_clusters;
    stats->landmarks_target = tc_.num_clusters;
    stats->query_partitions = partitions;

    // Fold the Step-1 preprocessing into the reported time and profile,
    // as the paper's end-to-end speedups do.
    stats->profile = prepare_profile_;
    for (const gpusim::LaunchRecord& record : dev_->profile().launches) {
      stats->profile.launches.push_back(record);
    }
    stats->profile.transfer_time_s += dev_->profile().transfer_time_s;
    stats->sim_time_s = stats->profile.TotalTime();

    gpusim::KernelStats filter_stats =
        stats->profile.StatsForKernelsMatching("level2_full_filter");
    filter_stats.Merge(
        stats->profile.StatsForKernelsMatching("level2_partial_filter"));
    stats->level2_warp_efficiency = filter_stats.WarpEfficiency();
  }
  return result;
}

}  // namespace sweetknn::core
