#ifndef SWEETKNN_CORE_TI_BOUNDS_H_
#define SWEETKNN_CORE_TI_BOUNDS_H_

#include <cmath>

namespace sweetknn::core {

/// Triangle-inequality distance bounds (paper section II-B). All
/// distances are plain Euclidean distances (not squared).

/// 1-landmark lower bound: LB(q,t) = |d(q,L) - d(t,L)|  (paper Eq. 1).
inline float OneLandmarkLowerBound(float d_q_l, float d_t_l) {
  return std::fabs(d_q_l - d_t_l);
}

/// 1-landmark upper bound: UB(q,t) = d(q,L) + d(t,L)  (paper Eq. 2).
inline float OneLandmarkUpperBound(float d_q_l, float d_t_l) {
  return d_q_l + d_t_l;
}

/// 2-landmark lower bound: LB(q,t) = d(L1,L2) - d(q,L1) - d(L2,t)
/// (paper Eq. 3). May be negative, in which case it carries no
/// information (distance >= 0 always holds).
inline float TwoLandmarkLowerBound(float d_l1_l2, float d_q_l1,
                                   float d_l2_t) {
  return d_l1_l2 - d_q_l1 - d_l2_t;
}

/// 2-landmark upper bound: UB(q,t) = d(q,L1) + d(L1,L2) + d(L2,t)
/// (paper Eq. 4).
inline float TwoLandmarkUpperBound(float d_l1_l2, float d_q_l1,
                                   float d_l2_t) {
  return d_q_l1 + d_l1_l2 + d_l2_t;
}

/// The signed level-2 quantity of Algorithm 2 line 9:
/// l = d(q, c_t) - d(t, c_t). |l| is the 1-landmark lower bound; the
/// sign tells whether t is closer to the center than q's shell (l < 0)
/// or farther (l > 0), which drives the monotone break.
inline float SignedPointBound(float d_q_tc, float d_t_tc) {
  return d_q_tc - d_t_tc;
}

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_TI_BOUNDS_H_
