#include "core/knn_classifier.h"

#include <map>

namespace sweetknn {

KnnClassifier::KnnClassifier(const HostMatrix& train,
                             std::vector<int> labels, const Options& options)
    : options_(options), labels_(std::move(labels)),
      index_(train, options.engine) {
  SK_CHECK_EQ(labels_.size(), train.rows());
  SK_CHECK_GT(options_.k, 0);
}

std::vector<KnnClassifier::Prediction> KnnClassifier::PredictWithConfidence(
    const HostMatrix& queries) {
  const KnnResult result = index_.Query(queries, options_.k);
  std::vector<Prediction> out(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    std::map<int, double> votes;
    double total = 0.0;
    for (int i = 0; i < result.k(); ++i) {
      const Neighbor& n = result.row(q)[i];
      if (n.index == kInvalidNeighbor) continue;
      const double weight =
          options_.distance_weighted
              ? 1.0 / (static_cast<double>(n.distance) + 1e-8)
              : 1.0;
      votes[labels_[n.index]] += weight;
      total += weight;
    }
    Prediction& p = out[q];
    for (const auto& [label, weight] : votes) {
      if (weight > p.confidence) {
        p.label = label;
        p.confidence = weight;
      }
    }
    if (total > 0.0) p.confidence /= total;
  }
  return out;
}

std::vector<int> KnnClassifier::Predict(const HostMatrix& queries) {
  const auto predictions = PredictWithConfidence(queries);
  std::vector<int> out(predictions.size());
  for (size_t i = 0; i < predictions.size(); ++i) {
    out[i] = predictions[i].label;
  }
  return out;
}

double KnnClassifier::Score(const HostMatrix& queries,
                            const std::vector<int>& truth) {
  SK_CHECK_EQ(truth.size(), queries.rows());
  const std::vector<int> predicted = Predict(queries);
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (predicted[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace sweetknn
