#include "core/level2.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/thread_pool.h"
#include "core/knearests_sim.h"
#include "core/ti_bounds.h"

namespace sweetknn::core {

namespace {

using gpusim::Device;
using gpusim::DeviceBuffer;
using gpusim::KernelMeta;
using gpusim::LaneMask;
using gpusim::LaunchConfig;
using gpusim::Reg;
using gpusim::Warp;

/// Candidate target points per query cluster (the partial filter's
/// worst-case survivor count).
std::vector<uint64_t> ClusterCandidatePoints(const TargetClustering& tc,
                                             const Level1Result& l1,
                                             int num_query_clusters) {
  std::vector<uint64_t> out(static_cast<size_t>(num_query_clusters), 0);
  for (int cq = 0; cq < num_query_clusters; ++cq) {
    for (uint32_t i = l1.cand_offsets[cq]; i < l1.cand_offsets[cq + 1];
         ++i) {
      const uint32_t tcid = l1.cand_clusters[i];
      out[static_cast<size_t>(cq)] +=
          tc.member_offsets[tcid + 1] - tc.member_offsets[tcid];
    }
  }
  return out;
}

uint32_t SlotQuery(const QueryClustering& qc, bool remap, size_t slot) {
  return remap ? qc.members[slot] : static_cast<uint32_t>(slot);
}

/// Copies a slot range's rows from the per-partition device output
/// buffers into the host-side KnnResult (invalid indices -> padding).
void HarvestRows(Device* dev, const QueryClustering& qc, bool remap,
                 size_t slot_begin, size_t slot_end, int k,
                 const DeviceBuffer<float>& out_dist,
                 const DeviceBuffer<uint32_t>& out_idx, KnnResult* result) {
  const size_t nslots = slot_end - slot_begin;
  std::vector<float> dists(nslots * static_cast<size_t>(k));
  std::vector<uint32_t> indices(nslots * static_cast<size_t>(k));
  dev->CopyToHost(out_dist, dists.data(), dists.size());
  dev->CopyToHost(out_idx, indices.data(), indices.size());
  for (size_t s = 0; s < nslots; ++s) {
    const uint32_t qid = SlotQuery(qc, remap, slot_begin + s);
    Neighbor* row = result->mutable_row(qid);
    for (int j = 0; j < k; ++j) {
      const size_t src = s * static_cast<size_t>(k) + static_cast<size_t>(j);
      if (indices[src] == kInvalidNeighbor) {
        row[j] = Neighbor{kInvalidNeighbor,
                          std::numeric_limits<float>::infinity()};
      } else {
        row[j] = Neighbor{indices[src], dists[src]};
      }
    }
  }
}

/// The full level-2 filtering kernel (Algorithm 2), with optional
/// thread-data remapping and multi-thread-per-query parallelism.
void RunFull(Device* dev, const DevicePoints& query,
             const DevicePoints& target, const QueryClustering& qc,
             const TargetClustering& tc, const Level1Result& l1,
             const Level2Config& cfg, size_t slot_begin, size_t slot_end,
             KnnResult* result, Level2Stats* stats) {
  const size_t nslots = slot_end - slot_begin;
  const int k = cfg.k;
  const int tpq = cfg.threads_per_query;
  const int fi = cfg.inner_stride;
  const int fo = tpq / fi;
  SK_CHECK_EQ(fi * fo, tpq);
  const size_t total_threads = nslots * static_cast<size_t>(tpq);
  const size_t dims = query.dims();
  const Metric metric = query.metric();

  DeviceBuffer<float> out_dist =
      dev->Alloc<float>(nslots * static_cast<size_t>(k), "l2 out dists");
  DeviceBuffer<uint32_t> out_idx =
      dev->Alloc<uint32_t>(nslots * static_cast<size_t>(k), "l2 out idx");

  DeviceBuffer<float> global_knear;
  if (cfg.placement == KnearestsPlacement::kGlobal) {
    global_knear = dev->Alloc<float>(total_threads * static_cast<size_t>(k),
                                     "kNearests pool");
  }

  DeviceBuffer<float> part_dist;
  DeviceBuffer<uint32_t> part_idx;
  DeviceBuffer<float> theta_shared;
  if (tpq > 1) {
    part_dist = dev->Alloc<float>(total_threads * static_cast<size_t>(k),
                                  "partial heaps d");
    part_idx = dev->Alloc<uint32_t>(total_threads * static_cast<size_t>(k),
                                    "partial heaps i");
    theta_shared = dev->Alloc<float>(nslots, "shared theta");

    // Seed the shared upper bounds from the level-1 cluster bounds.
    KernelMeta meta{"level2_theta_init", 24, 0};
    dev->Launch(meta,
                LaunchConfig::Cover(static_cast<int64_t>(nslots),
                                    cfg.block_threads),
                [&](Warp& w) {
      const LaneMask valid = w.Ballot([&](int lane) {
        return static_cast<size_t>(w.GlobalThreadId(lane)) < nslots;
      });
      w.If(valid, [&] {
        Reg<uint32_t> qid;
        if (cfg.remap) {
          w.Load(qc.members,
                 [&](int lane) {
                   return slot_begin +
                          static_cast<size_t>(w.GlobalThreadId(lane));
                 },
                 [&](int lane, uint32_t v) { qid[lane] = v; });
        } else {
          w.Op([&](int lane) {
            qid[lane] = static_cast<uint32_t>(
                slot_begin + static_cast<size_t>(w.GlobalThreadId(lane)));
          });
        }
        Reg<uint32_t> cid;
        w.Load(qc.assignment, [&](int lane) { return qid[lane]; },
               [&](int lane, uint32_t v) { cid[lane] = v; });
        Reg<float> ub;
        w.Load(l1.cluster_ub, [&](int lane) { return cid[lane]; },
               [&](int lane, float v) { ub[lane] = v; });
        w.Store(theta_shared,
                [&](int lane) { return w.GlobalThreadId(lane); },
                [&](int lane) { return ub[lane]; });
      });
    });
  }

  const int regs = KnearestsSim::RegistersForPlacement(cfg.placement, k, 44);
  const int shared = KnearestsSim::SharedBytesForPlacement(
      cfg.placement, k, cfg.block_threads);
  // Distance counting from concurrently executing blocks goes through a
  // sharded counter; the plain uint64 in Level2Stats would race.
  common::ShardedCounter distance_calcs;
  KernelMeta meta{"level2_full_filter", regs, shared};
  // When tpq divides the block size, every cooperating thread group (and
  // its shared theta slot) lives inside one block, so parallel block
  // execution cannot reorder theta propagation. Otherwise a group
  // straddles a block boundary and theta updates become cross-block and
  // execution-order dependent — run those launches serially.
  meta.host_serial = tpq > 1 && cfg.block_threads % tpq != 0;
  dev->Launch(meta,
              LaunchConfig::Cover(static_cast<int64_t>(total_threads),
                                  cfg.block_threads),
              [&](Warp& w) {
    const LaneMask valid = w.Ballot([&](int lane) {
      return static_cast<size_t>(w.GlobalThreadId(lane)) < total_threads;
    });
    if (valid == 0) return;
    w.If(valid, [&] {
      Reg<size_t> local_slot;
      Reg<int> sub_outer;
      Reg<int> sub_inner;
      w.Op([&](int lane) {
        const size_t tid = static_cast<size_t>(w.GlobalThreadId(lane));
        local_slot[lane] = tid / static_cast<size_t>(tpq);
        const int sub = static_cast<int>(tid % static_cast<size_t>(tpq));
        sub_outer[lane] = sub / fi;
        sub_inner[lane] = sub % fi;
      });
      Reg<uint32_t> qid;
      if (cfg.remap) {
        w.Load(qc.members,
               [&](int lane) { return slot_begin + local_slot[lane]; },
               [&](int lane, uint32_t v) { qid[lane] = v; });
      } else {
        w.Op([&](int lane) {
          qid[lane] = static_cast<uint32_t>(slot_begin + local_slot[lane]);
        });
      }
      Reg<uint32_t> cid;
      w.Load(qc.assignment, [&](int lane) { return qid[lane]; },
             [&](int lane, uint32_t v) { cid[lane] = v; });
      Reg<float> theta;
      w.Load(l1.cluster_ub, [&](int lane) { return cid[lane]; },
             [&](int lane, float v) { theta[lane] = v; });
      Reg<PointAccessor> qpoint;
      query.LoadPoints(w, [&](int lane) { return qid[lane]; },
                       [&](int lane, PointAccessor acc) {
                         qpoint[lane] = acc;
                       });

      KnearestsSim knear(k, cfg.placement, cfg.knearests_layout,
                         cfg.placement == KnearestsPlacement::kGlobal
                             ? &global_knear
                             : nullptr,
                         total_threads, dev->spec().l2_cache_bytes);
      knear.InitInfinity(w);

      Reg<uint32_t> cand_begin;
      Reg<uint32_t> cand_end;
      w.Load(l1.cand_offsets, [&](int lane) { return cid[lane]; },
             [&](int lane, uint32_t v) { cand_begin[lane] = v; });
      w.Load(l1.cand_offsets,
             [&](int lane) { return cid[lane] + 1; },
             [&](int lane, uint32_t v) { cand_end[lane] = v; });

      Reg<uint32_t> ci;
      w.Op([&](int lane) {
        ci[lane] = cand_begin[lane] + static_cast<uint32_t>(sub_outer[lane]);
      });
      w.While(
          [&](int lane) { return ci[lane] < cand_end[lane]; },
          [&] {
            Reg<uint32_t> tcid;
            w.Load(l1.cand_clusters, [&](int lane) { return ci[lane]; },
                   [&](int lane, uint32_t v) { tcid[lane] = v; });
            Reg<PointAccessor> tcenter;
            tc.centers.LoadPoints(
                w, [&](int lane) { return tcid[lane]; },
                [&](int lane, PointAccessor acc) { tcenter[lane] = acc; });
            Reg<float> q2tc;
            w.Op(
                [&](int lane) {
                  q2tc[lane] =
                      AccessorDistance(qpoint[lane], tcenter[lane],
                                       dims, metric);
                },
                DistanceOpCost(dims));
            if (tpq > 1) {
              // Refresh the cooperative bound.
              Reg<float> ts;
              w.Load(theta_shared,
                     [&](int lane) { return local_slot[lane]; },
                     [&](int lane, float v) { ts[lane] = v; });
              w.Op([&](int lane) {
                theta[lane] = std::min(theta[lane], ts[lane]);
              });
            }
            Reg<uint32_t> mbegin;
            Reg<uint32_t> mend;
            w.Load(tc.member_offsets, [&](int lane) { return tcid[lane]; },
                   [&](int lane, uint32_t v) { mbegin[lane] = v; });
            w.Load(tc.member_offsets,
                   [&](int lane) { return tcid[lane] + 1; },
                   [&](int lane, uint32_t v) { mend[lane] = v; });
            Reg<uint32_t> t;
            w.Op([&](int lane) {
              t[lane] =
                  mbegin[lane] + static_cast<uint32_t>(sub_inner[lane]);
            });
            w.While(
                [&](int lane) { return t[lane] < mend[lane]; },
                [&] {
                  // Member distances stream through float4 vector loads
                  // (paper IV-C3): with a unit-stride scan one 16-byte
                  // load serves four consecutive iterations.
                  Reg<float> mdist;
                  if (fi == 1) {
                    uint64_t quad_starts = 0;
                    w.Op(
                        [&](int lane) {
                          mdist[lane] = tc.member_dists[t[lane]];
                          if (t[lane] % 4 == 0) ++quad_starts;
                        },
                        /*cost=*/0);
                    if (quad_starts > 0) w.ChargeMemory(quad_starts, 1, 0);
                  } else {
                    w.Load(tc.member_dists,
                           [&](int lane) { return t[lane]; },
                           [&](int lane, float v) { mdist[lane] = v; });
                  }
                  Reg<float> lb;
                  w.Op([&](int lane) {
                    lb[lane] = SignedPointBound(q2tc[lane], mdist[lane]);
                  });
                  // Members are ordered by descending center distance, so
                  // lb only grows: once lb > theta nothing later in this
                  // cluster can qualify (Algorithm 2 line 10).
                  w.BreakIf(w.Ballot(
                      [&](int lane) { return lb[lane] > theta[lane]; }));
                  const LaneMask check = w.Ballot([&](int lane) {
                    return lb[lane] >= -theta[lane];
                  });
                  w.If(check, [&] {
                    Reg<uint32_t> tix;
                    w.Load(tc.member_ids,
                           [&](int lane) { return t[lane]; },
                           [&](int lane, uint32_t v) { tix[lane] = v; });
                    Reg<PointAccessor> tpoint;
                    target.LoadPoints(
                        w, [&](int lane) { return tix[lane]; },
                        [&](int lane, PointAccessor acc) {
                          tpoint[lane] = acc;
                        });
                    Reg<float> dist;
                    w.Op(
                        [&](int lane) {
                          dist[lane] = AccessorDistance(
                              qpoint[lane], tpoint[lane], dims, metric);
                          distance_calcs.Add(1);
                        },
                        DistanceOpCost(dims));
                    const LaneMask inserted = knear.TryInsert(
                        w, dist, tix,
                        [&](int lane) { return w.GlobalThreadId(lane); });
                    w.If(inserted, [&] {
                      w.Op([&](int lane) {
                        theta[lane] =
                            std::min(theta[lane], knear.Root(lane));
                      });
                      if (tpq > 1) {
                        w.AtomicMinFloat(
                            theta_shared,
                            [&](int lane) { return local_slot[lane]; },
                            [&](int lane) { return knear.Root(lane); });
                      }
                    });
                  });
                  w.Op([&](int lane) {
                    t[lane] += static_cast<uint32_t>(fi);
                  });
                });
            w.Op([&](int lane) {
              ci[lane] += static_cast<uint32_t>(fo);
            });
          });

      knear.ExtractSorted(w);
      if (tpq == 1) {
        w.StoreRange(
            out_dist,
            [&](int lane) {
              return local_slot[lane] * static_cast<size_t>(k);
            },
            static_cast<size_t>(k), 4, [&](int lane, size_t j) {
              return knear.Lane(lane)[j].distance;
            });
        w.StoreRange(
            out_idx,
            [&](int lane) {
              return local_slot[lane] * static_cast<size_t>(k);
            },
            static_cast<size_t>(k), 4, [&](int lane, size_t j) {
              return knear.Lane(lane)[j].index;
            });
      } else {
        w.StoreRange(
            part_dist,
            [&](int lane) {
              return static_cast<size_t>(w.GlobalThreadId(lane)) *
                     static_cast<size_t>(k);
            },
            static_cast<size_t>(k), 4, [&](int lane, size_t j) {
              return knear.Lane(lane)[j].distance;
            });
        w.StoreRange(
            part_idx,
            [&](int lane) {
              return static_cast<size_t>(w.GlobalThreadId(lane)) *
                     static_cast<size_t>(k);
            },
            static_cast<size_t>(k), 4, [&](int lane, size_t j) {
              return knear.Lane(lane)[j].index;
            });
      }
    });
  });
  stats->distance_calcs += distance_calcs.Sum();

  if (tpq > 1) {
    // Merge each query's tpq sorted partial heaps (merge-sort style,
    // paper IV-B2 last paragraph).
    KernelMeta merge_meta{"level2_merge", 48, 0};
    dev->Launch(merge_meta,
                LaunchConfig::Cover(static_cast<int64_t>(nslots),
                                    cfg.block_threads),
                [&](Warp& w) {
      const LaneMask valid = w.Ballot([&](int lane) {
        return static_cast<size_t>(w.GlobalThreadId(lane)) < nslots;
      });
      w.If(valid, [&] {
        Reg<const float*> dptr;
        Reg<const uint32_t*> iptr;
        w.LoadRange(
            part_dist,
            [&](int lane) {
              return static_cast<size_t>(w.GlobalThreadId(lane)) *
                     static_cast<size_t>(tpq) * static_cast<size_t>(k);
            },
            static_cast<size_t>(tpq) * static_cast<size_t>(k), 4,
            [&](int lane, const float* p) { dptr[lane] = p; });
        w.LoadRange(
            part_idx,
            [&](int lane) {
              return static_cast<size_t>(w.GlobalThreadId(lane)) *
                     static_cast<size_t>(tpq) * static_cast<size_t>(k);
            },
            static_cast<size_t>(tpq) * static_cast<size_t>(k), 4,
            [&](int lane, const uint32_t* p) { iptr[lane] = p; });
        std::array<std::vector<Neighbor>, gpusim::kWarpSize> merged;
        w.Op([&](int lane) {
          auto& out = merged[static_cast<size_t>(lane)];
          out.clear();
          for (size_t e = 0;
               e < static_cast<size_t>(tpq) * static_cast<size_t>(k); ++e) {
            if (iptr[lane][e] != kInvalidNeighbor) {
              out.push_back(Neighbor{iptr[lane][e], dptr[lane][e]});
            }
          }
          std::sort(out.begin(), out.end(), NeighborLess);
          if (out.size() > static_cast<size_t>(k)) {
            out.resize(static_cast<size_t>(k));
          }
          while (out.size() < static_cast<size_t>(k)) {
            out.push_back(Neighbor{kInvalidNeighbor,
                                   std::numeric_limits<float>::infinity()});
          }
        });
        // k-way merge cost: k output steps over a tpq-wide frontier.
        const uint64_t merge_cost =
            static_cast<uint64_t>(k) *
                (static_cast<uint64_t>(std::log2(std::max(2, tpq))) + 1) +
            static_cast<uint64_t>(tpq);
        w.Op([](int) {}, merge_cost);
        w.StoreRange(
            out_dist,
            [&](int lane) {
              return static_cast<size_t>(w.GlobalThreadId(lane)) *
                     static_cast<size_t>(k);
            },
            static_cast<size_t>(k), 4, [&](int lane, size_t j) {
              return merged[static_cast<size_t>(lane)][j].distance;
            });
        w.StoreRange(
            out_idx,
            [&](int lane) {
              return static_cast<size_t>(w.GlobalThreadId(lane)) *
                     static_cast<size_t>(k);
            },
            static_cast<size_t>(k), 4, [&](int lane, size_t j) {
              return merged[static_cast<size_t>(lane)][j].index;
            });
      });
    });
  }

  HarvestRows(dev, qc, cfg.remap, slot_begin, slot_end, k, out_dist,
              out_idx, result);
}

/// The partial level-2 filter (paper IV-B1): theta frozen at the level-1
/// bound, surviving distances spilled to global memory, then a selection
/// kernel extracts each query's k minima.
void RunPartial(Device* dev, const DevicePoints& query,
                const DevicePoints& target, const QueryClustering& qc,
                const TargetClustering& tc, const Level1Result& l1,
                const Level2Config& cfg, size_t slot_begin, size_t slot_end,
                KnnResult* result, Level2Stats* stats) {
  SK_CHECK_EQ(cfg.threads_per_query, 1)
      << "the partial filter is query-parallel";
  const size_t nslots = slot_end - slot_begin;
  const int k = cfg.k;
  const size_t dims = query.dims();
  const Metric metric = query.metric();

  // Survivor capacity: all candidate-cluster members of the slot's query
  // cluster (exclusive scan into per-slot extents).
  const std::vector<uint64_t> cluster_cap =
      ClusterCandidatePoints(tc, l1, qc.num_clusters);
  std::vector<uint64_t> surv_offsets(nslots + 1, 0);
  for (size_t s = 0; s < nslots; ++s) {
    const uint32_t qid = SlotQuery(qc, cfg.remap, slot_begin + s);
    surv_offsets[s + 1] =
        surv_offsets[s] + cluster_cap[qc.assignment[qid]];
  }
  const uint64_t total_cap = std::max<uint64_t>(surv_offsets[nslots], 1);

  DeviceBuffer<float> surv_dist = dev->Alloc<float>(total_cap, "survivors d");
  DeviceBuffer<uint32_t> surv_idx =
      dev->Alloc<uint32_t>(total_cap, "survivors i");
  DeviceBuffer<uint32_t> surv_count =
      dev->Alloc<uint32_t>(nslots, "survivor counts");
  DeviceBuffer<float> out_dist =
      dev->Alloc<float>(nslots * static_cast<size_t>(k), "l2 out dists");
  DeviceBuffer<uint32_t> out_idx =
      dev->Alloc<uint32_t>(nslots * static_cast<size_t>(k), "l2 out idx");

  // See RunFull: block-concurrent distance counting needs sharding. The
  // filter itself is parallel-safe — each slot's survivor count and
  // survivor range are touched only by that slot's own thread.
  common::ShardedCounter distance_calcs;
  KernelMeta meta{"level2_partial_filter", 40, 0};
  dev->Launch(meta,
              LaunchConfig::Cover(static_cast<int64_t>(nslots),
                                  cfg.block_threads),
              [&](Warp& w) {
    const LaneMask valid = w.Ballot([&](int lane) {
      return static_cast<size_t>(w.GlobalThreadId(lane)) < nslots;
    });
    if (valid == 0) return;
    w.If(valid, [&] {
      Reg<size_t> local_slot;
      w.Op([&](int lane) {
        local_slot[lane] = static_cast<size_t>(w.GlobalThreadId(lane));
      });
      Reg<uint32_t> qid;
      if (cfg.remap) {
        w.Load(qc.members,
               [&](int lane) { return slot_begin + local_slot[lane]; },
               [&](int lane, uint32_t v) { qid[lane] = v; });
      } else {
        w.Op([&](int lane) {
          qid[lane] = static_cast<uint32_t>(slot_begin + local_slot[lane]);
        });
      }
      Reg<uint32_t> cid;
      w.Load(qc.assignment, [&](int lane) { return qid[lane]; },
             [&](int lane, uint32_t v) { cid[lane] = v; });
      Reg<float> theta;  // Frozen at the level-1 bound.
      w.Load(l1.cluster_ub, [&](int lane) { return cid[lane]; },
             [&](int lane, float v) { theta[lane] = v; });
      Reg<PointAccessor> qpoint;
      query.LoadPoints(w, [&](int lane) { return qid[lane]; },
                       [&](int lane, PointAccessor acc) {
                         qpoint[lane] = acc;
                       });
      Reg<uint32_t> cand_begin;
      Reg<uint32_t> cand_end;
      w.Load(l1.cand_offsets, [&](int lane) { return cid[lane]; },
             [&](int lane, uint32_t v) { cand_begin[lane] = v; });
      w.Load(l1.cand_offsets, [&](int lane) { return cid[lane] + 1; },
             [&](int lane, uint32_t v) { cand_end[lane] = v; });
      Reg<uint32_t> ci;
      w.Op([&](int lane) { ci[lane] = cand_begin[lane]; });
      w.While(
          [&](int lane) { return ci[lane] < cand_end[lane]; },
          [&] {
            Reg<uint32_t> tcid;
            w.Load(l1.cand_clusters, [&](int lane) { return ci[lane]; },
                   [&](int lane, uint32_t v) { tcid[lane] = v; });
            Reg<PointAccessor> tcenter;
            tc.centers.LoadPoints(
                w, [&](int lane) { return tcid[lane]; },
                [&](int lane, PointAccessor acc) { tcenter[lane] = acc; });
            Reg<float> q2tc;
            w.Op(
                [&](int lane) {
                  q2tc[lane] =
                      AccessorDistance(qpoint[lane], tcenter[lane],
                                       dims, metric);
                },
                DistanceOpCost(dims));
            Reg<uint32_t> mbegin;
            Reg<uint32_t> mend;
            w.Load(tc.member_offsets, [&](int lane) { return tcid[lane]; },
                   [&](int lane, uint32_t v) { mbegin[lane] = v; });
            w.Load(tc.member_offsets,
                   [&](int lane) { return tcid[lane] + 1; },
                   [&](int lane, uint32_t v) { mend[lane] = v; });
            Reg<uint32_t> t;
            w.Op([&](int lane) { t[lane] = mbegin[lane]; });
            w.While(
                [&](int lane) { return t[lane] < mend[lane]; },
                [&] {
                  // float4-vectorized member-distance stream (IV-C3).
                  Reg<float> mdist;
                  uint64_t quad_starts = 0;
                  w.Op(
                      [&](int lane) {
                        mdist[lane] = tc.member_dists[t[lane]];
                        if (t[lane] % 4 == 0) ++quad_starts;
                      },
                      /*cost=*/0);
                  if (quad_starts > 0) w.ChargeMemory(quad_starts, 1, 0);
                  Reg<float> lb;
                  w.Op([&](int lane) {
                    lb[lane] = SignedPointBound(q2tc[lane], mdist[lane]);
                  });
                  w.BreakIf(w.Ballot(
                      [&](int lane) { return lb[lane] > theta[lane]; }));
                  const LaneMask check = w.Ballot([&](int lane) {
                    return lb[lane] >= -theta[lane];
                  });
                  w.If(check, [&] {
                    Reg<uint32_t> tix;
                    w.Load(tc.member_ids,
                           [&](int lane) { return t[lane]; },
                           [&](int lane, uint32_t v) { tix[lane] = v; });
                    Reg<PointAccessor> tpoint;
                    target.LoadPoints(
                        w, [&](int lane) { return tix[lane]; },
                        [&](int lane, PointAccessor acc) {
                          tpoint[lane] = acc;
                        });
                    Reg<float> dist;
                    w.Op(
                        [&](int lane) {
                          dist[lane] = AccessorDistance(
                              qpoint[lane], tpoint[lane], dims, metric);
                          distance_calcs.Add(1);
                        },
                        DistanceOpCost(dims));
                    Reg<uint32_t> pos;
                    w.AtomicAdd(
                        surv_count,
                        [&](int lane) { return local_slot[lane]; },
                        [](int) { return uint32_t{1}; },
                        [&](int lane, uint32_t old) { pos[lane] = old; });
                    // Survivor records are staged in shared memory and
                    // written out warp-cooperatively (a standard write-
                    // combining optimization), so the global stores
                    // coalesce even though the per-query regions are
                    // scattered.
                    w.Op([&](int lane) {
                      const uint64_t at =
                          surv_offsets[local_slot[lane]] + pos[lane];
                      surv_dist[at] = dist[lane];
                      surv_idx[at] = tix[lane];
                    });
                    const uint64_t active =
                        static_cast<uint64_t>(w.ActiveCount());
                    w.ChargeMemory(
                        /*transactions=*/(active * 8 + 127) / 128 + 1,
                        /*load_instructions=*/0, /*store_instructions=*/2);
                  });
                  w.Op([&](int lane) { ++t[lane]; });
                });
            w.Op([&](int lane) { ++ci[lane]; });
          });
    });
  });
  stats->distance_calcs += distance_calcs.Sum();

  // Selection kernel: each thread loads its query's survivors into
  // shared memory, sorts them with a bitonic network, and writes the k
  // smallest (the paper's \"later launched GPU kernel [that] finds the k
  // minimal distances\").
  KernelMeta sel_meta{"level2_partial_select", 48,
                      /*shared_bytes_per_block=*/24 * 1024};
  dev->Launch(sel_meta,
              LaunchConfig::Cover(static_cast<int64_t>(nslots),
                                  cfg.block_threads),
              [&](Warp& w) {
    const LaneMask valid = w.Ballot([&](int lane) {
      return static_cast<size_t>(w.GlobalThreadId(lane)) < nslots;
    });
    if (valid == 0) return;
    w.If(valid, [&] {
      Reg<size_t> slot;
      Reg<uint32_t> count;
      w.Op([&](int lane) {
        slot[lane] = static_cast<size_t>(w.GlobalThreadId(lane));
      });
      w.Load(surv_count, [&](int lane) { return slot[lane]; },
             [&](int lane, uint32_t v) { count[lane] = v; });
      // Load each lane's contiguous survivor range and select the k
      // smallest functionally; charge the loads per element and the sort
      // as a bitonic network over the largest lane's count.
      std::array<std::vector<Neighbor>, gpusim::kWarpSize> selected;
      uint32_t max_count = 0;
      uint64_t total_count = 0;
      w.Op([&](int lane) {
        auto& out_vec = selected[static_cast<size_t>(lane)];
        out_vec.clear();
        const uint64_t base = surv_offsets[slot[lane]];
        for (uint32_t i = 0; i < count[lane]; ++i) {
          out_vec.push_back(Neighbor{surv_idx[base + i],
                                     surv_dist[base + i]});
        }
        std::sort(out_vec.begin(), out_vec.end(), NeighborLess);
        if (out_vec.size() > static_cast<size_t>(k)) {
          out_vec.resize(static_cast<size_t>(k));
        }
        while (out_vec.size() < static_cast<size_t>(k)) {
          out_vec.push_back(Neighbor{kInvalidNeighbor,
                                     std::numeric_limits<float>::infinity()});
        }
        max_count = std::max(max_count, count[lane]);
        total_count += count[lane];
      });
      // Survivor reads: per-lane contiguous ranges, 8 bytes per element.
      const uint64_t read_instructions = (max_count + 3) / 4 * 2;
      w.ChargeMemory(/*transactions=*/(total_count * 8 + 127) / 128 +
                         w.ActiveCount(),
                     read_instructions, 0);
      // Bitonic sort cost: n log^2 n compare-exchange steps.
      const double n_sort = std::max<uint32_t>(max_count, 2);
      const double log_n = std::log2(n_sort);
      w.Op([](int) {},
           static_cast<uint64_t>(n_sort * log_n * log_n / 2.0) + 1);
      w.StoreRange(
          out_dist,
          [&](int lane) { return slot[lane] * static_cast<size_t>(k); },
          static_cast<size_t>(k), 4, [&](int lane, size_t j) {
            return selected[static_cast<size_t>(lane)][j].distance;
          });
      w.StoreRange(
          out_idx,
          [&](int lane) { return slot[lane] * static_cast<size_t>(k); },
          static_cast<size_t>(k), 4, [&](int lane, size_t j) {
            return selected[static_cast<size_t>(lane)][j].index;
          });
    });
  });

  HarvestRows(dev, qc, cfg.remap, slot_begin, slot_end, k, out_dist,
              out_idx, result);
}

}  // namespace

void RunLevel2(Device* dev, const DevicePoints& query,
               const DevicePoints& target, const QueryClustering& qc,
               const TargetClustering& tc, const Level1Result& l1,
               const Level2Config& cfg, size_t slot_begin, size_t slot_end,
               KnnResult* result, Level2Stats* stats) {
  SK_CHECK_LT(slot_begin, slot_end);
  SK_CHECK_LE(slot_end, query.n());
  if (cfg.filter == Level2Filter::kFull) {
    RunFull(dev, query, target, qc, tc, l1, cfg, slot_begin, slot_end,
            result, stats);
  } else {
    RunPartial(dev, query, target, qc, tc, l1, cfg, slot_begin, slot_end,
               result, stats);
  }
}

size_t Level2BufferBytes(const Level2Config& cfg, const QueryClustering& qc,
                         const TargetClustering& tc, const Level1Result& l1,
                         size_t slot_begin, size_t slot_end) {
  const size_t nslots = slot_end - slot_begin;
  const size_t k = static_cast<size_t>(cfg.k);
  size_t bytes = nslots * k * 8;  // out_dist + out_idx
  if (cfg.filter == Level2Filter::kFull) {
    const size_t threads =
        nslots * static_cast<size_t>(cfg.threads_per_query);
    if (cfg.placement == KnearestsPlacement::kGlobal) {
      bytes += threads * k * 4;
    }
    if (cfg.threads_per_query > 1) {
      bytes += threads * k * 8 + nslots * 4;
    }
  } else {
    const std::vector<uint64_t> cluster_cap =
        ClusterCandidatePoints(tc, l1, qc.num_clusters);
    uint64_t cap = 0;
    for (size_t s = slot_begin; s < slot_end; ++s) {
      const uint32_t qid = SlotQuery(qc, cfg.remap, s);
      cap += cluster_cap[qc.assignment[qid]];
    }
    bytes += cap * 8 + nslots * 4;
    if (4 * cfg.k > 1024) bytes += nslots * k * 4;
  }
  return bytes;
}

}  // namespace sweetknn::core
