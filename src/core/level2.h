#ifndef SWEETKNN_CORE_LEVEL2_H_
#define SWEETKNN_CORE_LEVEL2_H_

#include <cstdint>

#include "common/knn_result.h"
#include "core/clustering.h"
#include "core/device_points.h"
#include "core/level1.h"
#include "core/options.h"
#include "gpusim/device.h"

namespace sweetknn::core {

/// Resolved configuration for one level-2 launch (all adaptive decisions
/// already taken).
struct Level2Config {
  int k = 0;
  Level2Filter filter = Level2Filter::kFull;
  KnearestsPlacement placement = KnearestsPlacement::kGlobal;
  KnearestsLayout knearests_layout = KnearestsLayout::kInterleaved;
  /// Iterate queries through the cluster-grouped member list (thread-data
  /// remapping, paper IV-C1) instead of thread i <-> query i.
  bool remap = false;
  /// Threads cooperating on one query (paper IV-B2); inner_stride divides
  /// it: inner_stride threads split each cluster's point loop, the rest
  /// split the candidate-cluster loop.
  int threads_per_query = 1;
  int inner_stride = 1;
  int block_threads = 256;
};

/// Profiling side-channel of a level-2 launch.
struct Level2Stats {
  /// Point-to-point distance computations (the paper's profiling counter).
  uint64_t distance_calcs = 0;
};

/// Runs Step 3 (point-level filtering) over the query slots
/// [slot_begin, slot_end) — a slot is a position in the (possibly
/// remapped) query order — and writes each query's k nearest neighbors
/// into `result`. The caller chooses slot ranges so that per-partition
/// device buffers fit in memory.
void RunLevel2(gpusim::Device* dev, const DevicePoints& query,
               const DevicePoints& target, const QueryClustering& qc,
               const TargetClustering& tc, const Level1Result& l1,
               const Level2Config& cfg, size_t slot_begin, size_t slot_end,
               KnnResult* result, Level2Stats* stats);

/// Device bytes RunLevel2 will allocate for the given slot range (used by
/// the engine to partition queries against free memory).
size_t Level2BufferBytes(const Level2Config& cfg, const QueryClustering& qc,
                         const TargetClustering& tc, const Level1Result& l1,
                         size_t slot_begin, size_t slot_end);

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_LEVEL2_H_
