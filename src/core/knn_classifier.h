#ifndef SWEETKNN_CORE_KNN_CLASSIFIER_H_
#define SWEETKNN_CORE_KNN_CLASSIFIER_H_

#include <vector>

#include "common/knn_result.h"
#include "common/matrix.h"
#include "core/sweet_knn.h"

namespace sweetknn {

/// k-NN classification on top of the Sweet KNN index — the canonical
/// application the paper's introduction motivates (image classification,
/// pattern recognition).
class KnnClassifier {
 public:
  struct Options {
    int k = 5;
    /// Weight votes by 1/(distance + epsilon) instead of counting.
    bool distance_weighted = false;
    SweetKnn::Config engine;
  };

  /// Builds the index over the training points. `labels` are arbitrary
  /// non-negative class ids, one per training row.
  KnnClassifier(const HostMatrix& train, std::vector<int> labels,
                const Options& options);
  KnnClassifier(const HostMatrix& train, std::vector<int> labels)
      : KnnClassifier(train, std::move(labels), Options()) {}

  /// Predicted class of every query row.
  std::vector<int> Predict(const HostMatrix& queries);

  /// Per-query (predicted label, vote share of the winning class).
  struct Prediction {
    int label = -1;
    double confidence = 0.0;
  };
  std::vector<Prediction> PredictWithConfidence(const HostMatrix& queries);

  /// Classification accuracy against ground truth.
  double Score(const HostMatrix& queries, const std::vector<int>& truth);

  int k() const { return options_.k; }

 private:
  Options options_;
  std::vector<int> labels_;
  SweetKnnIndex index_;
};

}  // namespace sweetknn

#endif  // SWEETKNN_CORE_KNN_CLASSIFIER_H_
