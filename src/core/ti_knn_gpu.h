#ifndef SWEETKNN_CORE_TI_KNN_GPU_H_
#define SWEETKNN_CORE_TI_KNN_GPU_H_

#include <cstdint>

#include "common/knn_result.h"
#include "common/matrix.h"
#include "core/clustering.h"
#include "core/device_points.h"
#include "core/level1.h"
#include "core/level2.h"
#include "core/options.h"
#include "gpusim/device.h"

namespace sweetknn::core {

/// Triangle-inequality KNN on the simulated GPU. Configured with
/// TiOptions::BasicTi() it is the paper's section-III baseline
/// implementation; with TiOptions::Sweet() (the default) it is Sweet KNN
/// with every section-IV optimization and the adaptive scheme.
///
/// Typical use:
///   gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
///   TiKnnEngine engine(&dev, TiOptions::Sweet());
///   engine.Prepare(queries, targets);   // Step 1: clustering
///   KnnRunStats stats;
///   KnnResult result = engine.Run(20, &stats);  // Steps 2-3 for k=20
///
/// Prepare's clustering does not depend on k, so one Prepare can serve
/// many Run calls (each Run's reported time includes the preprocessing,
/// as the paper's speedup numbers do).
class TiKnnEngine {
 public:
  TiKnnEngine(gpusim::Device* dev, TiOptions options)
      : dev_(dev), options_(options) {}

  TiKnnEngine(const TiKnnEngine&) = delete;
  TiKnnEngine& operator=(const TiKnnEngine&) = delete;

  /// Uploads the point sets and builds the landmark clusterings
  /// (Step 1). Resets the device profile first.
  void Prepare(const HostMatrix& query, const HostMatrix& target);

  /// Index-style use: prepare only the target side (upload + cluster).
  /// Query batches then run against it via RunQueries.
  void PrepareTarget(const HostMatrix& target);

  /// Warm start from a persisted index image (src/store): uploads the
  /// target and re-materializes the given clustering instead of running
  /// the Step-1 landmark build. Leaves the engine in the same state as
  /// PrepareTarget on the same data — same live device allocations (so
  /// the adaptive scheme sees the same free memory) and therefore
  /// bit-identical answers from every subsequent RunQueries call.
  void RestoreTarget(const HostMatrix& target,
                     const TargetClusteringHost& clustering);

  /// Host copy of the prepared target point set (row-major, whatever the
  /// device layout is). Requires PrepareTarget/Prepare/RestoreTarget.
  HostMatrix ExportTarget() const;

  /// Host image of the prepared target clustering, ready for
  /// serialization. Requires PrepareTarget/Prepare/RestoreTarget.
  TargetClusteringHost ExportTargetClustering() const;

  /// Runs a query batch against the prepared target: uploads the batch,
  /// builds its query-side clustering, and runs Steps 2-3. The reported
  /// stats cover the batch (query preprocessing + filtering) plus the
  /// amortizable target preparation recorded by PrepareTarget/Prepare.
  KnnResult RunQueries(const HostMatrix& query, int k, KnnRunStats* stats);

  /// Runs level-1 and level-2 filtering for one k value over the query
  /// set given to Prepare. Resets the device profile (the Prepare
  /// profile is folded into the stats).
  KnnResult Run(int k, KnnRunStats* stats);

  /// Prepare + Run in one call.
  static KnnResult RunOnce(gpusim::Device* dev, const HostMatrix& query,
                           const HostMatrix& target, int k,
                           const TiOptions& options, KnnRunStats* stats) {
    TiKnnEngine engine(dev, options);
    engine.Prepare(query, target);
    return engine.Run(k, stats);
  }

  const TiOptions& options() const { return options_; }
  const QueryClustering& query_clustering() const { return qc_; }
  const TargetClustering& target_clustering() const { return tc_; }

 private:
  KnnResult RunPrepared(int k, KnnRunStats* stats);

  gpusim::Device* dev_;
  TiOptions options_;
  bool target_prepared_ = false;
  bool prepared_ = false;
  DevicePoints query_;
  DevicePoints target_;
  QueryClustering qc_;
  TargetClustering tc_;
  gpusim::Profile prepare_profile_;
};

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_TI_KNN_GPU_H_
