#ifndef SWEETKNN_CORE_CLUSTERING_H_
#define SWEETKNN_CORE_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "core/device_points.h"
#include "core/options.h"
#include "gpusim/device.h"

namespace sweetknn::core {

/// Step-1 configuration (paper section III-A).
struct ClusteringConfig {
  /// 0 = the 3*sqrt(N) rule, capped by device memory; else a forced count.
  int landmarks_override = 0;
  /// Candidate-set trials for landmark selection (paper: 10).
  int landmark_trials = 10;
  /// Optional Lloyd refinement of the landmark centers before the final
  /// assignment (0 = the paper's sampling-only landmarks). The paper
  /// cites k-means-based pivot selection [3] as an alternative; a few
  /// iterations tighten the cluster radii and the TI bounds with them.
  int kmeans_iterations = 0;
  uint64_t seed = 7;
  int block_threads = 256;
};

/// The paper's landmark-count rule: 3*sqrt(N), at least 1, at most N,
/// further capped so the clustering structures fit in device memory.
int DefaultLandmarkCount(size_t n, size_t free_bytes);

/// Picks `m` landmark point indices from `points` with the paper's
/// procedure: `trials` random candidate sets, keep the set with the
/// largest sum of pairwise distances (computed by a simulated kernel).
std::vector<uint32_t> SelectLandmarks(gpusim::Device* dev,
                                      const DevicePoints& points, int m,
                                      int trials, uint64_t seed,
                                      int block_threads);

/// Clustering of the query set: assignments plus per-cluster radius and
/// member lists (member lists feed thread-data remapping).
struct QueryClustering {
  int num_clusters = 0;
  DevicePoints centers;
  gpusim::DeviceBuffer<uint32_t> assignment;      // |Q|
  gpusim::DeviceBuffer<float> max_dist;           // per cluster
  gpusim::DeviceBuffer<uint32_t> member_offsets;  // num_clusters + 1
  gpusim::DeviceBuffer<uint32_t> members;         // |Q| grouped by cluster
};

/// Clustering of the target set: per-cluster member ids sorted by
/// descending distance to the center (the order level-2 filtering relies
/// on), with the parallel distance array.
struct TargetClustering {
  int num_clusters = 0;
  DevicePoints centers;
  gpusim::DeviceBuffer<uint32_t> assignment;      // |T|
  gpusim::DeviceBuffer<uint32_t> member_offsets;  // num_clusters + 1
  gpusim::DeviceBuffer<uint32_t> member_ids;      // |T|, desc by distance
  gpusim::DeviceBuffer<float> member_dists;       // parallel to member_ids
  gpusim::DeviceBuffer<float> max_dist;           // per cluster

  uint32_t ClusterBegin(int c) const { return member_offsets[c]; }
  uint32_t ClusterEnd(int c) const { return member_offsets[c + 1]; }
};

/// Builds the query-side clustering (assignment kernel with atomic
/// max-distance update, then the two-pass member-list construction).
QueryClustering BuildQueryClustering(gpusim::Device* dev,
                                     const DevicePoints& query,
                                     const ClusteringConfig& cfg);

/// Derives the query-side clustering from an existing target clustering
/// of the same point set (the paper's experiments always use Q == T, so
/// the landmark selection and assignment need not run twice). The
/// structures are device-to-device copies, charged as one bulk copy.
QueryClustering QueryClusteringFromTarget(gpusim::Device* dev,
                                          const DevicePoints& points,
                                          const TargetClustering& tc);

/// Builds the target-side clustering (two-pass construction with local
/// IDs to avoid synchronization, then per-cluster descending sort).
TargetClustering BuildTargetClustering(gpusim::Device* dev,
                                       const DevicePoints& target,
                                       const ClusteringConfig& cfg);

/// Host-side, serializable image of a TargetClustering — what the index
/// snapshot store (src/store) persists so that a restart can skip the
/// Step-1 landmark clustering entirely.
struct TargetClusteringHost {
  int num_clusters = 0;
  HostMatrix centers;                    // m x dims
  std::vector<uint32_t> assignment;      // |T|
  std::vector<uint32_t> member_offsets;  // m + 1
  std::vector<uint32_t> member_ids;      // |T|, desc by distance
  std::vector<float> member_dists;       // parallel to member_ids
  std::vector<float> max_dist;           // per cluster
};

/// Copies a prepared target clustering to the host (no simulated-device
/// charge: persistence happens outside the modeled GPU timeline).
TargetClusteringHost DownloadTargetClustering(const TargetClustering& tc);

/// Re-materializes a host clustering image on `dev`, charging the H2D
/// uploads. The live allocations (and therefore free_bytes, which feeds
/// the query-side landmark-count rule) end up byte-for-byte the same
/// sizes as after BuildTargetClustering, so a warm-started engine answers
/// every subsequent query bit-identically to a cold-built one.
TargetClustering UploadTargetClustering(gpusim::Device* dev,
                                        const TargetClusteringHost& host,
                                        PointLayout layout, int vector_width,
                                        Metric metric);

/// Entry seeds for the ANN graph search: per non-empty cluster, the
/// member closest to its landmark center (member lists are sorted
/// descending by distance, so that is the last member). One seed per
/// Step-1 landmark starts the best-first descent inside every region of
/// the space.
std::vector<uint32_t> AnnEntryPointsFromClustering(
    const TargetClusteringHost& tc);

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_CLUSTERING_H_
