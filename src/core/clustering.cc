#include "core/clustering.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "gpusim/gemm_model.h"
#include "simd/simd_kernels.h"

namespace sweetknn::core {

namespace {

using gpusim::Device;
using gpusim::DeviceBuffer;
using gpusim::KernelMeta;
using gpusim::LaneMask;
using gpusim::LaunchConfig;
using gpusim::Reg;
using gpusim::Warp;

/// Packs the host-side view of a DevicePoints buffer (either layout)
/// for the vectorized batch kernels. Pure host bookkeeping: no device
/// charge, and the packed copy holds exactly the device bytes.
simd::PackedTargets PackPoints(const DevicePoints& pts) {
  const bool row_major = pts.layout() == PointLayout::kRowMajor;
  return simd::PackedTargets::PackStrided(
      pts.HostPoint(0).base, pts.n(), pts.dims(),
      /*row_stride=*/row_major ? pts.dims() : 1,
      /*col_stride=*/row_major ? 1 : pts.n());
}

/// Contiguous view of one lane's point for the batch kernels: row-major
/// accessors are already contiguous; column-major lanes copy their point
/// into the lane's scratch slot (bit-exact float copies).
const float* LaneRow(const PointAccessor& pt, size_t dims, int lane,
                     std::vector<float>* scratch) {
  if (pt.stride == 1) return pt.base;
  float* dst = scratch->data() + static_cast<size_t>(lane) * dims;
  for (size_t j = 0; j < dims; ++j) dst[j] = pt[j];
  return dst;
}

/// Simulated device-side radix-sort throughput (thrust-class sort on
/// Kepler), used for the per-cluster ordering pass.
constexpr double kSortKeysPerSecond = 6e8;
/// Simulated throughput of a device prefix-scan.
constexpr double kScanElemsPerSecond = 2e9;

/// Pair-parallel assignment for small point sets: one thread per
/// (point, center) pair, argmin via a packed (distance bits, center)
/// atomicMin, then a small decode kernel. Elastic-parallelism analogue of
/// the paper's multi-thread-per-query idea applied to preprocessing,
/// needed because a 100-point kernel cannot occupy the chip.
void RunAssignKernelPairs(Device* dev, const DevicePoints& points,
                          const DevicePoints& centers, int block_threads,
                          const std::string& name,
                          DeviceBuffer<uint32_t>* assignment,
                          DeviceBuffer<float>* dist_to_center,
                          DeviceBuffer<float>* max_dist) {
  const size_t n = points.n();
  const size_t dims = points.dims();
  const Metric metric = points.metric();
  const size_t m = centers.n();
  DeviceBuffer<uint64_t> best = dev->Alloc<uint64_t>(n, "argmin keys");
  for (size_t i = 0; i < n; ++i) best[i] = ~uint64_t{0};  // cudaMemset

  // Each thread owns one (point, center-chunk) pair: the point is loaded
  // once per chunk instead of once per center, and enough chunks are
  // made to occupy the device.
  const size_t budget = static_cast<size_t>(
      std::max(1, dev->spec().MaxConcurrentThreads() / 4));
  const size_t num_chunks =
      std::clamp<size_t>(budget / std::max<size_t>(1, n), 1, m);
  const size_t chunk_size = (m + num_chunks - 1) / num_chunks;
  const int64_t total_threads =
      static_cast<int64_t>(n) * static_cast<int64_t>(num_chunks);
  const simd::PackedTargets packed_centers = PackPoints(centers);
  const simd::Dist dist_kind = SimdDistFor(metric);
  // Widest span any lane evaluates: its chunk plus the tile-alignment
  // back-off of the span start.
  const size_t lane_stride = chunk_size + simd::kTileLanes;
  KernelMeta meta{name + "_pairs", 40, 0};
  dev->Launch(meta, LaunchConfig::Cover(total_threads, block_threads),
              [&](Warp& w) {
    const LaneMask valid = w.Ballot([&](int lane) {
      return static_cast<int64_t>(w.GlobalThreadId(lane)) < total_threads;
    });
    w.If(valid, [&] {
      // p varies fastest so lanes hit distinct points (no atomic
      // conflicts) and share each center load.
      Reg<size_t> p;
      Reg<size_t> chunk;
      w.Op([&](int lane) {
        const size_t idx = static_cast<size_t>(w.GlobalThreadId(lane));
        p[lane] = idx % n;
        chunk[lane] = idx / n;
      });
      Reg<PointAccessor> point;
      points.LoadPoints(w, [&](int lane) { return p[lane]; },
                        [&](int lane, PointAccessor a) { point[lane] = a; });
      // Hoisted bulk math: each lane's chunk of point-vs-center distances
      // is evaluated up front by the vectorized host kernels (over the
      // tile-aligned span covering the chunk). The While walk below keeps
      // its exact lockstep structure and per-step cost charges; its
      // distance Op reads the precomputed values, which are bit-identical
      // to AccessorDistance (the tests/simd suite holds the two
      // definitions together).
      thread_local std::vector<float> lane_dists;
      thread_local std::vector<float> lane_scratch;
      lane_dists.resize(gpusim::kWarpSize * lane_stride);
      lane_scratch.resize(gpusim::kWarpSize * dims);
      std::array<size_t, gpusim::kWarpSize> lane_base{};
      for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
        if (static_cast<int64_t>(w.GlobalThreadId(lane)) >= total_threads) {
          continue;
        }
        const size_t start = chunk[lane] * chunk_size;
        const size_t end = std::min(m, (chunk[lane] + 1) * chunk_size);
        if (start >= end) continue;
        const size_t aligned = start - start % simd::kTileLanes;
        lane_base[lane] = aligned;
        const float* row = LaneRow(point[lane], dims, lane, &lane_scratch);
        simd::QueryDistances(row, packed_centers, aligned, end, dist_kind,
                             lane_dists.data() + lane * lane_stride);
      }
      Reg<uint64_t> key;
      w.Op([&](int lane) { key[lane] = ~uint64_t{0}; });
      Reg<size_t> c;
      w.Op([&](int lane) { c[lane] = chunk[lane] * chunk_size; });
      w.While(
          [&](int lane) {
            return c[lane] < std::min(m, (chunk[lane] + 1) * chunk_size);
          },
          [&] {
            Reg<PointAccessor> center;
            centers.LoadPoints(w, [&](int lane) { return c[lane]; },
                               [&](int lane, PointAccessor a) {
                                 center[lane] = a;
                               });
            w.Op(
                [&](int lane) {
                  const float d =
                      lane_dists[static_cast<size_t>(lane) * lane_stride +
                                 (c[lane] - lane_base[lane])];
                  uint32_t bits = 0;
                  static_assert(sizeof(bits) == sizeof(d));
                  std::memcpy(&bits, &d, sizeof(bits));
                  const uint64_t cand =
                      (static_cast<uint64_t>(bits) << 32) |
                      static_cast<uint64_t>(c[lane]);
                  key[lane] = std::min(key[lane], cand);
                },
                DistanceOpCost(dims));
            w.Op([&](int lane) { ++c[lane]; });
          });
      w.AtomicMin(best, [&](int lane) { return p[lane]; },
                  [&](int lane) { return key[lane]; });
    });
  });

  KernelMeta decode_meta{name + "_decode", 24, 0};
  dev->Launch(decode_meta,
              LaunchConfig::Cover(static_cast<int64_t>(n), block_threads),
              [&](Warp& w) {
    const LaneMask valid = w.Ballot([&](int lane) {
      return static_cast<size_t>(w.GlobalThreadId(lane)) < n;
    });
    w.If(valid, [&] {
      Reg<uint64_t> key;
      w.Load(best, [&](int lane) { return w.GlobalThreadId(lane); },
             [&](int lane, uint64_t v) { key[lane] = v; });
      Reg<uint32_t> cluster;
      Reg<float> dist;
      w.Op([&](int lane) {
        cluster[lane] = static_cast<uint32_t>(key[lane] & 0xffffffffu);
        const uint32_t bits = static_cast<uint32_t>(key[lane] >> 32);
        std::memcpy(&dist[lane], &bits, sizeof(float));
      });
      w.Store(*assignment, [&](int lane) { return w.GlobalThreadId(lane); },
              [&](int lane) { return cluster[lane]; });
      w.Store(*dist_to_center,
              [&](int lane) { return w.GlobalThreadId(lane); },
              [&](int lane) { return dist[lane]; });
      if (max_dist != nullptr) {
        w.AtomicMaxFloat(*max_dist,
                         [&](int lane) { return cluster[lane]; },
                         [&](int lane) { return dist[lane]; });
      }
    });
  });
}

/// Assignment kernel shared by query and target clustering: each thread
/// owns one point, scans all centers, and records the nearest center and
/// the distance to it. Optionally updates the per-cluster max distance
/// with an atomicMax (queries and targets both need the radius). Falls
/// back to the pair-parallel variant when the point count alone cannot
/// keep the device busy.
void RunAssignKernel(Device* dev, const DevicePoints& points,
                     const DevicePoints& centers, int block_threads,
                     const char* name, DeviceBuffer<uint32_t>* assignment,
                     DeviceBuffer<float>* dist_to_center,
                     DeviceBuffer<float>* max_dist) {
  const size_t n = points.n();
  const size_t dims = points.dims();
  const Metric metric = points.metric();
  const size_t m = centers.n();
  if (n < static_cast<size_t>(dev->spec().MaxConcurrentThreads() / 4)) {
    RunAssignKernelPairs(dev, points, centers, block_threads, name,
                         assignment, dist_to_center, max_dist);
    return;
  }
  const simd::PackedTargets packed_centers = PackPoints(centers);
  const simd::Dist dist_kind = SimdDistFor(metric);
  KernelMeta meta{name, /*regs_per_thread=*/40, /*shared_bytes_per_block=*/0};
  dev->Launch(meta, LaunchConfig::Cover(static_cast<int64_t>(n),
                                        block_threads),
              [&](Warp& w) {
    const LaneMask valid = w.Ballot([&](int lane) {
      return static_cast<size_t>(w.GlobalThreadId(lane)) < n;
    });
    w.If(valid, [&] {
      Reg<PointAccessor> point;
      points.LoadPoints(
          w, [&](int lane) { return w.GlobalThreadId(lane); },
          [&](int lane, PointAccessor acc) { point[lane] = acc; });
      // Hoisted bulk math: all m distances for every active lane are
      // evaluated up front by the vectorized host kernels. The lockstep
      // center walk keeps its exact structure and cost charges; its
      // distance Op reads the precomputed values, which are bit-identical
      // to AccessorDistance.
      thread_local std::vector<float> lane_dists;
      thread_local std::vector<float> lane_scratch;
      lane_dists.resize(gpusim::kWarpSize * m);
      lane_scratch.resize(gpusim::kWarpSize * dims);
      for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
        if (static_cast<size_t>(w.GlobalThreadId(lane)) >= n) continue;
        const float* row = LaneRow(point[lane], dims, lane, &lane_scratch);
        simd::QueryDistances(row, packed_centers, dist_kind,
                             lane_dists.data() + lane * m);
      }
      Reg<float> best_dist;
      Reg<uint32_t> best_cluster;
      w.Op([&](int lane) {
        best_dist[lane] = std::numeric_limits<float>::infinity();
        best_cluster[lane] = 0;
      });
      // All lanes walk the centers in lockstep; center loads broadcast.
      for (size_t c = 0; c < m; ++c) {
        Reg<PointAccessor> center;
        centers.LoadPoints(
            w, [&](int) { return c; },
            [&](int lane, PointAccessor acc) { center[lane] = acc; });
        Reg<float> dist;
        w.Op(
            [&](int lane) {
              dist[lane] = lane_dists[static_cast<size_t>(lane) * m + c];
            },
            DistanceOpCost(dims));
        w.Op([&](int lane) {
          if (dist[lane] < best_dist[lane]) {
            best_dist[lane] = dist[lane];
            best_cluster[lane] = static_cast<uint32_t>(c);
          }
        });
      }
      w.Store(*assignment,
              [&](int lane) { return w.GlobalThreadId(lane); },
              [&](int lane) { return best_cluster[lane]; });
      w.Store(*dist_to_center,
              [&](int lane) { return w.GlobalThreadId(lane); },
              [&](int lane) { return best_dist[lane]; });
      if (max_dist != nullptr) {
        w.AtomicMaxFloat(*max_dist,
                         [&](int lane) { return best_cluster[lane]; },
                         [&](int lane) { return best_dist[lane]; });
      }
    });
  });
}


/// A few Lloyd iterations over the landmark centers: reassign points,
/// recompute centroids (functionally on the host, charged as a device
/// centroid-update pass), repeat. Empty clusters keep their old center.
DevicePoints RefineCentersKMeans(Device* dev, const DevicePoints& points,
                                 DevicePoints centers, int iterations,
                                 int block_threads, const char* tag) {
  const size_t n = points.n();
  const size_t dims = points.dims();
  const size_t m = centers.n();
  for (int iter = 0; iter < iterations; ++iter) {
    DeviceBuffer<uint32_t> assignment =
        dev->Alloc<uint32_t>(n, "kmeans assignment");
    DeviceBuffer<float> dist = dev->Alloc<float>(n, "kmeans dists");
    RunAssignKernel(dev, points, centers, block_threads,
                    (std::string("kmeans_assign:") + tag).c_str(),
                    &assignment, &dist, nullptr);
    HostMatrix means(m, dims);
    std::vector<uint32_t> counts(m, 0);
    // Per-chunk partial sums merged in chunk index order. Chunk boundaries
    // are fixed by kChunkPoints alone — never by the worker count — so the
    // float accumulation order, and therefore the refined centers, are
    // identical for any number of workers (and match the old serial sweep
    // exactly whenever n fits in one chunk).
    constexpr size_t kChunkPoints = 4096;
    const size_t num_chunks = common::NumChunks(n, kChunkPoints);
    std::vector<HostMatrix> chunk_means(num_chunks);
    std::vector<std::vector<uint32_t>> chunk_counts(num_chunks);
    common::ParallelForChunks(
        dev->execution_threads(), n, kChunkPoints,
        [&](size_t chunk, size_t begin, size_t end) {
          HostMatrix local_means(m, dims);
          std::vector<uint32_t> local_counts(m, 0);
          for (size_t p = begin; p < end; ++p) {
            const uint32_t c = assignment[p];
            ++local_counts[c];
            // AddRow is an elementwise vector add in the same j order,
            // so either branch produces the same bytes as the old scalar
            // loop; only contiguous rows can take the vector path.
            const PointAccessor pt = points.HostPoint(p);
            if (pt.stride == 1) {
              simd::AddRow(local_means.mutable_row(c), pt.base, dims);
            } else {
              for (size_t j = 0; j < dims; ++j) {
                local_means.at(c, j) += pt[j];
              }
            }
          }
          chunk_means[chunk] = std::move(local_means);
          chunk_counts[chunk] = std::move(local_counts);
        });
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      for (size_t c = 0; c < m; ++c) {
        counts[c] += chunk_counts[chunk][c];
        simd::AddRow(means.mutable_row(c), chunk_means[chunk].row(c), dims);
      }
    }
    for (size_t c = 0; c < m; ++c) {
      for (size_t j = 0; j < dims; ++j) {
        if (counts[c] > 0) {
          means.at(c, j) /= static_cast<float>(counts[c]);
        } else {
          means.at(c, j) = centers.At(c, j);
        }
      }
    }
    dev->RecordAnalyticLaunch(
        std::string("kmeans_update:") + tag,
        static_cast<double>(n) * dims * 4.0 /
                dev->spec().mem_bandwidth_bytes_per_s +
            dev->spec().kernel_launch_overhead_s);
    centers = DevicePoints::CreateOnDevice(dev, means, centers.layout(),
                                           "kmeans centers",
                                           /*vector_width=*/4,
                                           centers.metric());
  }
  return centers;
}

/// Two-pass member-list construction (paper section III-A): pass A counts
/// cluster sizes with atomicAdd, recording each point's local ID; the host
/// sizes the per-cluster arrays (an exclusive scan); pass B scatters
/// members to offset + local ID, needing no synchronization.
struct MemberLists {
  DeviceBuffer<uint32_t> offsets;  // m + 1
  DeviceBuffer<uint32_t> members;  // n grouped by cluster
};

MemberLists BuildMemberLists(Device* dev,
                             const DeviceBuffer<uint32_t>& assignment,
                             size_t n, size_t m, int block_threads,
                             const char* tag) {
  DeviceBuffer<uint32_t> sizes = dev->Alloc<uint32_t>(m, "cluster sizes");
  DeviceBuffer<uint32_t> local_ids = dev->Alloc<uint32_t>(n, "local ids");

  KernelMeta count_meta{std::string("count_members:") + tag, 24, 0};
  // The fetch-add old value becomes the point's local ID, i.e. its slot in
  // the scatter pass — a block-execution-order-dependent result the
  // parallel engine cannot reproduce bit-exactly. O(n) and cheap: keep it
  // on the serial engine.
  count_meta.host_serial = true;
  dev->Launch(count_meta,
              LaunchConfig::Cover(static_cast<int64_t>(n), block_threads),
              [&](Warp& w) {
    const LaneMask valid = w.Ballot([&](int lane) {
      return static_cast<size_t>(w.GlobalThreadId(lane)) < n;
    });
    w.If(valid, [&] {
      Reg<uint32_t> cluster;
      w.Load(assignment, [&](int lane) { return w.GlobalThreadId(lane); },
             [&](int lane, uint32_t c) { cluster[lane] = c; });
      w.AtomicAdd(
          sizes, [&](int lane) { return cluster[lane]; },
          [](int) { return uint32_t{1}; },
          [&](int lane, uint32_t old) {
            local_ids[static_cast<size_t>(w.GlobalThreadId(lane))] = old;
          });
    });
  });

  // Exclusive scan over sizes (modeled as a device scan).
  MemberLists out;
  out.offsets = dev->Alloc<uint32_t>(m + 1, "member offsets");
  uint32_t running = 0;
  for (size_t c = 0; c < m; ++c) {
    out.offsets[c] = running;
    running += sizes[c];
  }
  out.offsets[m] = running;
  dev->RecordAnalyticLaunch(std::string("scan_offsets:") + tag,
                            static_cast<double>(m) / kScanElemsPerSecond +
                                dev->spec().kernel_launch_overhead_s);

  out.members = dev->Alloc<uint32_t>(n, "member ids");
  KernelMeta scatter_meta{std::string("scatter_members:") + tag, 24, 0};
  dev->Launch(scatter_meta,
              LaunchConfig::Cover(static_cast<int64_t>(n), block_threads),
              [&](Warp& w) {
    const LaneMask valid = w.Ballot([&](int lane) {
      return static_cast<size_t>(w.GlobalThreadId(lane)) < n;
    });
    w.If(valid, [&] {
      Reg<uint32_t> cluster;
      Reg<uint32_t> local;
      w.Load(assignment, [&](int lane) { return w.GlobalThreadId(lane); },
             [&](int lane, uint32_t c) { cluster[lane] = c; });
      w.Load(local_ids, [&](int lane) { return w.GlobalThreadId(lane); },
             [&](int lane, uint32_t v) { local[lane] = v; });
      Reg<uint32_t> slot;
      w.Load(out.offsets, [&](int lane) { return cluster[lane]; },
             [&](int lane, uint32_t off) { slot[lane] = off + local[lane]; });
      w.Store(out.members, [&](int lane) { return slot[lane]; },
              [&](int lane) {
                return static_cast<uint32_t>(w.GlobalThreadId(lane));
              });
    });
  });
  return out;
}

}  // namespace

int DefaultLandmarkCount(size_t n, size_t free_bytes) {
  const int by_rule = static_cast<int>(3.0 * std::sqrt(static_cast<double>(n)));
  // Clustering structures cost roughly 16 bytes per landmark per side plus
  // the candidate matrix (8 bytes per cluster pair); cap the count so they
  // fit in a quarter of free memory: 8*m^2 <= free/4.
  const double cap_sq = static_cast<double>(free_bytes) / 32.0;
  const int by_mem = static_cast<int>(std::sqrt(std::max(1.0, cap_sq)));
  int m = std::min(by_rule, by_mem);
  m = std::max(1, std::min(m, static_cast<int>(n)));
  return m;
}

std::vector<uint32_t> SelectLandmarks(Device* dev, const DevicePoints& points,
                                      int m, int trials, uint64_t seed,
                                      int block_threads) {
  SK_CHECK_GT(m, 0);
  SK_CHECK_GT(trials, 0);
  const size_t n = points.n();
  const size_t dims = points.dims();
  SK_CHECK_LE(static_cast<size_t>(m), n);

  // Random candidate sets (host-side RNG; the paper generates them in a
  // kernel, but the cost is negligible either way).
  Rng rng(seed);
  std::vector<uint32_t> candidates(static_cast<size_t>(trials * m));
  for (uint32_t& id : candidates) {
    id = static_cast<uint32_t>(rng.NextBounded(n));
  }

  // The pairwise-distance sums over each candidate set are a bulk
  // regular computation; a production implementation evaluates them with
  // the same tiled GEMM formulation the baseline uses for its distance
  // matrix (one m x m x d GEMM per candidate set), so we charge them
  // analytically and evaluate the sums functionally (DESIGN.md
  // "Deviations").
  (void)block_threads;
  // All trials batch into one GEMM (block rows = candidate sets).
  const gpusim::GemmModel gemm(dev->spec());
  // The per-trial sum reduction streams at memory bandwidth.
  const double gemm_time =
      gemm.Time(static_cast<int64_t>(trials) * m, m,
                static_cast<int64_t>(dims)) +
      static_cast<double>(trials) * m * m * 4.0 /
          dev->spec().mem_bandwidth_bytes_per_s;
  dev->RecordAnalyticLaunch("landmark_pair_sums", gemm_time);

  std::vector<float> host_sums(static_cast<size_t>(trials), 0.0f);
  const simd::Dist dist_kind = SimdDistFor(points.metric());
  std::vector<float> gathered(static_cast<size_t>(m) * dims);
  std::vector<float> pair_dists(static_cast<size_t>(m));
  for (int trial = 0; trial < trials; ++trial) {
    const size_t base = static_cast<size_t>(trial) * static_cast<size_t>(m);
    // Gather the trial's candidate rows, pack once, and evaluate each
    // row-i-vs-all block with the batch kernels. Each pair distance is
    // bit-identical to the old per-pair walk, and the double sum still
    // adds them in ascending (i, j>i) order, so host_sums is unchanged.
    for (int i = 0; i < m; ++i) {
      const PointAccessor pt =
          points.HostPoint(candidates[base + static_cast<size_t>(i)]);
      float* dst = gathered.data() + static_cast<size_t>(i) * dims;
      for (size_t j = 0; j < dims; ++j) dst[j] = pt[j];
    }
    const simd::PackedTargets packed = simd::PackedTargets::Pack(
        gathered.data(), static_cast<size_t>(m), dims);
    double sum = 0.0;
    for (int i = 0; i < m; ++i) {
      simd::QueryDistances(gathered.data() + static_cast<size_t>(i) * dims,
                           packed, dist_kind, pair_dists.data());
      for (int j = i + 1; j < m; ++j) {
        sum += static_cast<double>(pair_dists[static_cast<size_t>(j)]);
      }
    }
    host_sums[static_cast<size_t>(trial)] = static_cast<float>(sum);
  }
  const size_t best = static_cast<size_t>(
      std::max_element(host_sums.begin(), host_sums.end()) -
      host_sums.begin());
  std::vector<uint32_t> out(
      candidates.begin() + static_cast<long>(best * static_cast<size_t>(m)),
      candidates.begin() +
          static_cast<long>((best + 1) * static_cast<size_t>(m)));
  // Duplicate candidates would create empty twin clusters; dedupe while
  // preserving order (replacement ids drawn deterministically).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  while (out.size() < static_cast<size_t>(m)) {
    const uint32_t id = static_cast<uint32_t>(rng.NextBounded(n));
    if (!std::binary_search(out.begin(), out.end(), id)) {
      out.insert(std::lower_bound(out.begin(), out.end(), id), id);
    }
  }
  return out;
}

QueryClustering BuildQueryClustering(Device* dev, const DevicePoints& query,
                                     const ClusteringConfig& cfg) {
  QueryClustering out;
  const size_t n = query.n();
  const int m = cfg.landmarks_override > 0
                    ? std::min<int>(cfg.landmarks_override,
                                    static_cast<int>(n))
                    : DefaultLandmarkCount(n, dev->free_bytes());
  out.num_clusters = m;
  const std::vector<uint32_t> landmark_ids = SelectLandmarks(
      dev, query, m, cfg.landmark_trials, cfg.seed, cfg.block_threads);
  out.centers =
      DevicePoints::GatherRows(dev, query, landmark_ids, "query centers");
  if (cfg.kmeans_iterations > 0) {
    out.centers = RefineCentersKMeans(dev, query, std::move(out.centers),
                                      cfg.kmeans_iterations,
                                      cfg.block_threads, "query");
  }

  out.assignment = dev->Alloc<uint32_t>(n, "query assignment");
  out.max_dist = dev->Alloc<float>(static_cast<size_t>(m), "query radius");
  DeviceBuffer<float> dist_to_center =
      dev->Alloc<float>(n, "query center distances");
  RunAssignKernel(dev, query, out.centers, cfg.block_threads, "assign_query",
                  &out.assignment, &dist_to_center, &out.max_dist);

  MemberLists lists = BuildMemberLists(dev, out.assignment, n,
                                       static_cast<size_t>(m),
                                       cfg.block_threads, "query");
  out.member_offsets = std::move(lists.offsets);
  out.members = std::move(lists.members);
  return out;
}

QueryClustering QueryClusteringFromTarget(Device* dev,
                                          const DevicePoints& points,
                                          const TargetClustering& tc) {
  const size_t n = points.n();
  const size_t m = static_cast<size_t>(tc.num_clusters);
  QueryClustering out;
  out.num_clusters = tc.num_clusters;
  // Device-to-device copies of the shared structures. Centers are
  // re-gathered (a tiny kernel); the flat arrays are bulk-copied and
  // charged at DRAM bandwidth.
  std::vector<uint32_t> identity(m);
  std::iota(identity.begin(), identity.end(), 0u);
  out.centers = DevicePoints::GatherRows(dev, tc.centers, identity,
                                         "query centers (self-join)");
  out.assignment = dev->Alloc<uint32_t>(n, "q assignment (self-join)");
  std::copy(tc.assignment.data(), tc.assignment.data() + n,
            out.assignment.data());
  out.max_dist = dev->Alloc<float>(m, "q radius (self-join)");
  std::copy(tc.max_dist.data(), tc.max_dist.data() + m,
            out.max_dist.data());
  out.member_offsets =
      dev->Alloc<uint32_t>(m + 1, "q member offsets (self-join)");
  std::copy(tc.member_offsets.data(), tc.member_offsets.data() + m + 1,
            out.member_offsets.data());
  out.members = dev->Alloc<uint32_t>(n, "q members (self-join)");
  std::copy(tc.member_ids.data(), tc.member_ids.data() + n,
            out.members.data());
  const double bytes = static_cast<double>(2 * n + m + m + 1) * 4.0;
  dev->RecordAnalyticLaunch(
      "selfjoin_d2d_copy",
      bytes / dev->spec().mem_bandwidth_bytes_per_s +
          dev->spec().kernel_launch_overhead_s);
  return out;
}

TargetClusteringHost DownloadTargetClustering(const TargetClustering& tc) {
  TargetClusteringHost out;
  out.num_clusters = tc.num_clusters;
  const size_t m = static_cast<size_t>(tc.num_clusters);
  const size_t n = tc.assignment.size();
  out.centers = HostMatrix(tc.centers.n(), tc.centers.dims());
  for (size_t c = 0; c < tc.centers.n(); ++c) {
    for (size_t j = 0; j < tc.centers.dims(); ++j) {
      out.centers.at(c, j) = tc.centers.At(c, j);
    }
  }
  out.assignment.assign(tc.assignment.data(), tc.assignment.data() + n);
  out.member_offsets.assign(tc.member_offsets.data(),
                            tc.member_offsets.data() + m + 1);
  out.member_ids.assign(tc.member_ids.data(), tc.member_ids.data() + n);
  out.member_dists.assign(tc.member_dists.data(), tc.member_dists.data() + n);
  out.max_dist.assign(tc.max_dist.data(), tc.max_dist.data() + m);
  return out;
}

TargetClustering UploadTargetClustering(Device* dev,
                                        const TargetClusteringHost& host,
                                        PointLayout layout, int vector_width,
                                        Metric metric) {
  const size_t n = host.assignment.size();
  const size_t m = static_cast<size_t>(host.num_clusters);
  SK_CHECK_EQ(host.centers.rows(), m);
  SK_CHECK_EQ(host.member_offsets.size(), m + 1);
  SK_CHECK_EQ(host.member_ids.size(), n);
  SK_CHECK_EQ(host.member_dists.size(), n);
  SK_CHECK_EQ(host.max_dist.size(), m);

  TargetClustering out;
  out.num_clusters = host.num_clusters;
  out.centers = DevicePoints::Upload(dev, host.centers, layout,
                                     "target centers", vector_width, metric);
  out.assignment = dev->Alloc<uint32_t>(n, "t assignment");
  dev->CopyToDevice(&out.assignment, host.assignment.data(), n);
  out.member_offsets = dev->Alloc<uint32_t>(m + 1, "member offsets");
  dev->CopyToDevice(&out.member_offsets, host.member_offsets.data(), m + 1);
  out.member_ids = dev->Alloc<uint32_t>(n, "member ids");
  dev->CopyToDevice(&out.member_ids, host.member_ids.data(), n);
  out.member_dists = dev->Alloc<float>(n, "t member dists");
  dev->CopyToDevice(&out.member_dists, host.member_dists.data(), n);
  out.max_dist = dev->Alloc<float>(m, "target radius");
  dev->CopyToDevice(&out.max_dist, host.max_dist.data(), m);
  return out;
}

TargetClustering BuildTargetClustering(Device* dev,
                                       const DevicePoints& target,
                                       const ClusteringConfig& cfg) {
  TargetClustering out;
  const size_t n = target.n();
  const int m = cfg.landmarks_override > 0
                    ? std::min<int>(cfg.landmarks_override,
                                    static_cast<int>(n))
                    : DefaultLandmarkCount(n, dev->free_bytes());
  out.num_clusters = m;
  // Decorrelate from the query landmark RNG stream.
  const std::vector<uint32_t> landmark_ids =
      SelectLandmarks(dev, target, m, cfg.landmark_trials,
                      SplitMix64(cfg.seed ^ 0x7a11f00dULL), cfg.block_threads);
  out.centers =
      DevicePoints::GatherRows(dev, target, landmark_ids, "target centers");
  if (cfg.kmeans_iterations > 0) {
    out.centers = RefineCentersKMeans(dev, target, std::move(out.centers),
                                      cfg.kmeans_iterations,
                                      cfg.block_threads, "target");
  }

  out.assignment = dev->Alloc<uint32_t>(n, "t assignment");
  DeviceBuffer<float> dist_to_center = dev->Alloc<float>(n, "t distances");
  out.max_dist = dev->Alloc<float>(static_cast<size_t>(m), "target radius");
  RunAssignKernel(dev, target, out.centers, cfg.block_threads,
                  "assign_target", &out.assignment, &dist_to_center,
                  &out.max_dist);

  MemberLists lists = BuildMemberLists(dev, out.assignment, n,
                                       static_cast<size_t>(m),
                                       cfg.block_threads, "target");
  out.member_offsets = std::move(lists.offsets);
  out.member_ids = std::move(lists.members);

  // Per-cluster descending sort by distance-to-center (the order the
  // level-2 monotone break relies on). Functionally sorted on the host;
  // charged as a device segmented sort.
  out.member_dists = dev->Alloc<float>(n, "t member dists");
  for (int c = 0; c < m; ++c) {
    const uint32_t begin = out.member_offsets[c];
    const uint32_t end = out.member_offsets[c + 1];
    std::sort(out.member_ids.data() + begin, out.member_ids.data() + end,
              [&](uint32_t a, uint32_t b) {
                const float da = dist_to_center[a];
                const float db = dist_to_center[b];
                if (da != db) return da > db;
                return a < b;
              });
    for (uint32_t i = begin; i < end; ++i) {
      out.member_dists[i] = dist_to_center[out.member_ids[i]];
    }
  }
  dev->RecordAnalyticLaunch(
      "sort_target_clusters",
      static_cast<double>(n) / kSortKeysPerSecond +
          dev->spec().kernel_launch_overhead_s);
  return out;
}

std::vector<uint32_t> AnnEntryPointsFromClustering(
    const TargetClusteringHost& tc) {
  std::vector<uint32_t> entries;
  entries.reserve(tc.num_clusters);
  for (int c = 0; c < tc.num_clusters; ++c) {
    const uint32_t begin = tc.member_offsets[c];
    const uint32_t end = tc.member_offsets[c + 1];
    // Members are sorted descending by distance-to-center, so the last
    // one is the closest to the landmark.
    if (end > begin) entries.push_back(tc.member_ids[end - 1]);
  }
  return entries;
}

}  // namespace sweetknn::core
