#include "core/range_search.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.h"
#include "core/device_points.h"

namespace sweetknn::core {
namespace {

/// Tile-aligned chunk of the packed base scanned per QueryDistances call
/// (keeps the distance buffer cache-resident).
constexpr size_t kScanChunk = 4096;

static_assert(kScanChunk % simd::kTileLanes == 0,
              "scan chunks must stay tile-aligned");

}  // namespace

RangeResult FullRangeScan(const HostMatrix& queries,
                          const simd::PackedTargets& targets, float radius,
                          simd::Dist dist_kind, RangeScanStats* stats) {
  RangeResult result;
  const size_t n = targets.n();
  std::vector<float> dists(std::min(n, kScanChunk));
  std::vector<Neighbor> row;
  for (size_t q = 0; q < queries.rows(); ++q) {
    row.clear();
    for (size_t begin = 0; begin < n; begin += kScanChunk) {
      const size_t end = std::min(n, begin + kScanChunk);
      simd::QueryDistances(queries.row(q), targets, begin, end, dist_kind,
                           dists.data());
      for (size_t t = begin; t < end; ++t) {
        const float d = dists[t - begin];
        if (d <= radius) {
          row.push_back(Neighbor{static_cast<uint32_t>(t), d});
        }
      }
    }
    // Collected in index order; canonical rows sort by (distance, index).
    std::sort(row.begin(), row.end(), NeighborLess);
    result.AppendRow(row);
    if (stats != nullptr) {
      stats->candidates += n;
      stats->total_pairs += n;
    }
  }
  return result;
}

RangeResult TiRangeScan(const HostMatrix& queries,
                        const simd::PackedTargets& targets,
                        const TargetClusteringHost& clustering, float radius,
                        simd::Dist dist_kind, RangeScanStats* stats) {
  const size_t n = targets.n();
  const size_t dims = targets.dims();
  const int m = clustering.num_clusters;
  SK_CHECK_EQ(clustering.member_ids.size(), n);
  RangeResult result;
  std::vector<float> center_dists(static_cast<size_t>(m));
  // One packed tile's worth of exact distances, memoized per query so
  // candidates sharing a tile pay one kernel call.
  float tile_dists[simd::kTileLanes];
  std::vector<Neighbor> row;
  for (size_t q = 0; q < queries.rows(); ++q) {
    row.clear();
    // d(q, center_c) for every landmark, through the same canonical
    // kernels (bits do not matter for pruning — the slack covers them —
    // but one code path is one code path).
    if (m > 0) {
      simd::QueryBlockDistances(queries.row(q), clustering.centers.data(),
                                static_cast<size_t>(m), dims, dist_kind,
                                center_dists.data());
    }
    size_t memo_tile = static_cast<size_t>(-1);
    for (int c = 0; c < m; ++c) {
      const uint32_t begin = clustering.member_offsets[c];
      const uint32_t end = clustering.member_offsets[c + 1];
      if (begin == end) continue;
      const float d_qc = center_dists[static_cast<size_t>(c)];
      const float slack =
          RangePruneSlack(radius, d_qc, clustering.max_dist[c]);
      // Level 1: the whole cluster lies outside the ball.
      if (d_qc - clustering.max_dist[c] > radius + slack) {
        if (stats != nullptr) {
          stats->clusters_pruned += 1;
          stats->members_pruned += end - begin;
        }
        continue;
      }
      // Level 2: members with d(t, c) in [d_qc - r - slack,
      // d_qc + r + slack]. member_dists is sorted descending, so the
      // window's first member is found by binary search on the upper
      // edge and the walk stops when the lower edge is crossed.
      const float hi = d_qc + radius + slack;
      const float lo = d_qc - radius - slack;
      const float* md = clustering.member_dists.data();
      const float* first =
          std::lower_bound(md + begin, md + end, hi, std::greater<float>());
      if (stats != nullptr) {
        stats->members_pruned += static_cast<uint64_t>(first - (md + begin));
      }
      for (const float* it = first; it != md + end; ++it) {
        if (*it < lo) {
          if (stats != nullptr) {
            stats->members_pruned += static_cast<uint64_t>((md + end) - it);
          }
          break;
        }
        const uint32_t t =
            clustering.member_ids[static_cast<size_t>(it - md)];
        // Exact distance via the tile containing t — the identical bits
        // FullRangeScan computes for row t.
        const size_t tile = (t / simd::kTileLanes) * simd::kTileLanes;
        if (tile != memo_tile) {
          simd::QueryDistances(queries.row(q), targets, tile,
                               std::min(n, tile + simd::kTileLanes),
                               dist_kind, tile_dists);
          memo_tile = tile;
        }
        const float d = tile_dists[t - tile];
        if (stats != nullptr) stats->candidates += 1;
        if (d <= radius) row.push_back(Neighbor{t, d});
      }
    }
    std::sort(row.begin(), row.end(), NeighborLess);
    result.AppendRow(row);
    if (stats != nullptr) stats->total_pairs += n;
  }
  return result;
}

RangeResult RangeScanDelta(const DeltaBuffer& delta, const HostMatrix& queries,
                           float radius, Metric metric) {
  SK_CHECK_EQ(queries.cols(), delta.dims);
  RangeResult result;
  const simd::PackedTargets packed =
      simd::PackedTargets::Pack(delta.points.data(), delta.size(), delta.dims);
  std::vector<float> dists(delta.size());
  std::vector<Neighbor> row;
  for (size_t q = 0; q < queries.rows(); ++q) {
    row.clear();
    if (delta.size() > 0) {
      simd::QueryDistances(queries.row(q), packed, SimdDistFor(metric),
                           dists.data());
      for (size_t i = 0; i < delta.size(); ++i) {
        if (dists[i] > radius) continue;
        if (delta.tombstones.count(delta.ids[i]) != 0) continue;
        row.push_back(Neighbor{static_cast<uint32_t>(i), dists[i]});
      }
      std::sort(row.begin(), row.end(), NeighborLess);
    }
    result.AppendRow(row);
  }
  return result;
}

RangeResult MergeRangeShardAnswers(const std::vector<RangeShardAnswer>& answers,
                                   size_t num_queries) {
  RangeResult merged;
  std::vector<Neighbor> row;
  for (size_t q = 0; q < num_queries; ++q) {
    row.clear();
    for (const RangeShardAnswer& a : answers) {
      SK_CHECK_EQ(a.result.num_queries(), num_queries);
      row.insert(row.end(), a.result.begin(q), a.result.end(q));
    }
    std::sort(row.begin(), row.end(), NeighborLess);
    merged.AppendRow(row);
  }
  return merged;
}

}  // namespace sweetknn::core
