#ifndef SWEETKNN_CORE_SWEET_KNN_H_
#define SWEETKNN_CORE_SWEET_KNN_H_

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/knn_result.h"
#include "common/matrix.h"
#include "common/status.h"
#include "core/options.h"
#include "core/ti_knn_gpu.h"
#include "gpusim/device.h"

namespace sweetknn {

/// The library's front door: Sweet KNN with an owned simulated device.
///
///   sweetknn::SweetKnn knn;
///   KnnResult result = knn.SelfJoin(points, /*k=*/20);
///
/// For baseline comparisons or custom devices, construct with a Config;
/// for fine-grained control (re-using clusterings across k values), use
/// core::TiKnnEngine directly.
class SweetKnn {
 public:
  struct Config {
    gpusim::DeviceSpec device = gpusim::DeviceSpec::TeslaK20c();
    core::TiOptions options = core::TiOptions::Sweet();
  };

  SweetKnn() : SweetKnn(Config{}) {}
  explicit SweetKnn(const Config& config)
      : device_(config.device), options_(config.options) {}

  SweetKnn(const SweetKnn&) = delete;
  SweetKnn& operator=(const SweetKnn&) = delete;

  /// KNN join: the k nearest points of `target` for every row of `query`.
  KnnResult Join(const HostMatrix& query, const HostMatrix& target, int k,
                 core::KnnRunStats* stats = nullptr) {
    return core::TiKnnEngine::RunOnce(&device_, query, target, k, options_,
                                      stats);
  }

  /// Self-join (query set == target set), the setting of the paper's
  /// experiments. Note each point finds itself as its nearest neighbor.
  KnnResult SelfJoin(const HostMatrix& points, int k,
                     core::KnnRunStats* stats = nullptr) {
    return Join(points, points, k, stats);
  }

  /// Single-query convenience: the k nearest targets of one point.
  std::vector<Neighbor> Search(const HostMatrix& target,
                               const std::vector<float>& query_point, int k) {
    SK_CHECK_EQ(query_point.size(), target.cols());
    HostMatrix query(1, target.cols());
    std::memcpy(query.mutable_row(0), query_point.data(),
                target.cols() * sizeof(float));
    const KnnResult result = Join(query, target, k);
    return std::vector<Neighbor>(result.row(0), result.row(0) + result.k());
  }

  gpusim::Device& device() { return device_; }
  const core::TiOptions& options() const { return options_; }

 private:
  gpusim::Device device_;
  core::TiOptions options_;
};

/// A prebuilt index over a fixed target set: the target-side clustering
/// (the expensive part of Step 1) is built once, then arbitrary query
/// batches run against it.
///
///   sweetknn::SweetKnnIndex index(gallery);
///   KnnResult r1 = index.Query(batch1, 10);
///   KnnResult r2 = index.Query(batch2, 10);
class SweetKnnIndex {
 public:
  explicit SweetKnnIndex(const HostMatrix& target,
                         const SweetKnn::Config& config = {})
      : device_(config.device), engine_(&device_, config.options) {
    engine_.PrepareTarget(target);
    dims_ = target.cols();
    size_ = target.rows();
  }

  SweetKnnIndex(const SweetKnnIndex&) = delete;
  SweetKnnIndex& operator=(const SweetKnnIndex&) = delete;

  /// The k nearest indexed points for every query row.
  KnnResult Query(const HostMatrix& queries, int k,
                  core::KnnRunStats* stats = nullptr) {
    return engine_.RunQueries(queries, k, stats);
  }

  /// Single-point convenience.
  std::vector<Neighbor> Query(const std::vector<float>& point, int k) {
    SK_CHECK_EQ(point.size(), dims_);
    HostMatrix one(1, dims_);
    std::memcpy(one.mutable_row(0), point.data(), dims_ * sizeof(float));
    const KnnResult result = Query(one, k);
    return std::vector<Neighbor>(result.row(0), result.row(0) + result.k());
  }

  /// Persists the prepared index (target points + target clustering +
  /// configuration fingerprints) to `path` in the src/store snapshot
  /// format. `dataset_name` is recorded as provenance. Defined in
  /// src/store/index_io.cc; link sweetknn_store to use it.
  Status Save(const std::string& path,
              const std::string& dataset_name = "") const;

  /// Restores an index persisted by Save, skipping the Step-1 landmark
  /// clustering. The snapshot must have been built under the same options
  /// and device spec as `config` (fingerprint-checked); a warm-loaded
  /// index answers every query bit-identically to a cold-built one.
  /// Defined in src/store/index_io.cc; link sweetknn_store to use it.
  static Result<std::unique_ptr<SweetKnnIndex>> Load(
      const std::string& path, const SweetKnn::Config& config = {});

  size_t size() const { return size_; }
  size_t dims() const { return dims_; }
  gpusim::Device& device() { return device_; }
  const core::TiKnnEngine& engine() const { return engine_; }

 private:
  struct WarmStartTag {};
  SweetKnnIndex(WarmStartTag, const HostMatrix& target,
                const core::TargetClusteringHost& clustering,
                const SweetKnn::Config& config)
      : device_(config.device), engine_(&device_, config.options) {
    engine_.RestoreTarget(target, clustering);
    dims_ = target.cols();
    size_ = target.rows();
  }

  gpusim::Device device_;
  core::TiKnnEngine engine_;
  size_t dims_ = 0;
  size_t size_ = 0;
};

}  // namespace sweetknn

#endif  // SWEETKNN_CORE_SWEET_KNN_H_
