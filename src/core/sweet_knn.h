#ifndef SWEETKNN_CORE_SWEET_KNN_H_
#define SWEETKNN_CORE_SWEET_KNN_H_

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ann/ann_index.h"
#include "ann/search_mode.h"
#include "common/knn_result.h"
#include "common/matrix.h"
#include "common/range_result.h"
#include "common/status.h"
#include "core/delta_overlay.h"
#include "core/options.h"
#include "core/range_search.h"
#include "core/route_planner.h"
#include "core/ti_knn_gpu.h"
#include "gpusim/device.h"
#include "simd/simd_kernels.h"

namespace sweetknn {

/// The library's front door: Sweet KNN with an owned simulated device.
///
///   sweetknn::SweetKnn knn;
///   KnnResult result = knn.SelfJoin(points, /*k=*/20);
///
/// For baseline comparisons or custom devices, construct with a Config;
/// for fine-grained control (re-using clusterings across k values), use
/// core::TiKnnEngine directly.
class SweetKnn {
 public:
  struct Config {
    gpusim::DeviceSpec device = gpusim::DeviceSpec::TeslaK20c();
    core::TiOptions options = core::TiOptions::Sweet();
    /// SweetKnnIndex only: auto-compact when the overlay (delta points +
    /// tombstones) exceeds this fraction of the base rows. <= 0 disables
    /// auto-compaction (Compact() stays available).
    double compact_delta_fraction = 0.25;
    /// SweetKnnIndex only: cost-based routing of each query batch
    /// between the simulated-GPU TI engine and the vectorized host
    /// kernels (docs/performance.md). Both routes answer bit-
    /// identically; force-device restores pre-planner behavior (and is
    /// what stats-asserting callers should pin, since host-routed
    /// batches report no simulated-device stats).
    core::PlannerConfig planner;
    /// SweetKnnIndex only: build the approximate kNN-graph tier over the
    /// frozen base (and rebuild it at every compaction), enabling
    /// SearchMode::Approx queries (docs/approx.md). Exact queries — and
    /// every index built without this — are completely unaffected.
    bool enable_ann = false;
    /// SweetKnnIndex only: NN-descent build knobs for the ANN tier.
    ann::GraphBuildParams ann_params;
  };

  SweetKnn() : SweetKnn(Config{}) {}
  explicit SweetKnn(const Config& config)
      : device_(config.device), options_(config.options) {}

  SweetKnn(const SweetKnn&) = delete;
  SweetKnn& operator=(const SweetKnn&) = delete;

  /// KNN join: the k nearest points of `target` for every row of `query`.
  KnnResult Join(const HostMatrix& query, const HostMatrix& target, int k,
                 core::KnnRunStats* stats = nullptr) {
    return core::TiKnnEngine::RunOnce(&device_, query, target, k, options_,
                                      stats);
  }

  /// Self-join (query set == target set), the setting of the paper's
  /// experiments. Note each point finds itself as its nearest neighbor.
  KnnResult SelfJoin(const HostMatrix& points, int k,
                     core::KnnRunStats* stats = nullptr) {
    return Join(points, points, k, stats);
  }

  /// Single-query convenience: the k nearest targets of one point.
  std::vector<Neighbor> Search(const HostMatrix& target,
                               const std::vector<float>& query_point, int k) {
    SK_CHECK_EQ(query_point.size(), target.cols());
    HostMatrix query(1, target.cols());
    std::memcpy(query.mutable_row(0), query_point.data(),
                target.cols() * sizeof(float));
    const KnnResult result = Join(query, target, k);
    return std::vector<Neighbor>(result.row(0), result.row(0) + result.k());
  }

  gpusim::Device& device() { return device_; }
  const core::TiOptions& options() const { return options_; }

 private:
  gpusim::Device device_;
  core::TiOptions options_;
};

/// A prebuilt index over a target set: the target-side clustering (the
/// expensive part of Step 1) is built once, then arbitrary query batches
/// run against it.
///
///   sweetknn::SweetKnnIndex index(gallery);
///   KnnResult r1 = index.Query(batch1, 10);
///   KnnResult r2 = index.Query(batch2, 10);
///
/// The target set is mutable: Insert/Remove buffer changes in a delta
/// overlay (new points served by an exact brute-force side scan, deleted
/// rows masked by stable id at merge time) without touching the frozen
/// base, and Compact() — run automatically once the overlay exceeds
/// Config::compact_delta_fraction of the base — folds the overlay into a
/// freshly clustered base. Answers are exact at every point: a mutated
/// index answers bit-identically to a cold-built index over the
/// surviving point set arranged in ascending stable-id order (the
/// mutation-differential fuzz suite proves this; docs/mutability.md has
/// the argument).
///
/// Rows are named by stable ids: the initial target's rows get ids
/// 0..rows-1, every Insert allocates the next id, and ids are never
/// reused. Query results report stable ids.
///
/// Not thread-safe; serve::KnnService is the concurrent front-end.
class SweetKnnIndex {
 public:
  explicit SweetKnnIndex(const HostMatrix& target,
                         const SweetKnn::Config& config = {});

  SweetKnnIndex(const SweetKnnIndex&) = delete;
  SweetKnnIndex& operator=(const SweetKnnIndex&) = delete;

  /// The k nearest live points for every query row, as stable ids. When
  /// tombstones exist, the base engine is over-queried at
  /// k + |tombstones| so that masking can never starve the top-k.
  KnnResult Query(const HostMatrix& queries, int k,
                  core::KnnRunStats* stats = nullptr);

  /// Mode-selected query. Exact (or effectively exact: recall_target >=
  /// 1.0) modes — and approx requests against an index without a graph —
  /// run the exact path above, bit-identically. Approx modes answer the
  /// frozen base from the kNN-graph tier under the mode's candidate
  /// budget, still scanning delta points exactly and masking tombstones,
  /// so mutations never weaken below the graph's recall. `ann_stats`
  /// (optional) accumulates the graph-search work counters.
  KnnResult Query(const HostMatrix& queries, int k,
                  const ann::SearchMode& mode,
                  core::KnnRunStats* stats = nullptr,
                  ann::AnnSearchStats* ann_stats = nullptr);

  /// Single-point convenience.
  std::vector<Neighbor> Query(const std::vector<float>& point, int k);

  // -- Range modalities (docs/modalities.md) --------------------------

  /// Every live point within the closed ball distance <= radius of each
  /// query row, as stable ids, each row sorted ascending under
  /// NeighborLess on (distance, id). The planner picks the base-scan
  /// route — the TI-pruned scan reusing the Step-1 landmark bounds
  /// (kDevice) or the exhaustive vectorized host scan (kHost) — and
  /// both answer bit-identically; neither touches the simulated device,
  /// so kNN stats and the adaptive state are unperturbed. `stats`
  /// (optional) reports the base-scan work/pruning counters.
  RangeResult RadiusSearch(const HostMatrix& queries, float radius,
                           core::RangeScanStats* stats = nullptr);

  /// Every unordered pair of live points within the closed ball, each
  /// emitted once as (a, b, distance) with a < b, ordered by ascending
  /// a then (distance, b). Runs as chunked RadiusSearch over the live
  /// points (so pruning, routing, and overlay handling are the same
  /// fuzz-proven path), keeping matches with id > query id — which also
  /// excludes self-matches while keeping distinct duplicate points.
  std::vector<SelfJoinPair> SelfJoin(float radius,
                                     core::RangeScanStats* stats = nullptr);

  /// The exact kNN graph over the live points: row i of `neighbors`
  /// holds the k nearest live points of ids[i], excluding itself,
  /// padded with kInvalidNeighbor when fewer than k other points exist.
  /// Built as chunked Query(chunk, k + 1) with the self entry dropped:
  /// a point absent from its own top k+1 (duplicate-heavy sets) leaves
  /// the top k of the others intact, so the graph is exact either way.
  struct KnnGraphResult {
    std::vector<uint32_t> ids;  ///< Live stable ids, ascending.
    KnnResult neighbors;        ///< ids.size() rows of k stable-id entries.
  };
  KnnGraphResult KnnGraph(int k);

  /// The live points and their stable ids, ascending id order (the
  /// query source of the offline jobs).
  void ExportLive(std::vector<uint32_t>* ids, HostMatrix* points) const;

  /// Adds a point; returns its stable id. The point lands in the delta
  /// buffer and is served exactly from the next Query on. May trigger
  /// auto-compaction (see Config::compact_delta_fraction).
  uint32_t Insert(const std::vector<float>& point);

  /// Deletes the point with this stable id. Delta-resident points are
  /// erased in place; base rows are tombstoned until the next
  /// compaction. Returns false if the id was never live or already
  /// removed. Removing every point is allowed — queries then answer all
  /// padding. May trigger auto-compaction.
  bool Remove(uint32_t id);

  /// Folds the overlay into a fresh base: survivors of the old base plus
  /// the delta points, arranged in ascending stable-id order, get a
  /// from-scratch Step-1 clustering on a fresh simulated device (so the
  /// adaptive scheme sees exactly the allocation state of a cold build).
  /// No-op when the overlay is empty or no points survive.
  void Compact();

  /// Persists the index (target points + target clustering + overlay +
  /// configuration fingerprints) to `path` in the src/store snapshot
  /// format; a pristine (never-mutated) index writes the backward-
  /// compatible v1 format, a mutated one v2. `dataset_name` is recorded
  /// as provenance. Defined in src/store/index_io.cc; link
  /// sweetknn_store to use it.
  Status Save(const std::string& path,
              const std::string& dataset_name = "") const;

  /// Restores an index persisted by Save — including any delta/tombstone
  /// overlay — skipping the Step-1 landmark clustering. The snapshot
  /// must have been built under the same options and device spec as
  /// `config` (fingerprint-checked); a warm-loaded index answers every
  /// query bit-identically to the index that was saved. Defined in
  /// src/store/index_io.cc; link sweetknn_store to use it.
  static Result<std::unique_ptr<SweetKnnIndex>> Load(
      const std::string& path, const SweetKnn::Config& config = {});

  /// Live points: base rows minus tombstones plus delta points.
  size_t size() const {
    return base_rows_ - delta_.tombstones.size() + delta_.size();
  }
  size_t dims() const { return dims_; }
  /// Rows in the frozen TI-clustered base (including tombstoned ones).
  size_t base_rows() const { return base_rows_; }
  size_t delta_size() const { return delta_.size(); }
  size_t tombstone_count() const { return delta_.tombstones.size(); }
  /// The next stable id Insert will allocate.
  uint32_t next_id() const { return next_id_; }
  /// Compactions run so far (auto or manual).
  uint64_t compactions() const { return compactions_; }
  /// True when the index has no overlay and answers straight from the
  /// base (a never-mutated or freshly compacted-to-identity index).
  bool pristine() const { return delta_.Pristine() && id_map_.empty(); }
  /// The live stable ids, ascending.
  std::vector<uint32_t> LiveIds() const;

  /// The ANN tier (empty unless Config::enable_ann and the base is
  /// non-empty). Covers the frozen base as of the last (re)build.
  const ann::AnnIndex& ann() const { return ann_; }
  bool ann_enabled() const { return config_.enable_ann; }

  gpusim::Device& device() { return *device_; }
  const core::TiKnnEngine& engine() const { return *engine_; }
  /// The batch router (live mode switch; route counters).
  core::RoutePlanner& planner() { return planner_; }
  const core::RoutePlanner& planner() const { return planner_; }

 private:
  struct WarmStartTag {};
  SweetKnnIndex(WarmStartTag, const HostMatrix& target,
                const core::TargetClusteringHost& clustering,
                const SweetKnn::Config& config);

  /// Installs a restored overlay (Load's v2 path). `id_map` empty means
  /// identity; `next_id` 0 means pristine (base rows).
  void AdoptOverlay(std::vector<uint32_t> id_map,
                    std::vector<uint32_t> delta_ids,
                    std::vector<float> delta_points,
                    const std::vector<uint32_t>& tombstones,
                    uint32_t next_id);

  /// (Re)builds the ANN tier over `base` when enabled, seeding the entry
  /// points from the engine's Step-1 landmark clustering. Clears the
  /// tier when disabled or the base is empty.
  void RebuildAnn(const HostMatrix& base);
  /// Installs a persisted graph (Load's v3 path) instead of rebuilding.
  void AdoptAnnGraph(const HostMatrix& base, ann::KnnGraph graph);

  /// Stable id of base row `i`.
  uint32_t BaseId(size_t i) const {
    return id_map_.empty() ? static_cast<uint32_t>(i) : id_map_[i];
  }
  bool BaseContains(uint32_t id) const;
  void MaybeCompact();

  /// The host image of the engine's Step-1 target clustering, exported
  /// lazily and cached until the next Compact() replaces the base (the
  /// export is charge-free, so caching is purely to avoid re-copying).
  const core::TargetClusteringHost& CachedClustering();

  SweetKnn::Config config_;
  std::unique_ptr<gpusim::Device> device_;
  std::unique_ptr<core::TiKnnEngine> engine_;
  core::RoutePlanner planner_;
  /// The frozen base, pre-packed for the vectorized host route (rebuilt
  /// by Compact alongside the engine).
  simd::PackedTargets packed_base_;
  /// The approximate tier over the same frozen base (empty when
  /// Config::enable_ann is off).
  ann::AnnIndex ann_;
  size_t dims_ = 0;
  size_t base_rows_ = 0;
  /// Base row -> stable id, strictly increasing; empty = identity
  /// (initial build, or a compaction that produced ids 0..rows-1).
  std::vector<uint32_t> id_map_;
  core::DeltaBuffer delta_;
  uint32_t next_id_ = 0;
  uint64_t compactions_ = 0;
  /// See CachedClustering().
  std::unique_ptr<core::TargetClusteringHost> clustering_cache_;
};

}  // namespace sweetknn

#endif  // SWEETKNN_CORE_SWEET_KNN_H_
