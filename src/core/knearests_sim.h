#ifndef SWEETKNN_CORE_KNEARESTS_SIM_H_
#define SWEETKNN_CORE_KNEARESTS_SIM_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "common/knn_result.h"
#include "common/topk.h"
#include "core/options.h"
#include "gpusim/memory.h"
#include "gpusim/warp.h"

namespace sweetknn::core {

/// Warp-local simulation of the per-thread `kNearests` arrays of
/// Algorithm 2. The neighbor heaps are held functionally (one bounded
/// max-heap per lane); the placement (global / shared / registers) and the
/// global-memory layout (paper Fig. 6) determine what instruction and
/// memory-transaction costs each operation charges:
///
///  - kRegisters / kShared: pure ALU cost; the resource pressure is
///    expressed through the kernel's KernelMeta (regs per thread / shared
///    bytes per block), which the occupancy model turns into time.
///  - kGlobal: every heap touch additionally loads/stores through the
///    simulated global buffers, whose addressing follows the layout:
///    blocked (Fig. 6a) keeps thread t's heap at [t*k, (t+1)*k);
///    interleaved (Fig. 6b) puts entry j of thread t at j*num_threads + t
///    so that lanes working on the same heap level coalesce.
class KnearestsSim {
 public:
  KnearestsSim(int k, KnearestsPlacement placement, KnearestsLayout layout,
               gpusim::DeviceBuffer<float>* global_dist, size_t total_threads,
               size_t l2_cache_bytes = 1280 * 1024)
      : k_(k),
        placement_(placement),
        layout_(layout),
        global_dist_(global_dist),
        total_threads_(total_threads),
        l2_cache_bytes_(l2_cache_bytes) {
    SK_CHECK_GT(k, 0);
    if (placement_ == KnearestsPlacement::kGlobal) {
      SK_CHECK(global_dist_ != nullptr);
      SK_CHECK_GE(global_dist_->size(), total_threads_ * static_cast<size_t>(k));
    }
  }

  int k() const { return k_; }

  /// Seeds each active lane's heap with +infinity placeholders.
  ///
  /// Note on the paper: Algorithm 2 line 4 seeds kNearests with the
  /// cluster's pooled k upper bounds. That is subtly unsound: a tight
  /// low-rank bound (valid as b_1 >= d_1) can survive max-eviction and
  /// block the true kth neighbor from entering the heap, so theta drops
  /// below d_k and real neighbors get filtered. We therefore keep theta
  /// seeded from the cluster UB (line 3, which is sound) but fill the
  /// heap with real candidates only; placeholders are +inf and never
  /// displace anything (see DESIGN.md "Deviations").
  void InitInfinity(gpusim::Warp& w) {
    w.Op([&](int lane) {
      auto& heap = heaps_[static_cast<size_t>(lane)];
      heap.assign(static_cast<size_t>(k_),
                  Neighbor{kInvalidNeighbor,
                           std::numeric_limits<float>::infinity()});
    });
    if (placement_ == KnearestsPlacement::kGlobal) {
      ChargeGlobalFill(w, [&](int lane) { return lane; }, /*is_store=*/true);
    }
  }

  /// Current kth-nearest distance of a lane (the theta source).
  float Root(int lane) const {
    const auto& heap = heaps_[static_cast<size_t>(lane)];
    return heap.empty() ? std::numeric_limits<float>::infinity()
                        : heap.front().distance;
  }

  /// Evict-and-insert for every active lane whose candidate beats its
  /// root (Algorithm 2 line 16). Returns the mask of lanes that inserted.
  template <typename TidF>
  gpusim::LaneMask TryInsert(gpusim::Warp& w, const gpusim::Reg<float>& dist,
                             const gpusim::Reg<uint32_t>& index,
                             TidF&& tid_of) {
    (void)tid_of;
    const gpusim::LaneMask inserting = w.Ballot([&](int lane) {
      const Neighbor cand{index[lane], dist[lane]};
      const auto& heap = heaps_[static_cast<size_t>(lane)];
      return NeighborLess(cand, heap.front());
    });
    if (inserting == 0) return 0;
    int inserted_count = 0;
    w.If(inserting, [&] {
      w.Op([&](int lane) {
        auto& heap = heaps_[static_cast<size_t>(lane)];
        std::pop_heap(heap.begin(), heap.end(), NeighborLess);
        heap.back() = Neighbor{index[lane], dist[lane]};
        std::push_heap(heap.begin(), heap.end(), NeighborLess);
        ++inserted_count;
      });
      // The paper's kNearests is a flat array: replacing the max is a
      // linear scan over the k entries plus one write (this O(k) update
      // cost is precisely why the paper's full filter degrades at large
      // k and the partial filter takes over, section IV-B1). We keep a
      // heap functionally but charge the paper's linear-array costs.
      w.Op([](int) {}, static_cast<uint64_t>(k_) + 2);
      if (placement_ == KnearestsPlacement::kGlobal) {
        ChargeGlobalScan(w, inserted_count);
      }
    });
    return inserting;
  }

  /// Sorts each active lane's heap ascending for output (charges the sort
  /// and, for global placement, the read-back traffic).
  void ExtractSorted(gpusim::Warp& w) {
    w.Op([&](int lane) {
      auto& heap = heaps_[static_cast<size_t>(lane)];
      std::sort(heap.begin(), heap.end(), NeighborLess);
    });
    const uint64_t sort_cost =
        static_cast<uint64_t>(k_) *
        (static_cast<uint64_t>(std::log2(std::max(2, k_))) + 1);
    w.Op([](int) {}, sort_cost);
    if (placement_ == KnearestsPlacement::kGlobal) {
      ChargeGlobalFill(w, [&](int lane) { return lane; }, /*is_store=*/false);
    }
  }

  /// Lane heap contents (ascending after ExtractSorted).
  const std::vector<Neighbor>& Lane(int lane) const {
    return heaps_[static_cast<size_t>(lane)];
  }

  /// KernelMeta resource contributions of this placement (paper IV-D2:
  /// the decision thresholds follow the 4k-byte distance array).
  static int RegistersForPlacement(KnearestsPlacement placement, int k,
                                   int base_regs) {
    return placement == KnearestsPlacement::kRegisters ? base_regs + k
                                                       : base_regs;
  }
  static int SharedBytesForPlacement(KnearestsPlacement placement, int k,
                                     int block_threads) {
    return placement == KnearestsPlacement::kShared ? block_threads * 4 * k
                                                    : 0;
  }

 private:
  /// Traffic of touching all k entries of each active lane's heap.
  template <typename TidF>
  void ChargeGlobalFill(gpusim::Warp& w, TidF&& tid_of, bool is_store) {
    (void)tid_of;
    const uint64_t active = static_cast<uint64_t>(w.ActiveCount());
    const uint64_t instructions = static_cast<uint64_t>((k_ + 3) / 4);
    uint64_t transactions = 0;
    if (layout_ == KnearestsLayout::kBlocked) {
      // Each lane streams its contiguous k*4-byte block.
      transactions = active * ((static_cast<uint64_t>(k_) * 4 + 127) / 128 + 1);
    } else {
      // Lanes advance through levels together; each level is one
      // coalesced row across adjacent thread ids.
      transactions = static_cast<uint64_t>(k_) *
                     ((active * 4 + 127) / 128);
    }
    w.ChargeMemory(transactions, is_store ? 0 : instructions,
                   is_store ? instructions : 0, DramShare(transactions));
  }

  /// Traffic of one max-scan replacement for `inserted` lanes: the scan
  /// walks all k entries, the write touches one. With the interleaved
  /// layout (Fig. 6b) the lanes read entry j together -> one coalesced
  /// transaction per entry; with the blocked layout every lane streams
  /// its own k*4-byte row.
  void ChargeGlobalScan(gpusim::Warp& w, int inserted) {
    const uint64_t scan_loads = static_cast<uint64_t>((k_ + 3) / 4);
    uint64_t transactions = 0;
    if (layout_ == KnearestsLayout::kBlocked) {
      const uint64_t per_lane = (static_cast<uint64_t>(k_) * 4 + 127) / 128 + 1;
      transactions = per_lane * static_cast<uint64_t>(inserted);
    } else {
      transactions = static_cast<uint64_t>(k_) *
                         ((static_cast<uint64_t>(inserted) * 4 + 127) / 128) /
                         4 +
                     1;  // float4 reads: k/4 coalesced rows, plus the write.
    }
    w.ChargeMemory(transactions, scan_loads, 1, DramShare(transactions));
  }

  /// Heaps are thread-hot: the fraction of the pool that exceeds L2
  /// capacity pays DRAM bandwidth, the rest is L2-resident.
  uint64_t DramShare(uint64_t transactions) const {
    const double pool_bytes =
        static_cast<double>(total_threads_) * static_cast<double>(k_) * 4.0;
    const double miss =
        std::max(0.0, 1.0 - static_cast<double>(l2_cache_bytes_) /
                                std::max(1.0, pool_bytes));
    return static_cast<uint64_t>(static_cast<double>(transactions) * miss);
  }

  int k_;
  KnearestsPlacement placement_;
  KnearestsLayout layout_;
  gpusim::DeviceBuffer<float>* global_dist_;
  size_t total_threads_;
  size_t l2_cache_bytes_;
  std::array<std::vector<Neighbor>, gpusim::kWarpSize> heaps_;
};

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_KNEARESTS_SIM_H_
