#ifndef SWEETKNN_CORE_KNN_REGRESSOR_H_
#define SWEETKNN_CORE_KNN_REGRESSOR_H_

#include <vector>

#include "common/matrix.h"
#include "core/sweet_knn.h"

namespace sweetknn {

/// k-NN regression on top of the Sweet KNN index: the prediction for a
/// query is the (optionally distance-weighted) mean of its neighbors'
/// target values.
class KnnRegressor {
 public:
  struct Options {
    int k = 5;
    bool distance_weighted = false;
    SweetKnn::Config engine;
  };

  KnnRegressor(const HostMatrix& train, std::vector<float> values,
               const Options& options);
  KnnRegressor(const HostMatrix& train, std::vector<float> values)
      : KnnRegressor(train, std::move(values), Options()) {}

  /// Predicted value for every query row.
  std::vector<float> Predict(const HostMatrix& queries);

  /// Mean squared error against ground truth.
  double MseScore(const HostMatrix& queries,
                  const std::vector<float>& truth);

  int k() const { return options_.k; }

 private:
  Options options_;
  std::vector<float> values_;
  SweetKnnIndex index_;
};

}  // namespace sweetknn

#endif  // SWEETKNN_CORE_KNN_REGRESSOR_H_
