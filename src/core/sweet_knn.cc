#include "core/sweet_knn.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"
#include "core/device_points.h"
#include "core/shard_merge.h"

namespace sweetknn {

SweetKnnIndex::SweetKnnIndex(const HostMatrix& target,
                             const SweetKnn::Config& config)
    : config_(config),
      device_(std::make_unique<gpusim::Device>(config.device)),
      engine_(std::make_unique<core::TiKnnEngine>(device_.get(),
                                                  config.options)),
      planner_(config.planner),
      packed_base_(simd::PackedTargets::Pack(target.data(), target.rows(),
                                             target.cols())),
      dims_(target.cols()),
      base_rows_(target.rows()),
      next_id_(static_cast<uint32_t>(target.rows())) {
  engine_->PrepareTarget(target);
  delta_.dims = dims_;
  RebuildAnn(target);
}

SweetKnnIndex::SweetKnnIndex(WarmStartTag, const HostMatrix& target,
                             const core::TargetClusteringHost& clustering,
                             const SweetKnn::Config& config)
    : config_(config),
      device_(std::make_unique<gpusim::Device>(config.device)),
      engine_(std::make_unique<core::TiKnnEngine>(device_.get(),
                                                  config.options)),
      planner_(config.planner),
      packed_base_(simd::PackedTargets::Pack(target.data(), target.rows(),
                                             target.cols())),
      dims_(target.cols()),
      base_rows_(target.rows()),
      next_id_(static_cast<uint32_t>(target.rows())) {
  engine_->RestoreTarget(target, clustering);
  delta_.dims = dims_;
  // No ANN build here: Load (the only caller) either adopts the
  // persisted graph or rebuilds, after checking the snapshot.
}

void SweetKnnIndex::RebuildAnn(const HostMatrix& base) {
  if (!config_.enable_ann || base.rows() == 0) {
    ann_ = ann::AnnIndex();
    return;
  }
  ann::GraphBuildParams params = config_.ann_params;
  // Inherit the engine's thread budget (serving pins shards to one
  // thread and parallelizes across shards instead).
  if (params.workers <= 0) params.workers = config_.options.sim_threads;
  ann_ = ann::AnnIndex::Build(
      base, core::SimdDistFor(config_.options.metric), params,
      core::AnnEntryPointsFromClustering(engine_->ExportTargetClustering()));
}

void SweetKnnIndex::AdoptAnnGraph(const HostMatrix& base,
                                  ann::KnnGraph graph) {
  ann_ = ann::AnnIndex::Adopt(
      base, core::SimdDistFor(config_.options.metric), std::move(graph));
}

void SweetKnnIndex::AdoptOverlay(std::vector<uint32_t> id_map,
                                 std::vector<uint32_t> delta_ids,
                                 std::vector<float> delta_points,
                                 const std::vector<uint32_t>& tombstones,
                                 uint32_t next_id) {
  id_map_ = std::move(id_map);
  SK_CHECK(id_map_.empty() || id_map_.size() == base_rows_);
  delta_.ids = std::move(delta_ids);
  delta_.points = std::move(delta_points);
  SK_CHECK_EQ(delta_.points.size(), delta_.ids.size() * dims_);
  delta_.tombstones.clear();
  delta_.tombstones.insert(tombstones.begin(), tombstones.end());
  if (next_id != 0) {
    next_id_ = next_id;
  }
  SK_CHECK_GE(next_id_, base_rows_ == 0 ? 0u : BaseId(base_rows_ - 1) + 1);
  if (!delta_.ids.empty()) SK_CHECK_GT(next_id_, delta_.ids.back());
}

KnnResult SweetKnnIndex::Query(const HostMatrix& queries, int k,
                               core::KnnRunStats* stats) {
  SK_CHECK_EQ(queries.cols(), dims_);
  // Route the base scan by cost. Both routes return bit-identical
  // neighbor lists (the host path runs the same canonical float
  // pipeline the engine is fuzz-proven against), so only wall-clock and
  // the stats differ: a host-routed batch reports empty KnnRunStats —
  // no simulated device ran.
  const core::QueryRoute route =
      planner_.Choose(queries.rows(), base_rows_, dims_);
  const auto run_base = [&](int base_k,
                            core::KnnRunStats* out) -> KnnResult {
    if (route == core::QueryRoute::kHost) {
      if (out != nullptr) *out = core::KnnRunStats{};
      const int workers = config_.options.sim_threads > 0
                              ? config_.options.sim_threads
                              : common::SimThreadsFromEnv();
      return simd::PackedKnn(queries, packed_base_, base_k,
                             core::SimdDistFor(config_.options.metric),
                             workers);
    }
    core::KnnRunStats local;
    const KnnResult result = engine_->RunQueries(queries, base_k, &local);
    planner_.ObserveDeviceRun(local);
    if (out != nullptr) *out = local;
    return result;
  };
  if (pristine()) {
    return run_base(k, stats);
  }
  // Over-query the frozen base so tombstone masking can never leave a
  // row short of k live candidates.
  const int base_k = k + static_cast<int>(delta_.tombstones.size());
  const KnnResult base = run_base(base_k, stats);
  std::vector<core::MergeSource> sources;
  core::MergeSource base_src;
  base_src.result = &base;
  base_src.id_map = id_map_.empty() ? nullptr : id_map_.data();
  base_src.tombstones =
      delta_.tombstones.empty() ? nullptr : &delta_.tombstones;
  sources.push_back(base_src);
  KnnResult delta_result;
  if (delta_.size() > 0) {
    delta_result = core::ScanDelta(delta_, queries, k,
                                   config_.options.metric);
    core::MergeSource delta_src;
    delta_src.result = &delta_result;
    delta_src.id_map = delta_.ids.data();
    sources.push_back(delta_src);
  }
  return core::MergeMutableResults(sources, k);
}

KnnResult SweetKnnIndex::Query(const HostMatrix& queries, int k,
                               const ann::SearchMode& mode,
                               core::KnnRunStats* stats,
                               ann::AnnSearchStats* ann_stats) {
  // Effectively exact requests — and approx requests against an index
  // without a graph — take the exact path, bit-identically.
  if (mode.EffectiveExact() || ann_.empty()) {
    return Query(queries, k, stats);
  }
  SK_CHECK_EQ(queries.cols(), dims_);
  if (stats != nullptr) *stats = core::KnnRunStats{};  // no device ran
  const int workers = config_.options.sim_threads > 0
                          ? config_.options.sim_threads
                          : common::SimThreadsFromEnv();
  if (pristine()) {
    return ann_.Search(queries, k, ann::EffectiveEf(mode, k), workers,
                       ann_stats);
  }
  // Same merge protocol as the exact path: over-query the base so
  // tombstone masking can never starve the top-k, scan the delta
  // exactly, mask and merge by stable id.
  const int base_k = k + static_cast<int>(delta_.tombstones.size());
  const int ef = std::max(ann::EffectiveEf(mode, k), base_k);
  const KnnResult base = ann_.Search(queries, base_k, ef, workers, ann_stats);
  std::vector<core::MergeSource> sources;
  core::MergeSource base_src;
  base_src.result = &base;
  base_src.id_map = id_map_.empty() ? nullptr : id_map_.data();
  base_src.tombstones =
      delta_.tombstones.empty() ? nullptr : &delta_.tombstones;
  sources.push_back(base_src);
  KnnResult delta_result;
  if (delta_.size() > 0) {
    delta_result = core::ScanDelta(delta_, queries, k,
                                   config_.options.metric);
    core::MergeSource delta_src;
    delta_src.result = &delta_result;
    delta_src.id_map = delta_.ids.data();
    sources.push_back(delta_src);
  }
  return core::MergeMutableResults(sources, k);
}

std::vector<Neighbor> SweetKnnIndex::Query(const std::vector<float>& point,
                                           int k) {
  SK_CHECK_EQ(point.size(), dims_);
  HostMatrix one(1, dims_);
  std::memcpy(one.mutable_row(0), point.data(), dims_ * sizeof(float));
  const KnnResult result = Query(one, k);
  return std::vector<Neighbor>(result.row(0), result.row(0) + result.k());
}

const core::TargetClusteringHost& SweetKnnIndex::CachedClustering() {
  if (clustering_cache_ == nullptr) {
    clustering_cache_ = std::make_unique<core::TargetClusteringHost>(
        engine_->ExportTargetClustering());
  }
  return *clustering_cache_;
}

RangeResult SweetKnnIndex::RadiusSearch(const HostMatrix& queries,
                                        float radius,
                                        core::RangeScanStats* stats) {
  SK_CHECK_EQ(queries.cols(), dims_);
  if (stats != nullptr) *stats = core::RangeScanStats{};
  const simd::Dist dist_kind = core::SimdDistFor(config_.options.metric);
  RangeResult base;
  if (base_rows_ > 0) {
    const core::QueryRoute route =
        planner_.Choose(queries.rows(), base_rows_, dims_);
    base = route == core::QueryRoute::kDevice
               ? core::TiRangeScan(queries, packed_base_, CachedClustering(),
                                   radius, dist_kind, stats)
               : core::FullRangeScan(queries, packed_base_, radius, dist_kind,
                                     stats);
  } else {
    for (size_t q = 0; q < queries.rows(); ++q) base.AppendRow(nullptr, 0);
  }
  if (pristine()) return base;  // base row index == stable id already
  const RangeResult delta =
      core::RangeScanDelta(delta_, queries, radius, config_.options.metric);
  RangeResult out;
  std::vector<Neighbor> row;
  for (size_t q = 0; q < queries.rows(); ++q) {
    row.clear();
    for (const Neighbor* nb = base.begin(q); nb != base.end(q); ++nb) {
      const uint32_t id = BaseId(nb->index);
      if (delta_.tombstones.count(id) != 0) continue;
      row.push_back(Neighbor{id, nb->distance});
    }
    for (const Neighbor* nb = delta.begin(q); nb != delta.end(q); ++nb) {
      row.push_back(Neighbor{delta_.ids[nb->index], nb->distance});
    }
    std::sort(row.begin(), row.end(), NeighborLess);
    out.AppendRow(row);
  }
  return out;
}

namespace {
/// Rows per chunk of the offline jobs (SelfJoin / KnnGraph): small
/// enough to bound peak memory, large enough to amortize the scans.
constexpr size_t kJobChunkRows = 64;
}  // namespace

std::vector<SelfJoinPair> SweetKnnIndex::SelfJoin(
    float radius, core::RangeScanStats* stats) {
  if (stats != nullptr) *stats = core::RangeScanStats{};
  std::vector<uint32_t> ids;
  HostMatrix points;
  ExportLive(&ids, &points);
  std::vector<SelfJoinPair> pairs;
  for (size_t begin = 0; begin < ids.size(); begin += kJobChunkRows) {
    const size_t end = std::min(ids.size(), begin + kJobChunkRows);
    HostMatrix chunk(end - begin, dims_);
    std::memcpy(chunk.mutable_data(), points.row(begin),
                (end - begin) * dims_ * sizeof(float));
    core::RangeScanStats chunk_stats;
    const RangeResult r = RadiusSearch(chunk, radius,
                                       stats != nullptr ? &chunk_stats
                                                        : nullptr);
    if (stats != nullptr) stats->Accumulate(chunk_stats);
    for (size_t i = 0; i < r.num_queries(); ++i) {
      const uint32_t a = ids[begin + i];
      for (const Neighbor* nb = r.begin(i); nb != r.end(i); ++nb) {
        // id > a emits each unordered pair once and drops the
        // self-match; rows are NeighborLess-sorted, so pairs of one `a`
        // come out in (distance, b) order.
        if (nb->index > a) pairs.push_back({a, nb->index, nb->distance});
      }
    }
  }
  return pairs;
}

SweetKnnIndex::KnnGraphResult SweetKnnIndex::KnnGraph(int k) {
  SK_CHECK_GT(k, 0);
  KnnGraphResult out;
  HostMatrix points;
  ExportLive(&out.ids, &points);
  out.neighbors = KnnResult(out.ids.size(), k);
  std::vector<Neighbor> row;
  for (size_t begin = 0; begin < out.ids.size(); begin += kJobChunkRows) {
    const size_t end = std::min(out.ids.size(), begin + kJobChunkRows);
    HostMatrix chunk(end - begin, dims_);
    std::memcpy(chunk.mutable_data(), points.row(begin),
                (end - begin) * dims_ * sizeof(float));
    const KnnResult r = Query(chunk, k + 1);
    for (size_t i = 0; i < end - begin; ++i) {
      row.clear();
      const uint32_t self = out.ids[begin + i];
      bool dropped_self = false;
      for (const Neighbor* nb = r.row(i); nb != r.row(i) + r.k(); ++nb) {
        if (nb->index == kInvalidNeighbor) break;
        if (!dropped_self && nb->index == self) {
          dropped_self = true;
          continue;
        }
        if (row.size() == static_cast<size_t>(k)) break;
        row.push_back(*nb);
      }
      out.neighbors.SetRow(begin + i, row);
    }
  }
  return out;
}

void SweetKnnIndex::ExportLive(std::vector<uint32_t>* ids,
                               HostMatrix* points) const {
  const HostMatrix base = engine_->ExportTarget();
  ids->clear();
  std::vector<const float*> rows;
  ids->reserve(size());
  rows.reserve(size());
  for (size_t i = 0; i < base_rows_; ++i) {
    const uint32_t id = BaseId(i);
    if (delta_.tombstones.count(id) != 0) continue;
    ids->push_back(id);
    rows.push_back(base.row(i));
  }
  // Delta ids all exceed every base id, so appending stays ascending.
  for (size_t i = 0; i < delta_.size(); ++i) {
    ids->push_back(delta_.ids[i]);
    rows.push_back(delta_.point(i));
  }
  *points = HostMatrix(ids->size(), dims_);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(points->mutable_row(i), rows[i], dims_ * sizeof(float));
  }
}

uint32_t SweetKnnIndex::Insert(const std::vector<float>& point) {
  SK_CHECK_EQ(point.size(), dims_);
  const uint32_t id = next_id_++;
  delta_.Append(id, point.data());
  MaybeCompact();
  return id;
}

bool SweetKnnIndex::BaseContains(uint32_t id) const {
  if (id_map_.empty()) return id < base_rows_;
  return std::binary_search(id_map_.begin(), id_map_.end(), id);
}

bool SweetKnnIndex::Remove(uint32_t id) {
  const size_t pos = delta_.Find(id);
  if (pos != core::DeltaBuffer::kNotFound) {
    // Delta points were never clustered; erase in place.
    delta_.EraseAt(pos);
    return true;
  }
  if (!BaseContains(id) || delta_.tombstones.count(id) != 0) return false;
  delta_.tombstones.insert(id);
  MaybeCompact();
  return true;
}

std::vector<uint32_t> SweetKnnIndex::LiveIds() const {
  std::vector<uint32_t> live;
  live.reserve(size());
  for (size_t i = 0; i < base_rows_; ++i) {
    const uint32_t id = BaseId(i);
    if (delta_.tombstones.count(id) == 0) live.push_back(id);
  }
  // Every delta id exceeds every base id (ids are allocated monotonically
  // and the delta postdates the base), so this stays ascending.
  live.insert(live.end(), delta_.ids.begin(), delta_.ids.end());
  return live;
}

void SweetKnnIndex::MaybeCompact() {
  const double fraction = config_.compact_delta_fraction;
  if (fraction <= 0.0) return;
  const double overlay =
      static_cast<double>(delta_.size() + delta_.tombstones.size());
  if (overlay > fraction * static_cast<double>(base_rows_)) Compact();
}

void SweetKnnIndex::Compact() {
  if (delta_.Pristine() && id_map_.empty()) return;
  const size_t live = size();
  if (live == 0) return;  // an empty base cannot be clustered; keep masking

  const HostMatrix base_points = engine_->ExportTarget();
  HostMatrix fresh(live, dims_);
  std::vector<uint32_t> fresh_ids;
  fresh_ids.reserve(live);
  size_t out = 0;
  for (size_t i = 0; i < base_rows_; ++i) {
    const uint32_t id = BaseId(i);
    if (delta_.tombstones.count(id) != 0) continue;
    std::memcpy(fresh.mutable_row(out), base_points.row(i),
                dims_ * sizeof(float));
    fresh_ids.push_back(id);
    ++out;
  }
  for (size_t i = 0; i < delta_.size(); ++i) {
    std::memcpy(fresh.mutable_row(out), delta_.point(i),
                dims_ * sizeof(float));
    fresh_ids.push_back(delta_.ids[i]);
    ++out;
  }
  SK_CHECK_EQ(out, live);

  // A fresh device, not a re-used one: the adaptive scheme reads free
  // device memory, so rebuilding on the old device (with the old base
  // still allocated) could cluster differently than a cold build.
  device_ = std::make_unique<gpusim::Device>(config_.device);
  engine_ =
      std::make_unique<core::TiKnnEngine>(device_.get(), config_.options);
  engine_->PrepareTarget(fresh);
  packed_base_ =
      simd::PackedTargets::Pack(fresh.data(), fresh.rows(), fresh.cols());
  clustering_cache_.reset();  // the base (and its clustering) changed
  RebuildAnn(fresh);
  base_rows_ = live;
  // Normalize: ids 0..live-1 need no map (lets Save emit v1 again).
  bool identity = true;
  for (size_t i = 0; i < fresh_ids.size(); ++i) {
    if (fresh_ids[i] != i) {
      identity = false;
      break;
    }
  }
  id_map_ = identity ? std::vector<uint32_t>{} : std::move(fresh_ids);
  delta_.Clear();
  ++compactions_;
}

}  // namespace sweetknn
