#ifndef SWEETKNN_CORE_DEVICE_POINTS_H_
#define SWEETKNN_CORE_DEVICE_POINTS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "core/options.h"
#include "gpusim/device.h"
#include "gpusim/warp.h"
#include "simd/simd_kernels.h"

namespace sweetknn::core {

/// The simd-module distance kind computing exactly what AccessorDistance
/// computes for this metric (bit-identical; the equivalence suite in
/// tests/simd holds the two definitions together).
inline simd::Dist SimdDistFor(Metric metric) {
  return metric == Metric::kEuclidean ? simd::Dist::kEuclidean
                                      : simd::Dist::kManhattan;
}

/// View of one point inside a DevicePoints buffer; dimension j is
/// base[j * stride] (stride 1 for row-major, N for column-major).
struct PointAccessor {
  const float* base = nullptr;
  size_t stride = 1;
  float operator[](size_t j) const { return base[j * stride]; }
};

/// Instruction cost charged for one d-dimensional distance evaluation
/// (subtract + accumulate per dimension, plus the final reduction).
inline uint64_t DistanceOpCost(size_t dims) {
  return 2 * static_cast<uint64_t>(dims) + 4;
}

/// Euclidean distance between two accessor-views.
inline float AccessorDistance(const PointAccessor& a, const PointAccessor& b,
                              size_t dims) {
  float acc = 0.0f;
  for (size_t j = 0; j < dims; ++j) {
    const float diff = a[j] - b[j];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

/// Distance under an arbitrary supported metric.
inline float AccessorDistance(const PointAccessor& a, const PointAccessor& b,
                              size_t dims, Metric metric) {
  if (metric == Metric::kEuclidean) return AccessorDistance(a, b, dims);
  float acc = 0.0f;
  for (size_t j = 0; j < dims; ++j) {
    acc += std::fabs(a[j] - b[j]);
  }
  return acc;
}

/// A point matrix resident in simulated device memory, stored in either
/// layout of paper Fig. 7. Kernels fetch whole points through
/// LoadPoints so the layout's coalescing behaviour is accounted:
/// row-major points load as float4 vector loads; column-major points load
/// one strided element per dimension.
class DevicePoints {
 public:
  DevicePoints() = default;

  /// Uploads `m` to `dev` in the given layout (charges the H2D transfer).
  /// `vector_width` is the elements-per-load of row-major point reads:
  /// 4 models float4 vector loads (paper IV-C3), 1 scalar loads.
  static DevicePoints Upload(gpusim::Device* dev, const HostMatrix& m,
                             PointLayout layout, const char* what,
                             int vector_width = 4,
                             Metric metric = Metric::kEuclidean) {
    return Create(dev, m, layout, what, vector_width, metric,
                  /*charge_transfer=*/true);
  }

  /// Materializes device-produced data (e.g. k-means centroids computed
  /// by a kernel): same as Upload but without the PCIe charge.
  static DevicePoints CreateOnDevice(gpusim::Device* dev,
                                     const HostMatrix& m, PointLayout layout,
                                     const char* what, int vector_width = 4,
                                     Metric metric = Metric::kEuclidean) {
    return Create(dev, m, layout, what, vector_width, metric,
                  /*charge_transfer=*/false);
  }

 private:
  static DevicePoints Create(gpusim::Device* dev, const HostMatrix& m,
                             PointLayout layout, const char* what,
                             int vector_width, Metric metric,
                             bool charge_transfer) {
    DevicePoints out;
    out.n_ = m.rows();
    out.dims_ = m.cols();
    out.layout_ = layout;
    out.vector_width_ = vector_width;
    out.metric_ = metric;
    out.buf_ = dev->Alloc<float>(m.rows() * m.cols(), what);
    if (layout == PointLayout::kRowMajor) {
      std::copy(m.data(), m.data() + m.size(), out.buf_.data());
    } else {
      for (size_t p = 0; p < m.rows(); ++p) {
        for (size_t j = 0; j < m.cols(); ++j) {
          out.buf_[j * m.rows() + p] = m.at(p, j);
        }
      }
    }
    if (charge_transfer) dev->ChargeTransfer(m.size() * sizeof(float));
    return out;
  }

 public:

  size_t n() const { return n_; }
  size_t dims() const { return dims_; }
  PointLayout layout() const { return layout_; }
  Metric metric() const { return metric_; }
  bool valid() const { return buf_.valid(); }

  /// Distance between two accessor-views under this space's metric.
  float Distance(const PointAccessor& a, const PointAccessor& b) const {
    return AccessorDistance(a, b, dims_, metric_);
  }

  /// Kernel-side whole-point load for every active lane:
  /// sink(lane, PointAccessor). Charges layout-appropriate instructions
  /// and memory transactions.
  template <typename IdxF, typename SinkF>
  void LoadPoints(gpusim::Warp& w, IdxF&& point_of, SinkF&& sink) const {
    if (layout_ == PointLayout::kRowMajor) {
      w.LoadRange(
          buf_, [&](int lane) { return point_of(lane) * dims_; }, dims_,
          vector_width_, [&](int lane, const float* ptr) {
            sink(lane, PointAccessor{ptr, 1});
          });
    } else {
      w.LoadStrided(
          buf_, [&](int lane) { return point_of(lane); }, dims_,
          /*stride=*/n_, [&](int lane, const float* ptr) {
            sink(lane, PointAccessor{ptr, n_});
          });
    }
  }

  /// Builds a new point matrix from selected rows of `src` with a
  /// simulated device-side gather kernel (used to materialize landmark
  /// centers without a host round-trip).
  static DevicePoints GatherRows(gpusim::Device* dev, const DevicePoints& src,
                                 const std::vector<uint32_t>& rows,
                                 const char* what) {
    DevicePoints out;
    out.n_ = rows.size();
    out.dims_ = src.dims_;
    out.layout_ = src.layout_;
    out.vector_width_ = src.vector_width_;
    out.metric_ = src.metric_;
    out.buf_ = dev->Alloc<float>(out.n_ * out.dims_, what);
    gpusim::KernelMeta meta{std::string("gather_rows:") + what, 24, 0};
    const auto cfg = gpusim::LaunchConfig::Cover(
        static_cast<int64_t>(rows.size()), 256);
    dev->Launch(meta, cfg, [&](gpusim::Warp& w) {
      const gpusim::LaneMask valid = w.Ballot([&](int lane) {
        return static_cast<size_t>(w.GlobalThreadId(lane)) < rows.size();
      });
      w.If(valid, [&] {
        gpusim::Reg<PointAccessor> point;
        src.LoadPoints(
            w,
            [&](int lane) {
              return rows[static_cast<size_t>(w.GlobalThreadId(lane))];
            },
            [&](int lane, PointAccessor acc) { point[lane] = acc; });
        if (out.layout_ == PointLayout::kRowMajor) {
          w.StoreRange(
              out.buf_,
              [&](int lane) {
                return static_cast<size_t>(w.GlobalThreadId(lane)) *
                       out.dims_;
              },
              out.dims_, /*vector_width=*/4,
              [&](int lane, size_t j) { return point[lane][j]; });
        } else {
          // Column-major destination: one strided store per dimension;
          // lanes hold consecutive p so each dimension's stores coalesce
          // into one transaction per warp.
          w.ChargeMemory(/*transactions=*/out.dims_,
                         /*load_instructions=*/0,
                         /*store_instructions=*/out.dims_);
          w.Op(
              [&](int lane) {
                const size_t p =
                    static_cast<size_t>(w.GlobalThreadId(lane));
                for (size_t j = 0; j < out.dims_; ++j) {
                  out.buf_[j * out.n_ + p] = point[lane][j];
                }
              },
              /*cost=*/0);
        }
      });
    });
    return out;
  }

  /// Host-side element access (for verification / CPU reference paths).
  float At(size_t p, size_t j) const {
    return layout_ == PointLayout::kRowMajor ? buf_[p * dims_ + j]
                                             : buf_[j * n_ + p];
  }

  /// Host-side accessor for point p.
  PointAccessor HostPoint(size_t p) const {
    return layout_ == PointLayout::kRowMajor
               ? PointAccessor{buf_.data() + p * dims_, 1}
               : PointAccessor{buf_.data() + p, n_};
  }

 private:
  size_t n_ = 0;
  size_t dims_ = 0;
  PointLayout layout_ = PointLayout::kRowMajor;
  int vector_width_ = 4;
  Metric metric_ = Metric::kEuclidean;
  gpusim::DeviceBuffer<float> buf_;
};

}  // namespace sweetknn::core

#endif  // SWEETKNN_CORE_DEVICE_POINTS_H_
