#include "baseline/brute_force_cpu.h"

#include "common/thread_pool.h"
#include "core/device_points.h"
#include "simd/simd_kernels.h"

namespace sweetknn::baseline {

KnnResult BruteForceCpu(const HostMatrix& query, const HostMatrix& target,
                        int k, core::Metric metric, int threads) {
  SK_CHECK_EQ(query.cols(), target.cols());
  SK_CHECK_GT(k, 0);
  const int workers =
      threads > 0 ? threads : common::SimThreadsFromEnv();
  // Pack the target once, then run the vectorized batch kernels: same
  // canonical per-pair accumulation (and therefore the same bytes) as
  // the old per-pair AccessorDistance loop, at SIMD-width throughput.
  // Queries are independent, so splitting them across workers changes
  // nothing but wall-clock.
  const simd::PackedTargets packed =
      simd::PackedTargets::Pack(target.data(), target.rows(), target.cols());
  return simd::PackedKnn(query, packed, k, core::SimdDistFor(metric),
                         workers);
}

}  // namespace sweetknn::baseline
