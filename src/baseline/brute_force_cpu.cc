#include "baseline/brute_force_cpu.h"

#include "common/topk.h"
#include "core/device_points.h"

namespace sweetknn::baseline {

KnnResult BruteForceCpu(const HostMatrix& query, const HostMatrix& target,
                        int k, core::Metric metric) {
  SK_CHECK_EQ(query.cols(), target.cols());
  SK_CHECK_GT(k, 0);
  KnnResult result(query.rows(), k);
  const size_t dims = query.cols();
  for (size_t q = 0; q < query.rows(); ++q) {
    TopK heap(k);
    const float* qrow = query.row(q);
    for (size_t t = 0; t < target.rows(); ++t) {
      const float dist =
          core::AccessorDistance(core::PointAccessor{qrow, 1},
                                 core::PointAccessor{target.row(t), 1},
                                 dims, metric);
      heap.PushIfCloser(Neighbor{static_cast<uint32_t>(t), dist});
    }
    result.SetRow(q, heap.Sorted());
  }
  return result;
}

}  // namespace sweetknn::baseline
