#include "baseline/brute_force_cpu.h"

#include "common/parallel_for.h"
#include "common/thread_pool.h"
#include "common/topk.h"
#include "core/device_points.h"

namespace sweetknn::baseline {

KnnResult BruteForceCpu(const HostMatrix& query, const HostMatrix& target,
                        int k, core::Metric metric, int threads) {
  SK_CHECK_EQ(query.cols(), target.cols());
  SK_CHECK_GT(k, 0);
  KnnResult result(query.rows(), k);
  const size_t dims = query.cols();
  const int workers =
      threads > 0 ? threads : common::SimThreadsFromEnv();
  // Queries are independent, so splitting them across workers changes
  // nothing but wall-clock.
  common::ParallelFor(
      workers, query.rows(), /*grain=*/8, [&](size_t begin, size_t end) {
        for (size_t q = begin; q < end; ++q) {
          TopK heap(k);
          const float* qrow = query.row(q);
          for (size_t t = 0; t < target.rows(); ++t) {
            const float dist =
                core::AccessorDistance(core::PointAccessor{qrow, 1},
                                       core::PointAccessor{target.row(t), 1},
                                       dims, metric);
            heap.PushIfCloser(Neighbor{static_cast<uint32_t>(t), dist});
          }
          result.SetRow(q, heap.Sorted());
        }
      });
  return result;
}

}  // namespace sweetknn::baseline
