#ifndef SWEETKNN_BASELINE_TI_KNN_CPU_H_
#define SWEETKNN_BASELINE_TI_KNN_CPU_H_

#include <cstdint>

#include "common/knn_result.h"
#include "common/matrix.h"

namespace sweetknn::baseline {

/// Profiling output of the sequential TI-KNN.
struct TiCpuStats {
  /// Point-to-point distance computations in the point-level filter.
  uint64_t distance_calcs = 0;
  uint64_t total_pairs = 0;
  double SavedFraction() const {
    if (total_pairs == 0) return 0.0;
    return (static_cast<double>(total_pairs) -
            static_cast<double>(distance_calcs)) /
           static_cast<double>(total_pairs);
  }
};

/// Sequential CPU implementation of the triangle-inequality KNN the paper
/// builds on (Ding et al., VLDB'15 style; the pseudo-code of paper
/// Fig. 4). Used as a second oracle for the GPU implementation and to
/// cross-check the saved-computation fractions.
///
/// `landmarks` = 0 applies the 3*sqrt(N) rule. `threads` = host workers
/// for the per-query point-level filter (0 inherits SWEETKNN_SIM_THREADS);
/// neighbors and counters are identical for any thread count.
KnnResult TiKnnCpu(const HostMatrix& query, const HostMatrix& target, int k,
                   int landmarks = 0, TiCpuStats* stats = nullptr,
                   uint64_t seed = 7, int threads = 0);

}  // namespace sweetknn::baseline

#endif  // SWEETKNN_BASELINE_TI_KNN_CPU_H_
