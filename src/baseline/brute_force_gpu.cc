#include "baseline/brute_force_gpu.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/topk.h"
#include "core/device_points.h"
#include "gpusim/gemm_model.h"

namespace sweetknn::baseline {

namespace {

using core::DevicePoints;
using core::PointAccessor;
using core::PointLayout;
using gpusim::Device;
using gpusim::DeviceBuffer;
using gpusim::KernelMeta;
using gpusim::LaneMask;
using gpusim::LaunchConfig;
using gpusim::Reg;
using gpusim::Warp;

/// Squared-norm kernel: one thread per point.
DeviceBuffer<float> ComputeNorms(Device* dev, const DevicePoints& points,
                                 int block_threads, const char* name) {
  const size_t n = points.n();
  const size_t dims = points.dims();
  DeviceBuffer<float> norms = dev->Alloc<float>(n, name);
  KernelMeta meta{name, 32, 0};
  dev->Launch(meta,
              LaunchConfig::Cover(static_cast<int64_t>(n), block_threads),
              [&](Warp& w) {
    const LaneMask valid = w.Ballot([&](int lane) {
      return static_cast<size_t>(w.GlobalThreadId(lane)) < n;
    });
    w.If(valid, [&] {
      Reg<PointAccessor> point;
      points.LoadPoints(w, [&](int lane) { return w.GlobalThreadId(lane); },
                        [&](int lane, PointAccessor acc) {
                          point[lane] = acc;
                        });
      Reg<float> norm;
      w.Op(
          [&](int lane) {
            float acc = 0.0f;
            for (size_t j = 0; j < dims; ++j) {
              acc += point[lane][j] * point[lane][j];
            }
            norm[lane] = acc;
          },
          2 * dims);
      w.Store(norms, [&](int lane) { return w.GlobalThreadId(lane); },
              [&](int lane) { return norm[lane]; });
    });
  });
  return norms;
}

/// The plain-CUDA brute force: one thread per query computes every
/// target distance directly (column-major loads, lanes share each target
/// point's dimensions broadcast-style) and maintains the sorted k-array
/// in the same pass. No distance matrix, so no partitioning — but every
/// thread streams the whole target set and the arithmetic runs at plain
/// kernel efficiency rather than CUBLAS tile efficiency.
KnnResult BruteForcePureCuda(Device* dev, const HostMatrix& query,
                             const HostMatrix& target, int k,
                             const BruteForceOptions& options,
                             BruteForceStats* stats) {
  dev->ResetProfile();
  const size_t nq = query.rows();
  const size_t nt = target.rows();
  const size_t dims = query.cols();

  DevicePoints d_query = DevicePoints::Upload(
      dev, query, PointLayout::kColumnMajor, "bf query");
  DevicePoints d_target = DevicePoints::Upload(
      dev, target, PointLayout::kColumnMajor, "bf target");

  KnnResult result(nq, k);
  KernelMeta meta{"bf_pure_cuda", 48, 0};
  dev->Launch(meta,
              LaunchConfig::Cover(static_cast<int64_t>(nq),
                                  options.block_threads),
              [&](Warp& w) {
    const LaneMask valid = w.Ballot([&](int lane) {
      return static_cast<size_t>(w.GlobalThreadId(lane)) < nq;
    });
    if (valid == 0) return;
    w.If(valid, [&] {
      const uint64_t active = static_cast<uint64_t>(w.ActiveCount());
      std::array<std::vector<Neighbor>, gpusim::kWarpSize> sorted;
      uint64_t shift_steps = 0;
      w.Op(
          [&](int lane) {
            const size_t q = static_cast<size_t>(w.GlobalThreadId(lane));
            auto& arr = sorted[static_cast<size_t>(lane)];
            arr.reserve(static_cast<size_t>(k));
            for (size_t t = 0; t < nt; ++t) {
              float dist;
              if (options.exact) {
                dist = EuclideanDistance(query.row(q), target.row(t),
                                         dims);
              } else {
                dist = PairHash01(q, t);
              }
              const Neighbor cand{static_cast<uint32_t>(t), dist};
              if (arr.size() == static_cast<size_t>(k) &&
                  !NeighborLess(cand, arr.back())) {
                continue;
              }
              const auto pos = std::lower_bound(arr.begin(), arr.end(),
                                                cand, NeighborLess);
              shift_steps += static_cast<uint64_t>(arr.end() - pos);
              if (arr.size() == static_cast<size_t>(k)) arr.pop_back();
              arr.insert(pos, cand);
            }
          },
          /*cost=*/0);
      // Per target point: the distance arithmetic (2 ops/dim) plus one
      // strided load per dimension — lanes process the same t together,
      // so each dimension's element broadcasts (1 transaction), but a
      // transaction is still paid per dimension per point: the quadratic
      // memory pressure the paper attributes to non-GEMM formulations.
      w.ChargeManual(nt * 2 * dims, nt * 2 * dims * active);
      // Concurrent warps sweep the target set roughly together, so the
      // slice of it that fits in L2 is served on-chip.
      const double target_bytes = static_cast<double>(nt) * dims * 4.0;
      const double miss_share = std::max(
          0.0, 1.0 - static_cast<double>(dev->spec().l2_cache_bytes) /
                         std::max(1.0, target_bytes));
      w.ChargeMemory(/*transactions=*/nt * dims,
                     /*load_instructions=*/nt * dims, 0,
                     static_cast<uint64_t>(nt * dims * miss_share));
      const uint64_t avg_shifts = (shift_steps + active - 1) / active;
      w.ChargeManual(2 * avg_shifts, 2 * shift_steps);
      w.ChargeMemory(2 * avg_shifts, avg_shifts, avg_shifts, 0);

      for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
        if ((valid >> lane & 1u) == 0) continue;
        const size_t q = static_cast<size_t>(w.GlobalThreadId(lane));
        std::vector<Neighbor> row(sorted[static_cast<size_t>(lane)].begin(),
                                  sorted[static_cast<size_t>(lane)].end());
        result.SetRow(q, row);
      }
      const uint64_t out_insts = static_cast<uint64_t>((k + 3) / 4);
      w.ChargeMemory(active * ((4ull * k + 127) / 128 + 1), 0,
                     2 * out_insts);
    });
  });

  dev->ChargeTransfer(nq * static_cast<size_t>(k) * 8);
  if (stats != nullptr) {
    stats->profile = dev->profile();
    stats->sim_time_s = stats->profile.TotalTime();
    stats->query_partitions = 1;
  }
  return result;
}

}  // namespace

KnnResult BruteForceGpu(Device* dev, const HostMatrix& query,
                        const HostMatrix& target, int k,
                        const BruteForceOptions& options,
                        BruteForceStats* stats) {
  if (options.variant == BruteForceVariant::kPureCuda) {
    return BruteForcePureCuda(dev, query, target, k, options, stats);
  }
  SK_CHECK_EQ(query.cols(), target.cols());
  SK_CHECK_GT(k, 0);
  dev->ResetProfile();

  const size_t nq = query.rows();
  const size_t nt = target.rows();
  const size_t dims = query.cols();
  const int block_threads = options.block_threads;

  // Garcia's implementation keeps points column-major for coalesced GEMM
  // and norm access.
  DevicePoints d_query = DevicePoints::Upload(
      dev, query, PointLayout::kColumnMajor, "bf query");
  DevicePoints d_target = DevicePoints::Upload(
      dev, target, PointLayout::kColumnMajor, "bf target");
  DeviceBuffer<float> q_norms =
      ComputeNorms(dev, d_query, block_threads, "bf_query_norms");
  DeviceBuffer<float> t_norms =
      ComputeNorms(dev, d_target, block_threads, "bf_target_norms");

  // Partition the query set so each chunk's |chunk| x |T| distance matrix
  // fits in the remaining device memory.
  const size_t budget = static_cast<size_t>(
      0.9 * static_cast<double>(dev->free_bytes()));
  size_t chunk_max = budget / (nt * sizeof(float));
  chunk_max = std::max<size_t>(1, std::min(chunk_max, nq));

  const gpusim::GemmModel gemm(dev->spec());
  KnnResult result(nq, k);
  int partitions = 0;

  for (size_t q_begin = 0; q_begin < nq; q_begin += chunk_max) {
    const size_t q_end = std::min(nq, q_begin + chunk_max);
    const size_t chunk = q_end - q_begin;
    ++partitions;

    // Distance matrix for this chunk: element (t, q_local) at
    // t*chunk + q_local, so that consecutive threads (= consecutive
    // queries) read consecutive addresses while scanning t.
    DeviceBuffer<float> dist_matrix =
        dev->Alloc<float>(chunk * nt, "bf distance matrix");

    // The GEMM computes -2 * Q . T^t; norms are folded in by the
    // selection kernel. CUBLAS is modeled analytically (DESIGN.md).
    dev->RecordAnalyticLaunch(
        "cublas_sgemm",
        gemm.Time(static_cast<int64_t>(chunk), static_cast<int64_t>(nt),
                  static_cast<int64_t>(dims)));
    if (options.exact) {
      for (size_t ql = 0; ql < chunk; ++ql) {
        const float* qrow = query.row(q_begin + ql);
        for (size_t t = 0; t < nt; ++t) {
          float dot = 0.0f;
          for (size_t j = 0; j < dims; ++j) dot += qrow[j] * target.at(t, j);
          dist_matrix[t * chunk + ql] = -2.0f * dot;
        }
      }
    }

    // Selection kernel: one thread per query of the chunk; scans all |T|
    // distances keeping a sorted k-array (Garcia's modified insertion
    // sort) that functionally lives in the first k slots of the thread's
    // matrix column. The scan is executed as a hybrid: the per-element
    // load/compare work is charged in bulk, insertions are charged
    // individually with their shift traffic.
    KernelMeta meta{"bf_select", 40, 0};
    dev->Launch(meta,
                LaunchConfig::Cover(static_cast<int64_t>(chunk),
                                    block_threads),
                [&](Warp& w) {
      const LaneMask valid = w.Ballot([&](int lane) {
        return static_cast<size_t>(w.GlobalThreadId(lane)) < chunk;
      });
      if (valid == 0) return;
      w.If(valid, [&] {
        const uint64_t active = static_cast<uint64_t>(w.ActiveCount());
        // Per-lane sorted candidate arrays (ascending).
        std::array<std::vector<Neighbor>, gpusim::kWarpSize> sorted;
        Reg<float> qnorm;
        w.Load(q_norms,
               [&](int lane) {
                 return q_begin + static_cast<size_t>(w.GlobalThreadId(lane));
               },
               [&](int lane, float v) { qnorm[lane] = v; });

        uint64_t insertions = 0;
        uint64_t shift_steps = 0;
        w.Op([&](int lane) {
          const size_t ql = static_cast<size_t>(w.GlobalThreadId(lane));
          auto& arr = sorted[static_cast<size_t>(lane)];
          arr.reserve(static_cast<size_t>(k));
          for (size_t t = 0; t < nt; ++t) {
            float dist;
            if (options.exact) {
              const float sq = qnorm[lane] + t_norms[t] +
                               dist_matrix[t * chunk + ql];
              dist = std::sqrt(std::max(0.0f, sq));
            } else {
              dist = PairHash01(q_begin + ql, t);
            }
            const Neighbor cand{static_cast<uint32_t>(t), dist};
            if (arr.size() == static_cast<size_t>(k) &&
                !NeighborLess(cand, arr.back())) {
              continue;
            }
            const auto pos = std::lower_bound(arr.begin(), arr.end(), cand,
                                              NeighborLess);
            shift_steps += static_cast<uint64_t>(arr.end() - pos);
            if (arr.size() == static_cast<size_t>(k)) arr.pop_back();
            arr.insert(pos, cand);
            ++insertions;
          }
        }, /*cost=*/0);

        // Bulk charges for the scan: per element one coalesced load (the
        // t_norms load broadcasts) + ~4 ALU ops (add norms, sqrt-compare).
        const uint64_t elems = nt;
        w.ChargeMemory(/*transactions=*/elems, /*load_instructions=*/elems,
                       /*store_instructions=*/0);
        w.ChargeManual(4 * elems, 4 * elems * active);
        // Insertion-sort maintenance: each shift is a load + store in the
        // sorted region (coalesced across adjacent lanes).
        const uint64_t avg_shifts =
            insertions > 0 ? (shift_steps + active - 1) / active : 0;
        // The sorted region (first k entries per thread) is hot; only
        // the slice of it exceeding L2 pays DRAM bandwidth.
        const double region_bytes =
            static_cast<double>(chunk) * static_cast<double>(k) * 4.0;
        const double miss = std::max(
            0.0, 1.0 - static_cast<double>(dev->spec().l2_cache_bytes) /
                           std::max(1.0, region_bytes));
        w.ChargeMemory(/*transactions=*/2 * avg_shifts,
                       /*load_instructions=*/avg_shifts,
                       /*store_instructions=*/avg_shifts,
                       static_cast<uint64_t>(2.0 * avg_shifts * miss));
        w.ChargeManual(2 * avg_shifts, 2 * shift_steps);

        // Write the k results of each lane.
        for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
          if ((valid >> lane & 1u) == 0) continue;
          const size_t qid =
              q_begin + static_cast<size_t>(w.GlobalThreadId(lane));
          auto& arr = sorted[static_cast<size_t>(lane)];
          std::vector<Neighbor> row(arr.begin(), arr.end());
          result.SetRow(qid, row);
        }
        const uint64_t out_insts = static_cast<uint64_t>((k + 3) / 4);
        w.ChargeMemory(/*transactions=*/active * ((4ull * k + 127) / 128 + 1),
                       /*load_instructions=*/0,
                       /*store_instructions=*/2 * out_insts);
      });
    });
  }

  // D2H of the result arrays.
  dev->ChargeTransfer(nq * static_cast<size_t>(k) * 8);

  if (stats != nullptr) {
    stats->profile = dev->profile();
    stats->sim_time_s = stats->profile.TotalTime();
    stats->query_partitions = partitions;
  }
  return result;
}

}  // namespace sweetknn::baseline
