#ifndef SWEETKNN_BASELINE_BRUTE_FORCE_GPU_H_
#define SWEETKNN_BASELINE_BRUTE_FORCE_GPU_H_

#include "common/knn_result.h"
#include "common/matrix.h"
#include "gpusim/device.h"
#include "gpusim/stats.h"

namespace sweetknn::baseline {

/// Which brute-force implementation to run.
enum class BruteForceVariant {
  /// Garcia et al.: CUBLAS distance matrix + selection kernel (the
  /// paper's baseline — the fastest publicly available GPU KNN).
  kCublas,
  /// A plain CUDA formulation: each thread computes its query's
  /// distances directly and selects in the same pass (no distance
  /// matrix, no GEMM). The paper notes the CUBLAS version outperforms
  /// these by up to 10x on large inputs.
  kPureCuda,
};

/// Options for the brute-force GPU KNN.
struct BruteForceOptions {
  BruteForceVariant variant = BruteForceVariant::kCublas;
  int block_threads = 256;
  /// true: materialize real distances (exact results; O(|Q||T|d) host
  /// work — test scales only). false: drive the selection kernel with
  /// deterministic pseudo-distances that have the same random-order
  /// insertion statistics, so large benchmark shapes cost no quadratic
  /// host time (results are then not meaningful, only the profile is).
  bool exact = true;
};

/// Profile of one brute-force run.
struct BruteForceStats {
  double sim_time_s = 0.0;
  int query_partitions = 1;
  gpusim::Profile profile;
};

/// The paper's baseline: Garcia et al.'s CUBLAS-based KNN. Computes the
/// full |Q| x |T| distance matrix with a (modeled) GEMM plus norm kernels,
/// then a per-thread insertion-select kernel extracts each query's k
/// minima. Partitions the query set whenever the distance matrix exceeds
/// device memory, exactly as the original does.
KnnResult BruteForceGpu(gpusim::Device* dev, const HostMatrix& query,
                        const HostMatrix& target, int k,
                        const BruteForceOptions& options,
                        BruteForceStats* stats);

}  // namespace sweetknn::baseline

#endif  // SWEETKNN_BASELINE_BRUTE_FORCE_GPU_H_
