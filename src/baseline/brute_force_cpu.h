#ifndef SWEETKNN_BASELINE_BRUTE_FORCE_CPU_H_
#define SWEETKNN_BASELINE_BRUTE_FORCE_CPU_H_

#include "common/knn_result.h"
#include "common/matrix.h"
#include "core/options.h"

namespace sweetknn::baseline {

/// Exact CPU brute-force KNN join: the ground-truth oracle for tests.
/// O(|Q| * |T| * d); use only at test scales. `threads` = host workers
/// over the (independent) queries; 0 inherits SWEETKNN_SIM_THREADS. The
/// result is identical for any thread count.
KnnResult BruteForceCpu(const HostMatrix& query, const HostMatrix& target,
                        int k,
                        core::Metric metric = core::Metric::kEuclidean,
                        int threads = 0);

}  // namespace sweetknn::baseline

#endif  // SWEETKNN_BASELINE_BRUTE_FORCE_CPU_H_
