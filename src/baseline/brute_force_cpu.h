#ifndef SWEETKNN_BASELINE_BRUTE_FORCE_CPU_H_
#define SWEETKNN_BASELINE_BRUTE_FORCE_CPU_H_

#include "common/knn_result.h"
#include "common/matrix.h"
#include "core/options.h"

namespace sweetknn::baseline {

/// Exact CPU brute-force KNN join: the ground-truth oracle for tests.
/// O(|Q| * |T| * d); use only at test scales.
KnnResult BruteForceCpu(const HostMatrix& query, const HostMatrix& target,
                        int k,
                        core::Metric metric = core::Metric::kEuclidean);

}  // namespace sweetknn::baseline

#endif  // SWEETKNN_BASELINE_BRUTE_FORCE_CPU_H_
