#include "baseline/ti_knn_cpu.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/topk.h"
#include "core/ti_bounds.h"

namespace sweetknn::baseline {

namespace {

/// One clustered point set: landmark centers, assignments, per-cluster
/// members (targets: sorted by descending distance to center).
struct CpuClustering {
  std::vector<uint32_t> center_ids;        // landmark point indices
  std::vector<uint32_t> assignment;        // per point
  std::vector<float> dist_to_center;       // per point
  std::vector<float> max_dist;             // per cluster
  std::vector<std::vector<uint32_t>> members;
};

std::vector<uint32_t> PickLandmarks(const HostMatrix& points, int m,
                                    Rng* rng) {
  const size_t n = points.rows();
  const size_t dims = points.cols();
  double best_sum = -1.0;
  std::vector<uint32_t> best;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<uint32_t> cand(static_cast<size_t>(m));
    for (uint32_t& id : cand) {
      id = static_cast<uint32_t>(rng->NextBounded(n));
    }
    double sum = 0.0;
    for (int i = 0; i < m; ++i) {
      for (int j = i + 1; j < m; ++j) {
        sum += EuclideanDistance(points.row(cand[static_cast<size_t>(i)]),
                                 points.row(cand[static_cast<size_t>(j)]),
                                 dims);
      }
    }
    if (sum > best_sum) {
      best_sum = sum;
      best = std::move(cand);
    }
  }
  std::sort(best.begin(), best.end());
  best.erase(std::unique(best.begin(), best.end()), best.end());
  while (best.size() < static_cast<size_t>(m)) {
    const uint32_t id = static_cast<uint32_t>(rng->NextBounded(n));
    if (!std::binary_search(best.begin(), best.end(), id)) {
      best.insert(std::lower_bound(best.begin(), best.end(), id), id);
    }
  }
  return best;
}

CpuClustering Cluster(const HostMatrix& points, int m, bool sort_desc,
                      Rng* rng) {
  CpuClustering out;
  const size_t n = points.rows();
  const size_t dims = points.cols();
  out.center_ids = PickLandmarks(points, m, rng);
  out.assignment.resize(n);
  out.dist_to_center.resize(n);
  out.max_dist.assign(static_cast<size_t>(m), 0.0f);
  out.members.resize(static_cast<size_t>(m));
  for (size_t p = 0; p < n; ++p) {
    float best = std::numeric_limits<float>::infinity();
    uint32_t best_c = 0;
    for (int c = 0; c < m; ++c) {
      const float d = EuclideanDistance(
          points.row(p), points.row(out.center_ids[static_cast<size_t>(c)]),
          dims);
      if (d < best) {
        best = d;
        best_c = static_cast<uint32_t>(c);
      }
    }
    out.assignment[p] = best_c;
    out.dist_to_center[p] = best;
    out.max_dist[best_c] = std::max(out.max_dist[best_c], best);
    out.members[best_c].push_back(static_cast<uint32_t>(p));
  }
  if (sort_desc) {
    for (auto& cluster : out.members) {
      std::sort(cluster.begin(), cluster.end(), [&](uint32_t a, uint32_t b) {
        if (out.dist_to_center[a] != out.dist_to_center[b]) {
          return out.dist_to_center[a] > out.dist_to_center[b];
        }
        return a < b;
      });
    }
  }
  return out;
}

}  // namespace

KnnResult TiKnnCpu(const HostMatrix& query, const HostMatrix& target, int k,
                   int landmarks, TiCpuStats* stats, uint64_t seed,
                   int threads) {
  SK_CHECK_EQ(query.cols(), target.cols());
  SK_CHECK_GT(k, 0);
  const size_t dims = query.cols();
  const size_t nq = query.rows();
  const size_t nt = target.rows();
  Rng rng(seed);

  // Step 1: landmarks and clusters for both sets.
  const int mq =
      landmarks > 0
          ? std::min<int>(landmarks, static_cast<int>(nq))
          : std::max(1, std::min<int>(static_cast<int>(nq),
                                      static_cast<int>(
                                          3.0 * std::sqrt(
                                                    static_cast<double>(nq)))));
  const int mt =
      landmarks > 0
          ? std::min<int>(landmarks, static_cast<int>(nt))
          : std::max(1, std::min<int>(static_cast<int>(nt),
                                      static_cast<int>(
                                          3.0 * std::sqrt(
                                                    static_cast<double>(nt)))));
  CpuClustering qc = Cluster(query, mq, /*sort_desc=*/false, &rng);
  CpuClustering tc = Cluster(target, mt, /*sort_desc=*/true, &rng);

  // Center-to-center distances.
  std::vector<float> ccdist(static_cast<size_t>(mq) * mt);
  for (int a = 0; a < mq; ++a) {
    for (int b = 0; b < mt; ++b) {
      ccdist[static_cast<size_t>(a) * mt + b] = EuclideanDistance(
          query.row(qc.center_ids[static_cast<size_t>(a)]),
          target.row(tc.center_ids[static_cast<size_t>(b)]), dims);
    }
  }

  common::ShardedCounter distance_calcs;
  KnnResult result(nq, k);

  // Step 2 runs serially per query cluster; the per-query Step 3 work is
  // independent given the cluster's {bound, candidate list}, so it is
  // flattened into one list and split across workers. Each query's filter
  // runs exactly as in the serial version, so results are identical for
  // any thread count.
  struct ClusterPlan {
    float cluster_ub = 0.0f;
    std::vector<std::pair<float, uint32_t>> candidates;
  };
  std::vector<ClusterPlan> plans(static_cast<size_t>(mq));
  std::vector<std::pair<uint32_t, uint32_t>> work;  // (qid, cq)
  work.reserve(nq);

  for (int cq = 0; cq < mq; ++cq) {
    if (qc.members[static_cast<size_t>(cq)].empty()) continue;
    const float qmax = qc.max_dist[static_cast<size_t>(cq)];

    // Step 2.1: pooled k upper bounds over all target clusters (calUB).
    std::vector<float> pool;  // max-heap of the k smallest bounds
    auto pool_max = [&] {
      return pool.size() == static_cast<size_t>(k)
                 ? pool.front()
                 : std::numeric_limits<float>::infinity();
    };
    for (int ct = 0; ct < mt; ++ct) {
      const auto& cluster = tc.members[static_cast<size_t>(ct)];
      const float cc = ccdist[static_cast<size_t>(cq) * mt + ct];
      const size_t limit = std::min<size_t>(cluster.size(),
                                            static_cast<size_t>(k));
      for (size_t i = 0; i < limit; ++i) {
        // Closest-to-center members are at the tail (descending order).
        const float bound = core::TwoLandmarkUpperBound(
            cc, qmax, tc.dist_to_center[cluster[cluster.size() - 1 - i]]);
        if (bound >= pool_max()) break;  // Bounds grow with i.
        if (pool.size() < static_cast<size_t>(k)) {
          pool.push_back(bound);
          std::push_heap(pool.begin(), pool.end());
        } else {
          std::pop_heap(pool.begin(), pool.end());
          pool.back() = bound;
          std::push_heap(pool.begin(), pool.end());
        }
      }
    }
    const float cluster_ub = pool_max();

    // Step 2.2: group filter, candidates sorted by center distance.
    std::vector<std::pair<float, uint32_t>> candidates;
    for (int ct = 0; ct < mt; ++ct) {
      if (tc.members[static_cast<size_t>(ct)].empty()) continue;
      const float cc = ccdist[static_cast<size_t>(cq) * mt + ct];
      const float lb = core::TwoLandmarkLowerBound(
          cc, qmax, tc.max_dist[static_cast<size_t>(ct)]);
      // Inclusive comparison: keep kth-place ties (see level1.cc).
      if (lb <= cluster_ub) {
        candidates.emplace_back(cc, static_cast<uint32_t>(ct));
      }
    }
    std::sort(candidates.begin(), candidates.end());
    plans[static_cast<size_t>(cq)] =
        ClusterPlan{cluster_ub, std::move(candidates)};
    for (const uint32_t qid : qc.members[static_cast<size_t>(cq)]) {
      work.emplace_back(qid, static_cast<uint32_t>(cq));
    }
  }

  // Step 3: point-level filtering per query.
  const int workers = threads > 0 ? threads : common::SimThreadsFromEnv();
  common::ParallelFor(
      workers, work.size(), /*grain=*/16, [&](size_t begin, size_t end) {
        for (size_t widx = begin; widx < end; ++widx) {
          const auto [qid, cq] = work[widx];
          const ClusterPlan& plan = plans[cq];
          const float* qrow = query.row(qid);
          TopK heap(k);
          // Seed the filter bound with the cluster bound; theta tightens
          // as real neighbors are found.
          float theta = plan.cluster_ub;
          for (const auto& [cc_unused, ct] : plan.candidates) {
            (void)cc_unused;
            const auto& cluster = tc.members[static_cast<size_t>(ct)];
            const float q2tc = EuclideanDistance(
                qrow, target.row(tc.center_ids[ct]), dims);
            bool broke = false;
            for (const uint32_t tid : cluster) {
              const float lb =
                  core::SignedPointBound(q2tc, tc.dist_to_center[tid]);
              if (lb > theta) {
                broke = true;
                break;
              }
              if (lb < -theta) continue;
              const float dist =
                  EuclideanDistance(qrow, target.row(tid), dims);
              distance_calcs.Add(1);
              heap.PushIfCloser(Neighbor{tid, dist});
              theta = std::min(theta, heap.max());
            }
            (void)broke;
          }
          result.SetRow(qid, heap.Sorted());
        }
      });

  if (stats != nullptr) {
    stats->distance_calcs = distance_calcs.Sum();
    stats->total_pairs = static_cast<uint64_t>(nq) * nt;
  }
  return result;
}

}  // namespace sweetknn::baseline
