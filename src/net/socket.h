#ifndef SWEETKNN_NET_SOCKET_H_
#define SWEETKNN_NET_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <string>
#include <utility>

#include "common/status.h"

namespace sweetknn::net {

/// RAII wrapper of one connected AF_UNIX SOCK_STREAM endpoint. All
/// blocking calls take an absolute deadline enforced with poll(), so a
/// peer that dies, stalls, or is SIGSTOPped yields DeadlineExceeded
/// instead of wedging the calling thread (the router's failover path
/// depends on this). A closed or reset peer yields Unavailable.
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection() { Close(); }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  Connection(Connection&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  Connection& operator=(Connection&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to a listening unix socket, retrying while the path does
  /// not exist yet (the worker may still be binding) until `deadline`.
  static Result<Connection> Connect(
      const std::string& path, std::chrono::steady_clock::time_point deadline);

  /// Writes exactly `len` bytes or fails.
  Status SendAll(const void* data, size_t len,
                 std::chrono::steady_clock::time_point deadline);
  /// Reads exactly `len` bytes or fails (EOF mid-read is Unavailable).
  Status RecvAll(void* data, size_t len,
                 std::chrono::steady_clock::time_point deadline);

  bool valid() const { return fd_ >= 0; }
  /// Shuts the socket down and closes the fd. Safe to call from another
  /// thread while a Send/Recv is blocked in poll(): the blocked call
  /// fails over cleanly. Idempotent.
  void Close();

 private:
  int fd_ = -1;
};

/// RAII wrapper of a bound + listening unix socket; unlinks the path on
/// destruction.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& other) noexcept
      : fd_(other.fd_), path_(std::move(other.path_)) {
    other.fd_ = -1;
    other.path_.clear();
  }
  Listener& operator=(Listener&& other) noexcept;

  /// Binds and listens on `path` (any stale socket file is replaced).
  static Result<Listener> Bind(const std::string& path);

  /// Accepts one connection; DeadlineExceeded if none arrives in time.
  Result<Connection> Accept(std::chrono::steady_clock::time_point deadline);

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace sweetknn::net

#endif  // SWEETKNN_NET_SOCKET_H_
