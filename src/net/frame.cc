#include "net/frame.h"

#include <cstring>

#include "common/crc32.h"

namespace sweetknn::net {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// CRC32 over everything the header promises: type, payload_len, and the
/// payload bytes. Magic and version are validated by value instead — a
/// frame must be recognizable before its checksum is even located.
uint32_t FrameCrc(uint32_t type, const std::string& payload) {
  common::Crc32 crc;
  crc.Update(&type, sizeof(type));
  const uint64_t len = payload.size();
  crc.Update(&len, sizeof(len));
  crc.Update(payload.data(), payload.size());
  return crc.Final();
}

}  // namespace

std::string EncodeFrame(uint32_t type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size() + sizeof(uint32_t));
  AppendU32(&out, kFrameMagic);
  AppendU32(&out, kFrameVersion);
  AppendU32(&out, type);
  AppendU64(&out, payload.size());
  out.append(payload);
  AppendU32(&out, FrameCrc(type, payload));
  return out;
}

Status DecodeFrame(const std::string& bytes, Frame* out, size_t* consumed) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Status::IoError("frame: truncated header (" +
                           std::to_string(bytes.size()) + " of " +
                           std::to_string(kFrameHeaderBytes) + " bytes)");
  }
  const char* p = bytes.data();
  const uint32_t magic = ReadU32(p);
  if (magic != kFrameMagic) {
    return Status::IoError("frame: bad magic 0x" +
                           std::to_string(magic));
  }
  const uint32_t version = ReadU32(p + 4);
  if (version != kFrameVersion) {
    return Status::IoError("frame: protocol version " +
                           std::to_string(version) + ", this build speaks " +
                           std::to_string(kFrameVersion));
  }
  const uint32_t type = ReadU32(p + 8);
  const uint64_t len = ReadU64(p + 12);
  if (len > kMaxFramePayload) {
    return Status::IoError("frame: payload length " + std::to_string(len) +
                           " exceeds the " +
                           std::to_string(kMaxFramePayload) + " byte cap");
  }
  const size_t total = kFrameHeaderBytes + len + sizeof(uint32_t);
  if (bytes.size() < total) {
    return Status::IoError("frame: truncated payload (" +
                           std::to_string(bytes.size()) + " of " +
                           std::to_string(total) + " bytes)");
  }
  std::string payload(p + kFrameHeaderBytes, len);
  const uint32_t want_crc = ReadU32(p + kFrameHeaderBytes + len);
  const uint32_t got_crc = FrameCrc(type, payload);
  if (want_crc != got_crc) {
    return Status::IoError("frame: CRC mismatch (stored " +
                           std::to_string(want_crc) + ", computed " +
                           std::to_string(got_crc) + ")");
  }
  out->type = type;
  out->payload = std::move(payload);
  if (consumed != nullptr) *consumed = total;
  return Status::Ok();
}

Status SendFrame(Connection& conn, uint32_t type, const std::string& payload,
                 std::chrono::steady_clock::time_point deadline) {
  const std::string bytes = EncodeFrame(type, payload);
  return conn.SendAll(bytes.data(), bytes.size(), deadline);
}

Result<Frame> RecvFrame(Connection& conn,
                        std::chrono::steady_clock::time_point deadline) {
  // Header first: its length field sizes the payload read, but nothing
  // about it is believed beyond the magic/version/cap checks until the
  // CRC at the end vouches for the whole frame.
  std::string header(kFrameHeaderBytes, '\0');
  SK_RETURN_IF_ERROR(conn.RecvAll(header.data(), header.size(), deadline));
  const uint32_t magic = ReadU32(header.data());
  if (magic != kFrameMagic) {
    return Status::IoError("frame: bad magic 0x" + std::to_string(magic));
  }
  const uint32_t version = ReadU32(header.data() + 4);
  if (version != kFrameVersion) {
    return Status::IoError("frame: protocol version " +
                           std::to_string(version) + ", this build speaks " +
                           std::to_string(kFrameVersion));
  }
  const uint64_t len = ReadU64(header.data() + 12);
  if (len > kMaxFramePayload) {
    return Status::IoError("frame: payload length " + std::to_string(len) +
                           " exceeds the " +
                           std::to_string(kMaxFramePayload) + " byte cap");
  }
  std::string rest(len + sizeof(uint32_t), '\0');
  SK_RETURN_IF_ERROR(conn.RecvAll(rest.data(), rest.size(), deadline));
  const std::string whole = header + rest;
  Frame frame;
  size_t consumed = 0;
  SK_RETURN_IF_ERROR(DecodeFrame(whole, &frame, &consumed));
  return frame;
}

}  // namespace sweetknn::net
