#include "net/socket.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <thread>

namespace sweetknn::net {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::string Errno(const std::string& what) {
  return what + ": " + std::string(strerror(errno));
}

/// Milliseconds until `deadline`, clamped to [0, INT_MAX] for poll().
int MillisUntil(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SteadyClock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(
      std::min<long long>(left.count(), 1000 * 60 * 60));
}

/// Waits until the fd is ready for `events` or the deadline passes.
Status PollFor(int fd, short events, SteadyClock::time_point deadline,
               const char* what) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int ms = MillisUntil(deadline);
    const int r = poll(&pfd, 1, ms);
    if (r > 0) return Status::Ok();
    if (r == 0) {
      return Status::DeadlineExceeded(std::string(what) +
                                      " timed out waiting for the peer");
    }
    if (errno == EINTR) continue;
    return Status::IoError(Errno(std::string(what) + " poll failed"));
  }
}

Status FillSockaddr(const std::string& path, struct sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

}  // namespace

Result<Connection> Connection::Connect(const std::string& path,
                                       SteadyClock::time_point deadline) {
  struct sockaddr_un addr;
  SK_RETURN_IF_ERROR(FillSockaddr(path, &addr));
  for (;;) {
    const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return Status::IoError(Errno("socket() failed"));
    if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) == 0) {
      return Connection(fd);
    }
    const int err = errno;
    close(fd);
    // The worker process may not have bound yet; retry until the
    // deadline for the transient cases.
    if (err != ENOENT && err != ECONNREFUSED) {
      errno = err;
      return Status::IoError(Errno("connect(" + path + ") failed"));
    }
    if (SteadyClock::now() >= deadline) {
      return Status::DeadlineExceeded("connect(" + path +
                                      ") timed out waiting for the worker");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

Status Connection::SendAll(const void* data, size_t len,
                           SteadyClock::time_point deadline) {
  if (fd_ < 0) return Status::Unavailable("send on a closed connection");
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a dead peer reports EPIPE instead of killing the
    // process — worker death must be a recoverable Status.
    const ssize_t n = send(fd_, p + sent, len - sent,
                           MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SK_RETURN_IF_ERROR(PollFor(fd_, POLLOUT, deadline, "send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::Unavailable("peer closed the connection mid-send");
    }
    return Status::IoError(Errno("send failed"));
  }
  return Status::Ok();
}

Status Connection::RecvAll(void* data, size_t len,
                           SteadyClock::time_point deadline) {
  if (fd_ < 0) return Status::Unavailable("recv on a closed connection");
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = recv(fd_, p + got, len - got, MSG_DONTWAIT);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("peer closed the connection");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SK_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline, "recv"));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      return Status::Unavailable("peer reset the connection");
    }
    return Status::IoError(Errno("recv failed"));
  }
  return Status::Ok();
}

void Connection::Close() {
  if (fd_ >= 0) {
    shutdown(fd_, SHUT_RDWR);
    close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() {
  if (fd_ >= 0) close(fd_);
  if (!path_.empty()) unlink(path_.c_str());
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    if (!path_.empty()) unlink(path_.c_str());
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

Result<Listener> Listener::Bind(const std::string& path) {
  struct sockaddr_un addr;
  SK_RETURN_IF_ERROR(FillSockaddr(path, &addr));
  const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError(Errno("socket() failed"));
  unlink(path.c_str());  // replace any stale socket file
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Status::IoError(Errno("bind(" + path + ") failed"));
    close(fd);
    return st;
  }
  if (listen(fd, 8) != 0) {
    const Status st = Status::IoError(Errno("listen(" + path + ") failed"));
    close(fd);
    unlink(path.c_str());
    return st;
  }
  Listener listener;
  listener.fd_ = fd;
  listener.path_ = path;
  return listener;
}

Result<Connection> Listener::Accept(SteadyClock::time_point deadline) {
  if (fd_ < 0) return Status::Unavailable("accept on a closed listener");
  for (;;) {
    SK_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline, "accept"));
    const int fd = accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Connection(fd);
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::IoError(Errno("accept failed"));
  }
}

}  // namespace sweetknn::net
