#ifndef SWEETKNN_NET_WIRE_H_
#define SWEETKNN_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ann/knn_graph.h"
#include "ann/search_mode.h"
#include "common/knn_result.h"
#include "common/matrix.h"
#include "common/range_result.h"
#include "common/status.h"
#include "core/options.h"
#include "core/route_planner.h"
#include "core/shard_merge.h"
#include "gpusim/device_spec.h"

namespace sweetknn::net {

/// RPC message types carried in the frame header (docs/distributed.md).
/// Payloads are encoded with the .sksnap payload codec
/// (store/payload_io.h): native-endian scalars, u64-length-prefixed
/// strings and arrays, every decoder bounds-checked.
enum class MsgType : uint32_t {
  kError = 1,  ///< Any request may be answered with an Error payload.
  kAck = 2,    ///< Empty payload: the request succeeded.

  kPrepareCold = 10,      ///< Build one shard from a target slice.
  kPrepareSnapshot = 11,  ///< Adopt one shard from a .sksnap file.

  kQuery = 20,  ///< One same-k group against this worker's shards.
  kQueryReply = 21,

  kInsert = 30,  ///< Append one point to a shard's delta.
  kRemove = 31,
  kRemoveReply = 32,
  kCompact = 33,  ///< Synchronously fold one shard's overlay.

  kSaveShard = 40,  ///< Export one shard as a .sksnap (replica catch-up).

  kHealth = 50,
  kHealthReply = 51,

  kShutdown = 60,  ///< Worker acks, then exits its serve loop.

  kListIndexes = 70,  ///< Names of the indexes this worker hosts.
  kListIndexesReply = 71,

  // Offline jobs (docs/modalities.md): the router drives a worker-side
  // job slot through submit / poll / cancel / result. Each poll advances
  // the job by one chunk — bounded work per RPC, so the worker's
  // single-threaded serve loop stays responsive to point lookups.
  kJobSubmit = 80,
  kJobPoll = 81,
  kJobPollReply = 82,
  kJobCancel = 83,
  kJobResult = 84,
  kJobResultReply = 85,
  kExportLive = 86,  ///< Live ids + points of the named shards.
  kExportLiveReply = 87,
};

// --- Prepare ----------------------------------------------------------------

/// Cold-builds one shard on the worker: PrepareTarget over `slice`, which
/// covers global rows [offset, offset + slice.rows()). The options /
/// device / planner blocks ride in every prepare so a bare worker process
/// needs no configuration of its own.
struct PrepareColdRequest {
  uint32_t shard_index = 0;
  uint64_t offset = 0;
  HostMatrix slice;
  core::TiOptions options;
  gpusim::DeviceSpec device;
  core::PlannerConfig planner;
  /// ANN tier (docs/approx.md): when enabled the worker builds the
  /// kNN graph right after the cold build, with these NN-descent knobs.
  bool enable_ann = false;
  ann::GraphBuildParams ann_params;
  /// Named index this shard belongs to (docs/serving.md). The distributed
  /// tier serves one tenant per cluster today; workers record the name at
  /// prepare time and reject queries that name a different one.
  std::string tenant = "default";
};

/// Warm-starts (or replica-catches-up) one shard from a snapshot file the
/// worker reads itself — the bulk bytes never cross the socket twice.
/// The snapshot's fingerprints must match `options`/`device`.
struct PrepareSnapshotRequest {
  uint32_t shard_index = 0;
  std::string path;
  core::TiOptions options;
  gpusim::DeviceSpec device;
  core::PlannerConfig planner;
  /// ANN tier: adopt the snapshot's persisted graph when present (v3),
  /// rebuild otherwise.
  bool enable_ann = false;
  ann::GraphBuildParams ann_params;
  /// Named index this shard belongs to (see PrepareColdRequest::tenant).
  std::string tenant = "default";
};

// --- Query ------------------------------------------------------------------

/// One same-k query group, fanned to every shard this worker hosts that
/// appears in `shard_indices` (the router names them so a replica host
/// answers only for the shards it is primary of).
struct QueryRequest {
  uint32_t k = 0;
  HostMatrix queries;
  std::vector<uint32_t> shard_indices;
  /// Per-group search mode (normalized by the router); every named shard
  /// answers under the same mode, exactly like the in-process groups.
  ann::SearchMode mode;
  /// Named index the group targets. Workers answer only for the tenant
  /// they were prepared with — a mismatch is an InvalidArgument error
  /// frame, never a silent cross-tenant answer.
  std::string tenant = "default";
};

/// Per-shard answers, parallel to `shard_indices`.
struct QueryReply {
  std::vector<uint32_t> shard_indices;
  std::vector<core::ShardAnswer> answers;
};

// --- Mutations --------------------------------------------------------------

struct InsertRequest {
  uint32_t shard_index = 0;
  uint32_t id = 0;  ///< Stable id, allocated by the router.
  std::vector<float> point;
};

struct RemoveRequest {
  uint32_t shard_index = 0;
  uint32_t id = 0;
};

struct RemoveReply {
  bool found = false;
};

struct CompactRequest {
  uint32_t shard_index = 0;
};

// --- Snapshots / health -----------------------------------------------------

/// Exports one shard to `path` as a .sksnap the PrepareSnapshot of
/// another worker can adopt (replica catch-up; docs/distributed.md).
struct SaveShardRequest {
  uint32_t shard_index = 0;
  /// Global shard count, recorded as the snapshot's shard geometry.
  uint32_t shard_count = 1;
  std::string path;
  std::string dataset_name;
  /// The router's global id allocator position, recorded in mutated
  /// snapshots (must exceed every id in the file).
  uint32_t next_id = 0;
};

/// Names of the indexes a worker hosts (kListIndexes has an empty
/// payload). One name per distinct tenant across the hosted shards —
/// today at most one, but the wire shape already carries many.
struct ListIndexesReply {
  std::vector<std::string> names;
};

// --- Offline jobs -----------------------------------------------------------

/// The two scan primitives a worker job executes. The modality split
/// (radius search / self-join / kNN graph) lives at the router: a
/// self-join is a range job whose answers the router pair-filters, a
/// graph build is a knn job at k + 1 whose answers it self-drops —
/// identical to the in-process KnnService reductions.
enum class WireJobKind : uint32_t { kRange = 0, kKnn = 1 };

/// A worker job's lifecycle on the wire. There is no pending state: a
/// submitted job is running from its first poll.
enum class WireJobState : uint32_t { kRunning = 0, kDone = 1, kFailed = 2 };

/// Installs one job in the worker's single job slot. The worker rejects
/// a submit while another job id is active (the router runs at most one
/// cluster job at a time per worker).
struct JobSubmitRequest {
  uint64_t job_id = 0;  ///< Router-allocated, echoed by every poll.
  WireJobKind kind = WireJobKind::kRange;
  float radius = 0.0f;  ///< kRange: closed-ball radius.
  uint32_t k = 0;       ///< kKnn: neighbors per query row.
  HostMatrix queries;
  /// Shards this worker answers for (primaries only, like QueryRequest).
  std::vector<uint32_t> shard_indices;
  /// Query rows advanced per poll.
  uint32_t chunk_rows = 64;
  std::string tenant = "default";
};

struct JobPollRequest {
  uint64_t job_id = 0;
};

struct JobPollReply {
  WireJobState state = WireJobState::kRunning;
  uint64_t total_rows = 0;
  uint64_t done_rows = 0;
  std::string error;  ///< Set when state == kFailed.
};

/// Drops the job (idempotent: unknown ids ack too — the router cancels
/// on cleanup paths where the worker may already have forgotten it).
struct JobCancelRequest {
  uint64_t job_id = 0;
};

struct JobResultRequest {
  uint64_t job_id = 0;
};

/// The finished job's accumulated answer in stable-id space, merged
/// over the worker's shards (MergeRangeShardAnswers / MergeShardAnswers
/// — the same exact merges the in-process backend runs per chunk). The
/// router merges these across workers.
struct JobResultReply {
  WireJobKind kind = WireJobKind::kRange;
  RangeResult range;  ///< kRange: one row per query row.
  KnnResult knn;      ///< kKnn: stable-id top-k rows.
};

/// Asks for the live points of the named shards — the query source of
/// the router's self-join and kNN-graph jobs (the cluster counterpart
/// of ShardHost::ExportLive).
struct ExportLiveRequest {
  std::vector<uint32_t> shard_indices;
  std::string tenant = "default";
};

/// Parallel ids/points, ascending id within each shard; the router
/// re-sorts globally.
struct ExportLiveReply {
  std::vector<uint32_t> ids;
  HostMatrix points;
};

struct HealthReply {
  uint64_t queries_served = 0;
  struct ShardHealth {
    uint32_t index = 0;
    uint64_t base_rows = 0;
    uint64_t delta_points = 0;
    uint64_t tombstones = 0;
    uint64_t live_rows = 0;
  };
  std::vector<ShardHealth> shards;
};

// --- Codecs -----------------------------------------------------------------
// Every message has an Encode producing the frame payload and a Decode
// that rejects malformed payloads with a clean Status (never a crash:
// tests/net/frame_fuzz_test.cc drives these over corrupted bytes too).

std::string EncodePrepareCold(const PrepareColdRequest& req);
Status DecodePrepareCold(const std::string& payload, PrepareColdRequest* req);

std::string EncodePrepareSnapshot(const PrepareSnapshotRequest& req);
Status DecodePrepareSnapshot(const std::string& payload,
                             PrepareSnapshotRequest* req);

std::string EncodeQuery(const QueryRequest& req);
Status DecodeQuery(const std::string& payload, QueryRequest* req);

std::string EncodeQueryReply(const QueryReply& reply);
Status DecodeQueryReply(const std::string& payload, QueryReply* reply);

std::string EncodeInsert(const InsertRequest& req);
Status DecodeInsert(const std::string& payload, InsertRequest* req);

std::string EncodeRemove(const RemoveRequest& req);
Status DecodeRemove(const std::string& payload, RemoveRequest* req);

std::string EncodeRemoveReply(const RemoveReply& reply);
Status DecodeRemoveReply(const std::string& payload, RemoveReply* reply);

std::string EncodeCompact(const CompactRequest& req);
Status DecodeCompact(const std::string& payload, CompactRequest* req);

std::string EncodeSaveShard(const SaveShardRequest& req);
Status DecodeSaveShard(const std::string& payload, SaveShardRequest* req);

std::string EncodeHealthReply(const HealthReply& reply);
Status DecodeHealthReply(const std::string& payload, HealthReply* reply);

std::string EncodeJobSubmit(const JobSubmitRequest& req);
Status DecodeJobSubmit(const std::string& payload, JobSubmitRequest* req);

std::string EncodeJobPoll(const JobPollRequest& req);
Status DecodeJobPoll(const std::string& payload, JobPollRequest* req);

std::string EncodeJobPollReply(const JobPollReply& reply);
Status DecodeJobPollReply(const std::string& payload, JobPollReply* reply);

std::string EncodeJobCancel(const JobCancelRequest& req);
Status DecodeJobCancel(const std::string& payload, JobCancelRequest* req);

std::string EncodeJobResult(const JobResultRequest& req);
Status DecodeJobResult(const std::string& payload, JobResultRequest* req);

std::string EncodeJobResultReply(const JobResultReply& reply);
Status DecodeJobResultReply(const std::string& payload,
                            JobResultReply* reply);

std::string EncodeExportLive(const ExportLiveRequest& req);
Status DecodeExportLive(const std::string& payload, ExportLiveRequest* req);

std::string EncodeExportLiveReply(const ExportLiveReply& reply);
Status DecodeExportLiveReply(const std::string& payload,
                             ExportLiveReply* reply);

std::string EncodeListIndexesReply(const ListIndexesReply& reply);
Status DecodeListIndexesReply(const std::string& payload,
                              ListIndexesReply* reply);

/// An Error frame's payload: the failing Status, round-tripped so the
/// router sees the worker's exact code + message.
std::string EncodeError(const Status& status);
/// Reconstructs the Status carried by an Error payload. A malformed
/// error payload yields an IoError describing that instead.
Status DecodeError(const std::string& payload);

}  // namespace sweetknn::net

#endif  // SWEETKNN_NET_WIRE_H_
