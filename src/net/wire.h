#ifndef SWEETKNN_NET_WIRE_H_
#define SWEETKNN_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ann/knn_graph.h"
#include "ann/search_mode.h"
#include "common/matrix.h"
#include "common/status.h"
#include "core/options.h"
#include "core/route_planner.h"
#include "core/shard_merge.h"
#include "gpusim/device_spec.h"

namespace sweetknn::net {

/// RPC message types carried in the frame header (docs/distributed.md).
/// Payloads are encoded with the .sksnap payload codec
/// (store/payload_io.h): native-endian scalars, u64-length-prefixed
/// strings and arrays, every decoder bounds-checked.
enum class MsgType : uint32_t {
  kError = 1,  ///< Any request may be answered with an Error payload.
  kAck = 2,    ///< Empty payload: the request succeeded.

  kPrepareCold = 10,      ///< Build one shard from a target slice.
  kPrepareSnapshot = 11,  ///< Adopt one shard from a .sksnap file.

  kQuery = 20,  ///< One same-k group against this worker's shards.
  kQueryReply = 21,

  kInsert = 30,  ///< Append one point to a shard's delta.
  kRemove = 31,
  kRemoveReply = 32,
  kCompact = 33,  ///< Synchronously fold one shard's overlay.

  kSaveShard = 40,  ///< Export one shard as a .sksnap (replica catch-up).

  kHealth = 50,
  kHealthReply = 51,

  kShutdown = 60,  ///< Worker acks, then exits its serve loop.

  kListIndexes = 70,  ///< Names of the indexes this worker hosts.
  kListIndexesReply = 71,
};

// --- Prepare ----------------------------------------------------------------

/// Cold-builds one shard on the worker: PrepareTarget over `slice`, which
/// covers global rows [offset, offset + slice.rows()). The options /
/// device / planner blocks ride in every prepare so a bare worker process
/// needs no configuration of its own.
struct PrepareColdRequest {
  uint32_t shard_index = 0;
  uint64_t offset = 0;
  HostMatrix slice;
  core::TiOptions options;
  gpusim::DeviceSpec device;
  core::PlannerConfig planner;
  /// ANN tier (docs/approx.md): when enabled the worker builds the
  /// kNN graph right after the cold build, with these NN-descent knobs.
  bool enable_ann = false;
  ann::GraphBuildParams ann_params;
  /// Named index this shard belongs to (docs/serving.md). The distributed
  /// tier serves one tenant per cluster today; workers record the name at
  /// prepare time and reject queries that name a different one.
  std::string tenant = "default";
};

/// Warm-starts (or replica-catches-up) one shard from a snapshot file the
/// worker reads itself — the bulk bytes never cross the socket twice.
/// The snapshot's fingerprints must match `options`/`device`.
struct PrepareSnapshotRequest {
  uint32_t shard_index = 0;
  std::string path;
  core::TiOptions options;
  gpusim::DeviceSpec device;
  core::PlannerConfig planner;
  /// ANN tier: adopt the snapshot's persisted graph when present (v3),
  /// rebuild otherwise.
  bool enable_ann = false;
  ann::GraphBuildParams ann_params;
  /// Named index this shard belongs to (see PrepareColdRequest::tenant).
  std::string tenant = "default";
};

// --- Query ------------------------------------------------------------------

/// One same-k query group, fanned to every shard this worker hosts that
/// appears in `shard_indices` (the router names them so a replica host
/// answers only for the shards it is primary of).
struct QueryRequest {
  uint32_t k = 0;
  HostMatrix queries;
  std::vector<uint32_t> shard_indices;
  /// Per-group search mode (normalized by the router); every named shard
  /// answers under the same mode, exactly like the in-process groups.
  ann::SearchMode mode;
  /// Named index the group targets. Workers answer only for the tenant
  /// they were prepared with — a mismatch is an InvalidArgument error
  /// frame, never a silent cross-tenant answer.
  std::string tenant = "default";
};

/// Per-shard answers, parallel to `shard_indices`.
struct QueryReply {
  std::vector<uint32_t> shard_indices;
  std::vector<core::ShardAnswer> answers;
};

// --- Mutations --------------------------------------------------------------

struct InsertRequest {
  uint32_t shard_index = 0;
  uint32_t id = 0;  ///< Stable id, allocated by the router.
  std::vector<float> point;
};

struct RemoveRequest {
  uint32_t shard_index = 0;
  uint32_t id = 0;
};

struct RemoveReply {
  bool found = false;
};

struct CompactRequest {
  uint32_t shard_index = 0;
};

// --- Snapshots / health -----------------------------------------------------

/// Exports one shard to `path` as a .sksnap the PrepareSnapshot of
/// another worker can adopt (replica catch-up; docs/distributed.md).
struct SaveShardRequest {
  uint32_t shard_index = 0;
  /// Global shard count, recorded as the snapshot's shard geometry.
  uint32_t shard_count = 1;
  std::string path;
  std::string dataset_name;
  /// The router's global id allocator position, recorded in mutated
  /// snapshots (must exceed every id in the file).
  uint32_t next_id = 0;
};

/// Names of the indexes a worker hosts (kListIndexes has an empty
/// payload). One name per distinct tenant across the hosted shards —
/// today at most one, but the wire shape already carries many.
struct ListIndexesReply {
  std::vector<std::string> names;
};

struct HealthReply {
  uint64_t queries_served = 0;
  struct ShardHealth {
    uint32_t index = 0;
    uint64_t base_rows = 0;
    uint64_t delta_points = 0;
    uint64_t tombstones = 0;
    uint64_t live_rows = 0;
  };
  std::vector<ShardHealth> shards;
};

// --- Codecs -----------------------------------------------------------------
// Every message has an Encode producing the frame payload and a Decode
// that rejects malformed payloads with a clean Status (never a crash:
// tests/net/frame_fuzz_test.cc drives these over corrupted bytes too).

std::string EncodePrepareCold(const PrepareColdRequest& req);
Status DecodePrepareCold(const std::string& payload, PrepareColdRequest* req);

std::string EncodePrepareSnapshot(const PrepareSnapshotRequest& req);
Status DecodePrepareSnapshot(const std::string& payload,
                             PrepareSnapshotRequest* req);

std::string EncodeQuery(const QueryRequest& req);
Status DecodeQuery(const std::string& payload, QueryRequest* req);

std::string EncodeQueryReply(const QueryReply& reply);
Status DecodeQueryReply(const std::string& payload, QueryReply* reply);

std::string EncodeInsert(const InsertRequest& req);
Status DecodeInsert(const std::string& payload, InsertRequest* req);

std::string EncodeRemove(const RemoveRequest& req);
Status DecodeRemove(const std::string& payload, RemoveRequest* req);

std::string EncodeRemoveReply(const RemoveReply& reply);
Status DecodeRemoveReply(const std::string& payload, RemoveReply* reply);

std::string EncodeCompact(const CompactRequest& req);
Status DecodeCompact(const std::string& payload, CompactRequest* req);

std::string EncodeSaveShard(const SaveShardRequest& req);
Status DecodeSaveShard(const std::string& payload, SaveShardRequest* req);

std::string EncodeHealthReply(const HealthReply& reply);
Status DecodeHealthReply(const std::string& payload, HealthReply* reply);

std::string EncodeListIndexesReply(const ListIndexesReply& reply);
Status DecodeListIndexesReply(const std::string& payload,
                              ListIndexesReply* reply);

/// An Error frame's payload: the failing Status, round-tripped so the
/// router sees the worker's exact code + message.
std::string EncodeError(const Status& status);
/// Reconstructs the Status carried by an Error payload. A malformed
/// error payload yields an IoError describing that instead.
Status DecodeError(const std::string& payload);

}  // namespace sweetknn::net

#endif  // SWEETKNN_NET_WIRE_H_
