#ifndef SWEETKNN_NET_FRAME_H_
#define SWEETKNN_NET_FRAME_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/socket.h"

namespace sweetknn::net {

/// One framed message of the cluster wire protocol (docs/distributed.md).
/// The framing follows the .sksnap section conventions (src/store/):
/// a fixed little header, a length-prefixed payload, and a CRC32 that
/// must match before a single payload byte is believed.
///
///   [magic u32 "SKN1"] [version u32] [type u32] [payload_len u64]
///   [payload bytes]    [crc32 u32 over type + payload_len + payload]
///
/// Like the snapshot store, scalars are the native little-endian
/// representation (both ends of an AF_UNIX socket share one machine) and
/// every corruption — bit flip, truncation, oversized length, version
/// skew — is rejected with a clean Status, never a crash or a silent
/// wrong answer (tests/net/frame_fuzz_test.cc).
inline constexpr uint32_t kFrameMagic = 0x314e4b53u;  // "SKN1"
inline constexpr uint32_t kFrameVersion = 1;
/// Refuses to allocate for absurd lengths before the CRC can vouch for
/// them. Generous enough for a full shard slice of any test or bench.
inline constexpr uint64_t kMaxFramePayload = 1ull << 31;
/// Bytes before the payload: magic + version + type + payload_len.
inline constexpr size_t kFrameHeaderBytes = 3 * sizeof(uint32_t) +
                                            sizeof(uint64_t);

struct Frame {
  uint32_t type = 0;
  std::string payload;
};

/// The full wire bytes of one frame.
std::string EncodeFrame(uint32_t type, const std::string& payload);

/// Decodes one frame from the front of `bytes`, setting `*consumed` to
/// the bytes it spanned. Pure (no I/O) so the corruption fuzz can drive
/// it over flipped and truncated buffers directly.
Status DecodeFrame(const std::string& bytes, Frame* out, size_t* consumed);

/// Stream variants over a connected socket. Both enforce `deadline`
/// through the socket's poll()-based waits: a peer that stops reading or
/// writing yields DeadlineExceeded, never a wedged thread.
Status SendFrame(Connection& conn, uint32_t type, const std::string& payload,
                 std::chrono::steady_clock::time_point deadline);
Result<Frame> RecvFrame(Connection& conn,
                        std::chrono::steady_clock::time_point deadline);

}  // namespace sweetknn::net

#endif  // SWEETKNN_NET_FRAME_H_
