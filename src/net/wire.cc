#include "net/wire.h"

#include <cstring>
#include <limits>

#include "net/frame.h"
#include "store/payload_io.h"

namespace sweetknn::net {

namespace {

using store::PayloadReader;
using store::PayloadWriter;

// Floats travel as their bit pattern in a u32, matching the scalar
// convention of the rest of the codec (native representation, the frame
// CRC vouches for integrity).
void PutFloat(PayloadWriter* w, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  w->PutU32(bits);
}

Status GetFloat(PayloadReader* r, float* out) {
  uint32_t bits = 0;
  SK_RETURN_IF_ERROR(r->GetU32(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::Ok();
}

void PutBool(PayloadWriter* w, bool v) { w->PutU32(v ? 1 : 0); }

Status GetBool(PayloadReader* r, bool* out) {
  uint32_t v = 0;
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  if (v > 1) {
    return Status::IoError("wire: bool field holds " + std::to_string(v));
  }
  *out = v != 0;
  return Status::Ok();
}

/// Range-checked enum decode: a corrupted or version-skewed value
/// becomes a Status, never an out-of-range enum loose in the engine.
template <typename E>
Status GetEnum(PayloadReader* r, uint32_t max_value, const char* what,
               E* out) {
  uint32_t v = 0;
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  if (v > max_value) {
    return Status::IoError("wire: " + std::string(what) + " value " +
                           std::to_string(v) + " out of range");
  }
  *out = static_cast<E>(v);
  return Status::Ok();
}

// --- TiOptions --------------------------------------------------------------
// Optionals encode as a has-flag u32 followed by the value u32; every
// field rides explicitly so the worker's engine build is configured by
// exactly the bytes the router sent, not by either side's defaults.

void PutOptions(PayloadWriter* w, const core::TiOptions& o) {
  w->PutU32(static_cast<uint32_t>(o.metric));
  w->PutU32(static_cast<uint32_t>(o.block_threads));
  w->PutU32(static_cast<uint32_t>(o.layout));
  w->PutU32(static_cast<uint32_t>(o.point_vector_width));
  w->PutU32(static_cast<uint32_t>(o.knearests_layout));
  PutBool(w, o.remap_threads);
  PutBool(w, o.elastic_parallelism);
  w->PutDouble(o.parallelism_r);
  w->PutU32(static_cast<uint32_t>(o.landmarks_override));
  w->PutU32(static_cast<uint32_t>(o.kmeans_iterations));
  w->PutU32(o.filter_override.has_value() ? 1 : 0);
  w->PutU32(o.filter_override.has_value()
                ? static_cast<uint32_t>(*o.filter_override)
                : 0);
  w->PutU32(o.placement_override.has_value() ? 1 : 0);
  w->PutU32(o.placement_override.has_value()
                ? static_cast<uint32_t>(*o.placement_override)
                : 0);
  w->PutU32(static_cast<uint32_t>(o.threads_per_query_override));
  w->PutDouble(o.partial_filter_kd_threshold);
  w->PutU32(static_cast<uint32_t>(o.sim_threads));
}

Status GetOptions(PayloadReader* r, core::TiOptions* o) {
  uint32_t v = 0;
  SK_RETURN_IF_ERROR(GetEnum(r, 1, "metric", &o->metric));
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  o->block_threads = static_cast<int>(v);
  SK_RETURN_IF_ERROR(GetEnum(r, 1, "layout", &o->layout));
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  o->point_vector_width = static_cast<int>(v);
  SK_RETURN_IF_ERROR(
      GetEnum(r, 1, "knearests_layout", &o->knearests_layout));
  SK_RETURN_IF_ERROR(GetBool(r, &o->remap_threads));
  SK_RETURN_IF_ERROR(GetBool(r, &o->elastic_parallelism));
  SK_RETURN_IF_ERROR(r->GetDouble(&o->parallelism_r));
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  o->landmarks_override = static_cast<int>(v);
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  o->kmeans_iterations = static_cast<int>(v);
  bool has = false;
  SK_RETURN_IF_ERROR(GetBool(r, &has));
  core::Level2Filter filter = core::Level2Filter::kFull;
  SK_RETURN_IF_ERROR(GetEnum(r, 1, "filter_override", &filter));
  o->filter_override =
      has ? std::optional<core::Level2Filter>(filter) : std::nullopt;
  SK_RETURN_IF_ERROR(GetBool(r, &has));
  core::KnearestsPlacement placement = core::KnearestsPlacement::kGlobal;
  SK_RETURN_IF_ERROR(GetEnum(r, 2, "placement_override", &placement));
  o->placement_override =
      has ? std::optional<core::KnearestsPlacement>(placement) : std::nullopt;
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  o->threads_per_query_override = static_cast<int>(v);
  SK_RETURN_IF_ERROR(r->GetDouble(&o->partial_filter_kd_threshold));
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  o->sim_threads = static_cast<int>(v);
  return Status::Ok();
}

// --- DeviceSpec -------------------------------------------------------------

void PutDevice(PayloadWriter* w, const gpusim::DeviceSpec& d) {
  w->PutString(d.name);
  w->PutU32(static_cast<uint32_t>(d.num_sms));
  w->PutU32(static_cast<uint32_t>(d.max_threads_per_sm));
  w->PutU32(static_cast<uint32_t>(d.max_blocks_per_sm));
  w->PutU32(static_cast<uint32_t>(d.max_threads_per_block));
  w->PutU32(static_cast<uint32_t>(d.shared_mem_per_sm_bytes));
  w->PutU32(static_cast<uint32_t>(d.shared_mem_per_block_bytes));
  w->PutU32(static_cast<uint32_t>(d.registers_per_sm));
  w->PutU32(static_cast<uint32_t>(d.max_registers_per_thread));
  w->PutDouble(d.core_clock_hz);
  w->PutDouble(d.issue_per_sm_per_cycle);
  w->PutDouble(d.mem_bandwidth_bytes_per_s);
  w->PutDouble(d.l2_bandwidth_bytes_per_s);
  w->PutU64(d.l2_cache_bytes);
  w->PutDouble(d.pcie_bandwidth_bytes_per_s);
  w->PutDouble(d.peak_sp_flops);
  w->PutU64(d.global_mem_bytes);
  w->PutDouble(d.kernel_launch_overhead_s);
}

Status GetDevice(PayloadReader* r, gpusim::DeviceSpec* d) {
  uint32_t v = 0;
  uint64_t v64 = 0;
  SK_RETURN_IF_ERROR(r->GetString(&d->name));
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  d->num_sms = static_cast<int>(v);
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  d->max_threads_per_sm = static_cast<int>(v);
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  d->max_blocks_per_sm = static_cast<int>(v);
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  d->max_threads_per_block = static_cast<int>(v);
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  d->shared_mem_per_sm_bytes = static_cast<int>(v);
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  d->shared_mem_per_block_bytes = static_cast<int>(v);
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  d->registers_per_sm = static_cast<int>(v);
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  d->max_registers_per_thread = static_cast<int>(v);
  SK_RETURN_IF_ERROR(r->GetDouble(&d->core_clock_hz));
  SK_RETURN_IF_ERROR(r->GetDouble(&d->issue_per_sm_per_cycle));
  SK_RETURN_IF_ERROR(r->GetDouble(&d->mem_bandwidth_bytes_per_s));
  SK_RETURN_IF_ERROR(r->GetDouble(&d->l2_bandwidth_bytes_per_s));
  SK_RETURN_IF_ERROR(r->GetU64(&v64));
  d->l2_cache_bytes = static_cast<size_t>(v64);
  SK_RETURN_IF_ERROR(r->GetDouble(&d->pcie_bandwidth_bytes_per_s));
  SK_RETURN_IF_ERROR(r->GetDouble(&d->peak_sp_flops));
  SK_RETURN_IF_ERROR(r->GetU64(&v64));
  d->global_mem_bytes = static_cast<size_t>(v64);
  SK_RETURN_IF_ERROR(r->GetDouble(&d->kernel_launch_overhead_s));
  return Status::Ok();
}

// --- PlannerConfig ----------------------------------------------------------

void PutPlanner(PayloadWriter* w, const core::PlannerConfig& p) {
  w->PutU32(static_cast<uint32_t>(p.mode));
  w->PutDouble(p.host_fixed_s);
  w->PutDouble(p.host_per_pair_dim_s);
  w->PutDouble(p.device_fixed_s);
  w->PutDouble(p.device_per_query_s);
  w->PutDouble(p.device_per_pair_dim_s);
  w->PutDouble(p.selectivity_alpha);
  w->PutU32(static_cast<uint32_t>(p.explore_interval));
}

Status GetPlanner(PayloadReader* r, core::PlannerConfig* p) {
  uint32_t v = 0;
  SK_RETURN_IF_ERROR(GetEnum(r, 2, "planner mode", &p->mode));
  SK_RETURN_IF_ERROR(r->GetDouble(&p->host_fixed_s));
  SK_RETURN_IF_ERROR(r->GetDouble(&p->host_per_pair_dim_s));
  SK_RETURN_IF_ERROR(r->GetDouble(&p->device_fixed_s));
  SK_RETURN_IF_ERROR(r->GetDouble(&p->device_per_query_s));
  SK_RETURN_IF_ERROR(r->GetDouble(&p->device_per_pair_dim_s));
  SK_RETURN_IF_ERROR(r->GetDouble(&p->selectivity_alpha));
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  p->explore_interval = static_cast<int>(v);
  return Status::Ok();
}

// --- ANN config / SearchMode ------------------------------------------------

void PutAnnConfig(PayloadWriter* w, bool enable_ann,
                  const ann::GraphBuildParams& p) {
  PutBool(w, enable_ann);
  w->PutU32(p.degree);
  w->PutU32(p.max_iters);
  w->PutDouble(p.convergence_fraction);
  w->PutU64(p.seed);
  w->PutU32(static_cast<uint32_t>(p.workers));
}

Status GetAnnConfig(PayloadReader* r, bool* enable_ann,
                    ann::GraphBuildParams* p) {
  uint32_t v = 0;
  SK_RETURN_IF_ERROR(GetBool(r, enable_ann));
  SK_RETURN_IF_ERROR(r->GetU32(&p->degree));
  SK_RETURN_IF_ERROR(r->GetU32(&p->max_iters));
  SK_RETURN_IF_ERROR(r->GetDouble(&p->convergence_fraction));
  SK_RETURN_IF_ERROR(r->GetU64(&p->seed));
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  p->workers = static_cast<int>(v);
  return Status::Ok();
}

void PutSearchMode(PayloadWriter* w, const ann::SearchMode& m) {
  w->PutU32(static_cast<uint32_t>(m.kind));
  w->PutDouble(m.recall_target);
  w->PutU32(static_cast<uint32_t>(m.ef));
}

Status GetSearchMode(PayloadReader* r, ann::SearchMode* m) {
  uint32_t v = 0;
  SK_RETURN_IF_ERROR(GetEnum(r, 1, "search mode", &m->kind));
  SK_RETURN_IF_ERROR(r->GetDouble(&m->recall_target));
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  m->ef = static_cast<int>(v);
  return Status::Ok();
}

// --- KnnResult / ShardAnswer ------------------------------------------------

void PutResult(PayloadWriter* w, const KnnResult& result) {
  w->PutU64(result.num_queries());
  w->PutU32(static_cast<uint32_t>(result.k()));
  for (size_t q = 0; q < result.num_queries(); ++q) {
    const Neighbor* row = result.row(q);
    for (int i = 0; i < result.k(); ++i) {
      w->PutU32(row[i].index);
      PutFloat(w, row[i].distance);
    }
  }
}

Status GetResult(PayloadReader* r, KnnResult* result) {
  uint64_t num_queries = 0;
  uint32_t k = 0;
  SK_RETURN_IF_ERROR(r->GetU64(&num_queries));
  SK_RETURN_IF_ERROR(r->GetU32(&k));
  if (k > static_cast<uint32_t>(std::numeric_limits<int>::max())) {
    return Status::IoError("wire: result k " + std::to_string(k) +
                           " out of range");
  }
  // Entries occupy 8 bytes each; bound the product before allocating so
  // a corrupted count can't request a multi-gigabyte result.
  if (k != 0 && num_queries > kMaxFramePayload / (8ull * k)) {
    return Status::IoError("wire: result of " + std::to_string(num_queries) +
                           " x " + std::to_string(k) +
                           " entries exceeds the frame cap");
  }
  *result = KnnResult(num_queries, static_cast<int>(k));
  for (size_t q = 0; q < num_queries; ++q) {
    Neighbor* row = result->mutable_row(q);
    for (uint32_t i = 0; i < k; ++i) {
      SK_RETURN_IF_ERROR(r->GetU32(&row[i].index));
      SK_RETURN_IF_ERROR(GetFloat(r, &row[i].distance));
    }
  }
  return Status::Ok();
}

void PutAnswer(PayloadWriter* w, const core::ShardAnswer& a) {
  PutBool(w, a.pristine);
  PutResult(w, a.result);
  w->PutU32(a.offset);
  PutBool(w, a.device_routed);
  w->PutDouble(a.sim_time_s);
  w->PutDouble(a.level1_s);
  w->PutDouble(a.level2_s);
  w->PutDouble(a.transfer_s);
  w->PutDouble(a.preprocess_s);
  w->PutU64(a.distance_calcs);
  w->PutU64(a.total_pairs);
  w->PutU32(static_cast<uint32_t>(a.filter_used));
  w->PutU32(static_cast<uint32_t>(a.placement_used));
  w->PutU32(static_cast<uint32_t>(a.threads_per_query));
  w->PutDouble(a.route_seconds);
  PutBool(w, a.approx);
  w->PutU64(a.ann_hops);
  w->PutU64(a.ann_candidates);
}

Status GetAnswer(PayloadReader* r, core::ShardAnswer* a) {
  uint32_t v = 0;
  SK_RETURN_IF_ERROR(GetBool(r, &a->pristine));
  SK_RETURN_IF_ERROR(GetResult(r, &a->result));
  SK_RETURN_IF_ERROR(r->GetU32(&a->offset));
  SK_RETURN_IF_ERROR(GetBool(r, &a->device_routed));
  SK_RETURN_IF_ERROR(r->GetDouble(&a->sim_time_s));
  SK_RETURN_IF_ERROR(r->GetDouble(&a->level1_s));
  SK_RETURN_IF_ERROR(r->GetDouble(&a->level2_s));
  SK_RETURN_IF_ERROR(r->GetDouble(&a->transfer_s));
  SK_RETURN_IF_ERROR(r->GetDouble(&a->preprocess_s));
  SK_RETURN_IF_ERROR(r->GetU64(&a->distance_calcs));
  SK_RETURN_IF_ERROR(r->GetU64(&a->total_pairs));
  SK_RETURN_IF_ERROR(GetEnum(r, 1, "filter_used", &a->filter_used));
  SK_RETURN_IF_ERROR(GetEnum(r, 2, "placement_used", &a->placement_used));
  SK_RETURN_IF_ERROR(r->GetU32(&v));
  a->threads_per_query = static_cast<int>(v);
  SK_RETURN_IF_ERROR(r->GetDouble(&a->route_seconds));
  SK_RETURN_IF_ERROR(GetBool(r, &a->approx));
  SK_RETURN_IF_ERROR(r->GetU64(&a->ann_hops));
  SK_RETURN_IF_ERROR(r->GetU64(&a->ann_candidates));
  return Status::Ok();
}

// --- RangeResult ------------------------------------------------------------

void PutRangeResult(PayloadWriter* w, const RangeResult& r) {
  const std::vector<uint64_t>& offsets = r.offsets();
  w->PutU64(r.num_queries());
  for (const uint64_t o : offsets) w->PutU64(o);
  for (size_t q = 0; q < r.num_queries(); ++q) {
    for (const Neighbor* nb = r.begin(q); nb != r.end(q); ++nb) {
      w->PutU32(nb->index);
      PutFloat(w, nb->distance);
    }
  }
}

Status GetRangeResult(PayloadReader* r, const std::string& payload,
                      RangeResult* out) {
  uint64_t num_queries = 0;
  SK_RETURN_IF_ERROR(r->GetU64(&num_queries));
  // Offsets occupy 8 bytes each in the payload; bound before reserving.
  if (num_queries > payload.size() / 8 + 1) {
    return Status::IoError("wire: range result of " +
                           std::to_string(num_queries) +
                           " queries exceeds the payload");
  }
  std::vector<uint64_t> offsets;
  offsets.reserve(num_queries + 1);
  uint64_t prev = 0;
  for (uint64_t i = 0; i <= num_queries; ++i) {
    uint64_t o = 0;
    SK_RETURN_IF_ERROR(r->GetU64(&o));
    if ((i == 0 && o != 0) || o < prev) {
      return Status::IoError("wire: range result offsets not monotone");
    }
    prev = o;
    offsets.push_back(o);
  }
  const uint64_t total = offsets.back();
  if (total > kMaxFramePayload / 8) {
    return Status::IoError("wire: range result of " + std::to_string(total) +
                           " matches exceeds the frame cap");
  }
  std::vector<Neighbor> flat(total);
  for (uint64_t i = 0; i < total; ++i) {
    SK_RETURN_IF_ERROR(r->GetU32(&flat[i].index));
    SK_RETURN_IF_ERROR(GetFloat(r, &flat[i].distance));
  }
  *out = RangeResult::FromParts(std::move(offsets), std::move(flat));
  return Status::Ok();
}

}  // namespace

// --- Messages ---------------------------------------------------------------

std::string EncodePrepareCold(const PrepareColdRequest& req) {
  PayloadWriter w;
  w.PutU32(req.shard_index);
  w.PutU64(req.offset);
  w.PutMatrix(req.slice);
  PutOptions(&w, req.options);
  PutDevice(&w, req.device);
  PutPlanner(&w, req.planner);
  PutAnnConfig(&w, req.enable_ann, req.ann_params);
  w.PutString(req.tenant);
  return w.Take();
}

Status DecodePrepareCold(const std::string& payload, PrepareColdRequest* req) {
  PayloadReader r(payload, "PrepareCold");
  SK_RETURN_IF_ERROR(r.GetU32(&req->shard_index));
  SK_RETURN_IF_ERROR(r.GetU64(&req->offset));
  SK_RETURN_IF_ERROR(r.GetMatrix(&req->slice));
  SK_RETURN_IF_ERROR(GetOptions(&r, &req->options));
  SK_RETURN_IF_ERROR(GetDevice(&r, &req->device));
  SK_RETURN_IF_ERROR(GetPlanner(&r, &req->planner));
  SK_RETURN_IF_ERROR(GetAnnConfig(&r, &req->enable_ann, &req->ann_params));
  SK_RETURN_IF_ERROR(r.GetString(&req->tenant));
  return r.ExpectExhausted();
}

std::string EncodePrepareSnapshot(const PrepareSnapshotRequest& req) {
  PayloadWriter w;
  w.PutU32(req.shard_index);
  w.PutString(req.path);
  PutOptions(&w, req.options);
  PutDevice(&w, req.device);
  PutPlanner(&w, req.planner);
  PutAnnConfig(&w, req.enable_ann, req.ann_params);
  w.PutString(req.tenant);
  return w.Take();
}

Status DecodePrepareSnapshot(const std::string& payload,
                             PrepareSnapshotRequest* req) {
  PayloadReader r(payload, "PrepareSnapshot");
  SK_RETURN_IF_ERROR(r.GetU32(&req->shard_index));
  SK_RETURN_IF_ERROR(r.GetString(&req->path));
  SK_RETURN_IF_ERROR(GetOptions(&r, &req->options));
  SK_RETURN_IF_ERROR(GetDevice(&r, &req->device));
  SK_RETURN_IF_ERROR(GetPlanner(&r, &req->planner));
  SK_RETURN_IF_ERROR(GetAnnConfig(&r, &req->enable_ann, &req->ann_params));
  SK_RETURN_IF_ERROR(r.GetString(&req->tenant));
  return r.ExpectExhausted();
}

std::string EncodeQuery(const QueryRequest& req) {
  PayloadWriter w;
  w.PutU32(req.k);
  w.PutMatrix(req.queries);
  w.PutU32s(req.shard_indices.data(), req.shard_indices.size());
  PutSearchMode(&w, req.mode);
  w.PutString(req.tenant);
  return w.Take();
}

Status DecodeQuery(const std::string& payload, QueryRequest* req) {
  PayloadReader r(payload, "Query");
  SK_RETURN_IF_ERROR(r.GetU32(&req->k));
  SK_RETURN_IF_ERROR(r.GetMatrix(&req->queries));
  SK_RETURN_IF_ERROR(r.GetU32s(&req->shard_indices));
  SK_RETURN_IF_ERROR(GetSearchMode(&r, &req->mode));
  SK_RETURN_IF_ERROR(r.GetString(&req->tenant));
  return r.ExpectExhausted();
}

std::string EncodeQueryReply(const QueryReply& reply) {
  PayloadWriter w;
  w.PutU32s(reply.shard_indices.data(), reply.shard_indices.size());
  w.PutU64(reply.answers.size());
  for (const core::ShardAnswer& a : reply.answers) PutAnswer(&w, a);
  return w.Take();
}

Status DecodeQueryReply(const std::string& payload, QueryReply* reply) {
  PayloadReader r(payload, "QueryReply");
  SK_RETURN_IF_ERROR(r.GetU32s(&reply->shard_indices));
  uint64_t count = 0;
  SK_RETURN_IF_ERROR(r.GetU64(&count));
  if (count != reply->shard_indices.size()) {
    return Status::IoError("QueryReply: " + std::to_string(count) +
                           " answers for " +
                           std::to_string(reply->shard_indices.size()) +
                           " shard indices");
  }
  reply->answers.clear();
  reply->answers.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    core::ShardAnswer a;
    SK_RETURN_IF_ERROR(GetAnswer(&r, &a));
    reply->answers.push_back(std::move(a));
  }
  return r.ExpectExhausted();
}

std::string EncodeInsert(const InsertRequest& req) {
  PayloadWriter w;
  w.PutU32(req.shard_index);
  w.PutU32(req.id);
  w.PutFloats(req.point.data(), req.point.size());
  return w.Take();
}

Status DecodeInsert(const std::string& payload, InsertRequest* req) {
  PayloadReader r(payload, "Insert");
  SK_RETURN_IF_ERROR(r.GetU32(&req->shard_index));
  SK_RETURN_IF_ERROR(r.GetU32(&req->id));
  SK_RETURN_IF_ERROR(r.GetFloats(&req->point));
  return r.ExpectExhausted();
}

std::string EncodeRemove(const RemoveRequest& req) {
  PayloadWriter w;
  w.PutU32(req.shard_index);
  w.PutU32(req.id);
  return w.Take();
}

Status DecodeRemove(const std::string& payload, RemoveRequest* req) {
  PayloadReader r(payload, "Remove");
  SK_RETURN_IF_ERROR(r.GetU32(&req->shard_index));
  SK_RETURN_IF_ERROR(r.GetU32(&req->id));
  return r.ExpectExhausted();
}

std::string EncodeRemoveReply(const RemoveReply& reply) {
  PayloadWriter w;
  w.PutU32(reply.found ? 1 : 0);
  return w.Take();
}

Status DecodeRemoveReply(const std::string& payload, RemoveReply* reply) {
  PayloadReader r(payload, "RemoveReply");
  SK_RETURN_IF_ERROR(GetBool(&r, &reply->found));
  return r.ExpectExhausted();
}

std::string EncodeCompact(const CompactRequest& req) {
  PayloadWriter w;
  w.PutU32(req.shard_index);
  return w.Take();
}

Status DecodeCompact(const std::string& payload, CompactRequest* req) {
  PayloadReader r(payload, "Compact");
  SK_RETURN_IF_ERROR(r.GetU32(&req->shard_index));
  return r.ExpectExhausted();
}

std::string EncodeSaveShard(const SaveShardRequest& req) {
  PayloadWriter w;
  w.PutU32(req.shard_index);
  w.PutU32(req.shard_count);
  w.PutString(req.path);
  w.PutString(req.dataset_name);
  w.PutU32(req.next_id);
  return w.Take();
}

Status DecodeSaveShard(const std::string& payload, SaveShardRequest* req) {
  PayloadReader r(payload, "SaveShard");
  SK_RETURN_IF_ERROR(r.GetU32(&req->shard_index));
  SK_RETURN_IF_ERROR(r.GetU32(&req->shard_count));
  SK_RETURN_IF_ERROR(r.GetString(&req->path));
  SK_RETURN_IF_ERROR(r.GetString(&req->dataset_name));
  SK_RETURN_IF_ERROR(r.GetU32(&req->next_id));
  return r.ExpectExhausted();
}

std::string EncodeHealthReply(const HealthReply& reply) {
  PayloadWriter w;
  w.PutU64(reply.queries_served);
  w.PutU64(reply.shards.size());
  for (const HealthReply::ShardHealth& s : reply.shards) {
    w.PutU32(s.index);
    w.PutU64(s.base_rows);
    w.PutU64(s.delta_points);
    w.PutU64(s.tombstones);
    w.PutU64(s.live_rows);
  }
  return w.Take();
}

Status DecodeHealthReply(const std::string& payload, HealthReply* reply) {
  PayloadReader r(payload, "HealthReply");
  SK_RETURN_IF_ERROR(r.GetU64(&reply->queries_served));
  uint64_t count = 0;
  SK_RETURN_IF_ERROR(r.GetU64(&count));
  // Each entry is 36 payload bytes; cap before reserving.
  if (count > payload.size() / 36 + 1) {
    return Status::IoError("HealthReply: shard count " +
                           std::to_string(count) + " exceeds the payload");
  }
  reply->shards.clear();
  reply->shards.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    HealthReply::ShardHealth s;
    SK_RETURN_IF_ERROR(r.GetU32(&s.index));
    SK_RETURN_IF_ERROR(r.GetU64(&s.base_rows));
    SK_RETURN_IF_ERROR(r.GetU64(&s.delta_points));
    SK_RETURN_IF_ERROR(r.GetU64(&s.tombstones));
    SK_RETURN_IF_ERROR(r.GetU64(&s.live_rows));
    reply->shards.push_back(s);
  }
  return r.ExpectExhausted();
}

std::string EncodeJobSubmit(const JobSubmitRequest& req) {
  PayloadWriter w;
  w.PutU64(req.job_id);
  w.PutU32(static_cast<uint32_t>(req.kind));
  PutFloat(&w, req.radius);
  w.PutU32(req.k);
  w.PutMatrix(req.queries);
  w.PutU32s(req.shard_indices.data(), req.shard_indices.size());
  w.PutU32(req.chunk_rows);
  w.PutString(req.tenant);
  return w.Take();
}

Status DecodeJobSubmit(const std::string& payload, JobSubmitRequest* req) {
  PayloadReader r(payload, "JobSubmit");
  SK_RETURN_IF_ERROR(r.GetU64(&req->job_id));
  SK_RETURN_IF_ERROR(GetEnum(&r, 1, "job kind", &req->kind));
  SK_RETURN_IF_ERROR(GetFloat(&r, &req->radius));
  SK_RETURN_IF_ERROR(r.GetU32(&req->k));
  SK_RETURN_IF_ERROR(r.GetMatrix(&req->queries));
  SK_RETURN_IF_ERROR(r.GetU32s(&req->shard_indices));
  SK_RETURN_IF_ERROR(r.GetU32(&req->chunk_rows));
  SK_RETURN_IF_ERROR(r.GetString(&req->tenant));
  return r.ExpectExhausted();
}

std::string EncodeJobPoll(const JobPollRequest& req) {
  PayloadWriter w;
  w.PutU64(req.job_id);
  return w.Take();
}

Status DecodeJobPoll(const std::string& payload, JobPollRequest* req) {
  PayloadReader r(payload, "JobPoll");
  SK_RETURN_IF_ERROR(r.GetU64(&req->job_id));
  return r.ExpectExhausted();
}

std::string EncodeJobPollReply(const JobPollReply& reply) {
  PayloadWriter w;
  w.PutU32(static_cast<uint32_t>(reply.state));
  w.PutU64(reply.total_rows);
  w.PutU64(reply.done_rows);
  w.PutString(reply.error);
  return w.Take();
}

Status DecodeJobPollReply(const std::string& payload, JobPollReply* reply) {
  PayloadReader r(payload, "JobPollReply");
  SK_RETURN_IF_ERROR(GetEnum(&r, 2, "job state", &reply->state));
  SK_RETURN_IF_ERROR(r.GetU64(&reply->total_rows));
  SK_RETURN_IF_ERROR(r.GetU64(&reply->done_rows));
  SK_RETURN_IF_ERROR(r.GetString(&reply->error));
  return r.ExpectExhausted();
}

std::string EncodeJobCancel(const JobCancelRequest& req) {
  PayloadWriter w;
  w.PutU64(req.job_id);
  return w.Take();
}

Status DecodeJobCancel(const std::string& payload, JobCancelRequest* req) {
  PayloadReader r(payload, "JobCancel");
  SK_RETURN_IF_ERROR(r.GetU64(&req->job_id));
  return r.ExpectExhausted();
}

std::string EncodeJobResult(const JobResultRequest& req) {
  PayloadWriter w;
  w.PutU64(req.job_id);
  return w.Take();
}

Status DecodeJobResult(const std::string& payload, JobResultRequest* req) {
  PayloadReader r(payload, "JobResult");
  SK_RETURN_IF_ERROR(r.GetU64(&req->job_id));
  return r.ExpectExhausted();
}

std::string EncodeJobResultReply(const JobResultReply& reply) {
  PayloadWriter w;
  w.PutU32(static_cast<uint32_t>(reply.kind));
  PutRangeResult(&w, reply.range);
  PutResult(&w, reply.knn);
  return w.Take();
}

Status DecodeJobResultReply(const std::string& payload,
                            JobResultReply* reply) {
  PayloadReader r(payload, "JobResultReply");
  SK_RETURN_IF_ERROR(GetEnum(&r, 1, "job kind", &reply->kind));
  SK_RETURN_IF_ERROR(GetRangeResult(&r, payload, &reply->range));
  SK_RETURN_IF_ERROR(GetResult(&r, &reply->knn));
  return r.ExpectExhausted();
}

std::string EncodeExportLive(const ExportLiveRequest& req) {
  PayloadWriter w;
  w.PutU32s(req.shard_indices.data(), req.shard_indices.size());
  w.PutString(req.tenant);
  return w.Take();
}

Status DecodeExportLive(const std::string& payload, ExportLiveRequest* req) {
  PayloadReader r(payload, "ExportLive");
  SK_RETURN_IF_ERROR(r.GetU32s(&req->shard_indices));
  SK_RETURN_IF_ERROR(r.GetString(&req->tenant));
  return r.ExpectExhausted();
}

std::string EncodeExportLiveReply(const ExportLiveReply& reply) {
  PayloadWriter w;
  w.PutU32s(reply.ids.data(), reply.ids.size());
  w.PutMatrix(reply.points);
  return w.Take();
}

Status DecodeExportLiveReply(const std::string& payload,
                             ExportLiveReply* reply) {
  PayloadReader r(payload, "ExportLiveReply");
  SK_RETURN_IF_ERROR(r.GetU32s(&reply->ids));
  SK_RETURN_IF_ERROR(r.GetMatrix(&reply->points));
  if (reply->ids.size() != reply->points.rows()) {
    return Status::IoError("ExportLiveReply: " +
                           std::to_string(reply->ids.size()) + " ids for " +
                           std::to_string(reply->points.rows()) + " rows");
  }
  return r.ExpectExhausted();
}

std::string EncodeListIndexesReply(const ListIndexesReply& reply) {
  PayloadWriter w;
  w.PutU64(reply.names.size());
  for (const std::string& name : reply.names) w.PutString(name);
  return w.Take();
}

Status DecodeListIndexesReply(const std::string& payload,
                              ListIndexesReply* reply) {
  PayloadReader r(payload, "ListIndexesReply");
  uint64_t count = 0;
  SK_RETURN_IF_ERROR(r.GetU64(&count));
  // Each name costs at least its 8-byte length prefix; cap before
  // reserving so a corrupted count can't drive a huge allocation.
  if (count > payload.size() / 8 + 1) {
    return Status::IoError("ListIndexesReply: name count " +
                           std::to_string(count) + " exceeds the payload");
  }
  reply->names.clear();
  reply->names.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    SK_RETURN_IF_ERROR(r.GetString(&name));
    reply->names.push_back(std::move(name));
  }
  return r.ExpectExhausted();
}

std::string EncodeError(const Status& status) {
  PayloadWriter w;
  w.PutU32(static_cast<uint32_t>(status.code()));
  w.PutString(status.message());
  return w.Take();
}

Status DecodeError(const std::string& payload) {
  PayloadReader r(payload, "Error");
  uint32_t code = 0;
  std::string message;
  SK_RETURN_IF_ERROR(r.GetU32(&code));
  SK_RETURN_IF_ERROR(r.GetString(&message));
  SK_RETURN_IF_ERROR(r.ExpectExhausted());
  if (code == 0 ||
      code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::IoError("Error payload carries unknown status code " +
                           std::to_string(code));
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace sweetknn::net
