#include "gpusim/gemm_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sweetknn::gpusim {

double GemmModel::Efficiency(int64_t m, int64_t n, int64_t k) const {
  SK_CHECK(m > 0 && n > 0 && k > 0);
  const double tiles = std::ceil(static_cast<double>(m) / kTileEdge) *
                       std::ceil(static_cast<double>(n) / kTileEdge);
  const double tile_util = std::min(
      1.0, tiles / (kTilesToSaturate * static_cast<double>(spec_.num_sms)));
  const double depth_util =
      std::min(1.0, static_cast<double>(k) / kDepthToSaturate);
  // Partial tiles on the boundary also waste lanes; fold that into the
  // fractional part of the tile grid.
  const double edge_util =
      (static_cast<double>(m) / (std::ceil(m / kTileEdge) * kTileEdge)) *
      (static_cast<double>(n) / (std::ceil(n / kTileEdge) * kTileEdge));
  return kPeakEfficiency * tile_util * depth_util * edge_util;
}

double GemmModel::Time(int64_t m, int64_t n, int64_t k) const {
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  const double bytes =
      4.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
             static_cast<double>(m) * n);
  const double compute_s = flops / (spec_.peak_sp_flops * Efficiency(m, n, k));
  const double memory_s = bytes / spec_.mem_bandwidth_bytes_per_s;
  // Tiny GEMMs are latency-bound, not efficiency-extrapolated: a single
  // tile running serially on one SM at a conservative fraction of that
  // SM's peak caps how bad the efficiency model can get.
  const double serial_cap_s =
      flops / (spec_.peak_sp_flops / spec_.num_sms * 0.3) +
      bytes / spec_.mem_bandwidth_bytes_per_s;
  return std::min(std::max(compute_s, memory_s), serial_cap_s) +
         spec_.kernel_launch_overhead_s;
}

}  // namespace sweetknn::gpusim
