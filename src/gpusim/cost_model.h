#ifndef SWEETKNN_GPUSIM_COST_MODEL_H_
#define SWEETKNN_GPUSIM_COST_MODEL_H_

#include "gpusim/device_spec.h"
#include "gpusim/stats.h"

namespace sweetknn::gpusim {

/// Analytic model converting a kernel's measured event counts into a
/// simulated execution time (documented in DESIGN.md section 6).
///
/// time = max(compute, memory, atomic) / hiding + launch_overhead
///   compute = warp_instructions / (SMs * issue_rate * clock * busy)
///   memory  = transactions * 128B / (bandwidth * busy)
///   atomic  = (atomic_ops + serializations) * atomic_cycles / clock
///   busy    = fraction of the chip's issue/bandwidth capacity reachable
///             with the warps actually resident (small grids can't
///             saturate the machine)
///   hiding  = latency-hiding capability; it degrades when fewer warps
///             are resident per SM than needed to cover latency.
class CostModel {
 public:
  /// Warps per SM needed to saturate instruction issue (arithmetic
  /// latency hiding). 16 warps/SM = 25% occupancy on Kepler.
  static constexpr double kWarpsToSaturateSm = 16.0;
  /// Warps per SM needed to saturate the memory system: far fewer
  /// outstanding requests suffice to fill DRAM bandwidth.
  static constexpr double kWarpsToSaturateMemory = 4.0;
  /// Simulated cycles charged per atomic operation replay.
  static constexpr double kAtomicCycles = 24.0;
  /// Floor on the latency-hiding factor, so that a 1-warp kernel is slow
  /// but not absurdly so.
  static constexpr double kMinHiding = 0.05;

  explicit CostModel(const DeviceSpec& spec) : spec_(spec) {}

  /// Fills record->occupancy and record->sim_time_s from record->stats and
  /// the launch geometry.
  void Finalize(LaunchRecord* record) const;

  /// Simulated seconds for a host<->device transfer of `bytes`.
  double TransferTime(size_t bytes) const {
    return static_cast<double>(bytes) / spec_.pcie_bandwidth_bytes_per_s;
  }

  const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
};

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_COST_MODEL_H_
