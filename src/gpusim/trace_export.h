#ifndef SWEETKNN_GPUSIM_TRACE_EXPORT_H_
#define SWEETKNN_GPUSIM_TRACE_EXPORT_H_

#include <string>

#include "common/status.h"
#include "gpusim/stats.h"

namespace sweetknn::gpusim {

/// Serializes a profile as a Chrome trace-event JSON (load it in
/// chrome://tracing or Perfetto): one complete event per kernel launch
/// placed back-to-back on the simulated-device track, with the counters
/// attached as event arguments.
std::string ProfileToChromeTrace(const Profile& profile);

/// Writes the trace JSON to a file.
Status WriteChromeTrace(const Profile& profile, const std::string& path);

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_TRACE_EXPORT_H_
