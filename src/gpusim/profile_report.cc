#include "gpusim/profile_report.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace sweetknn::gpusim {

std::vector<ProfileRow> SummarizeProfile(const Profile& profile) {
  std::map<std::string, ProfileRow> by_name;
  std::map<std::string, KernelStats> merged_stats;
  for (const LaunchRecord& launch : profile.launches) {
    ProfileRow& row = by_name[launch.kernel_name];
    row.kernel_name = launch.kernel_name;
    ++row.launches;
    row.time_s += launch.sim_time_s;
    row.warp_instructions += launch.stats.warp_instructions;
    row.global_transactions += launch.stats.global_transactions;
    row.dram_transactions += launch.stats.dram_transactions;
    row.analytic = row.analytic || launch.analytic;
    merged_stats[launch.kernel_name].Merge(launch.stats);
  }
  const double total = profile.TotalKernelTime();
  std::vector<ProfileRow> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) {
    const KernelStats& merged = merged_stats[name];
    row.warp_efficiency =
        merged.warp_instructions > 0 ? merged.WarpEfficiency() : 0.0;
    row.time_share = total > 0.0 ? row.time_s / total : 0.0;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              if (a.time_s != b.time_s) return a.time_s > b.time_s;
              return a.kernel_name < b.kernel_name;
            });
  return rows;
}

std::string FormatProfileReport(const Profile& profile) {
  const std::vector<ProfileRow> rows = SummarizeProfile(profile);
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-32s %10s %7s %9s %9s\n", "kernel",
                "time(ms)", "share", "launches", "warp-eff");
  out += line;
  for (const ProfileRow& row : rows) {
    if (row.analytic) {
      std::snprintf(line, sizeof(line), "%-32s %10.3f %6.1f%% %9d %9s\n",
                    row.kernel_name.c_str(), row.time_s * 1e3,
                    row.time_share * 100.0, row.launches, "(model)");
    } else {
      std::snprintf(line, sizeof(line), "%-32s %10.3f %6.1f%% %9d %8.1f%%\n",
                    row.kernel_name.c_str(), row.time_s * 1e3,
                    row.time_share * 100.0, row.launches,
                    row.warp_efficiency * 100.0);
    }
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-32s %10.3f %6.1f%%\n", "total",
                profile.TotalKernelTime() * 1e3, 100.0);
  out += line;
  if (profile.transfer_time_s > 0.0) {
    std::snprintf(line, sizeof(line), "%-32s %10.3f\n",
                  "host<->device transfers", profile.transfer_time_s * 1e3);
    out += line;
  }
  return out;
}

}  // namespace sweetknn::gpusim
