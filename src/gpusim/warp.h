#ifndef SWEETKNN_GPUSIM_WARP_H_
#define SWEETKNN_GPUSIM_WARP_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "gpusim/cache_sim.h"
#include "gpusim/device_spec.h"
#include "gpusim/exec_engine.h"
#include "gpusim/memory.h"
#include "gpusim/stats.h"

namespace sweetknn::gpusim {

/// Bitmask over the 32 lanes of a warp; bit i set means lane i is active.
using LaneMask = uint32_t;
inline constexpr LaneMask kFullMask = 0xffffffffu;

/// Per-lane register value: the kernel-visible model of a thread-private
/// variable held across SIMT instructions.
template <typename T>
struct Reg {
  std::array<T, kWarpSize> lane{};
  T& operator[](int i) { return lane[static_cast<size_t>(i)]; }
  const T& operator[](int i) const { return lane[static_cast<size_t>(i)]; }
};

/// Execution context of one warp. Kernels are written against this class:
/// every arithmetic/control step is expressed as a masked SIMT instruction,
/// so divergence (If/While with partially-true predicates) serializes and
/// is charged exactly as on real hardware, and every global-memory access
/// is broken into 128-byte transactions for coalescing accounting.
///
/// The model is warp-synchronous: warps of a block execute sequentially and
/// there is no cross-warp __syncthreads (no Sweet KNN kernel requires it).
class Warp {
 public:
  /// Bytes per coalesced global-memory transaction.
  static constexpr uint64_t kSegmentBytes = 128;

  /// `cache`: L2 model consulted inline (serial engine). `locks`: striped
  /// spinlocks making atomics host-atomic, passed only when blocks run on
  /// concurrent host threads. `trace`: when set, cache-order-dependent
  /// accesses are recorded instead of probed inline (`cache` is ignored) so
  /// the engine can replay them in block order — see SegmentTrace.
  Warp(KernelStats* stats, int block_id, int block_threads, int warp_in_block,
       LaneMask initial_mask, CacheSim* cache = nullptr,
       HostAtomicLocks* locks = nullptr, SegmentTrace* trace = nullptr)
      : stats_(stats),
        block_id_(block_id),
        block_threads_(block_threads),
        warp_in_block_(warp_in_block),
        active_(initial_mask),
        cache_(cache),
        locks_(locks),
        trace_(trace) {}

  Warp(const Warp&) = delete;
  Warp& operator=(const Warp&) = delete;

  // --- Geometry -----------------------------------------------------------

  int block_id() const { return block_id_; }
  int block_threads() const { return block_threads_; }
  int warp_in_block() const { return warp_in_block_; }
  /// Global thread id of a lane (blockIdx.x * blockDim.x + threadIdx.x).
  int GlobalThreadId(int lane) const {
    return block_id_ * block_threads_ + warp_in_block_ * kWarpSize + lane;
  }
  /// Thread id within the block.
  int BlockThreadId(int lane) const {
    return warp_in_block_ * kWarpSize + lane;
  }

  LaneMask active() const { return active_; }
  bool AnyActive() const { return active_ != 0; }
  int ActiveCount() const { return std::popcount(active_); }

  // --- Compute instructions ------------------------------------------------

  /// Issues one SIMT instruction (or `cost` fused instructions, e.g. a
  /// d-dimensional distance evaluated as 2d FLOP-instructions) and runs
  /// `body(lane)` for every active lane.
  template <typename F>
  void Op(F&& body, uint64_t cost = 1) {
    ChargeInstruction(cost);
    ForActive(std::forward<F>(body));
  }

  /// Evaluates `pred(lane)` over active lanes into a mask; one instruction.
  template <typename F>
  LaneMask Ballot(F&& pred) {
    ChargeInstruction(1);
    LaneMask result = 0;
    LaneMask m = active_;
    while (m != 0) {
      const int lane = std::countr_zero(m);
      m &= m - 1;
      if (pred(lane)) result |= LaneMask{1} << lane;
    }
    return result;
  }

  // --- Control flow ---------------------------------------------------------

  /// Executes `then_body` with the active mask narrowed to pred. Counts a
  /// divergent branch when only part of the warp takes it.
  template <typename FT>
  void If(LaneMask pred, FT&& then_body) {
    const LaneMask taken = pred & active_;
    if (taken != 0 && taken != active_) ++stats_->divergent_branches;
    if (taken == 0) return;
    const LaneMask saved = active_;
    active_ = taken;
    then_body();
    active_ = RejoinMask(saved);
  }

  /// Two-sided branch; both sides execute serially when the warp diverges.
  template <typename FT, typename FE>
  void IfElse(LaneMask pred, FT&& then_body, FE&& else_body) {
    const LaneMask saved = active_;
    const LaneMask taken = pred & saved;
    const LaneMask not_taken = ~pred & saved;
    if (taken != 0 && not_taken != 0) ++stats_->divergent_branches;
    if (taken != 0) {
      active_ = taken;
      then_body();
    }
    // Lanes may have broken out of an enclosing loop inside then_body;
    // RejoinMask keeps those lanes off.
    if (not_taken != 0) {
      active_ = RejoinMask(not_taken);
      if (active_ != 0) else_body();
    }
    active_ = RejoinMask(saved);
  }

  /// Lockstep loop: iterates while any live lane's `cond(lane)` holds.
  /// Lanes whose condition fails sit idle (costing efficiency) until every
  /// lane is done, exactly like a divergent loop on hardware. Inside the
  /// body, BreakIf/ContinueIf give per-lane break/continue.
  template <typename FC, typename FB>
  void While(FC&& cond, FB&& body) {
    const LaneMask saved = active_;
    loop_stack_.push_back(LoopFrame{active_});
    while (true) {
      LoopFrame& frame = loop_stack_.back();
      active_ = frame.live;
      if (active_ == 0) break;
      const LaneMask continuing = Ballot(cond);
      if (continuing != active_ && continuing != 0) {
        ++stats_->divergent_branches;
      }
      frame.live &= continuing;
      active_ = frame.live;
      if (active_ == 0) break;
      body();
    }
    loop_stack_.pop_back();
    active_ = saved;
    // Propagate breaks to an enclosing loop, if any.
    active_ = RejoinMask(active_);
  }

  /// Removes `pred` lanes from the innermost While loop (and from the
  /// current active set) — the SIMT equivalent of `break`.
  void BreakIf(LaneMask pred) {
    SK_DCHECK(!loop_stack_.empty());
    const LaneMask breaking = pred & active_;
    if (breaking != 0 && breaking != active_) ++stats_->divergent_branches;
    loop_stack_.back().live &= ~breaking;
    active_ &= ~breaking;
  }

  /// Deactivates `pred` lanes for the remainder of this loop iteration —
  /// the SIMT equivalent of `continue`. They rejoin at the next iteration.
  void ContinueIf(LaneMask pred) {
    const LaneMask skipping = pred & active_;
    if (skipping != 0 && skipping != active_) ++stats_->divergent_branches;
    active_ &= ~skipping;
  }

  // --- Global memory --------------------------------------------------------

  /// Per-lane gather load: lane reads element `index(lane)`; delivers the
  /// value through `sink(lane, value)`. One load instruction plus one
  /// transaction per distinct 128-byte segment touched.
  template <typename T, typename IdxF, typename SinkF>
  void Load(const DeviceBuffer<T>& buf, IdxF&& index, SinkF&& sink) {
    ChargeInstruction(1);
    ++stats_->global_load_instructions;
    BeginSegments();
    ForActive([&](int lane) {
      const size_t i = static_cast<size_t>(index(lane));
      SK_DCHECK(i < buf.size());
      AddSegments(buf.AddressOf(i), sizeof(T));
      sink(lane, buf[i]);
    });
    FlushSegments();
  }

  /// Per-lane scatter store of `value(lane)` to element `index(lane)`.
  template <typename T, typename IdxF, typename ValF>
  void Store(DeviceBuffer<T>& buf, IdxF&& index, ValF&& value) {
    ChargeInstruction(1);
    ++stats_->global_store_instructions;
    BeginSegments();
    ForActive([&](int lane) {
      const size_t i = static_cast<size_t>(index(lane));
      SK_DCHECK(i < buf.size());
      AddSegments(buf.AddressOf(i), sizeof(T));
      buf[i] = value(lane);
    });
    FlushSegments();
  }

  /// Contiguous-range load: lane reads `count` consecutive elements
  /// starting at `first(lane)` (e.g. a whole d-dimensional point with
  /// float4 vector loads of width `vector_width` elements). Delivers a
  /// pointer to the range via `sink(lane, ptr)`. Issues
  /// ceil(count/vector_width) load instructions and counts the union of
  /// 128-byte segments touched by all lanes (so lanes reading the same
  /// point broadcast-coalesce into shared transactions).
  template <typename T, typename IdxF, typename SinkF>
  void LoadRange(const DeviceBuffer<T>& buf, IdxF&& first, size_t count,
                 int vector_width, SinkF&& sink) {
    SK_DCHECK(vector_width > 0);
    const uint64_t instructions =
        (count + static_cast<size_t>(vector_width) - 1) /
        static_cast<size_t>(vector_width);
    ChargeInstruction(instructions);
    stats_->global_load_instructions += instructions;
    BeginSegments();
    ForActive([&](int lane) {
      const size_t i = static_cast<size_t>(first(lane));
      SK_DCHECK(i + count <= buf.size());
      AddSegments(buf.AddressOf(i), count * sizeof(T));
      sink(lane, buf.data() + i);
    });
    FlushSegments();
  }

  /// Strided-range load: lane reads `count` elements spaced `stride`
  /// elements apart starting at `first(lane)` — the access pattern of a
  /// column-major point layout (paper Fig. 7a), where consecutive
  /// dimensions of one point are |N| apart. Issues one instruction per
  /// element. Transactions are counted exactly for the first element
  /// across lanes and multiplied by `count`: with stride*sizeof(T) >= 128
  /// (always true for column-major point matrices of any real size) each
  /// element repeats the same lane-coalescing pattern.
  template <typename T, typename IdxF, typename SinkF>
  void LoadStrided(const DeviceBuffer<T>& buf, IdxF&& first, size_t count,
                   size_t stride, SinkF&& sink) {
    SK_DCHECK(count > 0);
    ChargeInstruction(count);
    stats_->global_load_instructions += count;
    BeginSegments();
    ForActive([&](int lane) {
      const size_t i = static_cast<size_t>(first(lane));
      SK_DCHECK(i + (count - 1) * stride < buf.size());
      AddSegments(buf.AddressOf(i), sizeof(T));
      sink(lane, buf.data() + i);
    });
    // Count the distinct segments of element 0, consult the cache for
    // them, and replicate both counts per element (each further element
    // repeats the same lane pattern shifted by the stride).
    std::sort(segments_.begin(), segments_.end());
    std::array<uint64_t, kWarpSize> distinct;
    size_t first_elem_segments = 0;
    uint64_t prev = ~uint64_t{0};
    for (const auto& [seg_first, seg_last] : segments_) {
      if (seg_first != prev) {
        distinct[first_elem_segments++] = seg_first;
      }
      prev = seg_first;
      (void)seg_last;
    }
    segments_.clear();
    stats_->global_transactions +=
        static_cast<uint64_t>(first_elem_segments) * count;
    if (trace_ != nullptr) {
      // DRAM charge is resolved at block-ordered replay time.
      trace_->AddStrided(count, distinct.data(), first_elem_segments);
      return;
    }
    uint64_t first_elem_misses = 0;
    for (size_t s = 0; s < first_elem_segments; ++s) {
      if (cache_ == nullptr || !cache_->Access(distinct[s])) {
        ++first_elem_misses;
      }
    }
    stats_->dram_transactions += first_elem_misses * count;
  }

  /// Contiguous-range store mirror of LoadRange: lane writes `count`
  /// elements produced by `value(lane, j)` starting at `first(lane)`.
  template <typename T, typename IdxF, typename ValF>
  void StoreRange(DeviceBuffer<T>& buf, IdxF&& first, size_t count,
                  int vector_width, ValF&& value) {
    SK_DCHECK(vector_width > 0);
    const uint64_t instructions =
        (count + static_cast<size_t>(vector_width) - 1) /
        static_cast<size_t>(vector_width);
    ChargeInstruction(instructions);
    stats_->global_store_instructions += instructions;
    BeginSegments();
    ForActive([&](int lane) {
      const size_t i = static_cast<size_t>(first(lane));
      SK_DCHECK(i + count <= buf.size());
      AddSegments(buf.AddressOf(i), count * sizeof(T));
      for (size_t j = 0; j < count; ++j) buf[i + j] = value(lane, j);
    });
    FlushSegments();
  }

  // --- Manual accounting -------------------------------------------------------

  /// Charges pre-aggregated instruction counts, for hybrid kernels that
  /// run a tight scalar inner loop functionally and account for it in
  /// bulk (e.g. the baseline's k-selection scan). `active_lane_ops` must
  /// be <= 32 * instructions.
  void ChargeManual(uint64_t instructions, uint64_t active_lane_ops) {
    SK_DCHECK(active_lane_ops <= instructions * kWarpSize);
    stats_->warp_instructions += instructions;
    stats_->active_lane_ops += active_lane_ops;
  }

  /// Charges pre-aggregated global-memory traffic. `dram_transactions`
  /// (default: all of them) is the portion assumed to miss L2 — bulk
  /// streaming scans pass the default; charges for known-hot regions
  /// (e.g. a thread's own kNearests heap that fits in cache) pass less.
  void ChargeMemory(uint64_t transactions, uint64_t load_instructions,
                    uint64_t store_instructions,
                    uint64_t dram_transactions = ~uint64_t{0}) {
    stats_->global_transactions += transactions;
    stats_->dram_transactions +=
        dram_transactions == ~uint64_t{0} ? transactions
                                          : dram_transactions;
    stats_->global_load_instructions += load_instructions;
    stats_->global_store_instructions += store_instructions;
    stats_->warp_instructions += load_instructions + store_instructions;
    stats_->active_lane_ops +=
        (load_instructions + store_instructions) *
        static_cast<uint64_t>(std::popcount(active_));
  }

  // --- Atomics ---------------------------------------------------------------

  /// atomicAdd: lane adds `value(lane)` to element `index(lane)` and
  /// receives the previous value through `old_sink(lane, old)`. Lanes of
  /// the warp hitting the same address serialize (counted).
  template <typename T, typename IdxF, typename ValF, typename OldF>
  void AtomicAdd(DeviceBuffer<T>& buf, IdxF&& index, ValF&& value,
                 OldF&& old_sink) {
    AtomicRmw(
        buf, std::forward<IdxF>(index),
        [&](int lane, T& cell) {
          const T old = cell;
          cell = old + value(lane);
          old_sink(lane, old);
        });
  }

  /// atomicMin on integral types (e.g. packed (distance bits, index)
  /// keys for argmin reductions).
  template <typename T, typename IdxF, typename ValF>
  void AtomicMin(DeviceBuffer<T>& buf, IdxF&& index, ValF&& value) {
    AtomicRmw(buf, std::forward<IdxF>(index), [&](int lane, T& cell) {
      cell = std::min(cell, value(lane));
    });
  }

  /// atomicMin on floats (the paper implements it with a CAS loop; we
  /// charge it like a plain atomic plus conflict serialization).
  template <typename IdxF, typename ValF>
  void AtomicMinFloat(DeviceBuffer<float>& buf, IdxF&& index, ValF&& value) {
    AtomicRmw(buf, std::forward<IdxF>(index), [&](int lane, float& cell) {
      cell = std::min(cell, value(lane));
    });
  }

  /// atomicMax on floats (used for per-cluster max member distance).
  template <typename IdxF, typename ValF>
  void AtomicMaxFloat(DeviceBuffer<float>& buf, IdxF&& index, ValF&& value) {
    AtomicRmw(buf, std::forward<IdxF>(index), [&](int lane, float& cell) {
      cell = std::max(cell, value(lane));
    });
  }

 private:
  struct LoopFrame {
    LaneMask live;
  };

  void ChargeInstruction(uint64_t cost) {
    stats_->warp_instructions += cost;
    stats_->active_lane_ops +=
        cost * static_cast<uint64_t>(std::popcount(active_));
  }

  template <typename F>
  void ForActive(F&& body) {
    LaneMask m = active_;
    while (m != 0) {
      const int lane = std::countr_zero(m);
      m &= m - 1;
      body(lane);
    }
  }

  /// A mask a scope wants to restore, minus lanes that broke out of the
  /// innermost loop while the scope was running.
  LaneMask RejoinMask(LaneMask mask) const {
    if (loop_stack_.empty()) return mask;
    return mask & loop_stack_.back().live;
  }

  template <typename T, typename IdxF, typename RmwF>
  void AtomicRmw(DeviceBuffer<T>& buf, IdxF&& index, RmwF&& rmw) {
    ChargeInstruction(1);
    BeginSegments();
    std::array<uint64_t, kWarpSize> addresses;
    int n = 0;
    ForActive([&](int lane) {
      const size_t i = static_cast<size_t>(index(lane));
      SK_DCHECK(i < buf.size());
      const uint64_t addr = buf.AddressOf(i);
      addresses[static_cast<size_t>(n++)] = addr;
      AddSegments(addr, sizeof(T));
      if (locks_ != nullptr) {
        // Blocks run on concurrent host threads: the simulated atomic must
        // be a real host atomic on the backing cell.
        locks_->Lock(addr);
        rmw(lane, buf[i]);
        locks_->Unlock(addr);
      } else {
        rmw(lane, buf[i]);
      }
    });
    FlushSegments();
    stats_->atomic_operations += static_cast<uint64_t>(n);
    // Conflicts: lanes minus distinct addresses serialize.
    std::sort(addresses.begin(), addresses.begin() + n);
    const int distinct = static_cast<int>(
        std::unique(addresses.begin(), addresses.begin() + n) -
        addresses.begin());
    stats_->atomic_serializations += static_cast<uint64_t>(n - distinct);
  }

  // Segment accounting: segments_ accumulates [first,last] 128B-segment
  // intervals touched by the lanes of one memory instruction; FlushSegments
  // merges them and charges the distinct segment count.
  void BeginSegments() { segments_.clear(); }
  void AddSegments(uint64_t addr, uint64_t bytes) {
    const uint64_t first = addr / kSegmentBytes;
    const uint64_t last = (addr + bytes - 1) / kSegmentBytes;
    segments_.emplace_back(first, last);
  }
  void FlushSegments() {
    if (segments_.empty()) return;
    std::sort(segments_.begin(), segments_.end());
    uint64_t count = 0;
    uint64_t cur_first = segments_[0].first;
    uint64_t cur_last = segments_[0].second;
    auto emit = [&](uint64_t first, uint64_t last) {
      count += last - first + 1;
      if (trace_ != nullptr) {
        // DRAM charge is resolved at block-ordered replay time.
        trace_->AddInterval(first, last);
      } else if (cache_ != nullptr) {
        for (uint64_t seg = first; seg <= last; ++seg) {
          if (!cache_->Access(seg)) ++stats_->dram_transactions;
        }
      } else {
        stats_->dram_transactions += last - first + 1;
      }
    };
    for (size_t i = 1; i < segments_.size(); ++i) {
      const auto [first, last] = segments_[i];
      if (first <= cur_last + 1) {
        cur_last = std::max(cur_last, last);
      } else {
        emit(cur_first, cur_last);
        cur_first = first;
        cur_last = last;
      }
    }
    emit(cur_first, cur_last);
    stats_->global_transactions += count;
  }

  KernelStats* stats_;
  int block_id_;
  int block_threads_;
  int warp_in_block_;
  LaneMask active_;
  CacheSim* cache_;
  HostAtomicLocks* locks_ = nullptr;
  SegmentTrace* trace_ = nullptr;
  std::vector<LoopFrame> loop_stack_;
  std::vector<std::pair<uint64_t, uint64_t>> segments_;
};

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_WARP_H_
