#include "gpusim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "gpusim/occupancy.h"
#include "gpusim/warp.h"

namespace sweetknn::gpusim {

void CostModel::Finalize(LaunchRecord* record) const {
  const Occupancy occ =
      ComputeOccupancy(spec_, record->block_threads, record->regs_per_thread,
                       record->shared_bytes_per_block);
  record->occupancy = occ.fraction;

  const int warps_per_block =
      (record->block_threads + kWarpSize - 1) / kWarpSize;
  const double total_warps =
      static_cast<double>(record->grid_blocks) * warps_per_block;
  const double resident_capacity =
      static_cast<double>(occ.warps_per_sm) * spec_.num_sms;
  const double resident_warps =
      std::max(1.0, std::min(total_warps, resident_capacity));

  // Fraction of issue / memory capacity reachable with the resident
  // warps (memory saturates with far fewer warps than the ALUs).
  const double busy = std::clamp(
      resident_warps / (kWarpsToSaturateSm * spec_.num_sms), kMinHiding, 1.0);
  const double busy_mem = std::clamp(
      resident_warps / (kWarpsToSaturateMemory * spec_.num_sms), kMinHiding,
      1.0);

  const KernelStats& s = record->stats;
  const double issue_rate =
      spec_.issue_per_sm_per_cycle * spec_.num_sms * spec_.core_clock_hz;
  const double compute_s =
      static_cast<double>(s.warp_instructions) / (issue_rate * busy);
  // DRAM traffic at DRAM bandwidth; total (L2-served) traffic is still
  // bounded by the L2's own bandwidth.
  const double dram_s = static_cast<double>(s.dram_transactions) *
                        static_cast<double>(Warp::kSegmentBytes) /
                        (spec_.mem_bandwidth_bytes_per_s * busy_mem);
  const double l2_s = static_cast<double>(s.global_transactions) *
                      static_cast<double>(Warp::kSegmentBytes) /
                      (spec_.l2_bandwidth_bytes_per_s * busy_mem);
  const double memory_s = std::max(dram_s, l2_s);
  // Conflict-free atomics flow at near memory-op throughput (their
  // transactions are already counted); only same-address replays pay the
  // serialization latency.
  const double atomic_s =
      (static_cast<double>(s.atomic_operations) * 2.0 +
       static_cast<double>(s.atomic_serializations) * kAtomicCycles) /
      (spec_.core_clock_hz * std::max(1.0, busy_mem * spec_.num_sms));

  record->sim_time_s = std::max(std::max(compute_s, memory_s), atomic_s) +
                       spec_.kernel_launch_overhead_s;
}

}  // namespace sweetknn::gpusim
