#ifndef SWEETKNN_GPUSIM_EXEC_ENGINE_H_
#define SWEETKNN_GPUSIM_EXEC_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "gpusim/cache_sim.h"

namespace sweetknn::gpusim {

/// Append-only log of the 128-byte-segment accesses one chunk of grid
/// blocks makes while running on a pool worker.
///
/// The L2 model (CacheSim) is a single global structure whose hit/miss
/// outcome depends on the order accesses arrive, so workers cannot consult
/// it concurrently without making dram_transactions depend on thread
/// scheduling. Instead each chunk records its accesses here and the engine
/// replays the traces through the device's cache strictly in block order —
/// reproducing the exact serial access sequence, hence bit-identical
/// dram_transactions for any worker count.
///
/// Two record kinds mirror the two ways Warp touches the cache:
///  - Interval: a coalesced run [first, last] of segments, each charged one
///    transaction and one cache probe (Warp::FlushSegments).
///  - Strided: the distinct first-element segments of a strided load; cache
///    misses among them are charged `multiplier` times (Warp::LoadStrided
///    probes once per distinct segment and scales by the element count).
///
/// Encoding: a flat word stream. Segment indices occupy the low 62 bits
/// (addresses are far below 2^62); the top two bits tag the record kind.
class SegmentTrace {
 public:
  void AddInterval(uint64_t first_segment, uint64_t last_segment) {
    words_.push_back(kIntervalTag | first_segment);
    words_.push_back(last_segment);
  }

  void AddStrided(uint64_t multiplier, const uint64_t* segments,
                  size_t count) {
    words_.push_back(kStridedTag | static_cast<uint64_t>(count));
    words_.push_back(multiplier);
    words_.insert(words_.end(), segments, segments + count);
  }

  bool empty() const { return words_.empty(); }

  /// Feeds every recorded access through `cache` in recorded order and
  /// returns the DRAM transactions the serial engine would have charged.
  uint64_t ReplayInto(CacheSim* cache) const;

  /// Frees the backing storage (traces can dominate a launch's footprint,
  /// so the engine drops each chunk right after replay).
  void Release() {
    words_.clear();
    words_.shrink_to_fit();
  }

 private:
  static constexpr uint64_t kTagMask = uint64_t{3} << 62;
  static constexpr uint64_t kIntervalTag = 0;
  static constexpr uint64_t kStridedTag = uint64_t{1} << 62;

  std::vector<uint64_t> words_;
};

/// Striped spinlocks backing simulated device atomics when grid blocks run
/// on concurrent host threads. The simulator performs read-modify-writes
/// directly on host memory; a lock striped by cell address makes them
/// host-atomic (two lanes hitting the same cell always hash to the same
/// stripe). Serial execution passes no lock table and pays nothing.
class HostAtomicLocks {
 public:
  void Lock(uint64_t addr) {
    std::atomic<bool>& stripe = stripes_[StripeIndex(addr)].locked;
    while (stripe.exchange(true, std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

  void Unlock(uint64_t addr) {
    stripes_[StripeIndex(addr)].locked.store(false,
                                             std::memory_order_release);
  }

 private:
  static constexpr size_t kStripes = 1024;

  static size_t StripeIndex(uint64_t addr) {
    return static_cast<size_t>((addr * uint64_t{0x9E3779B97F4A7C15}) >> 32) &
           (kStripes - 1);
  }

  struct alignas(64) Stripe {
    std::atomic<bool> locked{false};
  };
  std::vector<Stripe> stripes_{kStripes};
};

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_EXEC_ENGINE_H_
