#include "gpusim/stats.h"

namespace sweetknn::gpusim {

KernelStats Profile::StatsForKernelsMatching(const std::string& substr) const {
  KernelStats out;
  for (const LaunchRecord& record : launches) {
    if (!record.analytic &&
        record.kernel_name.find(substr) != std::string::npos) {
      out.Merge(record.stats);
    }
  }
  return out;
}

}  // namespace sweetknn::gpusim
