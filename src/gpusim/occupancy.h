#ifndef SWEETKNN_GPUSIM_OCCUPANCY_H_
#define SWEETKNN_GPUSIM_OCCUPANCY_H_

#include "gpusim/device_spec.h"

namespace sweetknn::gpusim {

/// Occupancy result for one kernel configuration on one device.
struct Occupancy {
  /// Thread blocks that fit concurrently on one SM.
  int blocks_per_sm = 0;
  /// Warps concurrently resident on one SM.
  int warps_per_sm = 0;
  /// warps_per_sm over the SM's architectural warp limit, in [0, 1].
  double fraction = 0.0;
  /// Which resource capped the result (for diagnostics).
  enum class Limiter { kThreads, kBlocks, kRegisters, kSharedMemory, kNone };
  Limiter limiter = Limiter::kNone;
};

/// Computes how many blocks of `block_threads` threads using
/// `regs_per_thread` registers and `shared_bytes_per_block` shared memory
/// fit on one SM — the standard CUDA occupancy calculation.
Occupancy ComputeOccupancy(const DeviceSpec& spec, int block_threads,
                           int regs_per_thread, int shared_bytes_per_block);

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_OCCUPANCY_H_
