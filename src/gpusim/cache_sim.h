#ifndef SWEETKNN_GPUSIM_CACHE_SIM_H_
#define SWEETKNN_GPUSIM_CACHE_SIM_H_

#include <cstdint>
#include <vector>

namespace sweetknn::gpusim {

/// Direct-mapped approximation of the device's L2 cache over 128-byte
/// segments. Memory instructions consult it so that heavily reused
/// working sets (e.g. a 100-point dataset scanned by every thread) are
/// charged L2 bandwidth instead of DRAM bandwidth, as on real hardware.
/// Deterministic by construction.
class CacheSim {
 public:
  /// K20c has 1.25 MiB of L2 = 10240 segments of 128 B.
  explicit CacheSim(size_t capacity_segments = 10240)
      : slots_(NextPow2(capacity_segments), kEmpty) {}

  /// Touches a segment; returns true on hit. Misses install the segment.
  bool Access(uint64_t segment) {
    const size_t slot = Hash(segment) & (slots_.size() - 1);
    if (slots_[slot] == segment) return true;
    slots_[slot] = segment;
    return false;
  }

  void Clear() { slots_.assign(slots_.size(), kEmpty); }

 private:
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  static size_t NextPow2(size_t v) {
    size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }
  static uint64_t Hash(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  }

  std::vector<uint64_t> slots_;
};

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_CACHE_SIM_H_
