#include "gpusim/occupancy.h"

#include <algorithm>

#include "common/logging.h"

namespace sweetknn::gpusim {

Occupancy ComputeOccupancy(const DeviceSpec& spec, int block_threads,
                           int regs_per_thread, int shared_bytes_per_block) {
  SK_CHECK_GT(block_threads, 0);
  SK_CHECK_LE(block_threads, spec.max_threads_per_block);
  Occupancy out;

  const int by_threads = spec.max_threads_per_sm / block_threads;
  const int by_blocks = spec.max_blocks_per_sm;
  const int regs_per_block = regs_per_thread * block_threads;
  const int by_regs = regs_per_block > 0
                          ? spec.registers_per_sm / regs_per_block
                          : spec.max_blocks_per_sm;
  const int by_shared = shared_bytes_per_block > 0
                            ? spec.shared_mem_per_sm_bytes /
                                  shared_bytes_per_block
                            : spec.max_blocks_per_sm;

  out.blocks_per_sm =
      std::min(std::min(by_threads, by_blocks), std::min(by_regs, by_shared));
  if (out.blocks_per_sm <= 0) {
    out.blocks_per_sm = 0;
    out.warps_per_sm = 0;
    out.fraction = 0.0;
  } else {
    const int warps_per_block = (block_threads + kWarpSize - 1) / kWarpSize;
    out.warps_per_sm = out.blocks_per_sm * warps_per_block;
    out.warps_per_sm = std::min(out.warps_per_sm, spec.MaxWarpsPerSm());
    out.fraction = static_cast<double>(out.warps_per_sm) /
                   static_cast<double>(spec.MaxWarpsPerSm());
  }

  // Record the binding resource for diagnostics.
  const int cap = out.blocks_per_sm;
  if (cap == by_threads) {
    out.limiter = Occupancy::Limiter::kThreads;
  } else if (cap == by_regs) {
    out.limiter = Occupancy::Limiter::kRegisters;
  } else if (cap == by_shared) {
    out.limiter = Occupancy::Limiter::kSharedMemory;
  } else if (cap == by_blocks) {
    out.limiter = Occupancy::Limiter::kBlocks;
  }
  return out;
}

}  // namespace sweetknn::gpusim
