#include "gpusim/device.h"

namespace sweetknn::gpusim {

const LaunchRecord& Device::RecordAnalyticLaunch(const std::string& name,
                                                 double sim_time_s) {
  LaunchRecord record;
  record.kernel_name = name;
  record.analytic = true;
  record.sim_time_s = sim_time_s;
  profile_.launches.push_back(std::move(record));
  return profile_.launches.back();
}

}  // namespace sweetknn::gpusim
