#ifndef SWEETKNN_GPUSIM_GEMM_MODEL_H_
#define SWEETKNN_GPUSIM_GEMM_MODEL_H_

#include <cstdint>

#include "gpusim/device_spec.h"

namespace sweetknn::gpusim {

/// Analytic roofline model of a CUBLAS sgemm call, C(m x n) = A(m x k) *
/// B(k x n). The paper's baseline (Garcia et al.) computes the query-target
/// distance matrix with CUBLAS; since CUBLAS is a closed pre-tuned library,
/// we model it instead of simulating it instruction by instruction:
///
///   time = max(flops / (peak * efficiency), bytes / bandwidth) + launch
///
/// where efficiency captures CUBLAS's behaviour of approaching peak only
/// for large, deep GEMMs: a tile-utilization term (how many 128x128 output
/// tiles exist relative to what the chip needs to be busy) and a k-depth
/// term (short reductions can't amortize the prologue). Both effects are
/// well documented for real CUBLAS and matter for the paper's small
/// datasets (arcene, dor).
class GemmModel {
 public:
  /// Output tile edge CUBLAS-style kernels produce per thread block.
  static constexpr double kTileEdge = 128.0;
  /// Concurrent tiles needed to saturate the chip (2 blocks per SM).
  static constexpr double kTilesToSaturate = 2.0;
  /// Efficiency of CUBLAS at asymptotic sizes.
  static constexpr double kPeakEfficiency = 0.75;
  /// k-depth at which the reduction loop reaches full throughput.
  static constexpr double kDepthToSaturate = 64.0;

  explicit GemmModel(const DeviceSpec& spec) : spec_(spec) {}

  /// Simulated seconds for one sgemm call.
  double Time(int64_t m, int64_t n, int64_t k) const;

  /// The model's efficiency factor in (0, kPeakEfficiency].
  double Efficiency(int64_t m, int64_t n, int64_t k) const;

 private:
  DeviceSpec spec_;
};

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_GEMM_MODEL_H_
