#ifndef SWEETKNN_GPUSIM_MEMORY_H_
#define SWEETKNN_GPUSIM_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace sweetknn::gpusim {

class Device;

namespace internal_memory {

/// Allocation granularity: addresses and sizes are 256-byte aligned like
/// real cudaMalloc allocations.
inline constexpr size_t kAllocationAlign = 256;

/// Rounds a byte request up to the allocation granularity. The single
/// source of truth shared by Allocator::Allocate/Free and
/// Device::CanAllocate, so the capacity check and the allocator can never
/// disagree on alignment.
inline size_t RoundUpAllocation(size_t bytes) {
  return (bytes + kAllocationAlign - 1) & ~(kAllocationAlign - 1);
}

/// Bookkeeping shared by all DeviceBuffer instantiations: capacity
/// accounting plus a flat simulated address space used for coalescing
/// computations. Owned by Device.
class Allocator {
 public:
  explicit Allocator(size_t capacity_bytes) : capacity_(capacity_bytes) {}
  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  /// Reserves `bytes`; returns the simulated base address, or false if the
  /// device is out of memory. Addresses are 256-byte aligned like real
  /// cudaMalloc allocations.
  bool Allocate(size_t bytes, uint64_t* base_addr);
  void Free(size_t bytes);

  size_t capacity() const { return capacity_; }
  size_t used() const { return used_; }
  size_t free_bytes() const { return capacity_ - used_; }
  /// High-water mark of simultaneous allocation.
  size_t peak_used() const { return peak_used_; }

 private:
  size_t capacity_;
  size_t used_ = 0;
  size_t peak_used_ = 0;
  uint64_t next_addr_ = 256;
};

}  // namespace internal_memory

/// A typed allocation in simulated device global memory. Functionally the
/// data lives in host memory so kernels (and tests) can read results, but
/// every in-kernel access must go through Warp::Load/Store/Atomic* so that
/// memory transactions are counted. Move-only; frees its reservation on
/// destruction.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      allocator_ = other.allocator_;
      base_addr_ = other.base_addr_;
      data_ = std::move(other.data_);
      other.allocator_ = nullptr;
      other.base_addr_ = 0;
    }
    return *this;
  }
  ~DeviceBuffer() { Release(); }

  bool valid() const { return allocator_ != nullptr; }
  size_t size() const { return data_.size(); }
  uint64_t base_addr() const { return base_addr_; }

  /// Simulated device byte address of element i.
  uint64_t AddressOf(size_t i) const { return base_addr_ + i * sizeof(T); }

  /// Raw element access. Kernels must not use this directly for global
  /// data (it bypasses transaction counting); it exists for host-side
  /// setup/teardown and for Warp's internal implementation.
  T& operator[](size_t i) {
    SK_DCHECK(i < data_.size());
    return data_[i];
  }
  const T& operator[](size_t i) const {
    SK_DCHECK(i < data_.size());
    return data_[i];
  }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

 private:
  friend class Device;
  DeviceBuffer(internal_memory::Allocator* allocator, uint64_t base_addr,
               size_t count)
      : allocator_(allocator), base_addr_(base_addr), data_(count) {}

  void Release() {
    if (allocator_ != nullptr) {
      allocator_->Free(data_.size() * sizeof(T));
      allocator_ = nullptr;
    }
    data_.clear();
  }

  internal_memory::Allocator* allocator_ = nullptr;
  uint64_t base_addr_ = 0;
  std::vector<T> data_;
};

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_MEMORY_H_
