#include "gpusim/memory.h"

namespace sweetknn::gpusim::internal_memory {

bool Allocator::Allocate(size_t bytes, uint64_t* base_addr) {
  // Round to the 256-byte allocation granularity of real devices.
  const size_t rounded = (bytes + 255) & ~size_t{255};
  if (used_ + rounded > capacity_) return false;
  used_ += rounded;
  if (used_ > peak_used_) peak_used_ = used_;
  *base_addr = next_addr_;
  next_addr_ += rounded;
  return true;
}

void Allocator::Free(size_t bytes) {
  const size_t rounded = (bytes + 255) & ~size_t{255};
  SK_CHECK_LE(rounded, used_);
  used_ -= rounded;
}

}  // namespace sweetknn::gpusim::internal_memory
