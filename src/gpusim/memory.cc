#include "gpusim/memory.h"

namespace sweetknn::gpusim::internal_memory {

bool Allocator::Allocate(size_t bytes, uint64_t* base_addr) {
  const size_t rounded = RoundUpAllocation(bytes);
  if (used_ + rounded > capacity_) return false;
  used_ += rounded;
  if (used_ > peak_used_) peak_used_ = used_;
  *base_addr = next_addr_;
  next_addr_ += rounded;
  return true;
}

void Allocator::Free(size_t bytes) {
  const size_t rounded = RoundUpAllocation(bytes);
  SK_CHECK_LE(rounded, used_);
  used_ -= rounded;
}

}  // namespace sweetknn::gpusim::internal_memory
