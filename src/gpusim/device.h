#ifndef SWEETKNN_GPUSIM_DEVICE_H_
#define SWEETKNN_GPUSIM_DEVICE_H_

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "gpusim/cache_sim.h"
#include "gpusim/cost_model.h"
#include "gpusim/device_spec.h"
#include "gpusim/exec_engine.h"
#include "gpusim/memory.h"
#include "gpusim/stats.h"
#include "gpusim/warp.h"

namespace sweetknn::gpusim {

/// Launch geometry (1-D grids are sufficient for every kernel here).
struct LaunchConfig {
  int grid_blocks = 1;
  int block_threads = 256;

  /// Grid covering at least `threads` threads with the given block size.
  static LaunchConfig Cover(int64_t threads, int block_threads) {
    SK_CHECK_GT(threads, 0);
    SK_CHECK_GT(block_threads, 0);
    LaunchConfig cfg;
    cfg.block_threads = block_threads;
    cfg.grid_blocks =
        static_cast<int>((threads + block_threads - 1) / block_threads);
    return cfg;
  }

  int64_t TotalThreads() const {
    return static_cast<int64_t>(grid_blocks) * block_threads;
  }
};

/// Static kernel resource requirements, as the CUDA compiler would report.
/// They drive the occupancy computation (and therefore simulated time).
struct KernelMeta {
  std::string name;
  int regs_per_thread = 32;
  int shared_bytes_per_block = 0;
  /// Run this launch's grid serially on the calling thread even when the
  /// device uses a parallel execution engine. Set it for kernels whose
  /// cross-block atomic *old values* feed functional state (e.g. fetch-add
  /// slot reservation followed by stores at the reserved offsets): their
  /// results depend on block execution order, which concurrent blocks
  /// cannot reproduce. Order-free atomics (pure add/min/max reductions)
  /// do not need it.
  bool host_serial = false;
};

/// A simulated GPU: owns global memory, executes kernels warp by warp in
/// lockstep SIMT semantics, and accumulates a Profile of launches with
/// simulated times from the cost model.
class Device {
 public:
  explicit Device(DeviceSpec spec)
      : spec_(std::move(spec)),
        allocator_(spec_.global_mem_bytes),
        cost_model_(spec_),
        cache_(spec_.l2_cache_bytes / Warp::kSegmentBytes) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  const CostModel& cost_model() const { return cost_model_; }

  // --- Memory ---------------------------------------------------------------

  size_t free_bytes() const { return allocator_.free_bytes(); }
  size_t used_bytes() const { return allocator_.used(); }
  size_t peak_used_bytes() const { return allocator_.peak_used(); }

  /// Allocates `count` elements; aborts if the device is out of memory
  /// (callers that partition should consult free_bytes() / CanAllocate
  /// first, like real code sizing against cudaMemGetInfo).
  template <typename T>
  DeviceBuffer<T> Alloc(size_t count, const char* what = "buffer") {
    uint64_t base = 0;
    SK_CHECK(allocator_.Allocate(count * sizeof(T), &base))
        << "simulated device out of memory allocating " << count * sizeof(T)
        << " bytes for " << what << " (free: " << allocator_.free_bytes()
        << ")";
    return DeviceBuffer<T>(&allocator_, base, count);
  }

  bool CanAllocate(size_t bytes) const {
    // Same rounding the allocator applies, so the two can never disagree.
    return internal_memory::RoundUpAllocation(bytes) <=
           allocator_.free_bytes();
  }

  /// Host-to-device copy: fills the buffer and charges PCIe transfer time.
  template <typename T>
  void CopyToDevice(DeviceBuffer<T>* buf, const T* src, size_t count) {
    SK_CHECK_LE(count, buf->size());
    std::memcpy(buf->data(), src, count * sizeof(T));
    profile_.transfer_time_s += cost_model_.TransferTime(count * sizeof(T));
  }

  /// Device-to-host copy; charges PCIe transfer time.
  template <typename T>
  void CopyToHost(const DeviceBuffer<T>& buf, T* dst, size_t count) {
    SK_CHECK_LE(count, buf.size());
    std::memcpy(dst, buf.data(), count * sizeof(T));
    profile_.transfer_time_s += cost_model_.TransferTime(count * sizeof(T));
  }

  /// Charges PCIe time for a transfer whose data already lives host-side
  /// (used by hybrid kernels that fill host results directly).
  void ChargeTransfer(size_t bytes) {
    profile_.transfer_time_s += cost_model_.TransferTime(bytes);
  }

  // --- Execution --------------------------------------------------------------

  /// Host worker threads used to execute simulated grids. 1 (the default
  /// unless SWEETKNN_SIM_THREADS says otherwise) is the exact legacy serial
  /// engine; N > 1 dispatches blocks across the shared thread pool with
  /// bit-identical stats and results (see docs/gpusim.md, "Execution
  /// engine").
  int execution_threads() const { return execution_threads_; }
  void set_execution_threads(int n) {
    execution_threads_ = std::clamp(n, 1, common::kMaxSimThreads);
  }

  /// Launches `kernel` (signature void(Warp&)) over the grid: the functor
  /// runs once per warp, with partial trailing warps masked. With
  /// execution_threads() > 1 the grid's blocks run on concurrent host
  /// threads — `kernel` must then be safe to invoke concurrently (capture
  /// no mutable host state outside Warp; every Sweet KNN kernel qualifies
  /// or is marked KernelMeta::host_serial). Returns the finalized launch
  /// record; the reference stays valid until ResetProfile (launches live in
  /// a std::deque, so later launches never invalidate it).
  template <typename KernelFn>
  const LaunchRecord& Launch(const KernelMeta& meta, const LaunchConfig& cfg,
                             KernelFn&& kernel) {
    SK_CHECK_GT(cfg.grid_blocks, 0);
    SK_CHECK_GT(cfg.block_threads, 0);
    SK_CHECK_LE(cfg.block_threads, spec_.max_threads_per_block);

    LaunchRecord record;
    record.kernel_name = meta.name;
    record.grid_blocks = cfg.grid_blocks;
    record.block_threads = cfg.block_threads;
    record.regs_per_thread = meta.regs_per_thread;
    record.shared_bytes_per_block = meta.shared_bytes_per_block;

    const int workers =
        meta.host_serial ? 1 : std::min(execution_threads_, cfg.grid_blocks);
    if (workers <= 1) {
      for (int block = 0; block < cfg.grid_blocks; ++block) {
        RunBlock(block, cfg, kernel, &record.stats, &cache_,
                 /*locks=*/nullptr, /*trace=*/nullptr);
      }
    } else {
      RunGridParallel(cfg, kernel, workers, &record.stats);
    }

    cost_model_.Finalize(&record);
    profile_.launches.push_back(std::move(record));
    return profile_.launches.back();
  }

  /// Records an analytically modeled launch (e.g. a CUBLAS GEMM call):
  /// no functional execution, just a named time contribution.
  const LaunchRecord& RecordAnalyticLaunch(const std::string& name,
                                           double sim_time_s);

  // --- Profiling ---------------------------------------------------------------

  const Profile& profile() const { return profile_; }
  Profile* mutable_profile() { return &profile_; }
  void ResetProfile() { profile_.Clear(); }

  /// Simulated time accumulated so far (kernels + transfers).
  double SimTime() const { return profile_.TotalTime(); }

 private:
  /// Runs all warps of one block against the given stat sink / cache /
  /// lock-table / trace combination.
  template <typename KernelFn>
  void RunBlock(int block, const LaunchConfig& cfg, KernelFn& kernel,
                KernelStats* stats, CacheSim* cache, HostAtomicLocks* locks,
                SegmentTrace* trace) {
    const int warps_per_block =
        (cfg.block_threads + kWarpSize - 1) / kWarpSize;
    for (int w = 0; w < warps_per_block; ++w) {
      const int lanes_before = w * kWarpSize;
      const int lanes = std::min(kWarpSize, cfg.block_threads - lanes_before);
      const LaneMask mask =
          lanes >= kWarpSize ? kFullMask : ((LaneMask{1} << lanes) - 1);
      Warp warp(stats, block, cfg.block_threads, w, mask, cache, locks,
                trace);
      kernel(warp);
    }
  }

  /// Parallel engine: splits the grid into chunks of consecutive blocks,
  /// runs chunks on pool workers against private KernelStats shards and
  /// per-chunk segment traces, then merges shards and replays traces in
  /// block order through the device cache. Stat counters are additive and
  /// the replay reproduces the serial cache-access sequence, so the merged
  /// record is bit-identical to serial execution for any worker count or
  /// chunking. Chunk size only affects scheduling granularity.
  template <typename KernelFn>
  void RunGridParallel(const LaunchConfig& cfg, KernelFn& kernel, int workers,
                       KernelStats* out_stats) {
    const int chunk_blocks = std::max(1, cfg.grid_blocks / (workers * 4));
    const int num_chunks =
        (cfg.grid_blocks + chunk_blocks - 1) / chunk_blocks;
    struct Shard {
      KernelStats stats;
      SegmentTrace trace;
      std::atomic<bool> done{false};
    };
    std::vector<Shard> shards(static_cast<size_t>(num_chunks));
    std::atomic<int> cursor{0};
    std::mutex replay_mutex;
    int replay_frontier = 0;   // guarded by replay_mutex
    uint64_t replay_dram = 0;  // guarded by replay_mutex
    // Replays every finished chunk that is next in block order and frees
    // its trace, keeping peak trace memory near one in-flight chunk per
    // worker instead of the whole launch.
    auto drain_replays = [&] {
      std::lock_guard<std::mutex> lock(replay_mutex);
      while (replay_frontier < num_chunks &&
             shards[static_cast<size_t>(replay_frontier)].done.load(
                 std::memory_order_acquire)) {
        Shard& shard = shards[static_cast<size_t>(replay_frontier)];
        replay_dram += shard.trace.ReplayInto(&cache_);
        shard.trace.Release();
        ++replay_frontier;
      }
    };
    common::ThreadPool::Global()->ForkJoin(
        std::min(workers, num_chunks), [&](int) {
          for (;;) {
            const int c = cursor.fetch_add(1, std::memory_order_relaxed);
            if (c >= num_chunks) return;
            Shard& shard = shards[static_cast<size_t>(c)];
            const int begin = c * chunk_blocks;
            const int end = std::min(cfg.grid_blocks, begin + chunk_blocks);
            for (int block = begin; block < end; ++block) {
              RunBlock(block, cfg, kernel, &shard.stats, /*cache=*/nullptr,
                       &atomic_locks_, &shard.trace);
            }
            shard.done.store(true, std::memory_order_release);
            // The worker that completes the last outstanding chunk in
            // block order drains everything behind it, so after the join
            // the frontier has always reached num_chunks.
            drain_replays();
          }
        });
    for (const Shard& shard : shards) out_stats->Merge(shard.stats);
    SK_DCHECK(replay_frontier == num_chunks);
    out_stats->dram_transactions += replay_dram;
  }

  DeviceSpec spec_;
  internal_memory::Allocator allocator_;
  CostModel cost_model_;
  CacheSim cache_;
  HostAtomicLocks atomic_locks_;
  Profile profile_;
  int execution_threads_ = common::SimThreadsFromEnv();
};

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_DEVICE_H_
