#ifndef SWEETKNN_GPUSIM_DEVICE_H_
#define SWEETKNN_GPUSIM_DEVICE_H_

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "gpusim/cache_sim.h"
#include "gpusim/cost_model.h"
#include "gpusim/device_spec.h"
#include "gpusim/memory.h"
#include "gpusim/stats.h"
#include "gpusim/warp.h"

namespace sweetknn::gpusim {

/// Launch geometry (1-D grids are sufficient for every kernel here).
struct LaunchConfig {
  int grid_blocks = 1;
  int block_threads = 256;

  /// Grid covering at least `threads` threads with the given block size.
  static LaunchConfig Cover(int64_t threads, int block_threads) {
    SK_CHECK_GT(threads, 0);
    SK_CHECK_GT(block_threads, 0);
    LaunchConfig cfg;
    cfg.block_threads = block_threads;
    cfg.grid_blocks =
        static_cast<int>((threads + block_threads - 1) / block_threads);
    return cfg;
  }

  int64_t TotalThreads() const {
    return static_cast<int64_t>(grid_blocks) * block_threads;
  }
};

/// Static kernel resource requirements, as the CUDA compiler would report.
/// They drive the occupancy computation (and therefore simulated time).
struct KernelMeta {
  std::string name;
  int regs_per_thread = 32;
  int shared_bytes_per_block = 0;
};

/// A simulated GPU: owns global memory, executes kernels warp by warp in
/// lockstep SIMT semantics, and accumulates a Profile of launches with
/// simulated times from the cost model.
class Device {
 public:
  explicit Device(DeviceSpec spec)
      : spec_(std::move(spec)),
        allocator_(spec_.global_mem_bytes),
        cost_model_(spec_),
        cache_(spec_.l2_cache_bytes / Warp::kSegmentBytes) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  const CostModel& cost_model() const { return cost_model_; }

  // --- Memory ---------------------------------------------------------------

  size_t free_bytes() const { return allocator_.free_bytes(); }
  size_t used_bytes() const { return allocator_.used(); }
  size_t peak_used_bytes() const { return allocator_.peak_used(); }

  /// Allocates `count` elements; aborts if the device is out of memory
  /// (callers that partition should consult free_bytes() / CanAllocate
  /// first, like real code sizing against cudaMemGetInfo).
  template <typename T>
  DeviceBuffer<T> Alloc(size_t count, const char* what = "buffer") {
    uint64_t base = 0;
    SK_CHECK(allocator_.Allocate(count * sizeof(T), &base))
        << "simulated device out of memory allocating " << count * sizeof(T)
        << " bytes for " << what << " (free: " << allocator_.free_bytes()
        << ")";
    return DeviceBuffer<T>(&allocator_, base, count);
  }

  bool CanAllocate(size_t bytes) const {
    const size_t rounded = (bytes + 255) & ~size_t{255};
    return rounded <= allocator_.free_bytes();
  }

  /// Host-to-device copy: fills the buffer and charges PCIe transfer time.
  template <typename T>
  void CopyToDevice(DeviceBuffer<T>* buf, const T* src, size_t count) {
    SK_CHECK_LE(count, buf->size());
    std::memcpy(buf->data(), src, count * sizeof(T));
    profile_.transfer_time_s += cost_model_.TransferTime(count * sizeof(T));
  }

  /// Device-to-host copy; charges PCIe transfer time.
  template <typename T>
  void CopyToHost(const DeviceBuffer<T>& buf, T* dst, size_t count) {
    SK_CHECK_LE(count, buf.size());
    std::memcpy(dst, buf.data(), count * sizeof(T));
    profile_.transfer_time_s += cost_model_.TransferTime(count * sizeof(T));
  }

  /// Charges PCIe time for a transfer whose data already lives host-side
  /// (used by hybrid kernels that fill host results directly).
  void ChargeTransfer(size_t bytes) {
    profile_.transfer_time_s += cost_model_.TransferTime(bytes);
  }

  // --- Execution --------------------------------------------------------------

  /// Launches `kernel` (signature void(Warp&)) over the grid: the functor
  /// runs once per warp, with partial trailing warps masked. Returns the
  /// finalized launch record (valid until the next launch).
  template <typename KernelFn>
  const LaunchRecord& Launch(const KernelMeta& meta, const LaunchConfig& cfg,
                             KernelFn&& kernel) {
    SK_CHECK_GT(cfg.grid_blocks, 0);
    SK_CHECK_GT(cfg.block_threads, 0);
    SK_CHECK_LE(cfg.block_threads, spec_.max_threads_per_block);

    LaunchRecord record;
    record.kernel_name = meta.name;
    record.grid_blocks = cfg.grid_blocks;
    record.block_threads = cfg.block_threads;
    record.regs_per_thread = meta.regs_per_thread;
    record.shared_bytes_per_block = meta.shared_bytes_per_block;

    const int warps_per_block =
        (cfg.block_threads + kWarpSize - 1) / kWarpSize;
    for (int block = 0; block < cfg.grid_blocks; ++block) {
      for (int w = 0; w < warps_per_block; ++w) {
        const int lanes_before = w * kWarpSize;
        const int lanes =
            std::min(kWarpSize, cfg.block_threads - lanes_before);
        const LaneMask mask =
            lanes >= kWarpSize ? kFullMask : ((LaneMask{1} << lanes) - 1);
        Warp warp(&record.stats, block, cfg.block_threads, w, mask,
                  &cache_);
        kernel(warp);
      }
    }

    cost_model_.Finalize(&record);
    profile_.launches.push_back(std::move(record));
    return profile_.launches.back();
  }

  /// Records an analytically modeled launch (e.g. a CUBLAS GEMM call):
  /// no functional execution, just a named time contribution.
  const LaunchRecord& RecordAnalyticLaunch(const std::string& name,
                                           double sim_time_s);

  // --- Profiling ---------------------------------------------------------------

  const Profile& profile() const { return profile_; }
  Profile* mutable_profile() { return &profile_; }
  void ResetProfile() { profile_.Clear(); }

  /// Simulated time accumulated so far (kernels + transfers).
  double SimTime() const { return profile_.TotalTime(); }

 private:
  DeviceSpec spec_;
  internal_memory::Allocator allocator_;
  CostModel cost_model_;
  CacheSim cache_;
  Profile profile_;
};

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_DEVICE_H_
