#ifndef SWEETKNN_GPUSIM_DEVICE_SPEC_H_
#define SWEETKNN_GPUSIM_DEVICE_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace sweetknn::gpusim {

/// Warp width of the simulated architecture (NVIDIA-style SIMT).
inline constexpr int kWarpSize = 32;

/// Static description of a simulated GPU. The defaults mirror the NVIDIA
/// Tesla K20c (Kepler GK110) used in the paper's evaluation; a scaled
/// preset shrinks global memory so that scaled-down datasets reproduce the
/// paper's memory-overflow / query-partitioning behaviour.
struct DeviceSpec {
  std::string name;

  int num_sms = 13;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 16;
  int max_threads_per_block = 1024;
  int shared_mem_per_sm_bytes = 48 * 1024;
  int shared_mem_per_block_bytes = 48 * 1024;
  int registers_per_sm = 65536;
  int max_registers_per_thread = 255;

  double core_clock_hz = 706e6;
  /// Warp instructions each SM can issue per cycle (Kepler: 4 schedulers).
  double issue_per_sm_per_cycle = 4.0;
  double mem_bandwidth_bytes_per_s = 208e9;
  /// Aggregate on-chip cached-read bandwidth (L2 plus the per-SM
  /// read-only/texture caches); cache hits are bounded by this instead of
  /// DRAM bandwidth.
  double l2_bandwidth_bytes_per_s = 1000e9;
  /// L2 capacity in bytes (drives the cache simulation).
  size_t l2_cache_bytes = 1280 * 1024;
  double pcie_bandwidth_bytes_per_s = 6e9;
  double peak_sp_flops = 3.52e12;

  size_t global_mem_bytes = 5ull * 1024 * 1024 * 1024;
  double kernel_launch_overhead_s = 5e-6;

  /// Maximum number of threads concurrently resident on the whole chip,
  /// the `max_cur` quantity of the paper's adaptive scheme (section IV-D3).
  int MaxConcurrentThreads() const { return num_sms * max_threads_per_sm; }
  int MaxWarpsPerSm() const { return max_threads_per_sm / kWarpSize; }

  /// Tesla K20c as used in the paper.
  static DeviceSpec TeslaK20c();

  /// Tesla K40 (more SMs, higher clock/bandwidth) — for checking that the
  /// reconciliation behaviour is not K20c-specific.
  static DeviceSpec TeslaK40();

  /// GeForce GTX 750 (small Maxwell: 5 SMs, 86 GB/s) — a low-end device
  /// where occupancy effects dominate.
  static DeviceSpec GtxSmall();

  /// K20c compute resources with a reduced global memory, for scaled-down
  /// dataset experiments (see DESIGN.md section 2).
  static DeviceSpec ScaledK20c(size_t global_mem_bytes);
};

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_DEVICE_SPEC_H_
