#include "gpusim/trace_export.h"

#include <cstdio>
#include <fstream>

namespace sweetknn::gpusim {

namespace {
/// Escapes a string for embedding in JSON.
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}
}  // namespace

std::string ProfileToChromeTrace(const Profile& profile) {
  std::string out = "{\"traceEvents\":[\n";
  double cursor_us = 0.0;
  char buf[512];
  bool first = true;
  for (const LaunchRecord& launch : profile.launches) {
    const double duration_us = launch.sim_time_s * 1e6;
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{"
        "\"grid_blocks\":%d,\"block_threads\":%d,\"occupancy\":%.3f,"
        "\"warp_instructions\":%llu,\"transactions\":%llu,"
        "\"dram_transactions\":%llu,\"warp_efficiency\":%.4f,"
        "\"analytic\":%s}}",
        first ? "" : ",\n", JsonEscape(launch.kernel_name).c_str(),
        cursor_us, duration_us, launch.grid_blocks, launch.block_threads,
        launch.occupancy,
        static_cast<unsigned long long>(launch.stats.warp_instructions),
        static_cast<unsigned long long>(launch.stats.global_transactions),
        static_cast<unsigned long long>(launch.stats.dram_transactions),
        launch.stats.WarpEfficiency(), launch.analytic ? "true" : "false");
    out += buf;
    cursor_us += duration_us;
    first = false;
  }
  if (profile.transfer_time_s > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"pcie transfers\",\"ph\":\"X\",\"pid\":1,"
                  "\"tid\":2,\"ts\":0,\"dur\":%.3f,\"args\":{}}",
                  first ? "" : ",\n", profile.transfer_time_s * 1e6);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const Profile& profile, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file << ProfileToChromeTrace(profile);
  if (!file) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace sweetknn::gpusim
