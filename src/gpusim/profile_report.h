#ifndef SWEETKNN_GPUSIM_PROFILE_REPORT_H_
#define SWEETKNN_GPUSIM_PROFILE_REPORT_H_

#include <string>
#include <vector>

#include "gpusim/stats.h"

namespace sweetknn::gpusim {

/// One row of the per-kernel profile summary: launches of the same kernel
/// name merged together, nvprof-style derived metrics included.
struct ProfileRow {
  std::string kernel_name;
  int launches = 0;
  double time_s = 0.0;
  double time_share = 0.0;  // Of total kernel time.
  uint64_t warp_instructions = 0;
  uint64_t global_transactions = 0;
  uint64_t dram_transactions = 0;
  double warp_efficiency = 0.0;
  bool analytic = false;
};

/// Aggregates a profile into per-kernel rows, sorted by descending time.
std::vector<ProfileRow> SummarizeProfile(const Profile& profile);

/// Renders the summary as a fixed-width text table (one string, ends with
/// a newline), e.g.:
///
///   kernel                      time(ms)  share  launches  warp-eff
///   level2_full_filter             2.563  68.1%         1     64.9%
///   ...
std::string FormatProfileReport(const Profile& profile);

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_PROFILE_REPORT_H_
