#include "gpusim/device_spec.h"

namespace sweetknn::gpusim {

DeviceSpec DeviceSpec::TeslaK20c() {
  DeviceSpec spec;
  spec.name = "Tesla K20c";
  return spec;
}

DeviceSpec DeviceSpec::TeslaK40() {
  DeviceSpec spec;
  spec.name = "Tesla K40";
  spec.num_sms = 15;
  spec.core_clock_hz = 745e6;
  spec.mem_bandwidth_bytes_per_s = 288e9;
  spec.peak_sp_flops = 4.29e12;
  spec.global_mem_bytes = 12ull * 1024 * 1024 * 1024;
  spec.l2_cache_bytes = 1536 * 1024;
  return spec;
}

DeviceSpec DeviceSpec::GtxSmall() {
  DeviceSpec spec;
  spec.name = "GTX small";
  spec.num_sms = 5;
  spec.max_threads_per_sm = 2048;
  spec.core_clock_hz = 1020e6;
  spec.mem_bandwidth_bytes_per_s = 86e9;
  spec.l2_bandwidth_bytes_per_s = 300e9;
  spec.peak_sp_flops = 1.3e12;
  spec.global_mem_bytes = 2ull * 1024 * 1024 * 1024;
  spec.l2_cache_bytes = 2048 * 1024;
  return spec;
}

DeviceSpec DeviceSpec::ScaledK20c(size_t global_mem_bytes) {
  DeviceSpec spec = TeslaK20c();
  spec.name = "Scaled K20c";
  spec.global_mem_bytes = global_mem_bytes;
  // The cache is scaled together with global memory so that the ratio of
  // dataset working set to cache capacity stays close to the paper's
  // (otherwise every scaled-down dataset would fit in L2 and memory
  // behaviour would vanish from the results).
  spec.l2_cache_bytes = 128 * 1024;
  return spec;
}

}  // namespace sweetknn::gpusim
