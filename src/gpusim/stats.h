#ifndef SWEETKNN_GPUSIM_STATS_H_
#define SWEETKNN_GPUSIM_STATS_H_

#include <cstdint>
#include <deque>
#include <string>

namespace sweetknn::gpusim {

/// Event counters for one kernel execution, in the spirit of nvprof
/// hardware counters.
struct KernelStats {
  /// Warp-level instructions issued (every side of a divergent branch
  /// issues separately, exactly as on hardware).
  uint64_t warp_instructions = 0;
  /// Sum over issued warp instructions of the number of active lanes.
  uint64_t active_lane_ops = 0;
  /// Branches where a warp's lanes took both sides.
  uint64_t divergent_branches = 0;
  /// 128-byte global-memory transactions (loads + stores).
  uint64_t global_transactions = 0;
  /// Subset of global_transactions that missed the simulated L2 cache
  /// and reached DRAM.
  uint64_t dram_transactions = 0;
  uint64_t global_load_instructions = 0;
  uint64_t global_store_instructions = 0;
  uint64_t atomic_operations = 0;
  /// Extra serialization steps caused by same-address conflicts among the
  /// lanes of one warp issuing an atomic together.
  uint64_t atomic_serializations = 0;

  /// nvprof's warp_execution_efficiency: average fraction of active lanes
  /// per issued warp instruction.
  double WarpEfficiency() const {
    if (warp_instructions == 0) return 1.0;
    return static_cast<double>(active_lane_ops) /
           (32.0 * static_cast<double>(warp_instructions));
  }

  void Merge(const KernelStats& other) {
    warp_instructions += other.warp_instructions;
    active_lane_ops += other.active_lane_ops;
    divergent_branches += other.divergent_branches;
    global_transactions += other.global_transactions;
    dram_transactions += other.dram_transactions;
    global_load_instructions += other.global_load_instructions;
    global_store_instructions += other.global_store_instructions;
    atomic_operations += other.atomic_operations;
    atomic_serializations += other.atomic_serializations;
  }
};

/// Everything recorded about one kernel launch, including the simulated
/// execution time assigned by the cost model.
struct LaunchRecord {
  std::string kernel_name;
  int grid_blocks = 0;
  int block_threads = 0;
  int regs_per_thread = 0;
  int shared_bytes_per_block = 0;
  KernelStats stats;
  /// Achieved occupancy: resident warps per SM over the maximum.
  double occupancy = 0.0;
  /// Simulated kernel execution time in seconds (cost model output).
  double sim_time_s = 0.0;
  /// True for analytically modeled launches (e.g. the CUBLAS GEMM call),
  /// whose stats fields other than sim_time_s are estimates.
  bool analytic = false;
};

/// Accumulated view of a device's activity: all launches plus transfers.
/// Launches live in a deque so references handed out by Device::Launch
/// stay valid as later launches append (a vector would invalidate them on
/// reallocation).
struct Profile {
  std::deque<LaunchRecord> launches;
  double transfer_time_s = 0.0;

  double TotalKernelTime() const {
    double total = 0.0;
    for (const LaunchRecord& record : launches) total += record.sim_time_s;
    return total;
  }
  double TotalTime() const { return TotalKernelTime() + transfer_time_s; }

  /// Merged counters over all non-analytic launches.
  KernelStats AggregateStats() const {
    KernelStats out;
    for (const LaunchRecord& record : launches) {
      if (!record.analytic) out.Merge(record.stats);
    }
    return out;
  }

  /// Merged counters over launches whose kernel name contains `substr`.
  KernelStats StatsForKernelsMatching(const std::string& substr) const;

  void Clear() {
    launches.clear();
    transfer_time_s = 0.0;
  }
};

}  // namespace sweetknn::gpusim

#endif  // SWEETKNN_GPUSIM_STATS_H_
