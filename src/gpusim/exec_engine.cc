#include "gpusim/exec_engine.h"

namespace sweetknn::gpusim {

uint64_t SegmentTrace::ReplayInto(CacheSim* cache) const {
  uint64_t dram = 0;
  size_t i = 0;
  const size_t size = words_.size();
  while (i < size) {
    const uint64_t head = words_[i];
    const uint64_t tag = head & kTagMask;
    const uint64_t payload = head & ~kTagMask;
    if (tag == kIntervalTag) {
      const uint64_t last = words_[i + 1];
      for (uint64_t seg = payload; seg <= last; ++seg) {
        if (!cache->Access(seg)) ++dram;
      }
      i += 2;
    } else {
      SK_DCHECK(tag == kStridedTag);
      const size_t count = static_cast<size_t>(payload);
      const uint64_t multiplier = words_[i + 1];
      uint64_t misses = 0;
      for (size_t j = 0; j < count; ++j) {
        if (!cache->Access(words_[i + 2 + j])) ++misses;
      }
      dram += misses * multiplier;
      i += 2 + count;
    }
  }
  return dram;
}

}  // namespace sweetknn::gpusim
