#ifndef SWEETKNN_STORE_SNAPSHOT_H_
#define SWEETKNN_STORE_SNAPSHOT_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "ann/knn_graph.h"
#include "common/crc32.h"
#include "common/matrix.h"
#include "common/status.h"
#include "core/clustering.h"
#include "core/options.h"
#include "gpusim/device_spec.h"

namespace sweetknn::store {

// ---------------------------------------------------------------------------
// On-disk format (docs/persistence.md has the layout diagram)
//
//   [magic 8B "SKSNAP01"][format version u32][endianness guard u32]
//   repeated sections, each:
//     [section id u32][payload length u64][payload][crc32(payload) u32]
//   [end section: id=0, length=0, crc32 of empty payload]
//   [file crc32 u32 over every preceding byte]
//
// All integers are fixed-width native-endian; the endianness guard makes
// a foreign-endian file fail loudly instead of decoding garbage. The file
// CRC covers everything before it, so any single corrupted byte anywhere
// (including inside the per-section CRCs, or in the file CRC field
// itself) is detected.
//
// Versions. v1 holds a pristine index (sections 1-4). v2 adds the
// optional mutation section (id 5: stable-id map, delta points,
// tombstones) for indexes mutated since their base was clustered. v3
// adds the optional ANN graph section (id 6: the kNN graph of the
// frozen base plus its build provenance, docs/approx.md). The reader
// accepts all of them; the writer emits the lowest version whose
// sections the index actually needs, so graph-free snapshots stay
// byte-identical across every version bump and old files keep loading.
// ---------------------------------------------------------------------------

inline constexpr char kSnapshotMagic[8] = {'S', 'K', 'S', 'N',
                                           'A', 'P', '0', '1'};
inline constexpr uint32_t kSnapshotFormatV1 = 1;
inline constexpr uint32_t kSnapshotFormatV2 = 2;
inline constexpr uint32_t kSnapshotFormatV3 = 3;
/// Newest version this build reads and writes.
inline constexpr uint32_t kSnapshotFormatVersion = kSnapshotFormatV3;
inline constexpr uint32_t kEndiannessGuard = 0x01020304u;

/// Section ids. New sections get new ids in new format versions; readers
/// reject ids their file's version cannot contain (a same-version file
/// always holds exactly the sections its writer could produce, so an
/// out-of-range id means corruption, not extension).
enum SnapshotSectionId : uint32_t {
  kSectionEnd = 0,          ///< terminator, zero-length
  kSectionMeta = 1,         ///< provenance: names, shard geometry, shape
  kSectionFingerprint = 2,  ///< TiOptions + DeviceSpec fingerprints
  kSectionTarget = 3,       ///< the target HostMatrix
  kSectionClustering = 4,   ///< the prepared TargetClustering
  kSectionMutation = 5,     ///< v2: id map, delta buffer, tombstones
  kSectionAnnGraph = 6,     ///< v3: kNN graph of the base + build params
};

/// The largest section id a file of `version` may contain.
inline uint32_t MaxSectionIdForVersion(uint32_t version) {
  if (version >= kSnapshotFormatV3) return kSectionAnnGraph;
  return version >= kSnapshotFormatV2 ? kSectionMutation : kSectionClustering;
}

/// Canonical rendering of every TiOptions field that can influence a
/// prepared index or the answers computed against it. sim_threads is
/// deliberately excluded: the execution engine guarantees bit-identical
/// results at any worker count, so a snapshot is valid across them.
std::string OptionsFingerprint(const core::TiOptions& options);

/// Canonical rendering of a DeviceSpec. Device geometry feeds the
/// landmark-count rule (via free memory) and the adaptive scheme, so an
/// index is only warm-start-safe on the device it was built for.
std::string DeviceFingerprint(const gpusim::DeviceSpec& spec);

/// Everything a warm start needs: the serialized image of one fully
/// prepared TI index plus the configuration it was built under and where
/// the data came from.
struct IndexSnapshot {
  // Provenance.
  std::string dataset_name;
  std::string builder;  ///< free-form, e.g. "sweetknn_cli index-build"
  /// Shard geometry; (0, 1, 0) for a standalone single index.
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  uint64_t shard_offset = 0;  ///< first global target row of this shard

  HostMatrix target;
  core::TargetClusteringHost clustering;

  std::string options_fingerprint;
  std::string device_fingerprint;

  // Mutation overlay (format v2; all empty/zero in v1 files and for
  // pristine indexes). Stable ids name rows across mutations: the base
  // row i carries id `id_map[i]` (or shard_offset + i when id_map is
  // empty), delta point j carries id `delta_ids[j]`, and `tombstones`
  // lists deleted ids still physically present in the base. `next_id` is
  // the id allocator watermark — strictly above every id in the file —
  // or 0 for a pristine snapshot (allocator restarts at the row count).
  std::vector<uint32_t> id_map;      ///< strictly increasing, or empty
  std::vector<uint32_t> delta_ids;   ///< strictly increasing
  HostMatrix delta_points;           ///< delta_ids.size() x dims
  std::vector<uint32_t> tombstones;  ///< strictly increasing
  uint32_t next_id = 0;

  /// ANN tier (format v3; empty for graph-free indexes). The graph
  /// covers exactly the base rows of `target` — delta points are never
  /// in the graph (they are scanned exactly until the next compaction,
  /// whose install rebuilds the graph).
  ann::KnnGraph ann_graph;

  /// True when the snapshot carries mutation state and must be written
  /// as format v2 or later.
  bool HasOverlay() const {
    return next_id != 0 || !id_map.empty() || !delta_ids.empty() ||
           !tombstones.empty();
  }
  /// True when the snapshot carries an ANN graph and must be written as
  /// format v3.
  bool HasAnnGraph() const { return !ann_graph.empty(); }
};

/// Streaming writer: sections are appended one at a time, each CRC'd as
/// it goes, and Finish() seals the file with the end marker and the
/// whole-file CRC. Any filesystem failure surfaces as a Status from the
/// call that hit it (and poisons every later call).
class SnapshotWriter {
 public:
  explicit SnapshotWriter(const std::string& path,
                          uint32_t version = kSnapshotFormatVersion);
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  Status WriteSection(uint32_t id, std::string_view payload);
  Status Finish();

 private:
  Status Append(const void* data, size_t len);

  std::string path_;
  std::ofstream out_;
  common::Crc32 file_crc_;
  bool finished_ = false;
  Status deferred_error_;
};

/// Reader: Open() reads the whole file and validates it end to end —
/// magic, version, endianness, section structure, every section CRC and
/// the file CRC — before exposing a single byte of payload. Every failure
/// mode (truncation, bad magic, version skew, checksum mismatch,
/// trailing garbage) is a descriptive Status, never a crash.
class SnapshotReader {
 public:
  struct SectionInfo {
    uint32_t id = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
  };

  /// Default-constructed readers hold no sections; use Open(). (Public
  /// only because Result<T> needs a default-constructible T.)
  SnapshotReader() = default;

  static Result<SnapshotReader> Open(const std::string& path);

  /// Payload of the section with this id, or nullptr if absent.
  const std::string* Section(uint32_t id) const;

  const std::vector<SectionInfo>& sections() const { return sections_; }
  uint32_t format_version() const { return format_version_; }
  uint64_t file_size() const { return file_size_; }

 private:
  uint32_t format_version_ = 0;
  uint64_t file_size_ = 0;
  std::vector<SectionInfo> sections_;
  std::vector<std::string> payloads_;  // parallel to sections_
};

/// Serializes a snapshot to `path` (see the format comment above). The
/// encoding is canonical: Save(Load(file)) reproduces `file` byte for
/// byte.
Status SaveIndexSnapshot(const IndexSnapshot& snapshot,
                         const std::string& path);

/// Reads and fully validates a snapshot: file integrity via
/// SnapshotReader, then structural consistency of the decoded index
/// (shape agreement, monotone offsets, in-range ids — everything
/// index-verify checks).
Result<IndexSnapshot> LoadIndexSnapshot(const std::string& path);

/// The structural-consistency half of loading, usable on any decoded
/// snapshot (index-verify runs it; Load runs it before returning).
Status ValidateIndexSnapshot(const IndexSnapshot& snapshot);

/// Deep numeric verification, beyond the structural checks: recomputes
/// every member's distance to its cluster center with the vectorized
/// batch kernels (bit-identical to the builder's per-pair walk) and
/// demands byte equality with the stored member_dists, per-cluster
/// non-increasing ordering, and max_dist replication. When the snapshot
/// carries an ANN graph, also recomputes every live edge's distance and
/// demands each row ascending by (distance, id) — the builder's
/// invariant, broken by any edge id naming the wrong row. The metric is
/// recovered from the snapshot's options fingerprint. O(n * dims) —
/// run by `index-verify`, not on the serving load path.
Status VerifySnapshotDistances(const IndexSnapshot& snapshot);

/// Canonical file name of one shard's snapshot inside a snapshot
/// directory: "shard-<index>-of-<count>.sksnap".
std::string ShardSnapshotPath(const std::string& dir, int shard_index,
                              int shard_count);

/// Lists a snapshot directory's complete shard set in shard order.
/// Errors if the directory is missing, holds no shard snapshots, or the
/// set is incomplete / inconsistent (mixed counts, gaps).
Result<std::vector<std::string>> ListShardSnapshots(const std::string& dir);

}  // namespace sweetknn::store

#endif  // SWEETKNN_STORE_SNAPSHOT_H_
