// SweetKnnIndex::Save/Load. Declared in core/sweet_knn.h but defined
// here so that sweetknn_core does not depend on the store library
// (store links core, not the other way around).

#include <memory>
#include <string>
#include <utility>

#include "core/sweet_knn.h"
#include "store/snapshot.h"

namespace sweetknn {

Status SweetKnnIndex::Save(const std::string& path,
                           const std::string& dataset_name) const {
  store::IndexSnapshot snapshot;
  snapshot.dataset_name = dataset_name;
  snapshot.builder = "SweetKnnIndex::Save";
  snapshot.shard_index = 0;
  snapshot.shard_count = 1;
  snapshot.shard_offset = 0;
  snapshot.target = engine_.ExportTarget();
  snapshot.clustering = engine_.ExportTargetClustering();
  snapshot.options_fingerprint = store::OptionsFingerprint(engine_.options());
  snapshot.device_fingerprint = store::DeviceFingerprint(device_.spec());
  return store::SaveIndexSnapshot(snapshot, path);
}

Result<std::unique_ptr<SweetKnnIndex>> SweetKnnIndex::Load(
    const std::string& path, const SweetKnn::Config& config) {
  Result<store::IndexSnapshot> snapshot = store::LoadIndexSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();

  const std::string want_options = store::OptionsFingerprint(config.options);
  if (snapshot.value().options_fingerprint != want_options) {
    return Status::InvalidArgument(
        "snapshot " + path + " was built under different options: file has [" +
        snapshot.value().options_fingerprint + "], this config is [" +
        want_options + "]");
  }
  const std::string want_device = store::DeviceFingerprint(config.device);
  if (snapshot.value().device_fingerprint != want_device) {
    return Status::InvalidArgument(
        "snapshot " + path + " was built for a different device: file has [" +
        snapshot.value().device_fingerprint + "], this config is [" +
        want_device + "]");
  }

  return std::unique_ptr<SweetKnnIndex>(
      new SweetKnnIndex(WarmStartTag{}, snapshot.value().target,
                        snapshot.value().clustering, config));
}

}  // namespace sweetknn
