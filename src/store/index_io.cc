// SweetKnnIndex::Save/Load. Declared in core/sweet_knn.h but defined
// here so that sweetknn_core does not depend on the store library
// (store links core, not the other way around).

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "core/sweet_knn.h"
#include "store/snapshot.h"

namespace sweetknn {

Status SweetKnnIndex::Save(const std::string& path,
                           const std::string& dataset_name) const {
  store::IndexSnapshot snapshot;
  snapshot.dataset_name = dataset_name;
  snapshot.builder = "SweetKnnIndex::Save";
  snapshot.shard_index = 0;
  snapshot.shard_count = 1;
  snapshot.shard_offset = 0;
  snapshot.target = engine_->ExportTarget();
  snapshot.clustering = engine_->ExportTargetClustering();
  snapshot.options_fingerprint =
      store::OptionsFingerprint(engine_->options());
  snapshot.device_fingerprint = store::DeviceFingerprint(device_->spec());
  if (!pristine()) {
    snapshot.id_map = id_map_;
    snapshot.delta_ids = delta_.ids;
    snapshot.delta_points = HostMatrix(delta_.size(), dims_);
    std::memcpy(snapshot.delta_points.mutable_data(), delta_.points.data(),
                delta_.points.size() * sizeof(float));
    snapshot.tombstones.assign(delta_.tombstones.begin(),
                               delta_.tombstones.end());
    std::sort(snapshot.tombstones.begin(), snapshot.tombstones.end());
    snapshot.next_id = next_id_;
  }
  // Persisting the graph lets Load skip the NN-descent build the same
  // way the clustering section lets it skip the Step-1 landmark build.
  if (!ann_.empty()) snapshot.ann_graph = ann_.graph();
  return store::SaveIndexSnapshot(snapshot, path);
}

Result<std::unique_ptr<SweetKnnIndex>> SweetKnnIndex::Load(
    const std::string& path, const SweetKnn::Config& config) {
  Result<store::IndexSnapshot> snapshot = store::LoadIndexSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  store::IndexSnapshot& snap = snapshot.value();

  const std::string want_options = store::OptionsFingerprint(config.options);
  if (snap.options_fingerprint != want_options) {
    return Status::InvalidArgument(
        "snapshot " + path + " was built under different options: file has [" +
        snap.options_fingerprint + "], this config is [" +
        want_options + "]");
  }
  const std::string want_device = store::DeviceFingerprint(config.device);
  if (snap.device_fingerprint != want_device) {
    return Status::InvalidArgument(
        "snapshot " + path + " was built for a different device: file has [" +
        snap.device_fingerprint + "], this config is [" +
        want_device + "]");
  }

  std::unique_ptr<SweetKnnIndex> index(new SweetKnnIndex(
      WarmStartTag{}, snap.target, snap.clustering, config));
  // A shard snapshot with no explicit id map names its rows
  // shard_offset..shard_offset+rows-1; standalone, that needs the map
  // materialized so stable ids survive the round trip.
  std::vector<uint32_t> id_map = std::move(snap.id_map);
  if (id_map.empty() && snap.shard_offset != 0) {
    id_map.resize(snap.target.rows());
    std::iota(id_map.begin(), id_map.end(),
              static_cast<uint32_t>(snap.shard_offset));
  }
  if (snap.HasOverlay() || !id_map.empty()) {
    uint32_t next_id = snap.next_id;
    if (next_id == 0 && !id_map.empty()) next_id = id_map.back() + 1;
    index->AdoptOverlay(std::move(id_map), std::move(snap.delta_ids),
                        snap.delta_points.storage(), snap.tombstones,
                        next_id);
  }
  // ANN tier: adopt the persisted graph when the config wants one (its
  // node ids are local base rows, so it is valid verbatim); rebuild when
  // the config wants a graph the file lacks. A persisted graph under a
  // graph-free config is simply ignored — exact answers never depend on
  // it.
  if (config.enable_ann) {
    if (snap.HasAnnGraph()) {
      index->AdoptAnnGraph(snap.target, std::move(snap.ann_graph));
    } else {
      index->RebuildAnn(snap.target);
    }
  }
  return index;
}

}  // namespace sweetknn
