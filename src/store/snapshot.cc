#include "store/snapshot.h"

#include "core/device_points.h"
#include "simd/simd_kernels.h"
#include "store/payload_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace sweetknn::store {

namespace {

// The section payload codec (PayloadWriter/PayloadReader) lives in
// store/payload_io.h so the cluster wire protocol (src/net/) can speak
// the same dialect.

std::string FormatDouble17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* MetricName(core::Metric m) {
  return m == core::Metric::kEuclidean ? "euclidean" : "manhattan";
}

const char* LayoutName(core::PointLayout l) {
  return l == core::PointLayout::kRowMajor ? "row" : "col";
}

const char* KnlName(core::KnearestsLayout l) {
  return l == core::KnearestsLayout::kBlocked ? "blocked" : "interleaved";
}

std::string FilterName(const std::optional<core::Level2Filter>& f) {
  if (!f.has_value()) return "adaptive";
  return *f == core::Level2Filter::kFull ? "full" : "partial";
}

std::string PlacementName(const std::optional<core::KnearestsPlacement>& p) {
  if (!p.has_value()) return "adaptive";
  switch (*p) {
    case core::KnearestsPlacement::kGlobal: return "global";
    case core::KnearestsPlacement::kShared: return "shared";
    case core::KnearestsPlacement::kRegisters: return "registers";
  }
  return "?";
}

// --- Section payloads -------------------------------------------------------

std::string EncodeMeta(const IndexSnapshot& s) {
  PayloadWriter w;
  w.PutString(s.dataset_name);
  w.PutString(s.builder);
  w.PutU32(s.shard_index);
  w.PutU32(s.shard_count);
  w.PutU64(s.shard_offset);
  w.PutU64(s.target.rows());
  w.PutU64(s.target.cols());
  return w.Take();
}

Status DecodeMeta(const std::string& payload, IndexSnapshot* s,
                  uint64_t* meta_rows, uint64_t* meta_cols) {
  PayloadReader r(payload, "meta section");
  SK_RETURN_IF_ERROR(r.GetString(&s->dataset_name));
  SK_RETURN_IF_ERROR(r.GetString(&s->builder));
  SK_RETURN_IF_ERROR(r.GetU32(&s->shard_index));
  SK_RETURN_IF_ERROR(r.GetU32(&s->shard_count));
  SK_RETURN_IF_ERROR(r.GetU64(&s->shard_offset));
  SK_RETURN_IF_ERROR(r.GetU64(meta_rows));
  SK_RETURN_IF_ERROR(r.GetU64(meta_cols));
  return r.ExpectExhausted();
}

std::string EncodeFingerprint(const IndexSnapshot& s) {
  PayloadWriter w;
  w.PutString(s.options_fingerprint);
  w.PutString(s.device_fingerprint);
  return w.Take();
}

Status DecodeFingerprint(const std::string& payload, IndexSnapshot* s) {
  PayloadReader r(payload, "fingerprint section");
  SK_RETURN_IF_ERROR(r.GetString(&s->options_fingerprint));
  SK_RETURN_IF_ERROR(r.GetString(&s->device_fingerprint));
  return r.ExpectExhausted();
}

std::string EncodeTarget(const IndexSnapshot& s) {
  PayloadWriter w;
  w.PutMatrix(s.target);
  return w.Take();
}

Status DecodeTarget(const std::string& payload, IndexSnapshot* s) {
  PayloadReader r(payload, "target section");
  SK_RETURN_IF_ERROR(r.GetMatrix(&s->target));
  return r.ExpectExhausted();
}

std::string EncodeClustering(const IndexSnapshot& s) {
  const core::TargetClusteringHost& tc = s.clustering;
  PayloadWriter w;
  w.PutU32(static_cast<uint32_t>(tc.num_clusters));
  w.PutMatrix(tc.centers);
  w.PutU32s(tc.assignment.data(), tc.assignment.size());
  w.PutU32s(tc.member_offsets.data(), tc.member_offsets.size());
  w.PutU32s(tc.member_ids.data(), tc.member_ids.size());
  w.PutFloats(tc.member_dists.data(), tc.member_dists.size());
  w.PutFloats(tc.max_dist.data(), tc.max_dist.size());
  return w.Take();
}

std::string EncodeMutation(const IndexSnapshot& s) {
  PayloadWriter w;
  w.PutU32(s.next_id);
  w.PutU32s(s.id_map.data(), s.id_map.size());
  w.PutU32s(s.delta_ids.data(), s.delta_ids.size());
  w.PutMatrix(s.delta_points);
  w.PutU32s(s.tombstones.data(), s.tombstones.size());
  return w.Take();
}

Status DecodeMutation(const std::string& payload, IndexSnapshot* s) {
  PayloadReader r(payload, "mutation section");
  SK_RETURN_IF_ERROR(r.GetU32(&s->next_id));
  SK_RETURN_IF_ERROR(r.GetU32s(&s->id_map));
  SK_RETURN_IF_ERROR(r.GetU32s(&s->delta_ids));
  SK_RETURN_IF_ERROR(r.GetMatrix(&s->delta_points));
  SK_RETURN_IF_ERROR(r.GetU32s(&s->tombstones));
  return r.ExpectExhausted();
}

std::string EncodeAnnGraph(const IndexSnapshot& s) {
  const ann::KnnGraph& g = s.ann_graph;
  PayloadWriter w;
  w.PutU32(g.num_nodes);
  w.PutU32(g.degree);
  w.PutU32(g.build_iters);
  w.PutU64(g.build_seed);
  w.PutU32s(g.neighbors.data(), g.neighbors.size());
  w.PutU32s(g.entry_points.data(), g.entry_points.size());
  return w.Take();
}

Status DecodeAnnGraph(const std::string& payload, IndexSnapshot* s) {
  ann::KnnGraph& g = s->ann_graph;
  PayloadReader r(payload, "ann graph section");
  SK_RETURN_IF_ERROR(r.GetU32(&g.num_nodes));
  SK_RETURN_IF_ERROR(r.GetU32(&g.degree));
  SK_RETURN_IF_ERROR(r.GetU32(&g.build_iters));
  SK_RETURN_IF_ERROR(r.GetU64(&g.build_seed));
  SK_RETURN_IF_ERROR(r.GetU32s(&g.neighbors));
  SK_RETURN_IF_ERROR(r.GetU32s(&g.entry_points));
  return r.ExpectExhausted();
}

Status DecodeClustering(const std::string& payload, IndexSnapshot* s) {
  core::TargetClusteringHost& tc = s->clustering;
  PayloadReader r(payload, "clustering section");
  uint32_t m = 0;
  SK_RETURN_IF_ERROR(r.GetU32(&m));
  tc.num_clusters = static_cast<int>(m);
  SK_RETURN_IF_ERROR(r.GetMatrix(&tc.centers));
  SK_RETURN_IF_ERROR(r.GetU32s(&tc.assignment));
  SK_RETURN_IF_ERROR(r.GetU32s(&tc.member_offsets));
  SK_RETURN_IF_ERROR(r.GetU32s(&tc.member_ids));
  SK_RETURN_IF_ERROR(r.GetFloats(&tc.member_dists));
  SK_RETURN_IF_ERROR(r.GetFloats(&tc.max_dist));
  return r.ExpectExhausted();
}

}  // namespace

// --- Fingerprints -----------------------------------------------------------

std::string OptionsFingerprint(const core::TiOptions& o) {
  // Every field that can change a prepared clustering or an answer.
  // sim_threads is excluded by design (see the header).
  std::string fp;
  fp += "metric=";
  fp += MetricName(o.metric);
  fp += ";block_threads=" + std::to_string(o.block_threads);
  fp += ";layout=";
  fp += LayoutName(o.layout);
  fp += ";vec=" + std::to_string(o.point_vector_width);
  fp += ";knl=";
  fp += KnlName(o.knearests_layout);
  fp += ";remap=" + std::to_string(o.remap_threads ? 1 : 0);
  fp += ";elastic=" + std::to_string(o.elastic_parallelism ? 1 : 0);
  fp += ";r=" + FormatDouble17(o.parallelism_r);
  fp += ";landmarks=" + std::to_string(o.landmarks_override);
  fp += ";kmeans=" + std::to_string(o.kmeans_iterations);
  fp += ";filter=" + FilterName(o.filter_override);
  fp += ";placement=" + PlacementName(o.placement_override);
  fp += ";tpq=" + std::to_string(o.threads_per_query_override);
  fp += ";kd_threshold=" + FormatDouble17(o.partial_filter_kd_threshold);
  return fp;
}

std::string DeviceFingerprint(const gpusim::DeviceSpec& s) {
  std::string fp;
  fp += "name=" + s.name;
  fp += ";sms=" + std::to_string(s.num_sms);
  fp += ";threads_sm=" + std::to_string(s.max_threads_per_sm);
  fp += ";blocks_sm=" + std::to_string(s.max_blocks_per_sm);
  fp += ";threads_block=" + std::to_string(s.max_threads_per_block);
  fp += ";smem_sm=" + std::to_string(s.shared_mem_per_sm_bytes);
  fp += ";smem_block=" + std::to_string(s.shared_mem_per_block_bytes);
  fp += ";regs_sm=" + std::to_string(s.registers_per_sm);
  fp += ";regs_thread=" + std::to_string(s.max_registers_per_thread);
  fp += ";clock=" + FormatDouble17(s.core_clock_hz);
  fp += ";issue=" + FormatDouble17(s.issue_per_sm_per_cycle);
  fp += ";bw=" + FormatDouble17(s.mem_bandwidth_bytes_per_s);
  fp += ";l2_bw=" + FormatDouble17(s.l2_bandwidth_bytes_per_s);
  fp += ";l2=" + std::to_string(s.l2_cache_bytes);
  fp += ";pcie=" + FormatDouble17(s.pcie_bandwidth_bytes_per_s);
  fp += ";flops=" + FormatDouble17(s.peak_sp_flops);
  fp += ";gmem=" + std::to_string(s.global_mem_bytes);
  fp += ";launch_ovh=" + FormatDouble17(s.kernel_launch_overhead_s);
  return fp;
}

// --- SnapshotWriter ---------------------------------------------------------

SnapshotWriter::SnapshotWriter(const std::string& path, uint32_t version)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    deferred_error_ =
        Status::IoError("cannot open snapshot for writing: " + path);
    return;
  }
  if (version < kSnapshotFormatV1 || version > kSnapshotFormatVersion) {
    deferred_error_ = Status::InvalidArgument(
        "unsupported snapshot format version " + std::to_string(version));
    return;
  }
  Status st = Append(kSnapshotMagic, sizeof(kSnapshotMagic));
  if (st.ok()) {
    st = Append(&version, sizeof(version));
  }
  if (st.ok()) {
    const uint32_t endian = kEndiannessGuard;
    st = Append(&endian, sizeof(endian));
  }
  deferred_error_ = st;
}

Status SnapshotWriter::Append(const void* data, size_t len) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(len));
  if (!out_) return Status::IoError("write failed: " + path_);
  file_crc_.Update(data, len);
  return Status::Ok();
}

Status SnapshotWriter::WriteSection(uint32_t id, std::string_view payload) {
  if (!deferred_error_.ok()) return deferred_error_;
  if (finished_) {
    return Status::Internal("WriteSection after Finish: " + path_);
  }
  if (id == kSectionEnd) {
    return Status::InvalidArgument(
        "section id 0 is reserved for the end marker");
  }
  const uint64_t len = payload.size();
  const uint32_t crc = common::Crc32::Of(payload.data(), payload.size());
  Status st = Append(&id, sizeof(id));
  if (st.ok()) st = Append(&len, sizeof(len));
  if (st.ok() && len > 0) st = Append(payload.data(), payload.size());
  if (st.ok()) st = Append(&crc, sizeof(crc));
  deferred_error_ = st;
  return st;
}

Status SnapshotWriter::Finish() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (finished_) return Status::Ok();
  const uint32_t end_id = kSectionEnd;
  const uint64_t zero_len = 0;
  const uint32_t empty_crc = common::Crc32::Of(nullptr, 0);
  Status st = Append(&end_id, sizeof(end_id));
  if (st.ok()) st = Append(&zero_len, sizeof(zero_len));
  if (st.ok()) st = Append(&empty_crc, sizeof(empty_crc));
  if (st.ok()) {
    const uint32_t file_crc = file_crc_.Final();
    out_.write(reinterpret_cast<const char*>(&file_crc), sizeof(file_crc));
    if (!out_) st = Status::IoError("write failed: " + path_);
  }
  if (st.ok()) {
    out_.flush();
    out_.close();
    if (!out_) st = Status::IoError("close failed: " + path_);
  }
  finished_ = true;
  deferred_error_ = st;
  return st;
}

// --- SnapshotReader ---------------------------------------------------------

Result<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open snapshot for reading: " + path);
  }
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IoError("read failed: " + path);
  }

  const std::string what = "snapshot " + path;
  constexpr size_t kHeaderBytes =
      sizeof(kSnapshotMagic) + sizeof(uint32_t) + sizeof(uint32_t);
  if (file.size() < kHeaderBytes) {
    return Status::IoError(what + ": truncated header (" +
                           std::to_string(file.size()) + " bytes)");
  }
  if (std::memcmp(file.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::IoError(what + ": bad magic (not a sweetknn snapshot)");
  }
  uint32_t version = 0;
  std::memcpy(&version, file.data() + sizeof(kSnapshotMagic),
              sizeof(version));
  if (version < kSnapshotFormatV1 || version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        what + ": format version skew: file is version " +
        std::to_string(version) + ", this reader supports versions " +
        std::to_string(kSnapshotFormatV1) + ".." +
        std::to_string(kSnapshotFormatVersion));
  }
  uint32_t endian = 0;
  std::memcpy(&endian,
              file.data() + sizeof(kSnapshotMagic) + sizeof(version),
              sizeof(endian));
  if (endian != kEndiannessGuard) {
    return Status::InvalidArgument(
        what + ": endianness guard mismatch (file written on a "
               "different-endian machine, or corrupted)");
  }

  SnapshotReader reader;
  reader.format_version_ = version;
  reader.file_size_ = file.size();

  size_t cursor = kHeaderBytes;
  bool saw_end = false;
  auto need = [&](size_t bytes, const char* kind) -> Status {
    if (file.size() - cursor < bytes) {
      return Status::IoError(what + ": truncated " + kind + " at offset " +
                             std::to_string(cursor));
    }
    return Status::Ok();
  };
  while (!saw_end) {
    SK_RETURN_IF_ERROR(need(sizeof(uint32_t) + sizeof(uint64_t),
                            "section header"));
    uint32_t id = 0;
    uint64_t len = 0;
    std::memcpy(&id, file.data() + cursor, sizeof(id));
    cursor += sizeof(id);
    std::memcpy(&len, file.data() + cursor, sizeof(len));
    cursor += sizeof(len);
    if (id > MaxSectionIdForVersion(version)) {
      return Status::IoError(what + ": unknown section id " +
                             std::to_string(id) + " for format version " +
                             std::to_string(version) + " at offset " +
                             std::to_string(cursor - sizeof(id) -
                                            sizeof(len)));
    }
    if (id == kSectionEnd && len != 0) {
      return Status::IoError(what + ": end marker with nonzero length " +
                             std::to_string(len));
    }
    SK_RETURN_IF_ERROR(need(len, "section payload"));
    std::string payload = file.substr(cursor, len);
    cursor += len;
    SK_RETURN_IF_ERROR(need(sizeof(uint32_t), "section crc"));
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, file.data() + cursor, sizeof(stored_crc));
    cursor += sizeof(stored_crc);
    const uint32_t computed_crc =
        common::Crc32::Of(payload.data(), payload.size());
    if (stored_crc != computed_crc) {
      return Status::IoError(
          what + ": checksum mismatch in section " + std::to_string(id));
    }
    if (id == kSectionEnd) {
      saw_end = true;
      break;
    }
    for (const SectionInfo& seen : reader.sections_) {
      if (seen.id == id) {
        return Status::IoError(what + ": duplicate section id " +
                               std::to_string(id));
      }
    }
    reader.sections_.push_back(SectionInfo{id, len, stored_crc});
    reader.payloads_.push_back(std::move(payload));
  }

  SK_RETURN_IF_ERROR(need(sizeof(uint32_t), "file checksum"));
  uint32_t stored_file_crc = 0;
  std::memcpy(&stored_file_crc, file.data() + cursor,
              sizeof(stored_file_crc));
  const uint32_t computed_file_crc = common::Crc32::Of(file.data(), cursor);
  if (stored_file_crc != computed_file_crc) {
    return Status::IoError(what + ": whole-file checksum mismatch");
  }
  cursor += sizeof(stored_file_crc);
  if (cursor != file.size()) {
    return Status::IoError(what + ": " +
                           std::to_string(file.size() - cursor) +
                           " trailing bytes after the file checksum");
  }
  return reader;
}

const std::string* SnapshotReader::Section(uint32_t id) const {
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].id == id) return &payloads_[i];
  }
  return nullptr;
}

// --- Index snapshot save/load ----------------------------------------------

Status SaveIndexSnapshot(const IndexSnapshot& snapshot,
                         const std::string& path) {
  SK_RETURN_IF_ERROR(ValidateIndexSnapshot(snapshot));
  // The writer emits the lowest sufficient version: graph-free pristine
  // snapshots keep writing v1 byte-identically to what pre-v2 builds
  // produced, graph-free mutated ones v2, and only an actual ANN graph
  // pays the v3 bump.
  const uint32_t version = snapshot.HasAnnGraph() ? kSnapshotFormatV3
                           : snapshot.HasOverlay() ? kSnapshotFormatV2
                                                   : kSnapshotFormatV1;
  SnapshotWriter writer(path, version);
  SK_RETURN_IF_ERROR(writer.WriteSection(kSectionMeta, EncodeMeta(snapshot)));
  SK_RETURN_IF_ERROR(
      writer.WriteSection(kSectionFingerprint, EncodeFingerprint(snapshot)));
  SK_RETURN_IF_ERROR(
      writer.WriteSection(kSectionTarget, EncodeTarget(snapshot)));
  SK_RETURN_IF_ERROR(
      writer.WriteSection(kSectionClustering, EncodeClustering(snapshot)));
  if (snapshot.HasOverlay()) {
    SK_RETURN_IF_ERROR(
        writer.WriteSection(kSectionMutation, EncodeMutation(snapshot)));
  }
  if (snapshot.HasAnnGraph()) {
    SK_RETURN_IF_ERROR(
        writer.WriteSection(kSectionAnnGraph, EncodeAnnGraph(snapshot)));
  }
  return writer.Finish();
}

Result<IndexSnapshot> LoadIndexSnapshot(const std::string& path) {
  Result<SnapshotReader> reader = SnapshotReader::Open(path);
  if (!reader.ok()) return reader.status();

  IndexSnapshot snapshot;
  uint64_t meta_rows = 0;
  uint64_t meta_cols = 0;
  struct Want {
    uint32_t id;
    const char* name;
  };
  for (const Want want : {Want{kSectionMeta, "meta"},
                          Want{kSectionFingerprint, "fingerprint"},
                          Want{kSectionTarget, "target"},
                          Want{kSectionClustering, "clustering"}}) {
    if (reader.value().Section(want.id) == nullptr) {
      return Status::IoError("snapshot " + path + ": missing " + want.name +
                             " section");
    }
  }
  SK_RETURN_IF_ERROR(DecodeMeta(*reader.value().Section(kSectionMeta),
                                &snapshot, &meta_rows, &meta_cols));
  SK_RETURN_IF_ERROR(DecodeFingerprint(
      *reader.value().Section(kSectionFingerprint), &snapshot));
  SK_RETURN_IF_ERROR(
      DecodeTarget(*reader.value().Section(kSectionTarget), &snapshot));
  SK_RETURN_IF_ERROR(DecodeClustering(
      *reader.value().Section(kSectionClustering), &snapshot));
  if (const std::string* mutation =
          reader.value().Section(kSectionMutation)) {
    SK_RETURN_IF_ERROR(DecodeMutation(*mutation, &snapshot));
  }
  if (const std::string* graph = reader.value().Section(kSectionAnnGraph)) {
    SK_RETURN_IF_ERROR(DecodeAnnGraph(*graph, &snapshot));
  }

  if (meta_rows != snapshot.target.rows() ||
      meta_cols != snapshot.target.cols()) {
    return Status::IoError(
        "snapshot " + path + ": meta section says " +
        std::to_string(meta_rows) + "x" + std::to_string(meta_cols) +
        " but the target section holds " +
        std::to_string(snapshot.target.rows()) + "x" +
        std::to_string(snapshot.target.cols()));
  }
  SK_RETURN_IF_ERROR(ValidateIndexSnapshot(snapshot));
  return snapshot;
}

Status ValidateIndexSnapshot(const IndexSnapshot& s) {
  const size_t n = s.target.rows();
  const size_t dims = s.target.cols();
  const core::TargetClusteringHost& tc = s.clustering;
  if (n == 0 || dims == 0) {
    return Status::InvalidArgument("snapshot holds an empty target set");
  }
  if (tc.num_clusters <= 0 ||
      static_cast<size_t>(tc.num_clusters) > n) {
    return Status::InvalidArgument(
        "clustering has " + std::to_string(tc.num_clusters) +
        " clusters for " + std::to_string(n) + " target rows");
  }
  const size_t m = static_cast<size_t>(tc.num_clusters);
  if (tc.centers.rows() != m || tc.centers.cols() != dims) {
    return Status::InvalidArgument(
        "centers are " + std::to_string(tc.centers.rows()) + "x" +
        std::to_string(tc.centers.cols()) + ", expected " +
        std::to_string(m) + "x" + std::to_string(dims));
  }
  if (tc.assignment.size() != n) {
    return Status::InvalidArgument(
        "assignment has " + std::to_string(tc.assignment.size()) +
        " entries for " + std::to_string(n) + " target rows");
  }
  for (size_t i = 0; i < n; ++i) {
    if (tc.assignment[i] >= m) {
      return Status::InvalidArgument(
          "assignment[" + std::to_string(i) + "] = " +
          std::to_string(tc.assignment[i]) + " out of range (m=" +
          std::to_string(m) + ")");
    }
  }
  if (tc.member_offsets.size() != m + 1 || tc.member_offsets[0] != 0 ||
      tc.member_offsets[m] != n) {
    return Status::InvalidArgument(
        "member offsets malformed (size " +
        std::to_string(tc.member_offsets.size()) + ", first " +
        (tc.member_offsets.empty()
             ? std::string("-")
             : std::to_string(tc.member_offsets.front())) +
        ", last " +
        (tc.member_offsets.empty()
             ? std::string("-")
             : std::to_string(tc.member_offsets.back())) +
        ", expected 0.." + std::to_string(n) + ")");
  }
  for (size_t c = 0; c < m; ++c) {
    if (tc.member_offsets[c] > tc.member_offsets[c + 1]) {
      return Status::InvalidArgument(
          "member offsets not monotone at cluster " + std::to_string(c));
    }
  }
  if (tc.member_ids.size() != n || tc.member_dists.size() != n) {
    return Status::InvalidArgument(
        "member id/dist arrays have " + std::to_string(tc.member_ids.size()) +
        "/" + std::to_string(tc.member_dists.size()) + " entries for " +
        std::to_string(n) + " target rows");
  }
  std::vector<bool> seen(n, false);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t id = tc.member_ids[i];
    if (id >= n || seen[id]) {
      return Status::InvalidArgument(
          "member ids are not a permutation of 0.." + std::to_string(n - 1) +
          " (slot " + std::to_string(i) + " holds " + std::to_string(id) +
          ")");
    }
    seen[id] = true;
  }
  if (tc.max_dist.size() != m) {
    return Status::InvalidArgument(
        "max_dist has " + std::to_string(tc.max_dist.size()) +
        " entries for " + std::to_string(m) + " clusters");
  }
  if (s.shard_count == 0 || s.shard_index >= s.shard_count) {
    return Status::InvalidArgument(
        "shard geometry " + std::to_string(s.shard_index) + "-of-" +
        std::to_string(s.shard_count) + " is malformed");
  }

  // Mutation overlay (v2). The empty overlay of a v1 / pristine snapshot
  // passes every check trivially.
  if (!s.id_map.empty() && s.id_map.size() != n) {
    return Status::InvalidArgument(
        "id map has " + std::to_string(s.id_map.size()) + " entries for " +
        std::to_string(n) + " target rows");
  }
  auto strictly_increasing = [](const std::vector<uint32_t>& v) {
    for (size_t i = 1; i < v.size(); ++i) {
      if (v[i] <= v[i - 1]) return false;
    }
    return true;
  };
  if (!strictly_increasing(s.id_map)) {
    return Status::InvalidArgument("id map is not strictly increasing");
  }
  if (!strictly_increasing(s.delta_ids)) {
    return Status::InvalidArgument("delta ids are not strictly increasing");
  }
  if (!strictly_increasing(s.tombstones)) {
    return Status::InvalidArgument(
        "tombstones are not strictly increasing");
  }
  if (s.delta_points.rows() != s.delta_ids.size() ||
      (!s.delta_ids.empty() && s.delta_points.cols() != dims)) {
    return Status::InvalidArgument(
        "delta points are " + std::to_string(s.delta_points.rows()) + "x" +
        std::to_string(s.delta_points.cols()) + " for " +
        std::to_string(s.delta_ids.size()) + " delta ids of dimension " +
        std::to_string(dims));
  }
  // Base row i carries stable id id_map[i], or shard_offset + i with no
  // explicit map; ids are allocated monotonically so every delta id
  // postdates (exceeds) every base id.
  const uint32_t max_base_id =
      s.id_map.empty()
          ? static_cast<uint32_t>(s.shard_offset + n - 1)
          : s.id_map.back();
  if (!s.delta_ids.empty() && s.delta_ids.front() <= max_base_id) {
    return Status::InvalidArgument(
        "delta id " + std::to_string(s.delta_ids.front()) +
        " does not exceed the largest base id " +
        std::to_string(max_base_id));
  }
  for (const uint32_t id : s.tombstones) {
    const bool in_base =
        s.id_map.empty()
            ? (id >= s.shard_offset && id < s.shard_offset + n)
            : std::binary_search(s.id_map.begin(), s.id_map.end(), id);
    if (!in_base) {
      return Status::InvalidArgument(
          "tombstone " + std::to_string(id) +
          " does not name a base row (deleted delta points are erased, "
          "not tombstoned)");
    }
  }
  if (s.HasOverlay()) {
    const uint32_t max_id =
        s.delta_ids.empty() ? max_base_id : s.delta_ids.back();
    if (s.next_id <= max_id) {
      return Status::InvalidArgument(
          "next_id " + std::to_string(s.next_id) +
          " does not exceed the largest id in the snapshot (" +
          std::to_string(max_id) + ")");
    }
  }

  // ANN graph (v3). Edges are local base rows; padding uses
  // kInvalidNeighbor, always at a row's tail.
  if (s.HasAnnGraph()) {
    const ann::KnnGraph& g = s.ann_graph;
    if (g.num_nodes != n) {
      return Status::InvalidArgument(
          "ann graph covers " + std::to_string(g.num_nodes) +
          " nodes for " + std::to_string(n) + " target rows");
    }
    if (g.degree == 0 || static_cast<size_t>(g.degree) >= n + 1) {
      return Status::InvalidArgument("ann graph degree " +
                                     std::to_string(g.degree) +
                                     " is malformed for " +
                                     std::to_string(n) + " nodes");
    }
    // Divide, don't multiply: n * degree could overflow on a hostile file.
    if (g.neighbors.size() / g.degree != n ||
        g.neighbors.size() % g.degree != 0) {
      return Status::InvalidArgument(
          "ann graph has " + std::to_string(g.neighbors.size()) +
          " edges, expected " + std::to_string(n) + " x " +
          std::to_string(g.degree));
    }
    for (uint32_t node = 0; node < g.num_nodes; ++node) {
      const uint32_t* edges = g.row(node);
      bool padding = false;
      for (uint32_t e = 0; e < g.degree; ++e) {
        if (edges[e] == kInvalidNeighbor) {
          padding = true;
          continue;
        }
        if (padding) {
          return Status::InvalidArgument(
              "ann graph node " + std::to_string(node) +
              " has a live edge after padding");
        }
        if (edges[e] >= n || edges[e] == node) {
          return Status::InvalidArgument(
              "ann graph edge " + std::to_string(node) + " -> " +
              std::to_string(edges[e]) + " does not name another live "
              "base row");
        }
      }
    }
    if (g.entry_points.empty()) {
      return Status::InvalidArgument("ann graph has no entry points");
    }
    for (const uint32_t entry : g.entry_points) {
      if (entry >= n) {
        return Status::InvalidArgument(
            "ann graph entry point " + std::to_string(entry) +
            " is out of range (n=" + std::to_string(n) + ")");
      }
    }
  }
  return Status::Ok();
}

Status VerifySnapshotDistances(const IndexSnapshot& s) {
  Status structural = ValidateIndexSnapshot(s);
  if (!structural.ok()) return structural;

  // The fingerprint leads with "metric=<name>;" (OptionsFingerprint);
  // recover the metric the builder used so the recomputation runs the
  // same float pipeline.
  core::Metric metric;
  if (s.options_fingerprint.rfind("metric=euclidean;", 0) == 0) {
    metric = core::Metric::kEuclidean;
  } else if (s.options_fingerprint.rfind("metric=manhattan;", 0) == 0) {
    metric = core::Metric::kManhattan;
  } else {
    return Status::InvalidArgument(
        "options fingerprint does not name a known metric: [" +
        s.options_fingerprint + "]");
  }

  const core::TargetClusteringHost& tc = s.clustering;
  const size_t dims = s.target.cols();
  const size_t m = static_cast<size_t>(tc.num_clusters);
  const simd::Dist dist_kind = core::SimdDistFor(metric);
  std::vector<float> gathered;
  std::vector<float> recomputed;
  for (size_t c = 0; c < m; ++c) {
    const uint32_t begin = tc.member_offsets[c];
    const uint32_t end = tc.member_offsets[c + 1];
    const size_t count = end - begin;
    float expected_max = 0.0f;
    if (count > 0) {
      // Gather this cluster's member rows, pack once, and recompute all
      // center-to-member distances in one batch-kernel sweep. The batch
      // kernels reproduce the builder's AccessorDistance bit for bit, so
      // anything short of byte equality is corruption (or a file edited
      // outside the writer).
      gathered.resize(count * dims);
      recomputed.resize(count);
      for (size_t i = 0; i < count; ++i) {
        std::memcpy(gathered.data() + i * dims,
                    s.target.row(tc.member_ids[begin + i]),
                    dims * sizeof(float));
      }
      const simd::PackedTargets packed =
          simd::PackedTargets::Pack(gathered.data(), count, dims);
      simd::QueryDistances(tc.centers.row(c), packed, dist_kind,
                           recomputed.data());
      for (size_t i = 0; i < count; ++i) {
        const float stored = tc.member_dists[begin + i];
        if (std::memcmp(&stored, &recomputed[i], sizeof(float)) != 0) {
          return Status::InvalidArgument(
              "member_dists[" + std::to_string(begin + i) + "] (cluster " +
              std::to_string(c) + ", row " +
              std::to_string(tc.member_ids[begin + i]) + ") stores " +
              std::to_string(stored) + " but recomputes to " +
              std::to_string(recomputed[i]));
        }
        if (i > 0 && tc.member_dists[begin + i - 1] < stored) {
          return Status::InvalidArgument(
              "member_dists not non-increasing inside cluster " +
              std::to_string(c) + " at slot " + std::to_string(begin + i));
        }
        if (stored > expected_max) expected_max = stored;
      }
    }
    // The builder's per-cluster radius is an AtomicMaxFloat over member
    // distances starting from a zeroed buffer; replicate exactly.
    const float stored_max = tc.max_dist[c];
    if (std::memcmp(&stored_max, &expected_max, sizeof(float)) != 0) {
      return Status::InvalidArgument(
          "max_dist[" + std::to_string(c) + "] stores " +
          std::to_string(stored_max) + " but member distances max out at " +
          std::to_string(expected_max));
    }
  }

  // ANN graph edges (v3): recompute each live edge's distance from the
  // stored points and demand the builder's row invariant — ascending by
  // (distance, id) — which an edge id pointing at the wrong row breaks.
  if (s.HasAnnGraph()) {
    const ann::KnnGraph& g = s.ann_graph;
    for (uint32_t node = 0; node < g.num_nodes; ++node) {
      const uint32_t* edges = g.row(node);
      float prev_dist = -1.0f;
      uint32_t prev_id = 0;
      for (uint32_t e = 0; e < g.degree; ++e) {
        if (edges[e] == kInvalidNeighbor) break;  // tail padding (validated)
        const float d = ann::PointDistance(
            s.target.row(node), s.target.row(edges[e]), dims, dist_kind);
        if (d < prev_dist || (d == prev_dist && edges[e] <= prev_id)) {
          return Status::InvalidArgument(
              "ann graph node " + std::to_string(node) +
              " edges are not ascending by (distance, id) at slot " +
              std::to_string(e));
        }
        prev_dist = d;
        prev_id = edges[e];
      }
    }
  }
  return Status::Ok();
}

// --- Shard directory layout -------------------------------------------------

std::string ShardSnapshotPath(const std::string& dir, int shard_index,
                              int shard_count) {
  return dir + "/shard-" + std::to_string(shard_index) + "-of-" +
         std::to_string(shard_count) + ".sksnap";
}

Result<std::vector<std::string>> ListShardSnapshots(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("snapshot directory not found: " + dir);
  }
  // Parse "shard-<i>-of-<n>.sksnap" names.
  int shard_count = -1;
  std::vector<bool> present;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    int index = -1;
    int count = -1;
    if (std::sscanf(name.c_str(), "shard-%d-of-%d.sksnap", &index, &count) !=
        2) {
      continue;
    }
    if (index < 0 || count <= 0 || index >= count) {
      return Status::InvalidArgument("malformed shard snapshot name: " +
                                     name);
    }
    if (shard_count == -1) {
      shard_count = count;
      present.assign(static_cast<size_t>(count), false);
    } else if (count != shard_count) {
      return Status::InvalidArgument(
          dir + " mixes shard counts (" + std::to_string(shard_count) +
          " and " + std::to_string(count) + ")");
    }
    if (present[static_cast<size_t>(index)]) {
      return Status::InvalidArgument("duplicate shard snapshot: " + name);
    }
    present[static_cast<size_t>(index)] = true;
  }
  if (ec) return Status::IoError("cannot list " + dir + ": " + ec.message());
  if (shard_count == -1) {
    return Status::NotFound("no shard snapshots (shard-*-of-*.sksnap) in " +
                            dir);
  }
  for (int s = 0; s < shard_count; ++s) {
    if (!present[static_cast<size_t>(s)]) {
      return Status::NotFound("incomplete shard set in " + dir +
                              ": missing shard " + std::to_string(s) +
                              " of " + std::to_string(shard_count));
    }
  }
  std::vector<std::string> paths;
  paths.reserve(static_cast<size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    paths.push_back(ShardSnapshotPath(dir, s, shard_count));
  }
  return paths;
}

}  // namespace sweetknn::store
