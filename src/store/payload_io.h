#ifndef SWEETKNN_STORE_PAYLOAD_IO_H_
#define SWEETKNN_STORE_PAYLOAD_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace sweetknn::store {

// --- Little payload codec ---------------------------------------------------
// Fixed-width scalars via memcpy of the native representation (the file
// header's endianness guard rejects foreign-endian files up front),
// strings and arrays length-prefixed with u64 element counts. Shared by
// the .sksnap section payloads (store/snapshot.cc) and the cluster wire
// protocol (src/net/), which deliberately speaks the same dialect.

class PayloadWriter {
 public:
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(const std::string& s) {
    PutU64(s.size());
    PutRaw(s.data(), s.size());
  }
  void PutFloats(const float* data, size_t count) {
    PutU64(count);
    PutRaw(data, count * sizeof(float));
  }
  void PutU32s(const uint32_t* data, size_t count) {
    PutU64(count);
    PutRaw(data, count * sizeof(uint32_t));
  }
  void PutMatrix(const HostMatrix& m) {
    PutU64(m.rows());
    PutU64(m.cols());
    PutRaw(m.data(), m.size() * sizeof(float));
  }

  std::string Take() { return std::move(buffer_); }

 private:
  void PutRaw(const void* data, size_t len) {
    buffer_.append(static_cast<const char*>(data), len);
  }
  std::string buffer_;
};

/// Bounds-checked decoder: every read validates the remaining byte count
/// first, so a corrupted length field yields a Status instead of an
/// overread or a multi-gigabyte allocation.
class PayloadReader {
 public:
  PayloadReader(const std::string& payload, std::string what)
      : data_(payload), what_(std::move(what)) {}

  Status GetU32(uint32_t* out) { return GetRaw(out, sizeof(*out), "u32"); }
  Status GetU64(uint64_t* out) { return GetRaw(out, sizeof(*out), "u64"); }
  Status GetDouble(double* out) {
    return GetRaw(out, sizeof(*out), "double");
  }

  Status GetString(std::string* out) {
    uint64_t len = 0;
    SK_RETURN_IF_ERROR(GetU64(&len));
    SK_RETURN_IF_ERROR(CheckRemaining(len, "string"));
    out->assign(data_.data() + cursor_, len);
    cursor_ += len;
    return Status::Ok();
  }

  Status GetFloats(std::vector<float>* out) {
    uint64_t count = 0;
    SK_RETURN_IF_ERROR(GetU64(&count));
    // Divide instead of multiplying: count * sizeof(float) can wrap u64
    // for a corrupted count, sneaking past the byte check into a
    // throwing (or absurd) allocation.
    if (count > remaining() / sizeof(float)) {
      return Truncated("float array");
    }
    out->resize(count);
    std::memcpy(out->data(), data_.data() + cursor_, count * sizeof(float));
    cursor_ += count * sizeof(float);
    return Status::Ok();
  }

  Status GetU32s(std::vector<uint32_t>* out) {
    uint64_t count = 0;
    SK_RETURN_IF_ERROR(GetU64(&count));
    if (count > remaining() / sizeof(uint32_t)) {
      return Truncated("u32 array");
    }
    out->resize(count);
    std::memcpy(out->data(), data_.data() + cursor_,
                count * sizeof(uint32_t));
    cursor_ += count * sizeof(uint32_t);
    return Status::Ok();
  }

  Status GetMatrix(HostMatrix* out) {
    uint64_t rows = 0;
    uint64_t cols = 0;
    SK_RETURN_IF_ERROR(GetU64(&rows));
    SK_RETURN_IF_ERROR(GetU64(&cols));
    // Divide, never multiply: a corrupted dimension can wrap
    // rows * cols * sizeof(float) past the byte check below into a
    // throwing allocation. A zero-row matrix (any cols) is legal and
    // carries no bytes.
    const uint64_t max_elems = remaining() / sizeof(float);
    if (rows != 0 && cols > max_elems / rows) {
      return Truncated("matrix data");
    }
    SK_RETURN_IF_ERROR(CheckRemaining(rows * cols * sizeof(float), "matrix"));
    *out = HostMatrix(rows, cols);
    std::memcpy(out->mutable_data(), data_.data() + cursor_,
                rows * cols * sizeof(float));
    cursor_ += rows * cols * sizeof(float);
    return Status::Ok();
  }

  Status ExpectExhausted() const {
    if (cursor_ != data_.size()) {
      return Status::IoError(what_ + ": " +
                             std::to_string(data_.size() - cursor_) +
                             " trailing bytes after the last field");
    }
    return Status::Ok();
  }

 private:
  size_t remaining() const { return data_.size() - cursor_; }

  Status Truncated(const char* kind) const {
    return Status::IoError(what_ + ": truncated " + kind + " at offset " +
                           std::to_string(cursor_));
  }

  Status CheckRemaining(uint64_t need, const char* kind) const {
    if (need > remaining()) return Truncated(kind);
    return Status::Ok();
  }

  Status GetRaw(void* out, size_t len, const char* kind) {
    SK_RETURN_IF_ERROR(CheckRemaining(len, kind));
    std::memcpy(out, data_.data() + cursor_, len);
    cursor_ += len;
    return Status::Ok();
  }

  const std::string& data_;
  std::string what_;
  size_t cursor_ = 0;
};

}  // namespace sweetknn::store

#endif  // SWEETKNN_STORE_PAYLOAD_IO_H_
