#include "common/crc32.h"

#include <array>

namespace sweetknn::common {

namespace {

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

void Crc32::Update(const void* data, size_t len) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  const auto& table = Table();
  uint32_t c = state_;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

}  // namespace sweetknn::common
