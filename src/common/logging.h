#ifndef SWEETKNN_COMMON_LOGGING_H_
#define SWEETKNN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sweetknn {

/// Severity levels for the minimal logging facility.
enum class LogSeverity {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
  kFatal = 3,
};

namespace internal_logging {

/// Stream-style log message collector. Emits on destruction; aborts the
/// process for kFatal messages.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the minimum severity that is actually printed (default kInfo).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

}  // namespace sweetknn

#define SK_LOG(severity)                                          \
  ::sweetknn::internal_logging::LogMessage(                       \
      ::sweetknn::LogSeverity::k##severity, __FILE__, __LINE__)

/// Aborts with a message when `condition` does not hold. Used for
/// programmer errors; recoverable errors use Status instead.
#define SK_CHECK(condition)                                       \
  if (!(condition))                                               \
  SK_LOG(Fatal) << "Check failed: " #condition " "

#define SK_CHECK_OP(a, b, op) SK_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define SK_CHECK_EQ(a, b) SK_CHECK_OP(a, b, ==)
#define SK_CHECK_NE(a, b) SK_CHECK_OP(a, b, !=)
#define SK_CHECK_LT(a, b) SK_CHECK_OP(a, b, <)
#define SK_CHECK_LE(a, b) SK_CHECK_OP(a, b, <=)
#define SK_CHECK_GT(a, b) SK_CHECK_OP(a, b, >)
#define SK_CHECK_GE(a, b) SK_CHECK_OP(a, b, >=)

#ifdef NDEBUG
#define SK_DCHECK(condition) \
  while (false) SK_CHECK(condition)
#else
#define SK_DCHECK(condition) SK_CHECK(condition)
#endif

#endif  // SWEETKNN_COMMON_LOGGING_H_
