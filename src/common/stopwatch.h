#ifndef SWEETKNN_COMMON_STOPWATCH_H_
#define SWEETKNN_COMMON_STOPWATCH_H_

#include <chrono>

namespace sweetknn {

/// Wall-clock stopwatch for host-side timing (the simulator reports its
/// own simulated device time separately).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sweetknn

#endif  // SWEETKNN_COMMON_STOPWATCH_H_
