#ifndef SWEETKNN_COMMON_STATUS_H_
#define SWEETKNN_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/logging.h"

namespace sweetknn {

/// Error codes for recoverable failures (I/O, capacity, bad arguments).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kIoError,
  kNotFound,
  kInternal,
  /// The component is shutting down (or otherwise refusing work); the
  /// request was rejected without side effects and may be retried
  /// elsewhere.
  kUnavailable,
  /// A bounded wait expired before the operation completed (e.g. a
  /// remote shard worker failed to answer within the RPC timeout). The
  /// operation may still complete on the other side; the caller treats
  /// the peer as unhealthy.
  kDeadlineExceeded,
};

/// A lightweight success-or-error value, used instead of exceptions
/// (this codebase follows the Google style guide and builds without
/// exception handling requirements).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit wrap.
  Result(T value) : value_(std::move(value)), status_() {}
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit wrap.
  Result(Status status) : status_(std::move(status)) {
    SK_CHECK(!status_.ok()) << "Result constructed from OK status without value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SK_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    SK_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    SK_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  T value_{};
  Status status_;
};

}  // namespace sweetknn

#define SK_RETURN_IF_ERROR(expr)          \
  do {                                    \
    ::sweetknn::Status _st = (expr);      \
    if (!_st.ok()) return _st;            \
  } while (false)

#endif  // SWEETKNN_COMMON_STATUS_H_
