#ifndef SWEETKNN_COMMON_CRC32_H_
#define SWEETKNN_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace sweetknn::common {

/// Incremental CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the
/// checksum the snapshot store uses per section and per file. Usage:
///
///   Crc32 crc;
///   crc.Update(bytes, len);
///   uint32_t digest = crc.Final();
///
/// Final() is idempotent; Update after Final continues the same stream.
class Crc32 {
 public:
  void Update(const void* data, size_t len);
  uint32_t Final() const { return state_ ^ 0xffffffffu; }
  void Reset() { state_ = 0xffffffffu; }

  /// One-shot convenience.
  static uint32_t Of(const void* data, size_t len) {
    Crc32 crc;
    crc.Update(data, len);
    return crc.Final();
  }

 private:
  uint32_t state_ = 0xffffffffu;
};

}  // namespace sweetknn::common

#endif  // SWEETKNN_COMMON_CRC32_H_
