#ifndef SWEETKNN_COMMON_BLOCKING_QUEUE_H_
#define SWEETKNN_COMMON_BLOCKING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace sweetknn::common {

/// Multi-producer multi-consumer FIFO used as the admission queue of the
/// serving layer: producers (client threads) push requests, a consumer
/// (the batch dispatcher) drains them with the blocking / timed pops a
/// micro-batcher needs. Close() ends the stream: pushes are rejected,
/// pops keep succeeding until the queue is empty and then return false,
/// so a consumer loop `while (WaitPop(&x)) ...` drains everything that
/// was admitted before shutdown.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues an item. Returns false (dropping the item) iff the queue
  /// was already closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > peak_depth_) peak_depth_ = items_.size();
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  bool WaitPop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return PopLocked(out);
  }

  /// Like WaitPop with a timeout; false on timeout or closed-and-empty.
  template <typename Rep, typename Period>
  bool WaitPopFor(T* out, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, timeout,
                 [this] { return closed_ || !items_.empty(); });
    return PopLocked(out);
  }

  /// Like WaitPopFor with an absolute deadline; false once `deadline`
  /// passes with nothing available (or on closed-and-empty). The router
  /// collects per-worker RPC replies with this: every reply of one
  /// fan-out shares one deadline, so a dead worker can delay the batch
  /// by at most the RPC timeout instead of wedging it forever.
  template <typename Clock, typename Duration>
  bool WaitPopUntil(T* out,
                    std::chrono::time_point<Clock, Duration> deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_until(lock, deadline,
                   [this] { return closed_ || !items_.empty(); });
    return PopLocked(out);
  }

  /// Non-blocking pop.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    return PopLocked(out);
  }

  /// Rejects future pushes and wakes every waiter. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// High-water mark of size() over the queue's lifetime (the serving
  /// layer reports it as queue-depth pressure).
  size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_depth_;
  }

 private:
  bool PopLocked(T* out) {
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  size_t peak_depth_ = 0;
  bool closed_ = false;
};

}  // namespace sweetknn::common

#endif  // SWEETKNN_COMMON_BLOCKING_QUEUE_H_
