#ifndef SWEETKNN_COMMON_BLOCKING_QUEUE_H_
#define SWEETKNN_COMMON_BLOCKING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace sweetknn::common {

/// Outcome of a timed pop. The timed waits used to return a plain bool,
/// which conflated "nothing arrived before the deadline" (the queue is
/// merely idle — keep polling) with "the queue is closed and drained"
/// (the stream has ended — stop). Deadline-aware consumers such as the
/// service dispatcher and the router's RPC reply collector need to tell
/// those apart, so every timed pop reports a tri-state:
///   kItem    — *out was filled with the front item.
///   kTimeout — the deadline passed with the queue open but empty; more
///              items may still arrive.
///   kClosed  — the queue is closed AND empty; no item can ever arrive.
/// Note kClosed is only reported once the backlog is drained: a closed
/// queue keeps yielding kItem until it is empty, preserving the
/// admit-before-shutdown drain guarantee.
enum class PopResult {
  kItem,
  kTimeout,
  kClosed,
};

/// Multi-producer multi-consumer FIFO used as the admission queue of the
/// serving layer: producers (client threads) push requests, a consumer
/// (the batch dispatcher) drains them with the blocking / timed pops a
/// micro-batcher needs. Close() ends the stream: pushes are rejected,
/// pops keep succeeding until the queue is empty and then report
/// closed, so a consumer loop `while (WaitPop(&x)) ...` drains
/// everything that was admitted before shutdown.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues an item. Returns false (dropping the item) iff the queue
  /// was already closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > peak_depth_) peak_depth_ = items_.size();
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  /// Untimed, so there is no timeout case to distinguish: true = item,
  /// false = closed-and-drained.
  bool WaitPop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return PopLocked(out);
  }

  /// Like WaitPop with a timeout; see PopResult for the tri-state.
  template <typename Rep, typename Period>
  PopResult WaitPopFor(T* out, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, timeout,
                 [this] { return closed_ || !items_.empty(); });
    return TimedPopLocked(out);
  }

  /// Like WaitPopFor with an absolute deadline; kTimeout once `deadline`
  /// passes with nothing available, kClosed on closed-and-empty. The
  /// router collects per-worker RPC replies with this: every reply of
  /// one fan-out shares one deadline, so a dead worker can delay the
  /// batch by at most the RPC timeout instead of wedging it forever. A
  /// deadline already in the past still drains available items (replies
  /// that raced the deadline are not lost).
  template <typename Clock, typename Duration>
  PopResult WaitPopUntil(T* out,
                         std::chrono::time_point<Clock, Duration> deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_until(lock, deadline,
                   [this] { return closed_ || !items_.empty(); });
    return TimedPopLocked(out);
  }

  /// Non-blocking pop. True iff an item was available.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    return PopLocked(out);
  }

  /// Rejects future pushes and wakes every waiter. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// High-water mark of size() over the queue's lifetime (the serving
  /// layer reports it as queue-depth pressure).
  size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_depth_;
  }

 private:
  bool PopLocked(T* out) {
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  PopResult TimedPopLocked(T* out) {
    if (PopLocked(out)) return PopResult::kItem;
    return closed_ ? PopResult::kClosed : PopResult::kTimeout;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  size_t peak_depth_ = 0;
  bool closed_ = false;
};

}  // namespace sweetknn::common

#endif  // SWEETKNN_COMMON_BLOCKING_QUEUE_H_
