#include "common/topk.h"

#include <queue>

namespace sweetknn {

std::vector<Neighbor> MergeSortedTopK(
    const std::vector<std::vector<Neighbor>>& lists, int k) {
  // (distance, list id, offset) entries; smallest distance on top.
  struct Head {
    Neighbor n;
    size_t list;
    size_t offset;
  };
  auto greater = [](const Head& a, const Head& b) {
    return NeighborLess(b.n, a.n);
  };
  std::priority_queue<Head, std::vector<Head>, decltype(greater)> frontier(
      greater);
  for (size_t i = 0; i < lists.size(); ++i) {
    if (!lists[i].empty()) frontier.push(Head{lists[i][0], i, 0});
  }
  std::vector<Neighbor> out;
  out.reserve(static_cast<size_t>(k));
  while (!frontier.empty() && out.size() < static_cast<size_t>(k)) {
    Head head = frontier.top();
    frontier.pop();
    // The same target point may appear in several per-thread heaps when
    // candidate ranges overlap; drop duplicates.
    if (out.empty() || !(out.back().index == head.n.index &&
                         out.back().distance == head.n.distance)) {
      out.push_back(head.n);
    }
    const size_t next = head.offset + 1;
    if (next < lists[head.list].size()) {
      frontier.push(Head{lists[head.list][next], head.list, next});
    }
  }
  return out;
}

}  // namespace sweetknn
