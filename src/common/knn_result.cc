#include "common/knn_result.h"

#include <cmath>
#include <sstream>

namespace sweetknn {

size_t CountResultMismatches(const KnnResult& a, const KnnResult& b,
                             float tolerance, std::string* first_mismatch) {
  SK_CHECK_EQ(a.k(), b.k());
  SK_CHECK_EQ(a.num_queries(), b.num_queries());
  size_t mismatches = 0;
  for (size_t q = 0; q < a.num_queries(); ++q) {
    const Neighbor* ra = a.row(q);
    const Neighbor* rb = b.row(q);
    for (int i = 0; i < a.k(); ++i) {
      const float da = ra[i].distance;
      const float db = rb[i].distance;
      const bool both_inf = std::isinf(da) && std::isinf(db);
      // Scale-aware comparison: KNN distances on larger datasets
      // accumulate float rounding; compare relative to magnitude.
      const float scale = std::max(1.0f, std::max(std::fabs(da),
                                                  std::fabs(db)));
      if (!both_inf && std::fabs(da - db) > tolerance * scale) {
        if (mismatches == 0 && first_mismatch != nullptr) {
          std::ostringstream os;
          os << "query " << q << " rank " << i << ": " << da << " (idx "
             << ra[i].index << ") vs " << db << " (idx " << rb[i].index
             << ")";
          *first_mismatch = os.str();
        }
        ++mismatches;
      }
    }
  }
  return mismatches;
}

}  // namespace sweetknn
