#ifndef SWEETKNN_COMMON_RNG_H_
#define SWEETKNN_COMMON_RNG_H_

#include <cstdint>

namespace sweetknn {

/// SplitMix64: used to expand seeds and as a cheap stateless hash.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic xoshiro256** PRNG. Not cryptographic; used for dataset
/// generation and sampling so that all experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t s = seed;
    for (auto& word : state_) {
      s = SplitMix64(s);
      word = s;
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  uint64_t NextBounded(uint64_t bound) { return NextU64() % bound; }

  /// Standard normal via Box-Muller (one value per call; the pair's
  /// second half is cached).
  double NextGaussian();

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Stateless cheap pseudo-value in [0,1) for an (a, b) pair. Used by the
/// modeled brute-force baseline to drive the selection kernel with
/// random-order statistics without computing real distances.
inline float PairHash01(uint64_t a, uint64_t b) {
  const uint64_t h = SplitMix64(a * 0x9e3779b97f4a7c15ULL + b);
  return static_cast<float>(h >> 40) * 0x1.0p-24f;
}

}  // namespace sweetknn

#endif  // SWEETKNN_COMMON_RNG_H_
