#ifndef SWEETKNN_COMMON_TOPK_H_
#define SWEETKNN_COMMON_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace sweetknn {

/// One nearest-neighbor candidate: an index into the target set plus the
/// distance to the query point.
struct Neighbor {
  uint32_t index = 0;
  float distance = std::numeric_limits<float>::infinity();

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.index == b.index && a.distance == b.distance;
  }
};

/// Orders by distance, tie-breaking on index so results are deterministic.
inline bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

/// Bounded max-heap keeping the k smallest-distance neighbors seen so far.
/// This mirrors the per-thread `kNearests` structure of the paper's
/// Algorithm 2: `max()` is the current kth-nearest distance (the filter
/// threshold theta), and `PushIfCloser` implements the evict-and-insert
/// update on line 16.
class TopK {
 public:
  explicit TopK(int k) : k_(k) { SK_CHECK_GT(k, 0); }

  int k() const { return k_; }
  int size() const { return static_cast<int>(heap_.size()); }
  bool full() const { return size() == k_; }

  /// Current kth-nearest distance; +inf while fewer than k entries exist.
  float max() const {
    if (!full()) return std::numeric_limits<float>::infinity();
    return heap_.front().distance;
  }

  /// Inserts if the candidate beats the current kth distance. Returns true
  /// if the heap changed.
  bool PushIfCloser(Neighbor candidate) {
    if (!full()) {
      heap_.push_back(candidate);
      std::push_heap(heap_.begin(), heap_.end(), NeighborLess);
      return true;
    }
    if (!NeighborLess(candidate, heap_.front())) return false;
    std::pop_heap(heap_.begin(), heap_.end(), NeighborLess);
    heap_.back() = candidate;
    std::push_heap(heap_.begin(), heap_.end(), NeighborLess);
    return true;
  }

  /// Neighbors sorted by ascending distance. Does not modify the heap.
  std::vector<Neighbor> Sorted() const {
    std::vector<Neighbor> out = heap_;
    std::sort(out.begin(), out.end(), NeighborLess);
    return out;
  }

  const std::vector<Neighbor>& raw() const { return heap_; }

 private:
  int k_;
  std::vector<Neighbor> heap_;
};

/// Merges several ascending-sorted neighbor lists into the k smallest,
/// as done after multi-thread-per-query execution (paper section IV-B2).
std::vector<Neighbor> MergeSortedTopK(
    const std::vector<std::vector<Neighbor>>& lists, int k);

}  // namespace sweetknn

#endif  // SWEETKNN_COMMON_TOPK_H_
