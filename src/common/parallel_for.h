#ifndef SWEETKNN_COMMON_PARALLEL_FOR_H_
#define SWEETKNN_COMMON_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "common/thread_pool.h"

namespace sweetknn::common {

/// Number of fixed-size chunks ParallelFor splits [0, n) into. Chunk
/// boundaries depend only on (n, grain) — never on the worker count — so
/// per-chunk partial results merged in chunk index order reproduce the same
/// floating-point and counter totals for any number of workers.
inline size_t NumChunks(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

/// Runs fn(chunk, begin, end) for every grain-sized chunk of [0, n).
/// Chunks are claimed dynamically by up to `workers` fork-join participants
/// (1 = plain serial loop on the calling thread). fn must be safe to call
/// concurrently for distinct chunks.
template <typename Fn>
void ParallelForChunks(int workers, size_t n, size_t grain, const Fn& fn) {
  if (grain == 0) grain = 1;
  const size_t num_chunks = NumChunks(n, grain);
  if (num_chunks == 0) return;
  workers = std::min<int>(workers, static_cast<int>(num_chunks));
  if (workers <= 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      fn(c, c * grain, std::min(n, (c + 1) * grain));
    }
    return;
  }
  std::atomic<size_t> cursor{0};
  ThreadPool::Global()->ForkJoin(workers, [&](int) {
    for (;;) {
      const size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      fn(c, c * grain, std::min(n, (c + 1) * grain));
    }
  });
}

/// Runs fn(begin, end) over grain-sized slices of [0, n) on up to `workers`
/// threads. Use when per-chunk identity does not matter (independent
/// elements, e.g. one KNN query per index).
template <typename Fn>
void ParallelFor(int workers, size_t n, size_t grain, const Fn& fn) {
  ParallelForChunks(workers, n, grain,
                    [&](size_t, size_t begin, size_t end) { fn(begin, end); });
}

}  // namespace sweetknn::common

#endif  // SWEETKNN_COMMON_PARALLEL_FOR_H_
