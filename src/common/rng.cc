#include "common/rng.h"

#include <cmath>

namespace sweetknn {

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform; avoid log(0) by nudging u1 away from zero.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace sweetknn
