#ifndef SWEETKNN_COMMON_RANGE_RESULT_H_
#define SWEETKNN_COMMON_RANGE_RESULT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/topk.h"

namespace sweetknn {

/// Variable-cardinality neighbor lists: the result shape of radius
/// search, where every query row matches an arbitrary (possibly empty)
/// number of targets, as opposed to KnnResult's fixed k-by-rows grid.
///
/// Storage is a flat Neighbor vector plus a CSR-style offsets array of
/// num_queries() + 1 entries: query q's matches are
/// [begin(q), end(q)). Every row is kept sorted ascending under
/// NeighborLess on (distance, index) — a total order — so two
/// RangeResults over the same match sets are bit-identical vectors,
/// whatever route or tier produced them. Membership is the closed ball
/// (distance <= r), so a match exactly on the boundary is always
/// included, deterministically.
class RangeResult {
 public:
  RangeResult() { offsets_.push_back(0); }

  size_t num_queries() const { return offsets_.size() - 1; }
  /// Total matches across every query row.
  size_t total_matches() const { return flat_.size(); }
  size_t count(size_t q) const { return offsets_[q + 1] - offsets_[q]; }

  const Neighbor* begin(size_t q) const {
    SK_DCHECK(q + 1 < offsets_.size());
    return flat_.data() + offsets_[q];
  }
  const Neighbor* end(size_t q) const { return flat_.data() + offsets_[q + 1]; }

  /// Appends the next query row's matches, which must already be sorted
  /// ascending under NeighborLess.
  void AppendRow(const std::vector<Neighbor>& row) {
    flat_.insert(flat_.end(), row.begin(), row.end());
    offsets_.push_back(flat_.size());
  }
  void AppendRow(const Neighbor* row, size_t n) {
    flat_.insert(flat_.end(), row, row + n);
    offsets_.push_back(flat_.size());
  }
  /// Appends every row of `other` (chunked jobs concatenate this way).
  void AppendRows(const RangeResult& other) {
    for (size_t q = 0; q < other.num_queries(); ++q) {
      AppendRow(other.begin(q), other.count(q));
    }
  }

  /// A single-row view copied out (per-request slicing in the service).
  std::vector<Neighbor> Row(size_t q) const {
    return std::vector<Neighbor>(begin(q), end(q));
  }

  /// The raw pieces, for codecs and byte-level comparisons.
  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<Neighbor>& flat() const { return flat_; }

  /// Adopts raw pieces (wire decode). `offsets` must start at 0, be
  /// non-decreasing, and end at flat.size().
  static RangeResult FromParts(std::vector<uint64_t> offsets,
                               std::vector<Neighbor> flat) {
    RangeResult r;
    SK_CHECK(!offsets.empty() && offsets.front() == 0);
    SK_CHECK_EQ(offsets.back(), flat.size());
    r.offsets_ = std::move(offsets);
    r.flat_ = std::move(flat);
    return r;
  }

  /// Bitwise equality (float bits compared exactly, like the kNN
  /// bit-identity checks).
  friend bool BitIdentical(const RangeResult& a, const RangeResult& b) {
    if (a.offsets_ != b.offsets_) return false;
    if (a.flat_.size() != b.flat_.size()) return false;
    return a.flat_.empty() ||
           std::memcmp(a.flat_.data(), b.flat_.data(),
                       a.flat_.size() * sizeof(Neighbor)) == 0;
  }

 private:
  std::vector<uint64_t> offsets_;  // num_queries + 1, offsets_[0] == 0
  std::vector<Neighbor> flat_;
};

/// One unordered pair of a similarity self-join: stable ids a < b with
/// their distance. SelfJoin emits each qualifying pair exactly once,
/// ordered by ascending a, then (distance, b) under NeighborLess —
/// deterministic whatever route produced it.
struct SelfJoinPair {
  uint32_t a = 0;
  uint32_t b = 0;
  float distance = 0.0f;

  friend bool operator==(const SelfJoinPair& x, const SelfJoinPair& y) {
    return x.a == y.a && x.b == y.b && x.distance == y.distance;
  }
};

}  // namespace sweetknn

#endif  // SWEETKNN_COMMON_RANGE_RESULT_H_
