#include "common/status.h"

namespace sweetknn {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sweetknn
