#include "common/matrix.h"

#include <cmath>

namespace sweetknn {

float EuclideanDistance(const float* a, const float* b, size_t d) {
  return std::sqrt(SquaredDistance(a, b, d));
}

}  // namespace sweetknn
