#ifndef SWEETKNN_COMMON_METRICS_H_
#define SWEETKNN_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace sweetknn::common {

/// A small thread-safe metrics library for the serving layer: monotonic
/// counters, gauges, and fixed-bucket latency histograms, collected in a
/// `MetricsRegistry` owned by whoever serves traffic (no global
/// singletons). Recording is lock-free (plain atomics); registration and
/// export take the registry mutex. Two export formats — JSON and
/// Prometheus text exposition — plus parsers for both, so exported
/// metrics round-trip (the CLI `stats` renderer and the unit tests rely
/// on that).

/// Monotonically increasing value. Double-valued so it can accumulate
/// simulated seconds as well as event counts (Prometheus counters are
/// doubles for the same reason).
class Counter {
 public:
  void Increment(double delta = 1.0) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A value that can go up and down (queue depth, index generation).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Consistent read of a histogram, with percentile extraction.
struct HistogramSnapshot {
  std::vector<double> bounds;   ///< Ascending bucket upper bounds.
  std::vector<uint64_t> counts; ///< bounds.size() + 1 (last = overflow).
  double sum = 0.0;
  uint64_t count = 0;
  double max = 0.0;

  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket holding the target rank, clamped to the observed max;
  /// observations in the overflow bucket report the max.
  double Percentile(double q) const;
};

/// Fixed-bucket histogram: `bounds` are ascending upper bucket edges, an
/// implicit +Inf bucket catches the rest. Observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

  /// Overwrites the recorded state (used by the exporter parsers to
  /// reconstruct a registry; not meant for concurrent use).
  void ImportState(const std::vector<uint64_t>& counts, double sum,
                   uint64_t count, double max);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> max_{0.0};
};

/// Bucket edges suited to request latencies in seconds: 1 µs to 10 s,
/// roughly logarithmic (1-2-5 per decade).
std::vector<double> LatencyBucketsSeconds();

/// One rendered Prometheus label pair, `key="value"`, with `"` and `\`
/// in the value escaped. Compose several with "," between them; pass
/// the result as the `labels` argument of the registry Get* overloads.
std::string MetricLabel(const std::string& key, const std::string& value);

/// The serving layer's per-tenant label: `tenant="<name>"`.
std::string TenantLabel(const std::string& tenant);

/// Owns named metrics. Get* registers on first use and returns the same
/// pointer afterwards (pointers stay valid for the registry's lifetime);
/// re-registering a name as a different type aborts.
///
/// Labeled variants: the three-argument Get* overloads take a rendered
/// label set (see MetricLabel), giving one independent time series per
/// (name, labels) pair under a shared family name — the registry key is
/// `name{labels}`. A family must keep one type across all label sets.
/// Both exporters emit labeled series in native Prometheus style and
/// both parsers round-trip them.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);

  /// Labeled series of the family `name`; `labels` is a rendered label
  /// set such as TenantLabel("alpha") (empty behaves like unlabeled).
  Counter* GetCounter(const std::string& name, const std::string& labels,
                      const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& labels,
                  const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& labels,
                          const std::string& help,
                          std::vector<double> bounds);

  /// Snapshot of one histogram by key — the plain name, or
  /// `name{labels}` for a labeled series; count == 0 when absent.
  HistogramSnapshot SnapshotHistogram(const std::string& name) const;

  /// JSON document: {"metrics": [...]} with one object per metric in
  /// name order. Histogram objects carry the raw buckets plus derived
  /// mean/p50/p90/p99 (the derived fields are recomputed on import, so
  /// export -> parse -> export is byte-identical).
  std::string ExportJson() const;
  /// Prometheus text exposition format (# HELP / # TYPE, cumulative
  /// _bucket{le=...} lines, _sum, _count).
  std::string ExportPrometheusText() const;

  /// Human-readable fixed-width rendering: counters and gauges one per
  /// line, histograms with count/mean/p50/p90/p99/max.
  std::string FormatTable() const;

 private:
  friend Status ParseMetricsJson(const std::string&, MetricsRegistry*);
  friend Status ParseMetricsPrometheusText(const std::string&,
                                           MetricsRegistry*);
  enum class Type { kCounter, kGauge, kHistogram };
  struct Entry {
    Type type;
    std::string name;    ///< Family name (key minus the label set).
    std::string labels;  ///< Rendered label set; empty for unlabeled.
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Finds or creates the entry keyed `name{labels}`; checks the type
  /// of the entry and of the whole family. Caller holds mutex_.
  Entry* FindOrCreateLocked(const std::string& name,
                            const std::string& labels, Type type,
                            const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // key order == export order
  std::map<std::string, Type> family_types_;
};

/// Rebuilds a registry from a document produced by ExportJson /
/// ExportPrometheusText. `out` must be empty (freshly constructed).
/// Unknown or malformed input returns InvalidArgument.
Status ParseMetricsJson(const std::string& text, MetricsRegistry* out);
Status ParseMetricsPrometheusText(const std::string& text,
                                  MetricsRegistry* out);

/// Shortest decimal rendering of `v` that parses back to the same double
/// (used by the exporters so round-trips are bit-exact).
std::string FormatMetricValue(double v);

}  // namespace sweetknn::common

#endif  // SWEETKNN_COMMON_METRICS_H_
