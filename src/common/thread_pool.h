#ifndef SWEETKNN_COMMON_THREAD_POOL_H_
#define SWEETKNN_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sweetknn::common {

/// Hard cap on fork-join participants. Far above any real core count; it
/// bounds the lazily grown worker table and lets callers oversubscribe
/// (determinism tests run 8 workers on single-core hosts).
inline constexpr int kMaxSimThreads = 256;

/// Worker count selected by the SWEETKNN_SIM_THREADS environment variable.
/// Unset or unparsable means 1 — the exact legacy serial path — so existing
/// callers and tests see no behavioral change unless they opt in. The value
/// "0" means one worker per hardware thread.
int SimThreadsFromEnv();

/// A persistent fork-join pool shared by the simulator's execution engine
/// and the host-side parallel loops.
///
/// One fork-join region runs at a time (regions from different threads are
/// serialized); the calling thread always participates as slot 0 and pool
/// threads fill slots 1..P-1, so ForkJoin(1, ...) never touches a pool
/// thread. Workers are spawned lazily on first use and kept parked on a
/// condition variable between regions.
class ThreadPool {
 public:
  ThreadPool() = default;
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool. Intentionally leaked so parked workers never race
  /// static destruction at exit.
  static ThreadPool* Global();

  /// Fork-join slot of the calling thread: 0 on the main/calling thread,
  /// 1..P-1 on pool workers while a region runs. Stable for the duration of
  /// a ForkJoin body; used to index per-worker shards.
  static int CurrentSlot();

  /// Runs body(slot) on `parallelism` participants (the caller is slot 0)
  /// and returns once every participant finished. parallelism <= 1 — or a
  /// call from inside a pool worker — degenerates to body(0) on the calling
  /// thread, so accidental nesting cannot deadlock.
  void ForkJoin(int parallelism, const std::function<void(int)>& body);

 private:
  void EnsureWorkers(int count);
  void WorkerLoop(int slot);

  std::mutex region_mutex_;  // serializes whole fork-join regions

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* body_ = nullptr;  // guarded by mutex_
  uint64_t generation_ = 0;                         // bumped per region
  int active_workers_ = 0;  // pool slots participating in the region
  int remaining_ = 0;       // participants still running
  bool stop_ = false;
};

/// A counter incremented from concurrent fork-join participants without
/// cross-thread contention: each participant bumps a cache-line-padded slot
/// selected by ThreadPool::CurrentSlot(). Sum() is an integer reduction, so
/// the total is independent of worker count and interleaving.
class ShardedCounter {
 public:
  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter& other) { *this = other; }
  ShardedCounter& operator=(const ShardedCounter& other) {
    if (this != &other) Reset(other.Sum());
    return *this;
  }

  void Add(uint64_t delta) {
    shards_[static_cast<size_t>(ThreadPool::CurrentSlot())].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Sum() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset(uint64_t value = 0) {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
    shards_[0].value.store(value, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  // +1: slot 0 is the calling thread, slots 1..kMaxSimThreads are workers.
  std::vector<Shard> shards_{kMaxSimThreads + 1};
};

}  // namespace sweetknn::common

#endif  // SWEETKNN_COMMON_THREAD_POOL_H_
