#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace sweetknn {

namespace {
LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityName(severity) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace sweetknn
