#include "common/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

namespace sweetknn::common {

namespace {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (cur < value && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string FormatMetricValue(double v) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank && counts[i] > 0) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double into_bucket =
          rank - static_cast<double>(cumulative - counts[i]);
      const double fraction =
          std::clamp(into_bucket / static_cast<double>(counts[i]), 0.0, 1.0);
      return std::min(lower + (upper - lower) * fraction, max);
    }
  }
  return max;  // target rank lands in the overflow bucket
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  SK_CHECK(!bounds_.empty()) << "histogram needs at least one bucket edge";
  SK_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket edges must ascend";
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
  AtomicMaxDouble(&max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const std::atomic<uint64_t>& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::ImportState(const std::vector<uint64_t>& counts, double sum,
                            uint64_t count, double max) {
  SK_CHECK_EQ(counts.size(), counts_.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    counts_[i].store(counts[i], std::memory_order_relaxed);
  }
  sum_.store(sum, std::memory_order_relaxed);
  count_.store(count, std::memory_order_relaxed);
  max_.store(max, std::memory_order_relaxed);
}

std::vector<double> LatencyBucketsSeconds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  bounds.push_back(10.0);
  return bounds;
}

std::string MetricLabel(const std::string& key, const std::string& value) {
  std::string out = key;
  out += "=\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += '"';
  return out;
}

std::string TenantLabel(const std::string& tenant) {
  return MetricLabel("tenant", tenant);
}

namespace {

/// Registry key of a (family, rendered-labels) pair.
std::string SeriesKey(const std::string& name, const std::string& labels) {
  return labels.empty() ? name : name + "{" + labels + "}";
}

}  // namespace

MetricsRegistry::Entry* MetricsRegistry::FindOrCreateLocked(
    const std::string& name, const std::string& labels, Type type,
    const std::string& help) {
  const auto family = family_types_.emplace(name, type).first;
  SK_CHECK(family->second == type)
      << "metric family '" << name << "' already registered with another type";
  const std::string key = SeriesKey(name, labels);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.type = type;
    entry.name = name;
    entry.labels = labels;
    entry.help = help;
    switch (type) {
      case Type::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Type::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Type::kHistogram:
        break;  // the caller installs the histogram (it needs bounds)
    }
    it = entries_.emplace(key, std::move(entry)).first;
  }
  SK_CHECK(it->second.type == type)
      << "metric '" << key << "' already registered with another type";
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return GetCounter(name, std::string(), help);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FindOrCreateLocked(name, labels, Type::kCounter, help)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetGauge(name, std::string(), help);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FindOrCreateLocked(name, labels, Type::kGauge, help)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  return GetHistogram(name, std::string(), help, std::move(bounds));
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& labels,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = FindOrCreateLocked(name, labels, Type::kHistogram, help);
  if (entry->histogram == nullptr) {
    entry->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return entry->histogram.get();
}

HistogramSnapshot MetricsRegistry::SnapshotHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.type != Type::kHistogram) {
    return HistogramSnapshot{};
  }
  return it->second.histogram->Snapshot();
}

namespace {

/// Minimal JSON string escaping: the metric names and help strings here
/// are plain identifiers/sentences, but stay correct for quotes and
/// backslashes anyway.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"metrics\": [\n";
  size_t emitted = 0;
  for (const auto& [key, entry] : entries_) {
    out << "    {\"name\": \"" << JsonEscape(entry.name) << "\", ";
    if (!entry.labels.empty()) {
      out << "\"labels\": \"" << JsonEscape(entry.labels) << "\", ";
    }
    switch (entry.type) {
      case Type::kCounter:
        out << "\"type\": \"counter\", \"help\": \"" << JsonEscape(entry.help)
            << "\", \"value\": " << FormatMetricValue(entry.counter->value())
            << "}";
        break;
      case Type::kGauge:
        out << "\"type\": \"gauge\", \"help\": \"" << JsonEscape(entry.help)
            << "\", \"value\": " << FormatMetricValue(entry.gauge->value())
            << "}";
        break;
      case Type::kHistogram: {
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        out << "\"type\": \"histogram\", \"help\": \""
            << JsonEscape(entry.help) << "\", \"le\": [";
        for (size_t i = 0; i < snap.bounds.size(); ++i) {
          out << (i > 0 ? ", " : "") << FormatMetricValue(snap.bounds[i]);
        }
        out << "], \"counts\": [";
        for (size_t i = 0; i < snap.counts.size(); ++i) {
          out << (i > 0 ? ", " : "") << snap.counts[i];
        }
        out << "], \"sum\": " << FormatMetricValue(snap.sum)
            << ", \"count\": " << snap.count
            << ", \"max\": " << FormatMetricValue(snap.max)
            << ", \"mean\": " << FormatMetricValue(snap.Mean())
            << ", \"p50\": " << FormatMetricValue(snap.Percentile(0.50))
            << ", \"p90\": " << FormatMetricValue(snap.Percentile(0.90))
            << ", \"p99\": " << FormatMetricValue(snap.Percentile(0.99))
            << "}";
        break;
      }
    }
    out << (++emitted < entries_.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string MetricsRegistry::ExportPrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  // HELP/TYPE describe the family, emitted once at its first series
  // (label sets of one family share them, Prometheus-style).
  std::set<std::string> described;
  for (const auto& [key, entry] : entries_) {
    const std::string& name = entry.name;
    if (described.insert(name).second) {
      if (!entry.help.empty()) {
        out << "# HELP " << name << " " << entry.help << "\n";
      }
      const char* type = entry.type == Type::kCounter   ? "counter"
                         : entry.type == Type::kGauge   ? "gauge"
                                                        : "histogram";
      out << "# TYPE " << name << " " << type << "\n";
    }
    // `{labels}` on every sample of a labeled series; histograms fold
    // the series labels in front of `le` inside one brace block.
    const std::string suffix =
        entry.labels.empty() ? "" : "{" + entry.labels + "}";
    const std::string le_prefix =
        entry.labels.empty() ? "{le=\"" : "{" + entry.labels + ",le=\"";
    switch (entry.type) {
      case Type::kCounter:
        out << name << suffix << " "
            << FormatMetricValue(entry.counter->value()) << "\n";
        break;
      case Type::kGauge:
        out << name << suffix << " "
            << FormatMetricValue(entry.gauge->value()) << "\n";
        break;
      case Type::kHistogram: {
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < snap.bounds.size(); ++i) {
          cumulative += snap.counts[i];
          out << name << "_bucket" << le_prefix
              << FormatMetricValue(snap.bounds[i]) << "\"} " << cumulative
              << "\n";
        }
        out << name << "_bucket" << le_prefix << "+Inf\"} " << snap.count
            << "\n"
            << name << "_sum" << suffix << " "
            << FormatMetricValue(snap.sum) << "\n"
            << name << "_count" << suffix << " " << snap.count << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::FormatTable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  char line[256];
  for (const auto& [name, entry] : entries_) {
    switch (entry.type) {
      case Type::kCounter:
      case Type::kGauge: {
        const double v = entry.type == Type::kCounter
                             ? entry.counter->value()
                             : entry.gauge->value();
        std::snprintf(line, sizeof(line), "%-44s %s\n", name.c_str(),
                      FormatMetricValue(v).c_str());
        out << line;
        break;
      }
      case Type::kHistogram: {
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        std::snprintf(line, sizeof(line),
                      "%-44s count %llu mean %.3g p50 %.3g p90 %.3g "
                      "p99 %.3g max %.3g\n",
                      name.c_str(),
                      static_cast<unsigned long long>(snap.count),
                      snap.Mean(), snap.Percentile(0.50),
                      snap.Percentile(0.90), snap.Percentile(0.99), snap.max);
        out << line;
        break;
      }
    }
  }
  return out.str();
}

// --- Parsers ---------------------------------------------------------------

namespace {

/// A tiny JSON value model and recursive-descent parser covering the
/// subset the exporters emit (objects, arrays, strings, numbers).
struct JsonValue {
  enum class Kind { kNull, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out->push_back(c);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      for (;;) {
        std::string key;
        JsonValue value;
        if (!ParseString(&key) || !Consume(':') || !ParseValue(&value)) {
          return false;
        }
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume('}')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      for (;;) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(']')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    char* end = nullptr;
    out->number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    out->kind = JsonValue::Kind::kNumber;
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Status MalformedMetric(const std::string& what) {
  return Status::InvalidArgument("malformed metrics document: " + what);
}

}  // namespace

Status ParseMetricsJson(const std::string& text, MetricsRegistry* out) {
  JsonValue root;
  if (!JsonParser(text).Parse(&root) ||
      root.kind != JsonValue::Kind::kObject) {
    return MalformedMetric("not a JSON object");
  }
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kArray) {
    return MalformedMetric("missing \"metrics\" array");
  }
  for (const JsonValue& m : metrics->array) {
    const JsonValue* name = m.Find("name");
    const JsonValue* type = m.Find("type");
    const JsonValue* help = m.Find("help");
    if (name == nullptr || type == nullptr || help == nullptr) {
      return MalformedMetric("metric without name/type/help");
    }
    const JsonValue* labels_field = m.Find("labels");
    const std::string labels =
        labels_field != nullptr ? labels_field->string : std::string();
    if (type->string == "counter" || type->string == "gauge") {
      const JsonValue* value = m.Find("value");
      if (value == nullptr) return MalformedMetric(name->string);
      if (type->string == "counter") {
        out->GetCounter(name->string, labels, help->string)
            ->Increment(value->number);
      } else {
        out->GetGauge(name->string, labels, help->string)
            ->Set(value->number);
      }
      continue;
    }
    if (type->string != "histogram") {
      return MalformedMetric("unknown type '" + type->string + "'");
    }
    const JsonValue* le = m.Find("le");
    const JsonValue* counts = m.Find("counts");
    const JsonValue* sum = m.Find("sum");
    const JsonValue* count = m.Find("count");
    const JsonValue* max = m.Find("max");
    if (le == nullptr || counts == nullptr || sum == nullptr ||
        count == nullptr || max == nullptr ||
        counts->array.size() != le->array.size() + 1) {
      return MalformedMetric("histogram " + name->string);
    }
    std::vector<double> bounds;
    for (const JsonValue& b : le->array) bounds.push_back(b.number);
    std::vector<uint64_t> bucket_counts;
    for (const JsonValue& c : counts->array) {
      bucket_counts.push_back(static_cast<uint64_t>(c.number));
    }
    out->GetHistogram(name->string, labels, help->string, bounds)
        ->ImportState(bucket_counts, sum->number,
                      static_cast<uint64_t>(count->number), max->number);
  }
  return Status::Ok();
}

Status ParseMetricsPrometheusText(const std::string& text,
                                  MetricsRegistry* out) {
  // Accumulated histogram state, materialized when its _count arrives
  // (the exporter always emits buckets, _sum, _count in that order).
  // Keyed by series — `name` or `name{labels}` with the `le` label
  // stripped — so labeled histograms of one family stay separate.
  struct PendingHistogram {
    std::string name;
    std::string labels;
    std::string help;
    std::vector<double> bounds;
    std::vector<uint64_t> cumulative;
    uint64_t inf_count = 0;
    double sum = 0.0;
  };
  std::map<std::string, PendingHistogram> pending;
  std::map<std::string, std::string> helps;
  std::map<std::string, std::string> types;

  const auto series_key = [](const std::string& name,
                             const std::string& labels) {
    return labels.empty() ? name : name + "{" + labels + "}";
  };
  const auto strip_suffix = [](const std::string& s,
                               const char* suffix) -> std::string {
    const size_t len = std::strlen(suffix);
    if (s.size() > len && s.compare(s.size() - len, len, suffix) == 0) {
      return s.substr(0, s.size() - len);
    }
    return std::string();
  };

  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const size_t space = rest.find(' ');
      if (space == std::string::npos) return MalformedMetric(line);
      helps[rest.substr(0, space)] = rest.substr(space + 1);
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const size_t space = rest.find(' ');
      if (space == std::string::npos) return MalformedMetric(line);
      types[rest.substr(0, space)] = rest.substr(space + 1);
      continue;
    }
    if (line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) return MalformedMetric(line);
    std::string key = line.substr(0, space);
    const double value = std::strtod(line.c_str() + space + 1, nullptr);

    // Split `family{labels}` (either part of the label block may be a
    // series label set, an le edge, or both).
    std::string family = key;
    std::string labels;
    const size_t brace = key.find('{');
    if (brace != std::string::npos) {
      if (key.back() != '}') return MalformedMetric(line);
      family = key.substr(0, brace);
      labels = key.substr(brace + 1, key.size() - brace - 2);
    }

    // Histogram sample lines: <name>_bucket{[labels,]le="<edge>"},
    // <name>_sum[{labels}], <name>_count[{labels}].
    const std::string bucket_name = strip_suffix(family, "_bucket");
    if (!bucket_name.empty() && brace != std::string::npos) {
      // `le` is always the last label the exporter writes.
      const size_t le_pos = labels.rfind("le=\"");
      if (le_pos == std::string::npos || labels.back() != '"') {
        return MalformedMetric(line);
      }
      const std::string edge =
          labels.substr(le_pos + 4, labels.size() - le_pos - 5);
      const std::string series_labels =
          le_pos == 0 ? std::string() : labels.substr(0, le_pos - 1);
      PendingHistogram& h =
          pending[series_key(bucket_name, series_labels)];
      h.name = bucket_name;
      h.labels = series_labels;
      if (edge == "+Inf") {
        h.inf_count = static_cast<uint64_t>(value);
      } else {
        h.bounds.push_back(std::strtod(edge.c_str(), nullptr));
        h.cumulative.push_back(static_cast<uint64_t>(value));
      }
      continue;
    }
    const std::string sum_name = strip_suffix(family, "_sum");
    if (!sum_name.empty() &&
        pending.count(series_key(sum_name, labels)) > 0) {
      pending[series_key(sum_name, labels)].sum = value;
      continue;
    }
    const std::string count_name = strip_suffix(family, "_count");
    if (!count_name.empty() &&
        pending.count(series_key(count_name, labels)) > 0) {
      // The final histogram line: materialize it.
      PendingHistogram& h = pending[series_key(count_name, labels)];
      const uint64_t total = static_cast<uint64_t>(value);
      if (total != h.inf_count) return MalformedMetric(line);
      std::vector<uint64_t> counts;
      uint64_t previous = 0;
      double max = 0.0;
      for (size_t i = 0; i < h.cumulative.size(); ++i) {
        if (h.cumulative[i] < previous) return MalformedMetric(line);
        counts.push_back(h.cumulative[i] - previous);
        if (counts.back() > 0) max = h.bounds[i];
        previous = h.cumulative[i];
      }
      if (total < previous) return MalformedMetric(line);
      counts.push_back(total - previous);
      // The text format does not carry the exact max; the tightest
      // recoverable bound is the highest non-empty bucket edge (or the
      // mean for overflow-only data). Percentiles stay within it.
      if (counts.back() > 0 && total > 0) {
        max = std::max(max, h.sum / static_cast<double>(total));
      }
      out->GetHistogram(h.name, h.labels, helps[h.name], h.bounds)
          ->ImportState(counts, h.sum, total, max);
      pending.erase(series_key(count_name, labels));
      continue;
    }
    // Plain (or labeled) counter/gauge sample.
    const std::string& type = types[family];
    if (type == "counter") {
      out->GetCounter(family, labels, helps[family])->Increment(value);
    } else if (type == "gauge") {
      out->GetGauge(family, labels, helps[family])->Set(value);
    } else {
      return MalformedMetric("untyped sample '" + key + "'");
    }
  }
  if (!pending.empty()) {
    return MalformedMetric("truncated histogram '" +
                           pending.begin()->first + "'");
  }
  return Status::Ok();
}

}  // namespace sweetknn::common
