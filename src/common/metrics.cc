#include "common/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

namespace sweetknn::common {

namespace {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (cur < value && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string FormatMetricValue(double v) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank && counts[i] > 0) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double into_bucket =
          rank - static_cast<double>(cumulative - counts[i]);
      const double fraction =
          std::clamp(into_bucket / static_cast<double>(counts[i]), 0.0, 1.0);
      return std::min(lower + (upper - lower) * fraction, max);
    }
  }
  return max;  // target rank lands in the overflow bucket
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  SK_CHECK(!bounds_.empty()) << "histogram needs at least one bucket edge";
  SK_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket edges must ascend";
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
  AtomicMaxDouble(&max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const std::atomic<uint64_t>& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::ImportState(const std::vector<uint64_t>& counts, double sum,
                            uint64_t count, double max) {
  SK_CHECK_EQ(counts.size(), counts_.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    counts_[i].store(counts[i], std::memory_order_relaxed);
  }
  sum_.store(sum, std::memory_order_relaxed);
  count_.store(count, std::memory_order_relaxed);
  max_.store(max, std::memory_order_relaxed);
}

std::vector<double> LatencyBucketsSeconds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  bounds.push_back(10.0);
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.type = Type::kCounter;
    entry.help = help;
    entry.counter = std::make_unique<Counter>();
    it = entries_.emplace(name, std::move(entry)).first;
  }
  SK_CHECK(it->second.type == Type::kCounter)
      << "metric '" << name << "' already registered with another type";
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.type = Type::kGauge;
    entry.help = help;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(name, std::move(entry)).first;
  }
  SK_CHECK(it->second.type == Type::kGauge)
      << "metric '" << name << "' already registered with another type";
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.type = Type::kHistogram;
    entry.help = help;
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = entries_.emplace(name, std::move(entry)).first;
  }
  SK_CHECK(it->second.type == Type::kHistogram)
      << "metric '" << name << "' already registered with another type";
  return it->second.histogram.get();
}

HistogramSnapshot MetricsRegistry::SnapshotHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.type != Type::kHistogram) {
    return HistogramSnapshot{};
  }
  return it->second.histogram->Snapshot();
}

namespace {

/// Minimal JSON string escaping: the metric names and help strings here
/// are plain identifiers/sentences, but stay correct for quotes and
/// backslashes anyway.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"metrics\": [\n";
  size_t emitted = 0;
  for (const auto& [name, entry] : entries_) {
    out << "    {\"name\": \"" << JsonEscape(name) << "\", ";
    switch (entry.type) {
      case Type::kCounter:
        out << "\"type\": \"counter\", \"help\": \"" << JsonEscape(entry.help)
            << "\", \"value\": " << FormatMetricValue(entry.counter->value())
            << "}";
        break;
      case Type::kGauge:
        out << "\"type\": \"gauge\", \"help\": \"" << JsonEscape(entry.help)
            << "\", \"value\": " << FormatMetricValue(entry.gauge->value())
            << "}";
        break;
      case Type::kHistogram: {
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        out << "\"type\": \"histogram\", \"help\": \""
            << JsonEscape(entry.help) << "\", \"le\": [";
        for (size_t i = 0; i < snap.bounds.size(); ++i) {
          out << (i > 0 ? ", " : "") << FormatMetricValue(snap.bounds[i]);
        }
        out << "], \"counts\": [";
        for (size_t i = 0; i < snap.counts.size(); ++i) {
          out << (i > 0 ? ", " : "") << snap.counts[i];
        }
        out << "], \"sum\": " << FormatMetricValue(snap.sum)
            << ", \"count\": " << snap.count
            << ", \"max\": " << FormatMetricValue(snap.max)
            << ", \"mean\": " << FormatMetricValue(snap.Mean())
            << ", \"p50\": " << FormatMetricValue(snap.Percentile(0.50))
            << ", \"p90\": " << FormatMetricValue(snap.Percentile(0.90))
            << ", \"p99\": " << FormatMetricValue(snap.Percentile(0.99))
            << "}";
        break;
      }
    }
    out << (++emitted < entries_.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string MetricsRegistry::ExportPrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.help.empty()) {
      out << "# HELP " << name << " " << entry.help << "\n";
    }
    switch (entry.type) {
      case Type::kCounter:
        out << "# TYPE " << name << " counter\n"
            << name << " " << FormatMetricValue(entry.counter->value())
            << "\n";
        break;
      case Type::kGauge:
        out << "# TYPE " << name << " gauge\n"
            << name << " " << FormatMetricValue(entry.gauge->value()) << "\n";
        break;
      case Type::kHistogram: {
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        out << "# TYPE " << name << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < snap.bounds.size(); ++i) {
          cumulative += snap.counts[i];
          out << name << "_bucket{le=\"" << FormatMetricValue(snap.bounds[i])
              << "\"} " << cumulative << "\n";
        }
        out << name << "_bucket{le=\"+Inf\"} " << snap.count << "\n"
            << name << "_sum " << FormatMetricValue(snap.sum) << "\n"
            << name << "_count " << snap.count << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::FormatTable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  char line[256];
  for (const auto& [name, entry] : entries_) {
    switch (entry.type) {
      case Type::kCounter:
      case Type::kGauge: {
        const double v = entry.type == Type::kCounter
                             ? entry.counter->value()
                             : entry.gauge->value();
        std::snprintf(line, sizeof(line), "%-44s %s\n", name.c_str(),
                      FormatMetricValue(v).c_str());
        out << line;
        break;
      }
      case Type::kHistogram: {
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        std::snprintf(line, sizeof(line),
                      "%-44s count %llu mean %.3g p50 %.3g p90 %.3g "
                      "p99 %.3g max %.3g\n",
                      name.c_str(),
                      static_cast<unsigned long long>(snap.count),
                      snap.Mean(), snap.Percentile(0.50),
                      snap.Percentile(0.90), snap.Percentile(0.99), snap.max);
        out << line;
        break;
      }
    }
  }
  return out.str();
}

// --- Parsers ---------------------------------------------------------------

namespace {

/// A tiny JSON value model and recursive-descent parser covering the
/// subset the exporters emit (objects, arrays, strings, numbers).
struct JsonValue {
  enum class Kind { kNull, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out->push_back(c);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      for (;;) {
        std::string key;
        JsonValue value;
        if (!ParseString(&key) || !Consume(':') || !ParseValue(&value)) {
          return false;
        }
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume('}')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      for (;;) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(']')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    char* end = nullptr;
    out->number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    out->kind = JsonValue::Kind::kNumber;
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Status MalformedMetric(const std::string& what) {
  return Status::InvalidArgument("malformed metrics document: " + what);
}

}  // namespace

Status ParseMetricsJson(const std::string& text, MetricsRegistry* out) {
  JsonValue root;
  if (!JsonParser(text).Parse(&root) ||
      root.kind != JsonValue::Kind::kObject) {
    return MalformedMetric("not a JSON object");
  }
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kArray) {
    return MalformedMetric("missing \"metrics\" array");
  }
  for (const JsonValue& m : metrics->array) {
    const JsonValue* name = m.Find("name");
    const JsonValue* type = m.Find("type");
    const JsonValue* help = m.Find("help");
    if (name == nullptr || type == nullptr || help == nullptr) {
      return MalformedMetric("metric without name/type/help");
    }
    if (type->string == "counter" || type->string == "gauge") {
      const JsonValue* value = m.Find("value");
      if (value == nullptr) return MalformedMetric(name->string);
      if (type->string == "counter") {
        out->GetCounter(name->string, help->string)
            ->Increment(value->number);
      } else {
        out->GetGauge(name->string, help->string)->Set(value->number);
      }
      continue;
    }
    if (type->string != "histogram") {
      return MalformedMetric("unknown type '" + type->string + "'");
    }
    const JsonValue* le = m.Find("le");
    const JsonValue* counts = m.Find("counts");
    const JsonValue* sum = m.Find("sum");
    const JsonValue* count = m.Find("count");
    const JsonValue* max = m.Find("max");
    if (le == nullptr || counts == nullptr || sum == nullptr ||
        count == nullptr || max == nullptr ||
        counts->array.size() != le->array.size() + 1) {
      return MalformedMetric("histogram " + name->string);
    }
    std::vector<double> bounds;
    for (const JsonValue& b : le->array) bounds.push_back(b.number);
    std::vector<uint64_t> bucket_counts;
    for (const JsonValue& c : counts->array) {
      bucket_counts.push_back(static_cast<uint64_t>(c.number));
    }
    out->GetHistogram(name->string, help->string, bounds)
        ->ImportState(bucket_counts, sum->number,
                      static_cast<uint64_t>(count->number), max->number);
  }
  return Status::Ok();
}

Status ParseMetricsPrometheusText(const std::string& text,
                                  MetricsRegistry* out) {
  // Accumulated histogram state, materialized when its _count arrives
  // (the exporter always emits buckets, _sum, _count in that order).
  struct PendingHistogram {
    std::string help;
    std::vector<double> bounds;
    std::vector<uint64_t> cumulative;
    uint64_t inf_count = 0;
    double sum = 0.0;
  };
  std::map<std::string, PendingHistogram> pending;
  std::map<std::string, std::string> helps;
  std::map<std::string, std::string> types;

  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const size_t space = rest.find(' ');
      if (space == std::string::npos) return MalformedMetric(line);
      helps[rest.substr(0, space)] = rest.substr(space + 1);
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const size_t space = rest.find(' ');
      if (space == std::string::npos) return MalformedMetric(line);
      types[rest.substr(0, space)] = rest.substr(space + 1);
      continue;
    }
    if (line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) return MalformedMetric(line);
    std::string key = line.substr(0, space);
    const double value = std::strtod(line.c_str() + space + 1, nullptr);

    // Histogram sample lines: <name>_bucket{le="<edge>"}, _sum, _count.
    const size_t brace = key.find('{');
    if (brace != std::string::npos) {
      if (brace < 7 || key.compare(brace - 7, 7, "_bucket") != 0) {
        return MalformedMetric(line);
      }
      const std::string name = key.substr(0, brace - 7);
      const size_t open = key.find('"', brace);
      const size_t close = key.rfind('"');
      if (open == std::string::npos || close <= open) {
        return MalformedMetric(line);
      }
      const std::string edge = key.substr(open + 1, close - open - 1);
      PendingHistogram& h = pending[name];
      if (edge == "+Inf") {
        h.inf_count = static_cast<uint64_t>(value);
      } else {
        h.bounds.push_back(std::strtod(edge.c_str(), nullptr));
        h.cumulative.push_back(static_cast<uint64_t>(value));
      }
      continue;
    }
    auto strip_suffix = [&key](const char* suffix) -> std::string {
      const size_t len = std::strlen(suffix);
      if (key.size() > len &&
          key.compare(key.size() - len, len, suffix) == 0) {
        return key.substr(0, key.size() - len);
      }
      return std::string();
    };
    const std::string sum_name = strip_suffix("_sum");
    if (!sum_name.empty() && pending.count(sum_name) > 0) {
      pending[sum_name].sum = value;
      continue;
    }
    const std::string count_name = strip_suffix("_count");
    if (!count_name.empty() && pending.count(count_name) > 0) {
      // The final histogram line: materialize it.
      PendingHistogram& h = pending[count_name];
      const uint64_t total = static_cast<uint64_t>(value);
      if (total != h.inf_count) return MalformedMetric(line);
      std::vector<uint64_t> counts;
      uint64_t previous = 0;
      double max = 0.0;
      for (size_t i = 0; i < h.cumulative.size(); ++i) {
        if (h.cumulative[i] < previous) return MalformedMetric(line);
        counts.push_back(h.cumulative[i] - previous);
        if (counts.back() > 0) max = h.bounds[i];
        previous = h.cumulative[i];
      }
      if (total < previous) return MalformedMetric(line);
      counts.push_back(total - previous);
      // The text format does not carry the exact max; the tightest
      // recoverable bound is the highest non-empty bucket edge (or the
      // mean for overflow-only data). Percentiles stay within it.
      if (counts.back() > 0 && total > 0) {
        max = std::max(max, h.sum / static_cast<double>(total));
      }
      out->GetHistogram(count_name, helps[count_name], h.bounds)
          ->ImportState(counts, h.sum, total, max);
      pending.erase(count_name);
      continue;
    }
    const std::string& type = types[key];
    if (type == "counter") {
      out->GetCounter(key, helps[key])->Increment(value);
    } else if (type == "gauge") {
      out->GetGauge(key, helps[key])->Set(value);
    } else {
      return MalformedMetric("untyped sample '" + key + "'");
    }
  }
  if (!pending.empty()) {
    return MalformedMetric("truncated histogram '" +
                           pending.begin()->first + "'");
  }
  return Status::Ok();
}

}  // namespace sweetknn::common
