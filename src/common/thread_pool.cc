#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace sweetknn::common {

namespace {

// 0 outside fork-join regions (and on the region's calling thread); pool
// workers set it to their slot for the lifetime of the thread.
thread_local int tls_slot = 0;

}  // namespace

int SimThreadsFromEnv() {
  const char* raw = std::getenv("SWEETKNN_SIM_THREADS");
  if (raw == nullptr || *raw == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed < 0) return 1;
  if (parsed == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(std::min<unsigned>(hw, kMaxSimThreads));
  }
  return static_cast<int>(std::min<long>(parsed, kMaxSimThreads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();  // leaked: see class comment
  return pool;
}

int ThreadPool::CurrentSlot() { return tls_slot; }

void ThreadPool::EnsureWorkers(int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(threads_.size()) < count) {
    const int slot = static_cast<int>(threads_.size()) + 1;
    threads_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
}

void ThreadPool::ForkJoin(int parallelism,
                          const std::function<void(int)>& body) {
  parallelism = std::min(parallelism, kMaxSimThreads + 1);
  if (parallelism <= 1 || tls_slot != 0) {
    body(0);
    return;
  }
  std::lock_guard<std::mutex> region(region_mutex_);
  EnsureWorkers(parallelism - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    active_workers_ = parallelism - 1;
    remaining_ = parallelism;
    ++generation_;
  }
  work_cv_.notify_all();
  body(0);
  std::unique_lock<std::mutex> lock(mutex_);
  if (--remaining_ > 0) {
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
  }
  body_ = nullptr;
}

void ThreadPool::WorkerLoop(int slot) {
  tls_slot = slot;
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      if (slot > active_workers_) continue;  // region is narrower than us
      body = body_;
    }
    (*body)(slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace sweetknn::common
