#ifndef SWEETKNN_COMMON_MATRIX_H_
#define SWEETKNN_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace sweetknn {

/// Dense row-major matrix of floats on the host. Row i is the i-th point;
/// columns are dimensions. This is the canonical host-side container for
/// query/target point sets.
class HostMatrix {
 public:
  HostMatrix() : rows_(0), cols_(0) {}
  HostMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  HostMatrix(const HostMatrix&) = default;
  HostMatrix& operator=(const HostMatrix&) = default;
  HostMatrix(HostMatrix&&) = default;
  HostMatrix& operator=(HostMatrix&&) = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(size_t r, size_t c) {
    SK_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    SK_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the beginning of row r.
  const float* row(size_t r) const {
    SK_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  float* mutable_row(size_t r) {
    SK_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  const float* data() const { return data_.data(); }
  float* mutable_data() { return data_.data(); }
  const std::vector<float>& storage() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// Squared Euclidean distance between two d-dimensional points.
inline float SquaredDistance(const float* a, const float* b, size_t d) {
  float acc = 0.0f;
  for (size_t i = 0; i < d; ++i) {
    const float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

/// Euclidean distance between two d-dimensional points.
float EuclideanDistance(const float* a, const float* b, size_t d);

}  // namespace sweetknn

#endif  // SWEETKNN_COMMON_MATRIX_H_
