#ifndef SWEETKNN_COMMON_KNN_RESULT_H_
#define SWEETKNN_COMMON_KNN_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/topk.h"

namespace sweetknn {

/// Sentinel index for padding entries when a query has fewer than k
/// reachable neighbors (only possible when |T| < k).
inline constexpr uint32_t kInvalidNeighbor = 0xffffffffu;

/// The k nearest neighbors of every query point, each row sorted by
/// ascending distance.
class KnnResult {
 public:
  KnnResult() : k_(0) {}
  KnnResult(size_t num_queries, int k)
      : k_(k), rows_(num_queries * static_cast<size_t>(k)) {}

  int k() const { return k_; }
  size_t num_queries() const {
    return k_ == 0 ? 0 : rows_.size() / static_cast<size_t>(k_);
  }

  const Neighbor* row(size_t q) const {
    SK_DCHECK(q < num_queries());
    return rows_.data() + q * static_cast<size_t>(k_);
  }
  Neighbor* mutable_row(size_t q) {
    SK_DCHECK(q < num_queries());
    return rows_.data() + q * static_cast<size_t>(k_);
  }

  /// Fills row q from an ascending-sorted list (padded if shorter than k).
  void SetRow(size_t q, const std::vector<Neighbor>& sorted) {
    Neighbor* out = mutable_row(q);
    for (int i = 0; i < k_; ++i) {
      if (static_cast<size_t>(i) < sorted.size()) {
        out[i] = sorted[static_cast<size_t>(i)];
      } else {
        out[i] = Neighbor{kInvalidNeighbor,
                          std::numeric_limits<float>::infinity()};
      }
    }
  }

 private:
  int k_;
  std::vector<Neighbor> rows_;
};

/// Compares two KNN results by neighbor distances with a tolerance
/// (indices may legitimately differ on exact distance ties). Returns the
/// number of mismatching (query, rank) slots and optionally a description
/// of the first mismatch.
size_t CountResultMismatches(const KnnResult& a, const KnnResult& b,
                             float tolerance, std::string* first_mismatch);

/// True when the results agree within tolerance on every distance.
inline bool ResultsMatch(const KnnResult& a, const KnnResult& b,
                         float tolerance = 1e-4f) {
  return CountResultMismatches(a, b, tolerance, nullptr) == 0;
}

}  // namespace sweetknn

#endif  // SWEETKNN_COMMON_KNN_RESULT_H_
