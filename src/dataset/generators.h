#ifndef SWEETKNN_DATASET_GENERATORS_H_
#define SWEETKNN_DATASET_GENERATORS_H_

#include <cstdint>
#include <string>

#include "dataset/dataset.h"

namespace sweetknn::dataset {

/// Parameters for the Gaussian-mixture generator, the workhorse used to
/// mimic the cluster structure of the paper's UCI datasets.
struct MixtureConfig {
  size_t n = 0;
  size_t dims = 0;
  /// Number of mixture components. 1 with a large spread yields an
  /// unclustered (isotropic) cloud on which triangle-inequality filtering
  /// degrades, as the paper observes on arcene/dor.
  int clusters = 1;
  /// Per-dimension standard deviation of each component. Component centers
  /// are uniform in the unit hypercube, so the filtering strength is
  /// governed by spread relative to ~sqrt(dims/6) center separation.
  float spread = 0.05f;
  /// Geometric skew of component sizes: 0 = equal-sized components,
  /// larger values make a few components dominate (like real spatial data).
  float size_skew = 0.5f;
  /// Intrinsic dimensionality of the component-center manifold. 0 means
  /// centers are uniform in the full d-dimensional hypercube (distances
  /// then concentrate, which kills triangle-inequality pruning in high
  /// d). A small value (2-4) embeds the centers from a low-dimensional
  /// latent space, reproducing the low intrinsic dimensionality of real
  /// tabular/spatial datasets on which the paper's filtering saves >99%.
  int intrinsic_dim = 0;
  uint64_t seed = 1;
};

/// Samples a Gaussian mixture dataset.
Dataset MakeGaussianMixture(const std::string& name, const MixtureConfig& cfg);

/// Uniform points in the unit hypercube.
Dataset MakeUniform(const std::string& name, size_t n, size_t dims,
                    uint64_t seed);

/// A deterministic grid-like point set (useful in tests: nearest neighbors
/// are known by construction).
Dataset MakeGrid1D(const std::string& name, size_t n);

}  // namespace sweetknn::dataset

#endif  // SWEETKNN_DATASET_GENERATORS_H_
