#ifndef SWEETKNN_DATASET_DATASET_H_
#define SWEETKNN_DATASET_DATASET_H_

#include <string>
#include <utility>

#include "common/matrix.h"

namespace sweetknn::dataset {

/// A named point set. Points are rows of a row-major matrix.
struct Dataset {
  std::string name;
  HostMatrix points;

  size_t n() const { return points.rows(); }
  size_t dims() const { return points.cols(); }
};

}  // namespace sweetknn::dataset

#endif  // SWEETKNN_DATASET_DATASET_H_
