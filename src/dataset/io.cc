#include "dataset/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace sweetknn::dataset {

Status SaveCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (size_t i = 0; i < data.n(); ++i) {
    for (size_t j = 0; j < data.dims(); ++j) {
      if (j > 0) out << ',';
      out << data.points.at(i, j);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Dataset> LoadCsv(const std::string& name, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  std::vector<std::vector<float>> rows;
  std::string line;
  size_t dims = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<float> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const float v = std::strtof(cell.c_str(), &end);
      if (end == cell.c_str()) {
        return Status::IoError("non-numeric cell '" + cell + "' in " + path);
      }
      row.push_back(v);
    }
    if (dims == 0) {
      dims = row.size();
    } else if (row.size() != dims) {
      return Status::IoError("ragged row in " + path);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::IoError("empty csv: " + path);

  Dataset out;
  out.name = name;
  out.points = HostMatrix(rows.size(), dims);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < dims; ++j) out.points.at(i, j) = rows[i][j];
  }
  return out;
}

}  // namespace sweetknn::dataset
