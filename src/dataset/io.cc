#include "dataset/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace sweetknn::dataset {

Status SaveCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  char cell[32];
  for (size_t i = 0; i < data.n(); ++i) {
    for (size_t j = 0; j < data.dims(); ++j) {
      if (j > 0) out << ',';
      // %.9g: enough digits that every float round-trips exactly
      // (operator<< defaults to 6 significant digits and loses bits).
      std::snprintf(cell, sizeof(cell), "%.9g",
                    static_cast<double>(data.points.at(i, j)));
      out << cell;
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Dataset> LoadCsv(const std::string& name, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  std::vector<std::vector<float>> rows;
  std::string line;
  size_t dims = 0;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF
    if (line.empty()) continue;
    std::vector<float> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const float v = std::strtof(cell.c_str(), &end);
      while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
      if (end == cell.c_str() || *end != '\0') {
        return Status::IoError(
            path + ":" + std::to_string(line_number) + ": column " +
            std::to_string(row.size() + 1) + ": non-numeric cell '" + cell +
            "'");
      }
      row.push_back(v);
    }
    if (row.empty()) {
      return Status::IoError(path + ":" + std::to_string(line_number) +
                             ": row has no cells");
    }
    if (dims == 0) {
      dims = row.size();
    } else if (row.size() != dims) {
      return Status::IoError(
          path + ":" + std::to_string(line_number) + ": ragged row: " +
          std::to_string(row.size()) + " columns, expected " +
          std::to_string(dims));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::IoError(path + ": empty csv (no data rows)");
  }

  Dataset out;
  out.name = name;
  out.points = HostMatrix(rows.size(), dims);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < dims; ++j) out.points.at(i, j) = rows[i][j];
  }
  return out;
}

}  // namespace sweetknn::dataset
