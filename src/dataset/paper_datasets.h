#ifndef SWEETKNN_DATASET_PAPER_DATASETS_H_
#define SWEETKNN_DATASET_PAPER_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/generators.h"

namespace sweetknn::dataset {

/// Registry entry describing one of the paper's nine UCI datasets
/// (Table III) and our scaled synthetic stand-in (see DESIGN.md section 2
/// for the substitution rationale).
struct PaperDatasetInfo {
  /// Short name as used in the paper's figures ("3DNet", "kegg", ...).
  std::string name;
  std::string full_name;
  /// Shape in the paper.
  size_t paper_points = 0;
  size_t paper_dims = 0;
  /// Shape we generate. Dimensions are preserved for every dataset in
  /// Table V so the k/d adaptive decision matches the paper; point counts
  /// are scaled for a single-core host.
  size_t scaled_points = 0;
  size_t scaled_dims = 0;
  /// Generator structure (see MixtureConfig).
  int gen_clusters = 1;
  float gen_spread = 0.05f;
  float gen_size_skew = 0.5f;
  uint64_t seed = 0;
  /// Intrinsic dimensionality of the cluster-center manifold (see
  /// MixtureConfig::intrinsic_dim).
  int gen_intrinsic_dim = 0;
};

/// All nine datasets of Table III, in the paper's order.
const std::vector<PaperDatasetInfo>& PaperDatasets();

/// Looks up a dataset by short name; aborts if unknown.
const PaperDatasetInfo& PaperDatasetByName(const std::string& name);

/// Generates the scaled synthetic stand-in. `size_factor` further scales
/// the point count (quick test runs use < 1).
Dataset MakePaperDataset(const PaperDatasetInfo& info,
                         double size_factor = 1.0);

/// Global memory of the scaled simulated device. Chosen so the ratio of
/// the baseline's |Q|x|T| distance matrix to device memory is close to the
/// paper's (which drives its query-partitioning behaviour).
size_t ScaledDeviceMemoryBytes();

}  // namespace sweetknn::dataset

#endif  // SWEETKNN_DATASET_PAPER_DATASETS_H_
