#include "dataset/generators.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace sweetknn::dataset {

Dataset MakeGaussianMixture(const std::string& name,
                            const MixtureConfig& cfg) {
  SK_CHECK_GT(cfg.n, 0u);
  SK_CHECK_GT(cfg.dims, 0u);
  SK_CHECK_GT(cfg.clusters, 0);
  Rng rng(cfg.seed);

  // Component centers: uniform in the unit hypercube, or embedded from a
  // low-dimensional latent space when intrinsic_dim > 0 (see the field's
  // documentation).
  HostMatrix centers(static_cast<size_t>(cfg.clusters), cfg.dims);
  if (cfg.intrinsic_dim <= 0 ||
      static_cast<size_t>(cfg.intrinsic_dim) >= cfg.dims) {
    for (size_t c = 0; c < centers.rows(); ++c) {
      for (size_t j = 0; j < cfg.dims; ++j) {
        centers.at(c, j) = rng.NextFloat();
      }
    }
  } else {
    const size_t latent = static_cast<size_t>(cfg.intrinsic_dim);
    // Random linear embedding with rows scaled so embedded coordinates
    // keep roughly unit-cube magnitudes.
    HostMatrix basis(latent, cfg.dims);
    for (size_t a = 0; a < latent; ++a) {
      for (size_t j = 0; j < cfg.dims; ++j) {
        basis.at(a, j) = static_cast<float>(rng.NextGaussian()) /
                         std::sqrt(static_cast<float>(latent));
      }
    }
    for (size_t c = 0; c < centers.rows(); ++c) {
      std::vector<float> u(latent);
      for (size_t a = 0; a < latent; ++a) u[a] = rng.NextFloat();
      for (size_t j = 0; j < cfg.dims; ++j) {
        float v = 0.0f;
        for (size_t a = 0; a < latent; ++a) v += u[a] * basis.at(a, j);
        centers.at(c, j) = v;
      }
    }
  }

  // Component weights: exponential size profile normalized by the
  // component count, so size_skew = s makes the largest component e^s
  // times the smallest regardless of how many components there are.
  std::vector<double> weights(static_cast<size_t>(cfg.clusters));
  double total = 0.0;
  for (size_t c = 0; c < weights.size(); ++c) {
    weights[c] = std::exp(-cfg.size_skew * static_cast<double>(c) /
                          static_cast<double>(cfg.clusters));
    total += weights[c];
  }
  for (double& w : weights) w /= total;

  Dataset out;
  out.name = name;
  out.points = HostMatrix(cfg.n, cfg.dims);
  for (size_t i = 0; i < cfg.n; ++i) {
    // Pick a component by weight.
    double u = rng.NextDouble();
    size_t c = 0;
    while (c + 1 < weights.size() && u >= weights[c]) {
      u -= weights[c];
      ++c;
    }
    for (size_t j = 0; j < cfg.dims; ++j) {
      out.points.at(i, j) =
          centers.at(c, j) +
          cfg.spread * static_cast<float>(rng.NextGaussian());
    }
  }
  return out;
}

Dataset MakeUniform(const std::string& name, size_t n, size_t dims,
                    uint64_t seed) {
  SK_CHECK(n > 0 && dims > 0);
  Rng rng(seed);
  Dataset out;
  out.name = name;
  out.points = HostMatrix(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dims; ++j) {
      out.points.at(i, j) = rng.NextFloat();
    }
  }
  return out;
}

Dataset MakeGrid1D(const std::string& name, size_t n) {
  SK_CHECK_GT(n, 0u);
  Dataset out;
  out.name = name;
  out.points = HostMatrix(n, 1);
  for (size_t i = 0; i < n; ++i) {
    out.points.at(i, 0) = static_cast<float>(i);
  }
  return out;
}

}  // namespace sweetknn::dataset
