#ifndef SWEETKNN_DATASET_IO_H_
#define SWEETKNN_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "dataset/dataset.h"

namespace sweetknn::dataset {

/// Writes a dataset as headerless CSV (one point per row). Values are
/// rendered with %.9g, so SaveCsv -> LoadCsv reproduces every float
/// bit for bit.
Status SaveCsv(const Dataset& data, const std::string& path);

/// Loads a headerless numeric CSV as a dataset. All rows must have the
/// same number of columns; blank lines are skipped, CRLF endings are
/// accepted. Malformed input (ragged rows, non-numeric cells, an empty
/// file) yields a Status naming the offending line and column.
Result<Dataset> LoadCsv(const std::string& name, const std::string& path);

}  // namespace sweetknn::dataset

#endif  // SWEETKNN_DATASET_IO_H_
