#ifndef SWEETKNN_DATASET_IO_H_
#define SWEETKNN_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "dataset/dataset.h"

namespace sweetknn::dataset {

/// Writes a dataset as headerless CSV (one point per row).
Status SaveCsv(const Dataset& data, const std::string& path);

/// Loads a headerless numeric CSV as a dataset. All rows must have the
/// same number of columns.
Result<Dataset> LoadCsv(const std::string& name, const std::string& path);

}  // namespace sweetknn::dataset

#endif  // SWEETKNN_DATASET_IO_H_
