#include "dataset/paper_datasets.h"

#include <algorithm>

#include "common/logging.h"

namespace sweetknn::dataset {

const std::vector<PaperDatasetInfo>& PaperDatasets() {
  // Generator structure notes:
  //  - 3DNet/skin: low-dimensional spatial/pixel data -> strongly
  //    clustered, TI saves 99.7% in the paper.
  //  - kegg/keggD/ipums/kdd/blog: mid/high-dimensional tabular data with
  //    pronounced cluster structure (99.4-99.6% saved).
  //  - arcene: tiny high-dimensional mass-spectrometry set with little
  //    exploitable structure (26.9% saved) -> a single wide component.
  //  - dor: small, very high-dimensional, some structure (91.5% saved) ->
  //    clustered but with a large spread. Its dimension is scaled
  //    (100000 -> 1024): k/d stays < 8 for every k used, preserving the
  //    adaptive decisions.
  // Fields: name, full name, paper n, paper d, scaled n, scaled d,
  //         micro-clusters, spread, size skew, seed, intrinsic dim.
  static const std::vector<PaperDatasetInfo>* const kDatasets =
      new std::vector<PaperDatasetInfo>{
          {"3DNet", "3D spatial network", 434874, 4, 24576, 4, 512, 0.002f,
           1.5f, 101, 2},
          {"kegg", "KEGG Metabolic Reaction Network (Undirected)", 65554, 29,
           8192, 29, 192, 0.002f, 1.0f, 102, 3},
          {"keggD", "KEGG Metabolic Reaction Network (Directed)", 53414, 24,
           8192, 24, 192, 0.0022f, 1.0f, 103, 3},
          {"ipums", "IPUMS Census Database", 256932, 61, 16384, 61, 384,
           0.0025f, 1.5f, 104, 4},
          {"skin", "Skin Segmentation", 245057, 4, 20480, 4, 448, 0.0012f,
           1.0f, 105, 3},
          {"arcene", "Arcene", 100, 10000, 100, 10000, 1, 1.0f, 0.0f, 106,
           0},
          {"kdd", "KDD Cup 1999 Data", 4000000, 42, 24576, 42, 512, 0.0015f,
           2.0f, 107, 3},
          {"dor", "Dorothea Data", 1950, 100000, 1950, 1024, 24, 0.05f,
           0.5f, 108, 4},
          {"blog", "Blog Feedback", 60021, 281, 8192, 281, 192, 0.003f,
           1.0f, 109, 3},
      };
  return *kDatasets;
}

const PaperDatasetInfo& PaperDatasetByName(const std::string& name) {
  for (const PaperDatasetInfo& info : PaperDatasets()) {
    if (info.name == name) return info;
  }
  SK_LOG(Fatal) << "unknown paper dataset: " << name;
  __builtin_unreachable();
}

Dataset MakePaperDataset(const PaperDatasetInfo& info, double size_factor) {
  MixtureConfig cfg;
  cfg.n = std::max<size_t>(
      32, static_cast<size_t>(static_cast<double>(info.scaled_points) *
                              size_factor));
  cfg.dims = info.scaled_dims;
  cfg.clusters = info.gen_clusters;
  cfg.spread = info.gen_spread;
  cfg.size_skew = info.gen_size_skew;
  cfg.intrinsic_dim = info.gen_intrinsic_dim;
  cfg.seed = info.seed;
  return MakeGaussianMixture(info.name, cfg);
}

size_t ScaledDeviceMemoryBytes() { return 96ull * 1024 * 1024; }

}  // namespace sweetknn::dataset
