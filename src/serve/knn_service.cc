#include "serve/knn_service.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/device_points.h"
#include "core/shard_merge.h"

namespace sweetknn::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsBetween(SteadyClock::time_point from,
                      SteadyClock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Stable ids of one snapshot's base rows, in row order.
uint32_t SnapshotBaseId(const store::IndexSnapshot& snap, size_t row) {
  return snap.id_map.empty()
             ? static_cast<uint32_t>(snap.shard_offset + row)
             : snap.id_map[row];
}

}  // namespace

auto KnnService::SchedOptions(const ServiceConfig& config)
    -> FairScheduler<RequestPtr>::Options {
  FairScheduler<RequestPtr>::Options opts;
  opts.max_queue_depth = config.max_queue_depth;
  opts.quantum = config.fair_quantum > 0
                     ? config.fair_quantum
                     : static_cast<size_t>(std::max(config.max_batch_size, 1));
  return opts;
}

KnnService::KnnService(const HostMatrix& target, const ServiceConfig& config)
    : config_(config),
      dims_(target.cols()),
      planner_(config.planner),
      queue_(SchedOptions(config)) {
  SK_CHECK(!target.empty()) << "KnnService needs a non-empty target set";
  SK_CHECK_GT(config_.max_batch_size, 0);
  InitMetrics();
  default_tenant_ =
      BuildTenant(kDefaultTenant, /*weight=*/1.0, target,
                  TenantSnapshotDir(kDefaultTenant));
  // config_ carries the default tenant's effective shard count from here
  // on: it is the one count readable without any index mutex (a tenant's
  // count never changes after its build; SwapIndex replaces shards,
  // never their number).
  config_.num_shards = default_tenant_->num_shards;
  const Status installed = manager_.Install(default_tenant_);
  SK_CHECK(installed.ok()) << installed.ToString();
  queue_.SetWeight(kDefaultTenant, 1.0);
  RefreshGlobalOverlayGauges();
  m_tenants_->Set(static_cast<double>(manager_.size()));
  StartThreads();
}

KnnService::KnnService(AdoptTag, std::vector<store::IndexSnapshot> snapshots,
                       const ServiceConfig& config)
    : config_(config),
      dims_(snapshots[0].target.cols()),
      planner_(config.planner),
      queue_(SchedOptions(config)) {
  SK_CHECK_GT(config_.max_batch_size, 0);
  config_.num_shards = static_cast<int>(snapshots.size());
  InitMetrics();
  auto tenant = std::make_shared<TenantIndex>();
  tenant->name = kDefaultTenant;
  tenant->dims = dims_;
  tenant->num_shards = static_cast<int>(snapshots.size());
  tenant->snapshot_dir = TenantSnapshotDir(kDefaultTenant);
  RegisterTenantMetrics(tenant.get());
  ShardSet set = BuildShardsFromSnapshots(std::move(snapshots));
  for (std::unique_ptr<Shard>& shard : set.shards) {
    shard->epoch = ++epoch_counter_;
  }
  tenant->shards = std::move(set.shards);
  tenant->shard_offsets = std::move(set.offsets);
  tenant->target_rows = set.live_rows;
  tenant->next_id = set.next_id;
  {
    std::lock_guard<std::mutex> lock(tenant->mutex);
    UpdateOverlayGaugesLocked(tenant.get());
  }
  default_tenant_ = tenant;
  const Status installed = manager_.Install(std::move(tenant));
  SK_CHECK(installed.ok()) << installed.ToString();
  queue_.SetWeight(kDefaultTenant, 1.0);
  RefreshGlobalOverlayGauges();
  m_tenants_->Set(static_cast<double>(manager_.size()));
  StartThreads();
}

Result<std::unique_ptr<KnnService>> KnnService::FromSnapshots(
    const std::string& dir, const ServiceConfig& config) {
  Result<std::vector<std::string>> listed = store::ListShardSnapshots(dir);
  if (!listed.ok()) return listed.status();
  const int num_shards = static_cast<int>(listed.value().size());
  Result<std::vector<store::IndexSnapshot>> loaded = LoadShardSet(
      dir, num_shards, config, /*dims=*/0, /*allow_overlay=*/true);
  if (!loaded.ok()) return loaded.status();
  return std::unique_ptr<KnnService>(
      new KnnService(AdoptTag{}, std::move(loaded).value(), config));
}

KnnService::~KnnService() { Shutdown(); }

void KnnService::StartThreads() {
  dispatcher_ = std::thread(&KnnService::DispatchLoop, this);
  job_thread_ = std::thread(&KnnService::JobLoop, this);
  if (config_.auto_compact) {
    compactor_ = std::thread(&KnnService::CompactorLoop, this);
  }
}

std::string KnnService::TenantSnapshotDir(const std::string& name) const {
  if (config_.snapshot_dir.empty()) return std::string();
  if (name == kDefaultTenant) return config_.snapshot_dir;
  return (std::filesystem::path(config_.snapshot_dir) / name).string();
}

Result<std::shared_ptr<TenantIndex>> KnnService::ResolveTenant(
    const std::string& name) const {
  std::shared_ptr<TenantIndex> tenant = manager_.Get(name);
  if (!tenant) return Status::NotFound("no index named '" + name + "'");
  return tenant;
}

std::shared_ptr<TenantIndex> KnnService::BuildTenant(
    const std::string& name, double weight, const HostMatrix& target,
    const std::string& snapshot_dir) {
  auto tenant = std::make_shared<TenantIndex>();
  tenant->name = name;
  tenant->dims = target.cols();
  tenant->weight = weight;
  tenant->snapshot_dir = snapshot_dir;
  tenant->target_rows = target.rows();
  const int num_shards = std::clamp(
      config_.num_shards, 1, static_cast<int>(target.rows()));
  tenant->num_shards = num_shards;
  RegisterTenantMetrics(tenant.get());

  // Each shard simulates its own device, so the shard fan-out below is the
  // host-parallel axis. The shard engines are pinned to one execution
  // thread: ThreadPool::ForkJoin is non-reentrant from slot 0, so a shard
  // running inside the fan-out must never open a nested region — and by
  // the execution engine's guarantee this changes nothing but wall-clock.
  core::TiOptions shard_options = config_.options;
  shard_options.sim_threads = 1;

  const size_t dims = tenant->dims;
  const size_t base = target.rows() / static_cast<size_t>(num_shards);
  const size_t rem = target.rows() % static_cast<size_t>(num_shards);
  std::vector<HostMatrix> slices;
  size_t offset = 0;
  for (int s = 0; s < num_shards; ++s) {
    const size_t rows = base + (static_cast<size_t>(s) < rem ? 1 : 0);
    HostMatrix slice(rows, dims);
    std::memcpy(slice.mutable_data(), target.row(offset),
                rows * dims * sizeof(float));
    slices.push_back(std::move(slice));
    auto shard = std::make_unique<Shard>(config_.device, shard_options);
    // ann_params.workers falls back to the service's configured
    // parallelism, not silently to SWEETKNN_SIM_THREADS.
    shard->ConfigureAnn(config_.enable_ann, config_.ann_params,
                        config_.options.sim_threads);
    shard->offset = static_cast<uint32_t>(offset);
    shard->set_base_rows(rows);
    shard->delta.dims = dims;
    shard->epoch = ++epoch_counter_;
    tenant->shard_offsets.push_back(static_cast<uint32_t>(offset));
    tenant->shards.push_back(std::move(shard));
    offset += rows;
  }
  // The constructor's rows carry stable ids 0..rows-1; Insert allocates
  // upward from here.
  tenant->next_id = static_cast<uint32_t>(target.rows());

  // Warm start: restore the prepared indexes from the tenant's snapshot
  // directory if one is configured and its contents match this tenant
  // exactly; anything less falls back to the cold build below
  // (correctness never depends on the snapshots). Overlay (v2) sets are
  // rejected here — the byte-compare below only makes sense for pristine
  // indexes; mutated sets are adopted with FromSnapshots instead.
  std::vector<store::IndexSnapshot> snapshots;
  bool warm = false;
  if (!snapshot_dir.empty()) {
    Result<std::vector<store::IndexSnapshot>> loaded =
        LoadShardSet(snapshot_dir, num_shards, config_, dims,
                     /*allow_overlay=*/false);
    if (loaded.ok()) {
      snapshots = std::move(loaded).value();
      warm = true;
      for (int s = 0; s < num_shards; ++s) {
        const auto idx = static_cast<size_t>(s);
        const store::IndexSnapshot& snap = snapshots[idx];
        if (snap.shard_offset != tenant->shard_offsets[idx] ||
            snap.target.rows() != slices[idx].rows() ||
            std::memcmp(snap.target.data(), slices[idx].data(),
                        slices[idx].size() * sizeof(float)) != 0) {
          SK_LOG(Warning) << "KnnService: snapshot shard " << s
                          << " of index '" << name
                          << "' does not hold this target's bytes; "
                          << "cold-building all shards";
          warm = false;
          break;
        }
      }
    } else {
      SK_LOG(Warning) << "KnnService: warm start of index '" << name
                      << "' from '" << snapshot_dir << "' failed ("
                      << loaded.status().ToString()
                      << "); cold-building all shards";
    }
  }

  // Build the per-shard indexes in parallel; each PrepareTarget /
  // RestoreTarget touches only its own device.
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    if (warm) {
      // Warm or cold, the base bytes are the slice bytes (warm starts
      // byte-compare the snapshot against the slice above). Adopting the
      // (pristine) overlay first parks any persisted ANN graph so
      // RestoreBase can adopt it instead of re-running NN-descent.
      tenant->shards[idx]->AdoptOverlay(snapshots[idx]);
      tenant->shards[idx]->RestoreBase(snapshots[idx].target,
                                       snapshots[idx].clustering);
    } else {
      tenant->shards[idx]->BuildCold(slices[idx]);
    }
  });
  if (warm) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.warm_started_shards += static_cast<uint64_t>(num_shards);
  }

  {
    std::lock_guard<std::mutex> lock(tenant->mutex);
    UpdateOverlayGaugesLocked(tenant.get());
  }
  return tenant;
}

// ---------------------------------------------------------------------------
// Index management
// ---------------------------------------------------------------------------

Status KnnService::CreateIndex(const std::string& name,
                               const HostMatrix& target, double weight) {
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::Unavailable(
        "KnnService is shut down; CreateIndex rejected");
  }
  if (!IndexManager::ValidName(name)) {
    return Status::InvalidArgument(
        "'" + name +
        "' is not a valid index name (1-64 chars of [A-Za-z0-9_.-], "
        "not starting with a dot)");
  }
  if (target.empty()) {
    return Status::InvalidArgument("index '" + name +
                                   "' needs a non-empty target set");
  }
  // Pre-check so a duplicate never pays for the build; Install
  // re-validates, so a racing CreateIndex loses the build, never
  // consistency.
  if (manager_.Get(name)) {
    return Status::InvalidArgument("an index named '" + name +
                                   "' already exists");
  }
  std::shared_ptr<TenantIndex> tenant =
      BuildTenant(name, weight, target, TenantSnapshotDir(name));
  SK_RETURN_IF_ERROR(manager_.Install(tenant));
  queue_.SetWeight(name, weight);
  RefreshGlobalOverlayGauges();
  m_tenants_->Set(static_cast<double>(manager_.size()));
  return Status::Ok();
}

Status KnnService::DropIndex(const std::string& name) {
  if (name == kDefaultTenant) {
    return Status::InvalidArgument("the default index cannot be dropped");
  }
  Result<std::shared_ptr<TenantIndex>> dropped = manager_.Drop(name);
  if (!dropped.ok()) return dropped.status();
  dropped.value()->dropped.store(true, std::memory_order_release);
  // Empty sub-queues forget their bookkeeping now; queued requests keep
  // the sub-queue alive until the dispatcher drains and fails them.
  queue_.Forget(name);
  // A recreated same-name index must never serve answers cached against
  // the dropped one.
  BumpCacheEpoch();
  ClearCache();
  RefreshGlobalOverlayGauges();
  m_tenants_->Set(static_cast<double>(manager_.size()));
  return Status::Ok();
}

std::vector<std::string> KnnService::ListIndexes() const {
  return manager_.List();
}

Status KnnService::SetIndexWeight(const std::string& name, double weight) {
  Result<std::shared_ptr<TenantIndex>> resolved = ResolveTenant(name);
  if (!resolved.ok()) return resolved.status();
  {
    std::lock_guard<std::mutex> lock(resolved.value()->mutex);
    resolved.value()->weight = weight;
  }
  queue_.SetWeight(name, weight);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Metrics registration
// ---------------------------------------------------------------------------

void KnnService::InitMetrics() {
  const std::vector<double> latency = common::LatencyBucketsSeconds();
  m_requests_ = metrics_.GetCounter(
      "sweetknn_requests_total", "Search/JoinBatch calls admitted");
  m_queries_ = metrics_.GetCounter(
      "sweetknn_queries_total",
      "Query rows answered, including cache hits");
  m_rejected_ = metrics_.GetCounter(
      "sweetknn_rejected_requests_total",
      "Requests rejected because the service was shutting down");
  m_shed_requests_ = metrics_.GetCounter(
      "sweetknn_shed_requests_total",
      "Requests bounced by the max_queue_depth admission bound");
  m_deadline_exceeded_ = metrics_.GetCounter(
      "sweetknn_deadline_exceeded_total",
      "Admitted requests whose deadline expired while queued");
  m_batches_ = metrics_.GetCounter(
      "sweetknn_batches_total", "Micro-batches dispatched");
  m_engine_groups_ = metrics_.GetCounter(
      "sweetknn_engine_groups_total",
      "Same-k groups run through the shard engines");
  m_batched_queries_ = metrics_.GetCounter(
      "sweetknn_batched_queries_total",
      "Query rows that went through the engines");
  m_cache_lookups_ = metrics_.GetCounter(
      "sweetknn_cache_lookups_total", "Result-cache lookups");
  m_cache_hits_ = metrics_.GetCounter(
      "sweetknn_cache_hits_total", "Result-cache hits");
  m_cache_stale_drops_ = metrics_.GetCounter(
      "sweetknn_cache_stale_drops_total",
      "Cache inserts dropped because a swap, mutation, or compaction "
      "completed first");
  m_index_swaps_ = metrics_.GetCounter(
      "sweetknn_index_swaps_total", "Completed SwapIndex calls");
  m_distance_calcs_ = metrics_.GetCounter(
      "sweetknn_distance_calcs_total",
      "Level-2 distance computations summed over shards");
  m_sim_level1_ = metrics_.GetCounter(
      "sweetknn_sim_level1_seconds_total",
      "Simulated seconds in level-1 (landmark filter) kernels");
  m_sim_level2_ = metrics_.GetCounter(
      "sweetknn_sim_level2_seconds_total",
      "Simulated seconds in level-2 (point filter) kernels");
  m_sim_transfer_ = metrics_.GetCounter(
      "sweetknn_sim_transfer_seconds_total",
      "Simulated seconds in PCIe transfers");
  m_sim_preprocess_ = metrics_.GetCounter(
      "sweetknn_sim_preprocess_seconds_total",
      "Simulated seconds in preprocessing kernels (upload layout, "
      "clustering, member scatter)");
  m_sim_total_ = metrics_.GetCounter(
      "sweetknn_sim_device_seconds_total",
      "Simulated device seconds summed over every shard");
  m_sim_critical_ = metrics_.GetCounter(
      "sweetknn_sim_critical_seconds_total",
      "Per-group max shard time, summed (the latency cost)");
  m_filter_full_ = metrics_.GetCounter(
      "sweetknn_adaptive_filter_full_total",
      "Shard runs that used the full level-2 filter");
  m_filter_partial_ = metrics_.GetCounter(
      "sweetknn_adaptive_filter_partial_total",
      "Shard runs that used the partial level-2 filter");
  m_placement_global_ = metrics_.GetCounter(
      "sweetknn_adaptive_placement_global_total",
      "Shard runs with the kNearests array in global memory");
  m_placement_shared_ = metrics_.GetCounter(
      "sweetknn_adaptive_placement_shared_total",
      "Shard runs with the kNearests array in shared memory");
  m_placement_registers_ = metrics_.GetCounter(
      "sweetknn_adaptive_placement_registers_total",
      "Shard runs with the kNearests array in registers");
  m_inserts_ = metrics_.GetCounter(
      "sweetknn_inserts_total", "Points admitted through Insert/InsertBatch");
  m_removes_ = metrics_.GetCounter(
      "sweetknn_removes_total", "Successful Remove calls");
  m_remove_misses_ = metrics_.GetCounter(
      "sweetknn_remove_misses_total",
      "Remove calls naming an unknown or already-removed id");
  m_compactions_ = metrics_.GetCounter(
      "sweetknn_compactions_total",
      "Shard compactions installed (background or explicit)");
  m_compaction_aborts_ = metrics_.GetCounter(
      "sweetknn_compaction_aborts_total",
      "Compactions abandoned because a swap superseded the shard");
  m_compacted_rows_ = metrics_.GetCounter(
      "sweetknn_compacted_rows_total",
      "Rows clustered into fresh bases by compactions");
  m_planner_device_routes_ = metrics_.GetCounter(
      "sweetknn_planner_device_routes_total",
      "Shard base scans routed to the simulated-GPU TI engine");
  m_planner_host_routes_ = metrics_.GetCounter(
      "sweetknn_planner_host_routes_total",
      "Shard base scans routed to the vectorized host kernels");
  m_route_device_seconds_ = metrics_.GetHistogram(
      "sweetknn_planner_device_route_seconds",
      "Host wall-clock of one device-routed shard base scan", latency);
  m_route_host_seconds_ = metrics_.GetHistogram(
      "sweetknn_planner_host_route_seconds",
      "Host wall-clock of one host-routed shard base scan", latency);
  m_compaction_seconds_ = metrics_.GetHistogram(
      "sweetknn_compaction_seconds",
      "Host wall-clock of one shard compaction (capture to install)",
      latency);
  m_threads_per_query_ = metrics_.GetHistogram(
      "sweetknn_adaptive_threads_per_query",
      "Threads cooperating on one query, per shard run",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048});
  m_queue_wait_ = metrics_.GetHistogram(
      "sweetknn_queue_wait_seconds",
      "Admission to dequeue by the dispatcher", latency);
  m_batch_assembly_ = metrics_.GetHistogram(
      "sweetknn_batch_assembly_seconds",
      "First dequeue to micro-batch sealed", latency);
  m_shard_fanout_ = metrics_.GetHistogram(
      "sweetknn_shard_fanout_seconds",
      "Host wall-clock of the shard fan-out critical path", latency);
  m_merge_ = metrics_.GetHistogram(
      "sweetknn_merge_seconds", "Host wall-clock of the shard merge",
      latency);
  m_request_latency_ = metrics_.GetHistogram(
      "sweetknn_request_latency_seconds",
      "Admission to promise fulfillment, end to end", latency);
  m_batch_rows_ = metrics_.GetHistogram(
      "sweetknn_batch_size_rows", "Query rows per dispatched micro-batch",
      {1, 2, 4, 8, 16, 32, 64, 128, 256});
  m_range_groups_ = metrics_.GetCounter(
      "sweetknn_range_groups_total",
      "Same-radius range groups run through the shards");
  m_range_queries_ = metrics_.GetCounter(
      "sweetknn_range_queries_total",
      "Query rows answered by range groups");
  m_range_matches_ = metrics_.GetCounter(
      "sweetknn_range_matches_total",
      "In-ball matches returned by range groups");
  m_jobs_submitted_ = metrics_.GetCounter(
      "sweetknn_jobs_submitted_total", "Offline jobs admitted");
  m_jobs_completed_ = metrics_.GetCounter(
      "sweetknn_jobs_completed_total", "Offline jobs finished kDone");
  m_jobs_cancelled_ = metrics_.GetCounter(
      "sweetknn_jobs_cancelled_total", "Offline jobs finished kCancelled");
  m_jobs_failed_ = metrics_.GetCounter(
      "sweetknn_jobs_failed_total", "Offline jobs finished kFailed");
  m_job_seconds_ = metrics_.GetHistogram(
      "sweetknn_job_seconds",
      "Submit to terminal state of one offline job", latency);
  m_active_jobs_ = metrics_.GetGauge(
      "sweetknn_active_jobs", "Offline jobs pending or running");
  m_approx_groups_ = metrics_.GetCounter(
      "sweetknn_approx_groups_total",
      "Engine groups answered through the ANN graph tier");
  m_approx_queries_ = metrics_.GetCounter(
      "sweetknn_approx_queries_total",
      "Query rows answered through the ANN graph tier");
  m_ann_hops_ = metrics_.GetCounter(
      "sweetknn_ann_hops_total",
      "Graph nodes expanded by ANN searches, summed over shards");
  m_ann_candidates_ = metrics_.GetCounter(
      "sweetknn_ann_candidates_total",
      "Distance evaluations made by ANN searches, summed over shards");
  m_recall_probes_ = metrics_.GetCounter(
      "sweetknn_ann_recall_probes_total",
      "Approx groups re-answered exactly to measure recall");
  m_recall_estimate_ = metrics_.GetHistogram(
      "sweetknn_ann_recall_estimate",
      "Measured recall@k of probed approx groups against the exact answer",
      {0.5, 0.8, 0.9, 0.95, 0.99, 0.995, 0.999, 1.0});
  m_queue_depth_ = metrics_.GetGauge(
      "sweetknn_queue_depth", "Admission-queue depth");
  m_peak_queue_depth_ = metrics_.GetGauge(
      "sweetknn_peak_queue_depth", "Admission-queue high-water mark");
  m_tenants_ = metrics_.GetGauge(
      "sweetknn_tenants", "Live named indexes (including the default)");
  m_index_generation_ = metrics_.GetGauge(
      "sweetknn_index_generation", "Live index generation (SwapIndex count)");
  m_delta_points_ = metrics_.GetGauge(
      "sweetknn_delta_points",
      "Current delta-buffered points, summed over shards");
  m_tombstones_ = metrics_.GetGauge(
      "sweetknn_tombstones", "Current tombstoned ids, summed over shards");
  m_live_rows_ = metrics_.GetGauge(
      "sweetknn_live_rows",
      "Live target rows: base minus tombstones plus delta");
}

void KnnService::RegisterTenantMetrics(TenantIndex* tenant) {
  const std::string labels = common::TenantLabel(tenant->name);
  tenant->m_requests = metrics_.GetCounter(
      "sweetknn_tenant_requests_total", labels,
      "Search/JoinBatch calls admitted, per tenant");
  tenant->m_queries = metrics_.GetCounter(
      "sweetknn_tenant_queries_total", labels,
      "Query rows answered, per tenant");
  tenant->m_shed = metrics_.GetCounter(
      "sweetknn_tenant_shed_requests_total", labels,
      "Requests shed by the admission bound, per tenant");
  tenant->m_deadline_exceeded = metrics_.GetCounter(
      "sweetknn_tenant_deadline_exceeded_total", labels,
      "Requests whose deadline expired while queued, per tenant");
  tenant->m_latency = metrics_.GetHistogram(
      "sweetknn_tenant_request_latency_seconds", labels,
      "Admission to promise fulfillment, per tenant",
      common::LatencyBucketsSeconds());
  tenant->m_live_rows = metrics_.GetGauge(
      "sweetknn_tenant_live_rows", labels,
      "Live target rows of this tenant");
}

void KnnService::Shutdown() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(compact_mutex_);
    compactor_stop_ = true;
  }
  compact_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
  // The job thread goes down before the queue closes: a running job
  // sees stopping_ at its next chunk boundary and fails Unavailable,
  // and its in-flight chunk — admitted before the close — is still
  // drained by the dispatcher, so the join below cannot deadlock.
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_stop_ = true;
  }
  jobs_cv_.notify_all();
  if (job_thread_.joinable()) job_thread_.join();
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

// ---------------------------------------------------------------------------
// Admission and queries
// ---------------------------------------------------------------------------

Result<std::future<Result<KnnResult>>> KnnService::Submit(
    RequestPtr request) {
  std::future<Result<KnnResult>> future = request->promise.get_future();
  SK_RETURN_IF_ERROR(AdmitRequest(std::move(request)));
  return future;
}

Result<std::future<Result<RangeResult>>> KnnService::SubmitRange(
    RequestPtr request) {
  std::future<Result<RangeResult>> future =
      request->range_promise.get_future();
  SK_RETURN_IF_ERROR(AdmitRequest(std::move(request)));
  return future;
}

Status KnnService::AdmitRequest(RequestPtr request) {
  const size_t rows = request->num_rows;
  // Pinned before the move: the dispatcher may consume the request (and
  // a concurrent DropIndex release the manager's reference) before the
  // accounting below runs.
  const std::shared_ptr<TenantIndex> tenant = request->tenant;
  request->admit_time = SteadyClock::now();
  if (request->timeout.count() > 0) {
    request->has_deadline = true;
    request->deadline = request->admit_time + request->timeout;
  }
  // Admission refuses once Shutdown() has closed the scheduler — including
  // when the close lands between our caller's checks and here. Rejection
  // is a clean Unavailable, never an abort: a serving process must
  // survive clients racing its shutdown. A shed is the same status with
  // its own counters: the client backs off either way.
  switch (queue_.Submit(tenant->name, std::move(request), rows)) {
    case FairScheduler<RequestPtr>::Admit::kClosed: {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.rejected_requests;
      }
      m_rejected_->Increment();
      return Status::Unavailable(
          "KnnService is shut down; request rejected");
    }
    case FairScheduler<RequestPtr>::Admit::kShed: {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.shed_requests;
      }
      m_shed_requests_->Increment();
      tenant->m_shed->Increment();
      return Status::Unavailable(
          "admission queue is full (max_queue_depth=" +
          std::to_string(config_.max_queue_depth) + "); request shed");
    }
    case FairScheduler<RequestPtr>::Admit::kAdmitted:
      break;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
    stats_.queries += rows;
  }
  m_requests_->Increment();
  m_queries_->Increment(static_cast<double>(rows));
  tenant->m_requests->Increment();
  tenant->m_queries->Increment(static_cast<double>(rows));
  return Status::Ok();
}

Result<std::vector<Neighbor>> KnnService::Search(
    const std::vector<float>& query_point, int k) {
  return Search(CallOptions{}, query_point, k, ann::SearchMode::Exact());
}

Result<std::vector<Neighbor>> KnnService::Search(
    const std::vector<float>& query_point, int k,
    const ann::SearchMode& mode) {
  return Search(CallOptions{}, query_point, k, mode);
}

Result<std::vector<Neighbor>> KnnService::Search(
    const CallOptions& opts, const std::vector<float>& query_point, int k) {
  return Search(opts, query_point, k, ann::SearchMode::Exact());
}

Result<std::vector<Neighbor>> KnnService::Search(
    const CallOptions& opts, const std::vector<float>& query_point, int k,
    const ann::SearchMode& mode) {
  Result<std::shared_ptr<TenantIndex>> resolved = ResolveTenant(opts.tenant);
  if (!resolved.ok()) return resolved.status();
  const std::shared_ptr<TenantIndex> tenant = std::move(resolved).value();
  SK_CHECK_EQ(query_point.size(), tenant->dims);
  SK_CHECK_GT(k, 0);
  // Normalized up front: approx(recall 1.0) is exact traffic, and must
  // batch and cache exactly like it.
  const ann::SearchMode normalized = ann::Normalize(mode);
  const SteadyClock::time_point start = SteadyClock::now();
  // Captured before the answer is computed: if a swap, mutation, or
  // compaction completes while this request is in flight, the cache
  // insert below must be dropped.
  const uint64_t epoch = cache_epoch_.load(std::memory_order_acquire);
  std::string key;
  if (config_.cache_capacity > 0) {
    key = CacheKey(tenant->name, query_point.data(), tenant->dims, k,
                   normalized);
    std::vector<Neighbor> cached;
    if (CacheLookup(key, &cached)) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.requests;
        ++stats_.queries;
      }
      m_requests_->Increment();
      m_queries_->Increment();
      tenant->m_requests->Increment();
      tenant->m_queries->Increment();
      const double seconds = SecondsBetween(start, SteadyClock::now());
      m_request_latency_->Observe(seconds);
      tenant->m_latency->Observe(seconds);
      return cached;
    }
  }

  auto request = std::make_unique<Request>();
  request->tenant = tenant;
  request->rows = query_point;
  request->num_rows = 1;
  request->k = k;
  request->mode = normalized;
  request->timeout = opts.timeout;
  Result<std::future<Result<KnnResult>>> submitted =
      Submit(std::move(request));
  if (!submitted.ok()) return submitted.status();
  Result<KnnResult> result = submitted.value().get();
  if (!result.ok()) return result.status();
  const KnnResult& answer = result.value();
  std::vector<Neighbor> neighbors(answer.row(0), answer.row(0) + answer.k());
  if (config_.cache_capacity > 0) {
    if (pre_cache_insert_hook_) pre_cache_insert_hook_();
    CacheInsert(key, neighbors, epoch);
  }
  return neighbors;
}

Result<KnnResult> KnnService::JoinBatch(const HostMatrix& queries, int k) {
  return JoinBatch(CallOptions{}, queries, k, ann::SearchMode::Exact());
}

Result<KnnResult> KnnService::JoinBatch(const HostMatrix& queries, int k,
                                        const ann::SearchMode& mode) {
  return JoinBatch(CallOptions{}, queries, k, mode);
}

Result<KnnResult> KnnService::JoinBatch(const CallOptions& opts,
                                        const HostMatrix& queries, int k) {
  return JoinBatch(opts, queries, k, ann::SearchMode::Exact());
}

Result<KnnResult> KnnService::JoinBatch(const CallOptions& opts,
                                        const HostMatrix& queries, int k,
                                        const ann::SearchMode& mode) {
  Result<std::shared_ptr<TenantIndex>> resolved = ResolveTenant(opts.tenant);
  if (!resolved.ok()) return resolved.status();
  const std::shared_ptr<TenantIndex> tenant = std::move(resolved).value();
  SK_CHECK(!queries.empty());
  SK_CHECK_EQ(queries.cols(), tenant->dims);
  SK_CHECK_GT(k, 0);
  auto request = std::make_unique<Request>();
  request->tenant = tenant;
  request->rows = queries.storage();
  request->num_rows = queries.rows();
  request->k = k;
  request->mode = ann::Normalize(mode);
  request->timeout = opts.timeout;
  Result<std::future<Result<KnnResult>>> submitted =
      Submit(std::move(request));
  if (!submitted.ok()) return submitted.status();
  return submitted.value().get();
}

// ---------------------------------------------------------------------------
// Range queries and offline jobs (docs/modalities.md)
// ---------------------------------------------------------------------------

Result<RangeResult> KnnService::RadiusSearch(const HostMatrix& queries,
                                             float radius) {
  return RadiusSearch(CallOptions{}, queries, radius);
}

Result<RangeResult> KnnService::RadiusSearch(const CallOptions& opts,
                                             const HostMatrix& queries,
                                             float radius) {
  Result<std::shared_ptr<TenantIndex>> resolved = ResolveTenant(opts.tenant);
  if (!resolved.ok()) return resolved.status();
  const std::shared_ptr<TenantIndex> tenant = std::move(resolved).value();
  SK_CHECK(!queries.empty());
  SK_CHECK_EQ(queries.cols(), tenant->dims);
  SK_CHECK_GE(radius, 0.0f);
  auto request = std::make_unique<Request>();
  request->tenant = tenant;
  request->rows = queries.storage();
  request->num_rows = queries.rows();
  request->is_range = true;
  request->radius = radius;
  request->mode = ann::SearchMode::Exact();
  request->timeout = opts.timeout;
  Result<std::future<Result<RangeResult>>> submitted =
      SubmitRange(std::move(request));
  if (!submitted.ok()) return submitted.status();
  return submitted.value().get();
}

Result<uint64_t> KnnService::SubmitJob(const JobSpec& spec) {
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::Unavailable("KnnService is shut down; job rejected");
  }
  Result<std::shared_ptr<TenantIndex>> resolved = ResolveTenant(spec.tenant);
  if (!resolved.ok()) return resolved.status();
  switch (spec.kind) {
    case JobKind::kRadiusSearch:
      if (spec.queries.empty()) {
        return Status::InvalidArgument(
            "radius-search jobs need query rows");
      }
      if (spec.queries.cols() != resolved.value()->dims) {
        return Status::InvalidArgument(
            "job queries have " + std::to_string(spec.queries.cols()) +
            " dims, index '" + spec.tenant + "' serves " +
            std::to_string(resolved.value()->dims));
      }
      if (!(spec.radius >= 0.0f)) {
        return Status::InvalidArgument("job radius must be >= 0");
      }
      break;
    case JobKind::kSelfJoin:
      if (!(spec.radius >= 0.0f)) {
        return Status::InvalidArgument("job radius must be >= 0");
      }
      break;
    case JobKind::kKnnGraph:
      if (spec.k <= 0) {
        return Status::InvalidArgument("kNN-graph jobs need k > 0");
      }
      break;
  }
  auto job = std::make_unique<Job>();
  job->spec = spec;
  if (job->spec.chunk_rows == 0) job->spec.chunk_rows = 1;
  job->tenant = std::move(resolved).value();
  job->submit_time = SteadyClock::now();
  uint64_t id = 0;
  size_t active = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (jobs_stop_) {
      return Status::Unavailable("KnnService is shut down; job rejected");
    }
    id = next_job_id_++;
    job->id = id;
    jobs_.emplace(id, std::move(job));
    pending_jobs_.push_back(id);
    for (const auto& [jid, j] : jobs_) {
      (void)jid;
      if (j->state == JobState::kPending || j->state == JobState::kRunning) {
        ++active;
      }
    }
  }
  jobs_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.jobs_submitted;
  }
  m_jobs_submitted_->Increment();
  m_active_jobs_->Set(static_cast<double>(active));
  return id;
}

Result<JobProgress> KnnService::PollJob(uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  JobProgress progress;
  progress.state = it->second->state;
  progress.total_rows = it->second->total_rows;
  progress.done_rows = it->second->done_rows;
  progress.error = it->second->error;
  return progress;
}

Status KnnService::CancelJob(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  // Terminal jobs keep their outcome; the flag only steers pending and
  // running jobs (honored at the next chunk boundary).
  it->second->cancel.store(true, std::memory_order_release);
  return Status::Ok();
}

Result<JobOutput> KnnService::TakeJobResult(uint64_t job_id) {
  std::unique_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return Status::NotFound("no job " + std::to_string(job_id));
    }
    if (it->second->state == JobState::kPending ||
        it->second->state == JobState::kRunning) {
      return Status::InvalidArgument(
          "job " + std::to_string(job_id) + " is still running");
    }
    // Any terminal job is reaped here — cancelled and failed jobs
    // surrender their slot too, reporting why instead of an output.
    job = std::move(it->second);
    jobs_.erase(it);
  }
  switch (job->state) {
    case JobState::kDone:
      return std::move(job->output);
    case JobState::kCancelled:
      return Status::Unavailable("job " + std::to_string(job_id) +
                                 " was cancelled");
    default:
      return job->fail_status;
  }
}

Result<JobOutput> KnnService::WaitAndTake(uint64_t job_id) {
  std::unique_ptr<Job> job;
  {
    std::unique_lock<std::mutex> lock(jobs_mutex_);
    jobs_cv_.wait(lock, [&] {
      auto it = jobs_.find(job_id);
      return it == jobs_.end() || (it->second->state != JobState::kPending &&
                                   it->second->state != JobState::kRunning);
    });
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return Status::NotFound("job " + std::to_string(job_id) +
                              " was taken concurrently");
    }
    job = std::move(it->second);
    jobs_.erase(it);
  }
  switch (job->state) {
    case JobState::kDone:
      return std::move(job->output);
    case JobState::kCancelled:
      return Status::Unavailable("job " + std::to_string(job_id) +
                                 " was cancelled");
    case JobState::kFailed:
      return job->fail_status;
    default:
      return Status::Internal("job " + std::to_string(job_id) +
                              " left the wait in a non-terminal state");
  }
}

Result<std::vector<SelfJoinPair>> KnnService::SelfJoin(float radius) {
  return SelfJoin(CallOptions{}, radius);
}

Result<std::vector<SelfJoinPair>> KnnService::SelfJoin(
    const CallOptions& opts, float radius) {
  JobSpec spec;
  spec.kind = JobKind::kSelfJoin;
  spec.radius = radius;
  spec.tenant = opts.tenant;
  Result<uint64_t> id = SubmitJob(spec);
  if (!id.ok()) return id.status();
  Result<JobOutput> out = WaitAndTake(id.value());
  if (!out.ok()) return out.status();
  return std::move(out.value().pairs);
}

Result<JobOutput> KnnService::KnnGraph(int k) {
  return KnnGraph(CallOptions{}, k);
}

Result<JobOutput> KnnService::KnnGraph(const CallOptions& opts, int k) {
  JobSpec spec;
  spec.kind = JobKind::kKnnGraph;
  spec.k = k;
  spec.tenant = opts.tenant;
  Result<uint64_t> id = SubmitJob(spec);
  if (!id.ok()) return id.status();
  return WaitAndTake(id.value());
}

void KnnService::SnapshotLive(TenantIndex* tenant,
                              std::vector<uint32_t>* ids,
                              HostMatrix* points) const {
  std::vector<std::vector<uint32_t>> shard_ids;
  std::vector<HostMatrix> shard_points;
  {
    std::lock_guard<std::mutex> lock(tenant->mutex);
    shard_ids.resize(tenant->shards.size());
    shard_points.resize(tenant->shards.size());
    for (size_t s = 0; s < tenant->shards.size(); ++s) {
      tenant->shards[s]->ExportLive(&shard_ids[s], &shard_points[s]);
    }
  }
  // Shards interleave in id space (inserts route by id % S), so the
  // global ascending order is a cross-shard sort, done off the lock.
  size_t total = 0;
  for (const std::vector<uint32_t>& v : shard_ids) total += v.size();
  std::vector<std::pair<uint32_t, std::pair<size_t, size_t>>> order;
  order.reserve(total);
  for (size_t s = 0; s < shard_ids.size(); ++s) {
    for (size_t r = 0; r < shard_ids[s].size(); ++r) {
      order.emplace_back(shard_ids[s][r], std::make_pair(s, r));
    }
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const size_t dims = tenant->dims;
  ids->clear();
  ids->reserve(total);
  *points = HostMatrix(total, dims);
  for (size_t r = 0; r < order.size(); ++r) {
    ids->push_back(order[r].first);
    std::memcpy(points->mutable_row(r),
                shard_points[order[r].second.first].row(
                    order[r].second.second),
                dims * sizeof(float));
  }
}

Result<RangeResult> KnnService::RangeChunk(
    const std::shared_ptr<TenantIndex>& tenant, const HostMatrix& queries,
    float radius) {
  auto request = std::make_unique<Request>();
  request->tenant = tenant;
  request->rows = queries.storage();
  request->num_rows = queries.rows();
  request->is_range = true;
  request->radius = radius;
  request->mode = ann::SearchMode::Exact();
  Result<std::future<Result<RangeResult>>> submitted =
      SubmitRange(std::move(request));
  if (!submitted.ok()) return submitted.status();
  return submitted.value().get();
}

void KnnService::FinishJob(Job* job, JobState state, Status status) {
  size_t active = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    job->state = state;
    if (!status.ok()) {
      job->fail_status = status;
      job->error = status.ToString();
    }
    for (const auto& [jid, j] : jobs_) {
      (void)jid;
      if (j->state == JobState::kPending || j->state == JobState::kRunning) {
        ++active;
      }
    }
  }
  jobs_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    switch (state) {
      case JobState::kDone:
        ++stats_.jobs_completed;
        break;
      case JobState::kCancelled:
        ++stats_.jobs_cancelled;
        break;
      default:
        ++stats_.jobs_failed;
        break;
    }
  }
  switch (state) {
    case JobState::kDone:
      m_jobs_completed_->Increment();
      break;
    case JobState::kCancelled:
      m_jobs_cancelled_->Increment();
      break;
    default:
      m_jobs_failed_->Increment();
      break;
  }
  m_job_seconds_->Observe(SecondsBetween(job->submit_time,
                                         SteadyClock::now()));
  m_active_jobs_->Set(static_cast<double>(active));
}

void KnnService::JobLoop() {
  for (;;) {
    Job* job = nullptr;
    std::vector<uint64_t> orphaned;
    {
      std::unique_lock<std::mutex> lock(jobs_mutex_);
      jobs_cv_.wait(lock,
                    [this] { return jobs_stop_ || !pending_jobs_.empty(); });
      if (jobs_stop_) {
        orphaned = std::move(pending_jobs_);
        pending_jobs_.clear();
      } else {
        const uint64_t id = pending_jobs_.front();
        pending_jobs_.erase(pending_jobs_.begin());
        auto it = jobs_.find(id);
        if (it != jobs_.end()) {
          job = it->second.get();
          job->state = JobState::kRunning;
        }
      }
    }
    if (job != nullptr) {
      // The Job object outlives this call: only a terminal state makes
      // it takeable, and RunJob publishes that itself, last.
      RunJob(job);
      continue;
    }
    // Shutdown: fail everything still pending, then exit.
    for (uint64_t id : orphaned) {
      Job* pending = nullptr;
      {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        auto it = jobs_.find(id);
        if (it != jobs_.end()) pending = it->second.get();
      }
      if (pending != nullptr) {
        FinishJob(pending, JobState::kFailed,
                  Status::Unavailable(
                      "KnnService shut down before the job ran"));
      }
    }
    return;
  }
}

void KnnService::RunJob(Job* job) {
  const std::shared_ptr<TenantIndex> tenant = job->tenant;
  if (job->cancel.load(std::memory_order_acquire)) {
    FinishJob(job, JobState::kCancelled);
    return;
  }
  if (tenant->dropped.load(std::memory_order_acquire)) {
    FinishJob(job, JobState::kFailed,
              Status::NotFound("index '" + tenant->name + "' was dropped"));
    return;
  }

  JobOutput out;
  out.kind = job->spec.kind;
  const size_t chunk_rows = std::max<size_t>(job->spec.chunk_rows, 1);
  const size_t dims = tenant->dims;
  const int k = job->spec.k;

  // Query source: radius jobs bring their own rows; the live-set kinds
  // snapshot the tenant's points once, at job start — each chunk then
  // answers against the index state of its own admission (every chunk
  // is internally consistent; mutations landing mid-job affect only
  // later chunks).
  HostMatrix queries;
  if (job->spec.kind == JobKind::kRadiusSearch) {
    queries = job->spec.queries;
  } else {
    SnapshotLive(tenant.get(), &out.query_ids, &queries);
  }
  const size_t total = queries.rows();
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    job->total_rows = total;
  }
  if (job->spec.kind == JobKind::kKnnGraph) {
    out.graph = KnnResult(total, k);
  }

  std::vector<Neighbor> rowbuf;
  for (size_t begin = 0; begin < total; begin += chunk_rows) {
    if (job->cancel.load(std::memory_order_acquire)) {
      FinishJob(job, JobState::kCancelled);
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      FinishJob(job, JobState::kFailed,
                Status::Unavailable("KnnService shut down mid-job"));
      return;
    }
    const size_t end = std::min(total, begin + chunk_rows);
    HostMatrix chunk(end - begin, dims);
    std::memcpy(chunk.mutable_data(), queries.row(begin),
                (end - begin) * dims * sizeof(float));
    if (job->spec.kind == JobKind::kKnnGraph) {
      // One ordinary kNN request at k+1 (the one extra slot absorbs the
      // query point itself; see core::SweetKnnIndex::KnnGraph for the
      // exactness argument), fair-shared through the admission queue.
      auto request = std::make_unique<Request>();
      request->tenant = tenant;
      request->rows.assign(chunk.storage().begin(), chunk.storage().end());
      request->num_rows = end - begin;
      request->k = k + 1;
      request->mode = ann::SearchMode::Exact();
      Result<std::future<Result<KnnResult>>> submitted =
          Submit(std::move(request));
      if (!submitted.ok()) {
        FinishJob(job, JobState::kFailed, submitted.status());
        return;
      }
      Result<KnnResult> answer = submitted.value().get();
      if (!answer.ok()) {
        FinishJob(job, JobState::kFailed, answer.status());
        return;
      }
      for (size_t q = 0; q < end - begin; ++q) {
        const uint32_t self = out.query_ids[begin + q];
        const Neighbor* src = answer.value().row(q);
        rowbuf.clear();
        bool dropped_self = false;
        for (int j = 0; j < k + 1; ++j) {
          if (src[j].index == kInvalidNeighbor) break;
          if (!dropped_self && src[j].index == self) {
            dropped_self = true;
            continue;
          }
          if (static_cast<int>(rowbuf.size()) == k) break;
          rowbuf.push_back(src[j]);
        }
        out.graph.SetRow(begin + q, rowbuf);
      }
    } else {
      Result<RangeResult> answer =
          RangeChunk(tenant, chunk, job->spec.radius);
      if (!answer.ok()) {
        FinishJob(job, JobState::kFailed, answer.status());
        return;
      }
      if (job->spec.kind == JobKind::kRadiusSearch) {
        out.range.AppendRows(answer.value());
      } else {
        // Self-join reduction: query a's in-ball matches, kept only for
        // ids above a — each unordered pair lands exactly once (on its
        // smaller id), self-matches drop (a == a fails a < b), exact
        // duplicates survive (distinct ids).
        for (size_t q = 0; q < answer.value().num_queries(); ++q) {
          const uint32_t a = out.query_ids[begin + q];
          for (const Neighbor* nb = answer.value().begin(q);
               nb != answer.value().end(q); ++nb) {
            if (nb->index > a) {
              out.pairs.push_back(SelfJoinPair{a, nb->index, nb->distance});
            }
          }
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      job->done_rows = end;
    }
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    job->output = std::move(out);
  }
  FinishJob(job, JobState::kDone);
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

Result<uint32_t> KnnService::Insert(const std::vector<float>& point) {
  return Insert(CallOptions{}, point);
}

Result<uint32_t> KnnService::Insert(const CallOptions& opts,
                                    const std::vector<float>& point) {
  SK_CHECK(!point.empty());
  HostMatrix one(1, point.size());
  std::memcpy(one.mutable_data(), point.data(),
              point.size() * sizeof(float));
  Result<std::vector<uint32_t>> ids = InsertBatch(opts, one);
  if (!ids.ok()) return ids.status();
  return ids.value()[0];
}

Result<std::vector<uint32_t>> KnnService::InsertBatch(
    const HostMatrix& points) {
  return InsertBatch(CallOptions{}, points);
}

Result<std::vector<uint32_t>> KnnService::InsertBatch(
    const CallOptions& opts, const HostMatrix& points) {
  Result<std::shared_ptr<TenantIndex>> resolved = ResolveTenant(opts.tenant);
  if (!resolved.ok()) return resolved.status();
  const std::shared_ptr<TenantIndex> tenant = std::move(resolved).value();
  SK_CHECK(!points.empty());
  SK_CHECK_EQ(points.cols(), tenant->dims);
  std::vector<uint32_t> ids;
  ids.reserve(points.rows());
  {
    std::lock_guard<std::mutex> index_lock(tenant->mutex);
    if (stopping_.load(std::memory_order_acquire)) {
      return Status::Unavailable(
          "KnnService is shut down; insert rejected");
    }
    for (size_t r = 0; r < points.rows(); ++r) {
      const uint32_t id = tenant->next_id++;
      Shard& shard =
          *tenant->shards[id % static_cast<uint32_t>(tenant->shards.size())];
      shard.delta.Append(id, points.row(r));
      ids.push_back(id);
      ++tenant->target_rows;
    }
    BumpCacheEpoch();
    UpdateOverlayGaugesLocked(tenant.get());
    for (const std::unique_ptr<Shard>& shard : tenant->shards) {
      MaybeScheduleCompaction(*shard);
    }
  }
  RefreshGlobalOverlayGauges();
  ClearCache();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.inserts += ids.size();
  }
  m_inserts_->Increment(static_cast<double>(ids.size()));
  return ids;
}

Result<bool> KnnService::Remove(uint32_t id) {
  return Remove(CallOptions{}, id);
}

Result<bool> KnnService::Remove(const CallOptions& opts, uint32_t id) {
  Result<std::shared_ptr<TenantIndex>> resolved = ResolveTenant(opts.tenant);
  if (!resolved.ok()) return resolved.status();
  const std::shared_ptr<TenantIndex> tenant = std::move(resolved).value();
  bool removed = false;
  {
    std::lock_guard<std::mutex> index_lock(tenant->mutex);
    if (stopping_.load(std::memory_order_acquire)) {
      return Status::Unavailable(
          "KnnService is shut down; remove rejected");
    }
    const int s = OwningShard(*tenant, id);
    if (s >= 0) {
      Shard& shard = *tenant->shards[static_cast<size_t>(s)];
      removed = shard.ApplyRemove(id);
      if (removed) {
        --tenant->target_rows;
        BumpCacheEpoch();
        UpdateOverlayGaugesLocked(tenant.get());
        MaybeScheduleCompaction(shard);
      }
    }
  }
  if (removed) {
    RefreshGlobalOverlayGauges();
    ClearCache();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (removed) {
      ++stats_.removes;
    } else {
      ++stats_.remove_misses;
    }
  }
  (removed ? m_removes_ : m_remove_misses_)->Increment();
  return removed;
}

int KnnService::OwningShard(const TenantIndex& tenant, uint32_t id) const {
  for (size_t s = 0; s < tenant.shards.size(); ++s) {
    if (tenant.shards[s]->Owns(id)) return static_cast<int>(s);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void KnnService::FailRequest(Request* request, Status status) {
  if (request->is_range) {
    request->range_promise.set_value(Result<RangeResult>(std::move(status)));
  } else {
    request->promise.set_value(Result<KnnResult>(std::move(status)));
  }
}

bool KnnService::FailFast(RequestPtr* request) {
  Request& req = **request;
  if (req.tenant->dropped.load(std::memory_order_acquire)) {
    FailRequest(&req, Status::NotFound("index '" + req.tenant->name +
                                       "' was dropped"));
    // The sub-queue may be empty now; let the scheduler forget it.
    queue_.Forget(req.tenant->name);
    request->reset();
    return true;
  }
  if (req.has_deadline && SteadyClock::now() >= req.deadline) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.deadline_exceeded;
    }
    m_deadline_exceeded_->Increment();
    req.tenant->m_deadline_exceeded->Increment();
    FailRequest(&req, Status::DeadlineExceeded(
                          "request deadline expired in the admission queue"));
    request->reset();
    return true;
  }
  return false;
}

void KnnService::DispatchLoop() {
  for (;;) {
    RequestPtr first;
    std::string tenant_name;
    if (queue_.WaitPop(&first, &tenant_name) != common::PopResult::kItem) {
      return;
    }
    {
      std::function<void()> hook;
      {
        std::lock_guard<std::mutex> lock(hook_mutex_);
        hook = pre_dispatch_hook_;
      }
      if (hook) hook();
    }
    if (FailFast(&first)) continue;
    // Micro-batching: coalesce admitted requests OF THIS TENANT until
    // max_batch_size query rows are on board or max_batch_wait has
    // passed since the batch opened. Batches are single-tenant — a
    // group runs under one tenant's index mutex — and the out-of-turn
    // tenant pops below charge the same DRR deficit WaitPop does, so
    // coalescing cannot cheat the fair shares.
    const SteadyClock::time_point opened = SteadyClock::now();
    m_queue_wait_->Observe(SecondsBetween(first->admit_time, opened));
    std::vector<RequestPtr> batch;
    size_t rows = first->num_rows;
    batch.push_back(std::move(first));
    const auto deadline = opened + config_.max_batch_wait;
    while (rows < static_cast<size_t>(config_.max_batch_size)) {
      RequestPtr next;
      if (!queue_.TryPopTenant(tenant_name, &next)) {
        if (SteadyClock::now() >= deadline ||
            queue_.WaitPopTenantUntil(tenant_name, &next, deadline) !=
                common::PopResult::kItem) {
          break;  // the batch is as full as it will get
        }
      }
      if (FailFast(&next)) continue;
      m_queue_wait_->Observe(
          SecondsBetween(next->admit_time, SteadyClock::now()));
      rows += next->num_rows;
      batch.push_back(std::move(next));
    }
    m_batch_assembly_->Observe(SecondsBetween(opened, SteadyClock::now()));
    m_batch_rows_->Observe(static_cast<double>(rows));
    // The queue-depth gauge is deliberately NOT Set here (nor in
    // Submit): two racing writers could publish a stale depth. It is
    // computed from the live scheduler at export time instead.
    //
    // One micro-batch dispatched; the per-k engine groups below are
    // accounted separately (engine_groups), so mixed-k traffic cannot
    // inflate the batch count and skew occupancy.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
    }
    m_batches_->Increment();

    // One engine batch per distinct (k, mode) — or per distinct radius
    // for range requests — preserving admission order within each group
    // and a deterministic order across groups (kNN groups by k
    // ascending, exact before approx; range groups after them by
    // radius). Modes were normalized at admission, so effectively exact
    // traffic lands in one group.
    struct GroupKey {
      bool is_range;
      float radius;
      int k;
      ann::SearchMode mode;
    };
    struct GroupKeyLess {
      bool operator()(const GroupKey& a, const GroupKey& b) const {
        if (a.is_range != b.is_range) return b.is_range;
        if (a.is_range) return a.radius < b.radius;
        if (a.k != b.k) return a.k < b.k;
        return ann::SearchModeLess(a.mode, b.mode);
      }
    };
    std::map<GroupKey, std::vector<RequestPtr>, GroupKeyLess> by_key;
    for (RequestPtr& request : batch) {
      by_key[{request->is_range, request->radius, request->k,
              request->mode}]
          .push_back(std::move(request));
    }
    for (auto& [key, group] : by_key) {
      if (key.is_range) {
        RunRangeGroup(std::move(group));
      } else {
        RunGroup(std::move(group));
      }
    }
  }
}

void KnnService::RunGroup(std::vector<RequestPtr> group) {
  const std::shared_ptr<TenantIndex> tenant = group[0]->tenant;
  const int k = group[0]->k;
  const ann::SearchMode mode = group[0]->mode;
  const size_t dims = tenant->dims;
  size_t rows = 0;
  for (const RequestPtr& request : group) rows += request->num_rows;
  HostMatrix queries(rows, dims);
  size_t row = 0;
  for (const RequestPtr& request : group) {
    std::memcpy(queries.mutable_row(row), request->rows.data(),
                request->num_rows * dims * sizeof(float));
    row += request->num_rows;
  }

  // The whole group runs against one index state of one tenant: a
  // concurrent SwapIndex, mutation, or compaction install of this
  // tenant waits here (or we wait for it), so no request's rows can
  // straddle an index change — and other tenants' mutexes are never
  // touched, so their mutations never stall this group.
  std::lock_guard<std::mutex> index_lock(tenant->mutex);
  const int num_shards = static_cast<int>(tenant->shards.size());

  // Route each shard's base scan by cost, serially before the fan-out so
  // the decision order is deterministic. Both routes return bit-identical
  // per-shard lists (the host path runs the same canonical float pipeline
  // the engine is fuzz-proven against), so the merged answer cannot
  // depend on the route; host-routed shards report no device stats.
  std::vector<core::QueryRoute> routes(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    routes[static_cast<size_t>(s)] = planner_.Choose(
        rows, tenant->shards[static_cast<size_t>(s)]->base_rows(), dims);
  }
  // The per-shard work — base scan (over-queried when mutated), delta
  // side scan, shard-local merge — lives in ShardHost::SearchGroup, the
  // one code path the remote shard workers run too; the fan-out here is
  // just the in-process backend's transport.
  std::vector<core::ShardAnswer> answers(static_cast<size_t>(num_shards));
  const SteadyClock::time_point fanout_start = SteadyClock::now();
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    answers[idx] = tenant->shards[idx]->SearchGroup(
        queries, k, routes[idx], config_.options.metric, mode);
  });
  const SteadyClock::time_point merge_start = SteadyClock::now();
  m_shard_fanout_->Observe(SecondsBetween(fanout_start, merge_start));
  for (const core::ShardAnswer& answer : answers) {
    // An approx shard ran the graph search, not a planner route; it
    // belongs to neither route counter.
    if (answer.approx) continue;
    if (answer.device_routed) {
      m_planner_device_routes_->Increment();
      m_route_device_seconds_->Observe(answer.route_seconds);
      // The planner's selectivity EMA needs exactly the work counters
      // the answer carries.
      core::KnnRunStats observed;
      observed.distance_calcs = answer.distance_calcs;
      observed.total_pairs = answer.total_pairs;
      planner_.ObserveDeviceRun(observed);
    } else {
      m_planner_host_routes_->Increment();
      m_route_host_seconds_->Observe(answer.route_seconds);
    }
  }
  const KnnResult merged = core::MergeShardAnswers(answers, k);
  m_merge_->Observe(SecondsBetween(merge_start, SteadyClock::now()));

  // Recall self-measurement: every Nth approx group is also answered
  // exactly — same queries, same routes, same index state (we still
  // hold the tenant's index mutex) — and the measured recall@k lands in
  // the histogram. The probe costs one exact group; interval 0 disables
  // it.
  if (!mode.EffectiveExact()) {
    const int interval = config_.ann_recall_probe_interval;
    if (interval > 0 &&
        approx_group_counter_ % static_cast<uint64_t>(interval) == 0) {
      std::vector<core::ShardAnswer> exact_answers(
          static_cast<size_t>(num_shards));
      common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
        const auto idx = static_cast<size_t>(s);
        exact_answers[idx] = tenant->shards[idx]->SearchGroup(
            queries, k, routes[idx], config_.options.metric);
      });
      const KnnResult exact = core::MergeShardAnswers(exact_answers, k);
      // recall@k per row: |approx ids ∩ exact ids| / |exact live ids|
      // (padding rows measure nothing — there is no truth to recall).
      double recall_sum = 0.0;
      size_t measured = 0;
      std::unordered_set<uint32_t> truth;
      for (size_t q = 0; q < rows; ++q) {
        truth.clear();
        for (int j = 0; j < k; ++j) {
          const Neighbor& nb = exact.row(q)[j];
          if (nb.index == kInvalidNeighbor) break;
          truth.insert(nb.index);
        }
        if (truth.empty()) continue;
        size_t hits = 0;
        for (int j = 0; j < k; ++j) {
          if (truth.count(merged.row(q)[j].index) != 0) ++hits;
        }
        recall_sum +=
            static_cast<double>(hits) / static_cast<double>(truth.size());
        ++measured;
      }
      m_recall_probes_->Increment();
      if (measured > 0) {
        m_recall_estimate_->Observe(recall_sum /
                                    static_cast<double>(measured));
      }
    }
    ++approx_group_counter_;
  }

  RecordGroupStats(answers, rows);

  // Slice the merged result back into per-request answers.
  row = 0;
  for (RequestPtr& request : group) {
    KnnResult answer(request->num_rows, k);
    for (size_t q = 0; q < request->num_rows; ++q) {
      std::memcpy(answer.mutable_row(q), merged.row(row + q),
                  static_cast<size_t>(k) * sizeof(Neighbor));
    }
    row += request->num_rows;
    const double seconds =
        SecondsBetween(request->admit_time, SteadyClock::now());
    m_request_latency_->Observe(seconds);
    tenant->m_latency->Observe(seconds);
    request->promise.set_value(Result<KnnResult>(std::move(answer)));
  }
}

void KnnService::RunRangeGroup(std::vector<RequestPtr> group) {
  const std::shared_ptr<TenantIndex> tenant = group[0]->tenant;
  const float radius = group[0]->radius;
  const size_t dims = tenant->dims;
  size_t rows = 0;
  for (const RequestPtr& request : group) rows += request->num_rows;
  HostMatrix queries(rows, dims);
  size_t row = 0;
  for (const RequestPtr& request : group) {
    std::memcpy(queries.mutable_row(row), request->rows.data(),
                request->num_rows * dims * sizeof(float));
    row += request->num_rows;
  }

  // Same index-mutex scope as RunGroup: the whole range group answers
  // against one consistent index state of one tenant.
  std::lock_guard<std::mutex> index_lock(tenant->mutex);
  const int num_shards = static_cast<int>(tenant->shards.size());

  // The planner routes each shard's base scan exactly as it does for
  // kNN groups — both routes are bit-identical — but range scans never
  // feed the device-selectivity EMA (no simulated device runs for
  // them), so no ObserveDeviceRun here.
  std::vector<core::QueryRoute> routes(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    routes[static_cast<size_t>(s)] = planner_.Choose(
        rows, tenant->shards[static_cast<size_t>(s)]->base_rows(), dims);
  }
  std::vector<core::RangeShardAnswer> answers(
      static_cast<size_t>(num_shards));
  const SteadyClock::time_point fanout_start = SteadyClock::now();
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    answers[idx] = tenant->shards[idx]->RangeGroup(
        queries, radius, routes[idx], config_.options.metric);
  });
  const SteadyClock::time_point merge_start = SteadyClock::now();
  m_shard_fanout_->Observe(SecondsBetween(fanout_start, merge_start));
  for (const core::RangeShardAnswer& answer : answers) {
    if (answer.device_routed) {
      m_planner_device_routes_->Increment();
      m_route_device_seconds_->Observe(answer.route_seconds);
    } else {
      m_planner_host_routes_->Increment();
      m_route_host_seconds_->Observe(answer.route_seconds);
    }
  }
  const RangeResult merged = core::MergeRangeShardAnswers(answers, rows);
  m_merge_->Observe(SecondsBetween(merge_start, SteadyClock::now()));

  RecordRangeGroupStats(rows, merged.total_matches());

  // Slice the merged result back into per-request answers.
  row = 0;
  for (RequestPtr& request : group) {
    RangeResult answer;
    for (size_t q = 0; q < request->num_rows; ++q) {
      answer.AppendRow(merged.begin(row + q), merged.count(row + q));
    }
    row += request->num_rows;
    const double seconds =
        SecondsBetween(request->admit_time, SteadyClock::now());
    m_request_latency_->Observe(seconds);
    tenant->m_latency->Observe(seconds);
    request->range_promise.set_value(Result<RangeResult>(std::move(answer)));
  }
}

void KnnService::RecordRangeGroupStats(size_t rows, size_t matches) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.range_groups;
    stats_.range_queries += rows;
    stats_.range_matches += matches;
  }
  m_range_groups_->Increment();
  m_range_queries_->Increment(static_cast<double>(rows));
  m_range_matches_->Increment(static_cast<double>(matches));
}

void KnnService::RecordGroupStats(
    const std::vector<core::ShardAnswer>& answers, size_t rows) {
  double slowest = 0.0;
  double total = 0.0;
  double level1 = 0.0;
  double level2 = 0.0;
  double transfer = 0.0;
  double preprocess = 0.0;
  uint64_t distance_calcs = 0;
  bool any_approx = false;
  uint64_t ann_hops = 0;
  uint64_t ann_candidates = 0;
  for (const core::ShardAnswer& s : answers) {
    if (s.approx) {
      any_approx = true;
      ann_hops += s.ann_hops;
      ann_candidates += s.ann_candidates;
    }
    // A host-routed shard ran no simulated device: its answer carries no
    // device stats and it made no adaptive decisions, so it contributes
    // to neither the sim-time counters nor the decision counts.
    if (!s.device_routed) continue;
    total += s.sim_time_s;
    slowest = std::max(slowest, s.sim_time_s);
    distance_calcs += s.distance_calcs;
    level1 += s.level1_s;
    level2 += s.level2_s;
    preprocess += s.preprocess_s;
    transfer += s.transfer_s;
    (s.filter_used == core::Level2Filter::kFull ? m_filter_full_
                                                : m_filter_partial_)
        ->Increment();
    switch (s.placement_used) {
      case core::KnearestsPlacement::kGlobal:
        m_placement_global_->Increment();
        break;
      case core::KnearestsPlacement::kShared:
        m_placement_shared_->Increment();
        break;
      case core::KnearestsPlacement::kRegisters:
        m_placement_registers_->Increment();
        break;
    }
    m_threads_per_query_->Observe(static_cast<double>(s.threads_per_query));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.engine_groups;
    stats_.batched_queries += rows;
    stats_.total_sim_time_s += total;
    stats_.critical_sim_time_s += slowest;
    stats_.distance_calcs += distance_calcs;
    if (any_approx) {
      ++stats_.approx_groups;
      stats_.approx_queries += rows;
    }
  }
  if (any_approx) {
    m_approx_groups_->Increment();
    m_approx_queries_->Increment(static_cast<double>(rows));
    m_ann_hops_->Increment(static_cast<double>(ann_hops));
    m_ann_candidates_->Increment(static_cast<double>(ann_candidates));
  }
  m_engine_groups_->Increment();
  m_batched_queries_->Increment(static_cast<double>(rows));
  m_sim_total_->Increment(total);
  m_sim_critical_->Increment(slowest);
  m_distance_calcs_->Increment(static_cast<double>(distance_calcs));
  m_sim_level1_->Increment(level1);
  m_sim_level2_->Increment(level2);
  m_sim_transfer_->Increment(transfer);
  m_sim_preprocess_->Increment(preprocess);
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

bool KnnService::OverThreshold(const Shard& shard) const {
  if (config_.compact_delta_fraction <= 0.0) return false;
  const size_t overlay = shard.delta.size() + shard.delta.tombstones.size();
  if (overlay == 0) return false;
  return static_cast<double>(overlay) >
         config_.compact_delta_fraction *
             static_cast<double>(std::max<size_t>(shard.base_rows(), 1));
}

void KnnService::MaybeScheduleCompaction(const Shard& shard) {
  if (!config_.auto_compact) return;
  if (shard.compact_watermark != kNoCompaction) return;
  if (!OverThreshold(shard)) return;
  {
    std::lock_guard<std::mutex> lock(compact_mutex_);
    compact_pending_ = true;
  }
  compact_cv_.notify_one();
}

int KnnService::PickCompactionCandidate(TenantIndex* tenant) {
  std::lock_guard<std::mutex> index_lock(tenant->mutex);
  for (size_t s = 0; s < tenant->shards.size(); ++s) {
    const Shard& shard = *tenant->shards[s];
    if (shard.compact_watermark == kNoCompaction && OverThreshold(shard) &&
        shard.live_rows() > 0) {
      return static_cast<int>(s);
    }
  }
  return -1;
}

void KnnService::CompactorLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(compact_mutex_);
      compact_cv_.wait(lock,
                       [this] { return compact_pending_ || compactor_stop_; });
      if (compactor_stop_) return;
      compact_pending_ = false;
    }
    // Drain every over-threshold shard of every tenant, one rebuild at a
    // time; serving continues throughout (a tenant's index lock is only
    // held for the capture and the install).
    for (;;) {
      if (stopping_.load(std::memory_order_acquire)) break;
      bool progressed = false;
      bool failed = false;
      for (const std::shared_ptr<TenantIndex>& tenant : manager_.All()) {
        if (stopping_.load(std::memory_order_acquire)) break;
        const int candidate = PickCompactionCandidate(tenant.get());
        if (candidate < 0) continue;
        // An abort (epoch superseded by a swap) is already counted; any
        // other status here would be a logic error worth the log line.
        const Status status =
            CompactShardInternal(tenant.get(), candidate);
        if (!status.ok() && status.code() != StatusCode::kUnavailable) {
          SK_LOG(Warning) << "KnnService: background compaction of shard "
                          << candidate << " of index '" << tenant->name
                          << "' failed: " << status.ToString();
          failed = true;
          break;
        }
        progressed = true;
      }
      if (failed || !progressed) break;
    }
  }
}

Status KnnService::CompactShard(int shard) {
  SK_CHECK_GE(shard, 0);
  // The shard count is fixed at construction (SwapIndex replaces the
  // shards but never their number); checking config_ avoids touching
  // the shard vector outside the tenant's mutex.
  SK_CHECK_LT(shard, config_.num_shards);
  return CompactShardInternal(default_tenant_.get(), shard);
}

Status KnnService::CompactShard(const std::string& tenant_name, int shard) {
  Result<std::shared_ptr<TenantIndex>> resolved = ResolveTenant(tenant_name);
  if (!resolved.ok()) return resolved.status();
  SK_CHECK_GE(shard, 0);
  SK_CHECK_LT(shard, resolved.value()->num_shards);
  return CompactShardInternal(resolved.value().get(), shard);
}

Status KnnService::CompactAll() {
  const int num_shards = config_.num_shards;
  for (int s = 0; s < num_shards; ++s) {
    SK_RETURN_IF_ERROR(CompactShardInternal(default_tenant_.get(), s));
  }
  return Status::Ok();
}

Status KnnService::CompactAll(const std::string& tenant_name) {
  Result<std::shared_ptr<TenantIndex>> resolved = ResolveTenant(tenant_name);
  if (!resolved.ok()) return resolved.status();
  const std::shared_ptr<TenantIndex> tenant = std::move(resolved).value();
  for (int s = 0; s < tenant->num_shards; ++s) {
    SK_RETURN_IF_ERROR(CompactShardInternal(tenant.get(), s));
  }
  return Status::Ok();
}

Status KnnService::CompactShardInternal(TenantIndex* tenant, int s) {
  const SteadyClock::time_point start = SteadyClock::now();
  CompactionPlan plan;
  bool ann_enabled = false;
  ann::GraphBuildParams ann_params;
  // Capture: everything the rebuild needs, snapshotted under the tenant's
  // index lock. The consumed prefix is delta[0..watermark); entries
  // appended after the capture stay in the suffix and carry over
  // untouched.
  {
    std::lock_guard<std::mutex> index_lock(tenant->mutex);
    Shard& shard = *tenant->shards[static_cast<size_t>(s)];
    if (shard.compact_watermark != kNoCompaction) {
      return Status::Unavailable(
          "shard " + std::to_string(s) +
          " already has a compaction in flight");
    }
    if (shard.delta.Pristine()) return Status::Ok();  // nothing to fold
    if (shard.live_rows() == 0) {
      // Every point removed: an empty base cannot be clustered. The
      // overlay stays as is; queries keep answering all padding.
      return Status::Ok();
    }
    // The live shard's params carry the resolved worker count
    // (ConfigureAnn's fallback), so the rebuilt graph parallelizes the
    // same way the original build did.
    ann_enabled = shard.ann_enabled();
    ann_params = shard.ann_params();
    CaptureCompaction(&shard, s, &plan);
  }

  // Rebuild off-lock: a fresh simulated device (so the adaptive scheme
  // sees the same free memory a cold build would) and a full Step-1
  // clustering over the captured points. Serving continues against the
  // old shard the whole time. The capture/rebuild/carry-over protocol is
  // shared with the shard workers (serve/shard_backend.h), so a
  // compaction on either backend produces the identical fresh shard.
  core::TiOptions shard_options = config_.options;
  shard_options.sim_threads = 1;
  std::unique_ptr<Shard> fresh =
      RebuildCompacted(plan, config_.device, shard_options, tenant->dims,
                       ann_enabled, ann_params);

  // Install: only if the shard we captured from is still the live one
  // (a SwapIndex assigns fresh epochs, orphaning this rebuild).
  std::unique_ptr<Shard> retired;
  {
    std::lock_guard<std::mutex> index_lock(tenant->mutex);
    if (static_cast<size_t>(s) >= tenant->shards.size() ||
        tenant->shards[static_cast<size_t>(s)]->epoch != plan.epoch) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.compaction_aborts;
      }
      m_compaction_aborts_->Increment();
      return Status::Unavailable(
          "shard " + std::to_string(s) +
          " was replaced while its compaction ran; rebuild discarded");
    }
    // Mutations that landed during the rebuild carry over: the delta
    // suffix verbatim (its entries are never tombstoned — removes past
    // the watermark erase physically), and removes of captured rows as
    // tombstones of the new base.
    CarryOverlayForward(*tenant->shards[static_cast<size_t>(s)], plan,
                        fresh.get());
    fresh->epoch = ++epoch_counter_;
    tenant->shards[static_cast<size_t>(s)].swap(fresh);
    tenant->shard_offsets[static_cast<size_t>(s)] =
        tenant->shards[static_cast<size_t>(s)]->offset;
    retired = std::move(fresh);
    BumpCacheEpoch();
    UpdateOverlayGaugesLocked(tenant);
  }
  retired.reset();  // the old engine dies here, off the serving path
  RefreshGlobalOverlayGauges();
  ClearCache();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.compactions;
  }
  m_compactions_->Increment();
  m_compacted_rows_->Increment(static_cast<double>(plan.points.rows()));
  m_compaction_seconds_->Observe(SecondsBetween(start, SteadyClock::now()));
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

Result<std::vector<store::IndexSnapshot>> KnnService::LoadShardSet(
    const std::string& dir, int num_shards, const ServiceConfig& config,
    size_t dims, bool allow_overlay) {
  Result<std::vector<std::string>> listed = store::ListShardSnapshots(dir);
  if (!listed.ok()) return listed.status();
  if (static_cast<int>(listed.value().size()) != num_shards) {
    return Status::InvalidArgument(
        dir + " holds " + std::to_string(listed.value().size()) +
        " shard snapshots, this service has " + std::to_string(num_shards) +
        " shards");
  }

  // Snapshot files parse and validate independently: fan the reads out
  // over the host pool.
  std::vector<store::IndexSnapshot> snapshots(
      static_cast<size_t>(num_shards));
  std::vector<Status> statuses(static_cast<size_t>(num_shards));
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    Result<store::IndexSnapshot> snap = store::LoadIndexSnapshot(
        store::ShardSnapshotPath(dir, s, num_shards));
    if (snap.ok()) {
      snapshots[idx] = std::move(snap).value();
    } else {
      statuses[idx] = snap.status();
    }
  });

  const std::string want_options = store::OptionsFingerprint(config.options);
  const std::string want_device = store::DeviceFingerprint(config.device);
  bool any_overlay = false;
  for (int s = 0; s < num_shards; ++s) {
    const auto idx = static_cast<size_t>(s);
    SK_RETURN_IF_ERROR(statuses[idx]);
    const store::IndexSnapshot& snap = snapshots[idx];
    const std::string where =
        store::ShardSnapshotPath(dir, s, num_shards);
    if (snap.shard_index != static_cast<uint32_t>(s) ||
        snap.shard_count != static_cast<uint32_t>(num_shards)) {
      return Status::InvalidArgument(
          where + " records shard " + std::to_string(snap.shard_index) +
          "-of-" + std::to_string(snap.shard_count) + ", expected " +
          std::to_string(s) + "-of-" + std::to_string(num_shards));
    }
    if (dims == 0) dims = snapshots[0].target.cols();
    if (snap.target.cols() != dims) {
      return Status::InvalidArgument(
          where + " holds " + std::to_string(snap.target.cols()) +
          "-dimensional points, this service serves " +
          std::to_string(dims) + " dimensions");
    }
    if (snap.options_fingerprint != want_options) {
      return Status::InvalidArgument(
          where + " was built under different options: file has [" +
          snap.options_fingerprint + "], this service is [" + want_options +
          "]");
    }
    if (snap.device_fingerprint != want_device) {
      return Status::InvalidArgument(
          where + " was built for a different device: file has [" +
          snap.device_fingerprint + "], this service is [" + want_device +
          "]");
    }
    if (snap.HasOverlay()) {
      if (!allow_overlay) {
        return Status::InvalidArgument(
            where + " carries a mutation overlay; adopt mutated snapshot "
            "sets with KnnService::FromSnapshots");
      }
      any_overlay = true;
    }
  }

  if (!any_overlay) {
    // Pristine sets must tile the target: shard s's rows are global rows
    // [offset, offset + rows).
    uint64_t next_offset = 0;
    for (int s = 0; s < num_shards; ++s) {
      const store::IndexSnapshot& snap = snapshots[static_cast<size_t>(s)];
      if (snap.shard_offset != next_offset) {
        return Status::InvalidArgument(
            store::ShardSnapshotPath(dir, s, num_shards) +
            " starts at global row " + std::to_string(snap.shard_offset) +
            ", expected " + std::to_string(next_offset) +
            " (shards must tile the target)");
      }
      next_offset += snap.target.rows();
    }
  } else {
    // Mutated sets no longer tile; what must hold instead is that every
    // stable id — base (tombstoned or not) and delta — lives in exactly
    // one shard.
    std::vector<uint32_t> all_ids;
    for (const store::IndexSnapshot& snap : snapshots) {
      for (size_t i = 0; i < snap.target.rows(); ++i) {
        all_ids.push_back(SnapshotBaseId(snap, i));
      }
      all_ids.insert(all_ids.end(), snap.delta_ids.begin(),
                     snap.delta_ids.end());
    }
    std::sort(all_ids.begin(), all_ids.end());
    const auto dup = std::adjacent_find(all_ids.begin(), all_ids.end());
    if (dup != all_ids.end()) {
      return Status::InvalidArgument(
          dir + ": stable id " + std::to_string(*dup) +
          " appears in more than one shard snapshot");
    }
  }
  return snapshots;
}

KnnService::ShardSet KnnService::BuildShardsFromSnapshots(
    std::vector<store::IndexSnapshot> snapshots) const {
  core::TiOptions shard_options = config_.options;
  shard_options.sim_threads = 1;
  const int num_shards = static_cast<int>(snapshots.size());
  ShardSet set;
  set.next_id = 0;
  for (int s = 0; s < num_shards; ++s) {
    const auto idx = static_cast<size_t>(s);
    store::IndexSnapshot& snap = snapshots[idx];
    auto shard = std::make_unique<Shard>(config_.device, shard_options);
    shard->ConfigureAnn(config_.enable_ann, config_.ann_params,
                        config_.options.sim_threads);
    shard->AdoptOverlay(snap);
    set.live_rows += shard->live_rows();
    // The id allocator restarts strictly above every id any shard knows
    // (file next_ids already satisfy that; pristine shards contribute
    // their last base id).
    uint32_t ceiling = shard->BaseId(snap.target.rows() - 1) + 1;
    if (!snap.delta_ids.empty()) {
      ceiling = std::max(ceiling, snap.delta_ids.back() + 1);
    }
    set.next_id = std::max({set.next_id, snap.next_id, ceiling});
    set.offsets.push_back(shard->offset);
    set.shards.push_back(std::move(shard));
  }
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    set.shards[idx]->RestoreBase(snapshots[idx].target,
                                 snapshots[idx].clustering);
  });
  return set;
}

store::IndexSnapshot KnnService::ExportShard(const TenantIndex& tenant,
                                             int s) const {
  return tenant.shards[static_cast<size_t>(s)]->Export(
      config_.dataset_name, "KnnService::SaveSnapshots",
      static_cast<uint32_t>(s), static_cast<uint32_t>(tenant.shards.size()),
      store::OptionsFingerprint(config_.options),
      store::DeviceFingerprint(config_.device), tenant.next_id);
}

Status KnnService::SaveTenantSnapshots(TenantIndex* tenant,
                                       const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create snapshot directory " + dir + ": " +
                           ec.message());
  }
  std::lock_guard<std::mutex> index_lock(tenant->mutex);
  const int num_shards = static_cast<int>(tenant->shards.size());
  for (int s = 0; s < num_shards; ++s) {
    SK_RETURN_IF_ERROR(store::SaveIndexSnapshot(
        ExportShard(*tenant, s),
        store::ShardSnapshotPath(dir, s, num_shards)));
  }
  return Status::Ok();
}

Status KnnService::SaveSnapshots(const std::string& dir) {
  // The default tenant saves at the root — byte-identical to the
  // single-tenant layout — and every named tenant under "<dir>/<name>/"
  // (ListShardSnapshots ignores subdirectories, so the extra tenant
  // directories never confuse a legacy load of the root).
  SK_RETURN_IF_ERROR(SaveTenantSnapshots(default_tenant_.get(), dir));
  for (const std::shared_ptr<TenantIndex>& tenant : manager_.All()) {
    if (tenant->name == kDefaultTenant) continue;
    SK_RETURN_IF_ERROR(SaveTenantSnapshots(
        tenant.get(),
        (std::filesystem::path(dir) / tenant->name).string()));
  }
  return Status::Ok();
}

Status KnnService::SaveSnapshots(const std::string& tenant_name,
                                 const std::string& dir) {
  Result<std::shared_ptr<TenantIndex>> resolved = ResolveTenant(tenant_name);
  if (!resolved.ok()) return resolved.status();
  return SaveTenantSnapshots(resolved.value().get(), dir);
}

Status KnnService::SwapIndex(const std::string& dir) {
  return SwapIndexInternal(default_tenant_.get(), dir);
}

Status KnnService::SwapIndex(const std::string& tenant_name,
                             const std::string& dir) {
  Result<std::shared_ptr<TenantIndex>> resolved = ResolveTenant(tenant_name);
  if (!resolved.ok()) return resolved.status();
  return SwapIndexInternal(resolved.value().get(), dir);
}

Status KnnService::SwapIndexInternal(TenantIndex* tenant,
                                     const std::string& dir) {
  // The shard vector itself is index-mutex territory; the fixed count is
  // not.
  const int num_shards = tenant->num_shards;
  Result<std::vector<store::IndexSnapshot>> loaded = LoadShardSet(
      dir, num_shards, config_, tenant->dims, /*allow_overlay=*/true);
  if (!loaded.ok()) return loaded.status();

  // Re-materialize the replacement generation off to the side; the live
  // index keeps serving while this runs.
  ShardSet set = BuildShardsFromSnapshots(std::move(loaded).value());

  {
    std::lock_guard<std::mutex> index_lock(tenant->mutex);
    // Fresh epochs orphan every compaction captured against the old
    // generation: its install will see a mismatch and discard itself.
    for (std::unique_ptr<Shard>& shard : set.shards) {
      shard->epoch = ++epoch_counter_;
    }
    tenant->shards.swap(set.shards);
    tenant->shard_offsets = std::move(set.offsets);
    tenant->target_rows = set.live_rows;
    // The allocator never rewinds — ids of the replaced generation must
    // stay retired, or a later insert could collide with an id a client
    // still holds.
    tenant->next_id = std::max(tenant->next_id, set.next_id);
    // Bump the generation before the cache clear below: any in-flight
    // request that computed its answer against the old shards now holds
    // a stale epoch tag, so its CacheInsert is dropped whether it lands
    // before or after the clear.
    index_generation_.fetch_add(1, std::memory_order_acq_rel);
    BumpCacheEpoch();
    UpdateOverlayGaugesLocked(tenant);
  }
  m_index_generation_->Set(
      static_cast<double>(index_generation_.load(std::memory_order_acquire)));
  // `set.shards` now holds the previous generation; it dies here, after
  // the lock, so teardown never blocks the dispatcher.
  set.shards.clear();
  RefreshGlobalOverlayGauges();
  ClearCache();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.index_swaps;
  }
  m_index_swaps_->Increment();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Stats, metrics, cache
// ---------------------------------------------------------------------------

void KnnService::BumpCacheEpoch() {
  cache_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void KnnService::ClearCache() {
  if (config_.cache_capacity == 0) return;
  std::lock_guard<std::mutex> cache_lock(cache_mutex_);
  cache_.clear();
  lru_.clear();
}

void KnnService::UpdateOverlayGaugesLocked(TenantIndex* tenant) {
  size_t delta_points = 0;
  size_t tombstones = 0;
  for (const std::unique_ptr<Shard>& shard : tenant->shards) {
    delta_points += shard->delta.size();
    tombstones += shard->delta.tombstones.size();
  }
  tenant->delta_points.store(delta_points, std::memory_order_release);
  tenant->tombstones.store(tombstones, std::memory_order_release);
  tenant->live_rows.store(tenant->target_rows, std::memory_order_release);
  tenant->m_live_rows->Set(static_cast<double>(tenant->target_rows));
}

void KnnService::RefreshGlobalOverlayGauges() {
  uint64_t delta_points = 0;
  uint64_t tombstones = 0;
  uint64_t live_rows = 0;
  // Sums the per-tenant atomics — no tenant's index mutex is taken, so
  // this is safe from any locking context (see the lock-order note).
  for (const std::shared_ptr<TenantIndex>& tenant : manager_.All()) {
    delta_points += tenant->delta_points.load(std::memory_order_acquire);
    tombstones += tenant->tombstones.load(std::memory_order_acquire);
    live_rows += tenant->live_rows.load(std::memory_order_acquire);
  }
  m_delta_points_->Set(static_cast<double>(delta_points));
  m_tombstones_->Set(static_cast<double>(tombstones));
  m_live_rows_->Set(static_cast<double>(live_rows));
}

size_t KnnService::target_rows() const {
  std::lock_guard<std::mutex> lock(default_tenant_->mutex);
  return default_tenant_->target_rows;
}

Result<size_t> KnnService::target_rows(const std::string& tenant_name) const {
  Result<std::shared_ptr<TenantIndex>> resolved = ResolveTenant(tenant_name);
  if (!resolved.ok()) return resolved.status();
  std::lock_guard<std::mutex> lock(resolved.value()->mutex);
  return resolved.value()->target_rows;
}

ServiceStats KnnService::stats() const {
  ServiceStats snapshot;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    snapshot = stats_;
  }
  // The overlay sums come from the per-tenant atomics (maintained under
  // each tenant's mutex by UpdateOverlayGaugesLocked) — no index mutex
  // is taken, so stats() can never stall behind a compaction install.
  uint64_t delta_points = 0;
  uint64_t tombstones = 0;
  for (const std::shared_ptr<TenantIndex>& tenant : manager_.All()) {
    delta_points += tenant->delta_points.load(std::memory_order_acquire);
    tombstones += tenant->tombstones.load(std::memory_order_acquire);
  }
  snapshot.delta_points = delta_points;
  snapshot.tombstones = tombstones;
  snapshot.peak_queue_depth = queue_.peak_depth();
  return snapshot;
}

std::string KnnService::ExportMetricsJson() const {
  m_queue_depth_->Set(static_cast<double>(queue_.size()));
  m_peak_queue_depth_->Set(static_cast<double>(queue_.peak_depth()));
  m_tenants_->Set(static_cast<double>(manager_.size()));
  return metrics_.ExportJson();
}

std::string KnnService::ExportMetricsText() const {
  m_queue_depth_->Set(static_cast<double>(queue_.size()));
  m_peak_queue_depth_->Set(static_cast<double>(queue_.peak_depth()));
  m_tenants_->Set(static_cast<double>(manager_.size()));
  return metrics_.ExportPrometheusText();
}

std::string KnnService::CacheKey(const std::string& tenant, const float* row,
                                 size_t dims, int k,
                                 const ann::SearchMode& mode) {
  // `mode` arrives normalized, so every effectively exact request maps
  // to the one exact key for its (tenant, k, point). The tenant prefix
  // ends at the NUL — tenant names cannot contain one (ValidName) — so
  // two tenants' keys can never alias.
  const uint32_t kind = static_cast<uint32_t>(mode.kind);
  std::string key(tenant.size() + 1 + sizeof(int) + sizeof(uint32_t) +
                      sizeof(double) + sizeof(int) + dims * sizeof(float),
                  '\0');
  char* p = key.data();
  std::memcpy(p, tenant.data(), tenant.size());
  p += tenant.size() + 1;  // the NUL separator is already there
  std::memcpy(p, &k, sizeof(int));
  p += sizeof(int);
  std::memcpy(p, &kind, sizeof(uint32_t));
  p += sizeof(uint32_t);
  std::memcpy(p, &mode.recall_target, sizeof(double));
  p += sizeof(double);
  std::memcpy(p, &mode.ef, sizeof(int));
  p += sizeof(int);
  std::memcpy(p, row, dims * sizeof(float));
  return key;
}

bool KnnService::CacheLookup(const std::string& key,
                             std::vector<Neighbor>* out) {
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      *out = it->second.neighbors;
      hit = true;
    }
  }
  // Stats are recorded after releasing cache_mutex_: stats_mutex_ never
  // nests inside the cache lock (see the lock-order note in the header).
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.cache_lookups;
    if (hit) ++stats_.cache_hits;
  }
  m_cache_lookups_->Increment();
  if (hit) m_cache_hits_->Increment();
  return hit;
}

void KnnService::CacheInsert(const std::string& key,
                             std::vector<Neighbor> value, uint64_t epoch) {
  bool stale = false;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    // A swap, mutation, or compaction that completed after this answer
    // was computed has already bumped the cache epoch (under the
    // tenant's index mutex, before clearing the cache): inserting now
    // would serve pre-change neighbors forever.
    if (cache_epoch_.load(std::memory_order_acquire) != epoch) {
      stale = true;
    } else {
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        it->second.neighbors = std::move(value);
      } else {
        lru_.push_front(key);
        cache_.emplace(key, CacheEntry{lru_.begin(), std::move(value)});
        while (cache_.size() > config_.cache_capacity) {
          cache_.erase(lru_.back());
          lru_.pop_back();
        }
      }
    }
  }
  if (stale) {
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.cache_stale_drops;
    }
    m_cache_stale_drops_->Increment();
  }
}

}  // namespace sweetknn::serve
