#include "serve/knn_service.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/shard_merge.h"

namespace sweetknn::serve {

KnnService::KnnService(const HostMatrix& target, const ServiceConfig& config)
    : config_(config), target_rows_(target.rows()), dims_(target.cols()) {
  SK_CHECK(!target.empty()) << "KnnService needs a non-empty target set";
  SK_CHECK_GT(config_.max_batch_size, 0);
  const int num_shards = std::clamp(
      config_.num_shards, 1, static_cast<int>(target_rows_));

  // Each shard simulates its own device, so the shard fan-out below is the
  // host-parallel axis. The shard engines are pinned to one execution
  // thread: ThreadPool::ForkJoin is non-reentrant from slot 0, so a shard
  // running inside the fan-out must never open a nested region — and by
  // the execution engine's guarantee this changes nothing but wall-clock.
  core::TiOptions shard_options = config_.options;
  shard_options.sim_threads = 1;

  const size_t base = target_rows_ / static_cast<size_t>(num_shards);
  const size_t rem = target_rows_ % static_cast<size_t>(num_shards);
  std::vector<HostMatrix> slices;
  size_t offset = 0;
  for (int s = 0; s < num_shards; ++s) {
    const size_t rows = base + (static_cast<size_t>(s) < rem ? 1 : 0);
    HostMatrix slice(rows, dims_);
    std::memcpy(slice.mutable_data(), target.row(offset),
                rows * dims_ * sizeof(float));
    slices.push_back(std::move(slice));
    auto shard = std::make_unique<Shard>(config_.device, shard_options);
    shard->offset = static_cast<uint32_t>(offset);
    shard_offsets_.push_back(static_cast<uint32_t>(offset));
    shards_.push_back(std::move(shard));
    offset += rows;
  }
  // Build the per-shard indexes (upload + landmark clustering) in
  // parallel; each PrepareTarget touches only its own device.
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    shards_[static_cast<size_t>(s)]->engine.PrepareTarget(
        slices[static_cast<size_t>(s)]);
  });

  dispatcher_ = std::thread(&KnnService::DispatchLoop, this);
}

KnnService::~KnnService() { Shutdown(); }

void KnnService::Shutdown() {
  shut_down_.store(true, std::memory_order_release);
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<KnnResult> KnnService::Submit(RequestPtr request) {
  SK_CHECK(!shut_down_.load(std::memory_order_acquire))
      << "KnnService: request after Shutdown()";
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
    stats_.queries += request->num_rows;
  }
  std::future<KnnResult> future = request->promise.get_future();
  SK_CHECK(queue_.Push(std::move(request)))
      << "KnnService: request after Shutdown()";
  return future;
}

std::vector<Neighbor> KnnService::Search(
    const std::vector<float>& query_point, int k) {
  SK_CHECK_EQ(query_point.size(), dims_);
  SK_CHECK_GT(k, 0);
  std::string key;
  if (config_.cache_capacity > 0) {
    key = CacheKey(query_point.data(), dims_, k);
    std::vector<Neighbor> cached;
    if (CacheLookup(key, &cached)) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests;
      ++stats_.queries;
      return cached;
    }
  }

  auto request = std::make_unique<Request>();
  request->rows = query_point;
  request->num_rows = 1;
  request->k = k;
  const KnnResult result = Submit(std::move(request)).get();
  std::vector<Neighbor> neighbors(result.row(0), result.row(0) + result.k());
  if (config_.cache_capacity > 0) CacheInsert(key, neighbors);
  return neighbors;
}

KnnResult KnnService::JoinBatch(const HostMatrix& queries, int k) {
  SK_CHECK(!queries.empty());
  SK_CHECK_EQ(queries.cols(), dims_);
  SK_CHECK_GT(k, 0);
  auto request = std::make_unique<Request>();
  request->rows = queries.storage();
  request->num_rows = queries.rows();
  request->k = k;
  return Submit(std::move(request)).get();
}

void KnnService::DispatchLoop() {
  RequestPtr first;
  while (queue_.WaitPop(&first)) {
    // Micro-batching: coalesce admitted requests until max_batch_size
    // query rows are on board or max_batch_wait has passed since the
    // batch opened.
    std::vector<RequestPtr> batch;
    size_t rows = first->num_rows;
    batch.push_back(std::move(first));
    const auto deadline =
        std::chrono::steady_clock::now() + config_.max_batch_wait;
    while (rows < static_cast<size_t>(config_.max_batch_size)) {
      RequestPtr next;
      if (!queue_.TryPop(&next)) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline || !queue_.WaitPopFor(&next, deadline - now)) {
          break;  // the batch is as full as it will get
        }
      }
      rows += next->num_rows;
      batch.push_back(std::move(next));
    }

    // One engine batch per distinct k, preserving admission order within
    // each group (and deterministic k order across groups).
    std::map<int, std::vector<RequestPtr>> by_k;
    for (RequestPtr& request : batch) {
      by_k[request->k].push_back(std::move(request));
    }
    for (auto& [k, group] : by_k) {
      (void)k;
      RunGroup(std::move(group));
    }
  }
}

void KnnService::RunGroup(std::vector<RequestPtr> group) {
  const int k = group[0]->k;
  size_t rows = 0;
  for (const RequestPtr& request : group) rows += request->num_rows;
  HostMatrix queries(rows, dims_);
  size_t row = 0;
  for (const RequestPtr& request : group) {
    std::memcpy(queries.mutable_row(row), request->rows.data(),
                request->num_rows * dims_ * sizeof(float));
    row += request->num_rows;
  }

  const int num_shards = static_cast<int>(shards_.size());
  std::vector<KnnResult> shard_results(static_cast<size_t>(num_shards));
  std::vector<core::KnnRunStats> shard_stats(
      static_cast<size_t>(num_shards));
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    shard_results[idx] =
        shards_[idx]->engine.RunQueries(queries, k, &shard_stats[idx]);
  });
  const KnnResult merged =
      core::MergeShardResults(shard_results, shard_offsets_, k);

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches;
    stats_.batched_queries += rows;
    double slowest = 0.0;
    for (const core::KnnRunStats& s : shard_stats) {
      stats_.total_sim_time_s += s.sim_time_s;
      slowest = std::max(slowest, s.sim_time_s);
      stats_.distance_calcs += s.distance_calcs;
    }
    stats_.critical_sim_time_s += slowest;
  }

  // Slice the merged result back into per-request answers.
  row = 0;
  for (RequestPtr& request : group) {
    KnnResult answer(request->num_rows, k);
    for (size_t q = 0; q < request->num_rows; ++q) {
      std::memcpy(answer.mutable_row(q), merged.row(row + q),
                  static_cast<size_t>(k) * sizeof(Neighbor));
    }
    row += request->num_rows;
    request->promise.set_value(std::move(answer));
  }
}

ServiceStats KnnService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ServiceStats snapshot = stats_;
  snapshot.peak_queue_depth = queue_.peak_depth();
  return snapshot;
}

std::string KnnService::CacheKey(const float* row, size_t dims, int k) {
  std::string key(sizeof(int) + dims * sizeof(float), '\0');
  std::memcpy(key.data(), &k, sizeof(int));
  std::memcpy(key.data() + sizeof(int), row, dims * sizeof(float));
  return key;
}

bool KnnService::CacheLookup(const std::string& key,
                             std::vector<Neighbor>* out) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.cache_lookups;
  }
  auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  *out = it->second.neighbors;
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  ++stats_.cache_hits;
  return true;
}

void KnnService::CacheInsert(const std::string& key,
                             std::vector<Neighbor> value) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    it->second.neighbors = std::move(value);
    return;
  }
  lru_.push_front(key);
  cache_.emplace(key, CacheEntry{lru_.begin(), std::move(value)});
  while (cache_.size() > config_.cache_capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace sweetknn::serve
