#include "serve/knn_service.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/shard_merge.h"

namespace sweetknn::serve {

KnnService::KnnService(const HostMatrix& target, const ServiceConfig& config)
    : config_(config), dims_(target.cols()), target_rows_(target.rows()) {
  SK_CHECK(!target.empty()) << "KnnService needs a non-empty target set";
  SK_CHECK_GT(config_.max_batch_size, 0);
  const int num_shards = std::clamp(
      config_.num_shards, 1, static_cast<int>(target_rows_));

  // Each shard simulates its own device, so the shard fan-out below is the
  // host-parallel axis. The shard engines are pinned to one execution
  // thread: ThreadPool::ForkJoin is non-reentrant from slot 0, so a shard
  // running inside the fan-out must never open a nested region — and by
  // the execution engine's guarantee this changes nothing but wall-clock.
  core::TiOptions shard_options = config_.options;
  shard_options.sim_threads = 1;

  const size_t base = target_rows_ / static_cast<size_t>(num_shards);
  const size_t rem = target_rows_ % static_cast<size_t>(num_shards);
  std::vector<HostMatrix> slices;
  size_t offset = 0;
  for (int s = 0; s < num_shards; ++s) {
    const size_t rows = base + (static_cast<size_t>(s) < rem ? 1 : 0);
    HostMatrix slice(rows, dims_);
    std::memcpy(slice.mutable_data(), target.row(offset),
                rows * dims_ * sizeof(float));
    slices.push_back(std::move(slice));
    auto shard = std::make_unique<Shard>(config_.device, shard_options);
    shard->offset = static_cast<uint32_t>(offset);
    shard_offsets_.push_back(static_cast<uint32_t>(offset));
    shards_.push_back(std::move(shard));
    offset += rows;
  }
  // Warm start: restore the prepared indexes from the snapshot directory
  // if one is configured and its contents match this service exactly;
  // anything less falls back to the cold build below (correctness never
  // depends on the snapshots).
  std::vector<store::IndexSnapshot> snapshots;
  bool warm = false;
  if (!config_.snapshot_dir.empty()) {
    Result<std::vector<store::IndexSnapshot>> loaded =
        LoadShardSet(config_.snapshot_dir, num_shards, config_, dims_);
    if (loaded.ok()) {
      snapshots = std::move(loaded).value();
      warm = true;
      for (int s = 0; s < num_shards; ++s) {
        const auto idx = static_cast<size_t>(s);
        const store::IndexSnapshot& snap = snapshots[idx];
        if (snap.shard_offset != shard_offsets_[idx] ||
            snap.target.rows() != slices[idx].rows() ||
            std::memcmp(snap.target.data(), slices[idx].data(),
                        slices[idx].size() * sizeof(float)) != 0) {
          SK_LOG(Warning) << "KnnService: snapshot shard " << s
                          << " does not hold this target's bytes; "
                          << "cold-building all shards";
          warm = false;
          break;
        }
      }
    } else {
      SK_LOG(Warning) << "KnnService: warm start from '"
                      << config_.snapshot_dir << "' failed ("
                      << loaded.status().ToString()
                      << "); cold-building all shards";
    }
  }

  // Build the per-shard indexes in parallel; each PrepareTarget /
  // RestoreTarget touches only its own device.
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    if (warm) {
      shards_[idx]->engine.RestoreTarget(snapshots[idx].target,
                                         snapshots[idx].clustering);
    } else {
      shards_[idx]->engine.PrepareTarget(slices[idx]);
    }
  });
  if (warm) stats_.warm_started_shards = static_cast<uint64_t>(num_shards);

  dispatcher_ = std::thread(&KnnService::DispatchLoop, this);
}

KnnService::~KnnService() { Shutdown(); }

void KnnService::Shutdown() {
  shut_down_.store(true, std::memory_order_release);
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<KnnResult> KnnService::Submit(RequestPtr request) {
  SK_CHECK(!shut_down_.load(std::memory_order_acquire))
      << "KnnService: request after Shutdown()";
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
    stats_.queries += request->num_rows;
  }
  std::future<KnnResult> future = request->promise.get_future();
  SK_CHECK(queue_.Push(std::move(request)))
      << "KnnService: request after Shutdown()";
  return future;
}

std::vector<Neighbor> KnnService::Search(
    const std::vector<float>& query_point, int k) {
  SK_CHECK_EQ(query_point.size(), dims_);
  SK_CHECK_GT(k, 0);
  std::string key;
  if (config_.cache_capacity > 0) {
    key = CacheKey(query_point.data(), dims_, k);
    std::vector<Neighbor> cached;
    if (CacheLookup(key, &cached)) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests;
      ++stats_.queries;
      return cached;
    }
  }

  auto request = std::make_unique<Request>();
  request->rows = query_point;
  request->num_rows = 1;
  request->k = k;
  const KnnResult result = Submit(std::move(request)).get();
  std::vector<Neighbor> neighbors(result.row(0), result.row(0) + result.k());
  if (config_.cache_capacity > 0) CacheInsert(key, neighbors);
  return neighbors;
}

KnnResult KnnService::JoinBatch(const HostMatrix& queries, int k) {
  SK_CHECK(!queries.empty());
  SK_CHECK_EQ(queries.cols(), dims_);
  SK_CHECK_GT(k, 0);
  auto request = std::make_unique<Request>();
  request->rows = queries.storage();
  request->num_rows = queries.rows();
  request->k = k;
  return Submit(std::move(request)).get();
}

void KnnService::DispatchLoop() {
  RequestPtr first;
  while (queue_.WaitPop(&first)) {
    // Micro-batching: coalesce admitted requests until max_batch_size
    // query rows are on board or max_batch_wait has passed since the
    // batch opened.
    std::vector<RequestPtr> batch;
    size_t rows = first->num_rows;
    batch.push_back(std::move(first));
    const auto deadline =
        std::chrono::steady_clock::now() + config_.max_batch_wait;
    while (rows < static_cast<size_t>(config_.max_batch_size)) {
      RequestPtr next;
      if (!queue_.TryPop(&next)) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline || !queue_.WaitPopFor(&next, deadline - now)) {
          break;  // the batch is as full as it will get
        }
      }
      rows += next->num_rows;
      batch.push_back(std::move(next));
    }

    // One engine batch per distinct k, preserving admission order within
    // each group (and deterministic k order across groups).
    std::map<int, std::vector<RequestPtr>> by_k;
    for (RequestPtr& request : batch) {
      by_k[request->k].push_back(std::move(request));
    }
    for (auto& [k, group] : by_k) {
      (void)k;
      RunGroup(std::move(group));
    }
  }
}

void KnnService::RunGroup(std::vector<RequestPtr> group) {
  const int k = group[0]->k;
  size_t rows = 0;
  for (const RequestPtr& request : group) rows += request->num_rows;
  HostMatrix queries(rows, dims_);
  size_t row = 0;
  for (const RequestPtr& request : group) {
    std::memcpy(queries.mutable_row(row), request->rows.data(),
                request->num_rows * dims_ * sizeof(float));
    row += request->num_rows;
  }

  // The whole group runs against one index generation: a concurrent
  // SwapIndex waits here (or we wait for it), so no request's rows can
  // straddle a swap.
  std::lock_guard<std::mutex> index_lock(index_mutex_);
  const int num_shards = static_cast<int>(shards_.size());
  std::vector<KnnResult> shard_results(static_cast<size_t>(num_shards));
  std::vector<core::KnnRunStats> shard_stats(
      static_cast<size_t>(num_shards));
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    shard_results[idx] =
        shards_[idx]->engine.RunQueries(queries, k, &shard_stats[idx]);
  });
  const KnnResult merged =
      core::MergeShardResults(shard_results, shard_offsets_, k);

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches;
    stats_.batched_queries += rows;
    double slowest = 0.0;
    for (const core::KnnRunStats& s : shard_stats) {
      stats_.total_sim_time_s += s.sim_time_s;
      slowest = std::max(slowest, s.sim_time_s);
      stats_.distance_calcs += s.distance_calcs;
    }
    stats_.critical_sim_time_s += slowest;
  }

  // Slice the merged result back into per-request answers.
  row = 0;
  for (RequestPtr& request : group) {
    KnnResult answer(request->num_rows, k);
    for (size_t q = 0; q < request->num_rows; ++q) {
      std::memcpy(answer.mutable_row(q), merged.row(row + q),
                  static_cast<size_t>(k) * sizeof(Neighbor));
    }
    row += request->num_rows;
    request->promise.set_value(std::move(answer));
  }
}

Result<std::vector<store::IndexSnapshot>> KnnService::LoadShardSet(
    const std::string& dir, int num_shards, const ServiceConfig& config,
    size_t dims) {
  Result<std::vector<std::string>> listed = store::ListShardSnapshots(dir);
  if (!listed.ok()) return listed.status();
  if (static_cast<int>(listed.value().size()) != num_shards) {
    return Status::InvalidArgument(
        dir + " holds " + std::to_string(listed.value().size()) +
        " shard snapshots, this service has " + std::to_string(num_shards) +
        " shards");
  }

  // Snapshot files parse and validate independently: fan the reads out
  // over the host pool.
  std::vector<store::IndexSnapshot> snapshots(
      static_cast<size_t>(num_shards));
  std::vector<Status> statuses(static_cast<size_t>(num_shards));
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    Result<store::IndexSnapshot> snap = store::LoadIndexSnapshot(
        store::ShardSnapshotPath(dir, s, num_shards));
    if (snap.ok()) {
      snapshots[idx] = std::move(snap).value();
    } else {
      statuses[idx] = snap.status();
    }
  });

  const std::string want_options = store::OptionsFingerprint(config.options);
  const std::string want_device = store::DeviceFingerprint(config.device);
  uint64_t next_offset = 0;
  for (int s = 0; s < num_shards; ++s) {
    const auto idx = static_cast<size_t>(s);
    SK_RETURN_IF_ERROR(statuses[idx]);
    const store::IndexSnapshot& snap = snapshots[idx];
    const std::string where =
        store::ShardSnapshotPath(dir, s, num_shards);
    if (snap.shard_index != static_cast<uint32_t>(s) ||
        snap.shard_count != static_cast<uint32_t>(num_shards)) {
      return Status::InvalidArgument(
          where + " records shard " + std::to_string(snap.shard_index) +
          "-of-" + std::to_string(snap.shard_count) + ", expected " +
          std::to_string(s) + "-of-" + std::to_string(num_shards));
    }
    if (snap.target.cols() != dims) {
      return Status::InvalidArgument(
          where + " holds " + std::to_string(snap.target.cols()) +
          "-dimensional points, this service serves " +
          std::to_string(dims) + " dimensions");
    }
    if (snap.options_fingerprint != want_options) {
      return Status::InvalidArgument(
          where + " was built under different options: file has [" +
          snap.options_fingerprint + "], this service is [" + want_options +
          "]");
    }
    if (snap.device_fingerprint != want_device) {
      return Status::InvalidArgument(
          where + " was built for a different device: file has [" +
          snap.device_fingerprint + "], this service is [" + want_device +
          "]");
    }
    if (snap.shard_offset != next_offset) {
      return Status::InvalidArgument(
          where + " starts at global row " +
          std::to_string(snap.shard_offset) + ", expected " +
          std::to_string(next_offset) + " (shards must tile the target)");
    }
    next_offset += snap.target.rows();
  }
  return snapshots;
}

store::IndexSnapshot KnnService::ExportShard(int s) const {
  const Shard& shard = *shards_[static_cast<size_t>(s)];
  store::IndexSnapshot snap;
  snap.dataset_name = config_.dataset_name;
  snap.builder = "KnnService::SaveSnapshots";
  snap.shard_index = static_cast<uint32_t>(s);
  snap.shard_count = static_cast<uint32_t>(shards_.size());
  snap.shard_offset = shard.offset;
  snap.target = shard.engine.ExportTarget();
  snap.clustering = shard.engine.ExportTargetClustering();
  snap.options_fingerprint = store::OptionsFingerprint(config_.options);
  snap.device_fingerprint = store::DeviceFingerprint(config_.device);
  return snap;
}

Status KnnService::SaveSnapshots(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create snapshot directory " + dir + ": " +
                           ec.message());
  }
  std::lock_guard<std::mutex> index_lock(index_mutex_);
  const int num_shards = static_cast<int>(shards_.size());
  for (int s = 0; s < num_shards; ++s) {
    SK_RETURN_IF_ERROR(store::SaveIndexSnapshot(
        ExportShard(s), store::ShardSnapshotPath(dir, s, num_shards)));
  }
  return Status::Ok();
}

Status KnnService::SwapIndex(const std::string& dir) {
  const int num_shards = static_cast<int>(shards_.size());
  Result<std::vector<store::IndexSnapshot>> loaded =
      LoadShardSet(dir, num_shards, config_, dims_);
  if (!loaded.ok()) return loaded.status();
  std::vector<store::IndexSnapshot>& snapshots = loaded.value();

  // Re-materialize the replacement generation off to the side; the live
  // index keeps serving while this runs.
  core::TiOptions shard_options = config_.options;
  shard_options.sim_threads = 1;
  std::vector<std::unique_ptr<Shard>> fresh;
  std::vector<uint32_t> fresh_offsets;
  size_t total_rows = 0;
  for (int s = 0; s < num_shards; ++s) {
    const auto idx = static_cast<size_t>(s);
    auto shard = std::make_unique<Shard>(config_.device, shard_options);
    shard->offset = static_cast<uint32_t>(snapshots[idx].shard_offset);
    fresh_offsets.push_back(shard->offset);
    total_rows += snapshots[idx].target.rows();
    fresh.push_back(std::move(shard));
  }
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    fresh[idx]->engine.RestoreTarget(snapshots[idx].target,
                                     snapshots[idx].clustering);
  });

  {
    std::lock_guard<std::mutex> index_lock(index_mutex_);
    shards_.swap(fresh);
    shard_offsets_ = std::move(fresh_offsets);
    target_rows_ = total_rows;
  }
  // `fresh` now holds the previous generation; it dies here, after the
  // lock, so teardown never blocks the dispatcher.
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    cache_.clear();
    lru_.clear();
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.index_swaps;
  }
  return Status::Ok();
}

ServiceStats KnnService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ServiceStats snapshot = stats_;
  snapshot.peak_queue_depth = queue_.peak_depth();
  return snapshot;
}

std::string KnnService::CacheKey(const float* row, size_t dims, int k) {
  std::string key(sizeof(int) + dims * sizeof(float), '\0');
  std::memcpy(key.data(), &k, sizeof(int));
  std::memcpy(key.data() + sizeof(int), row, dims * sizeof(float));
  return key;
}

bool KnnService::CacheLookup(const std::string& key,
                             std::vector<Neighbor>* out) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.cache_lookups;
  }
  auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  *out = it->second.neighbors;
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  ++stats_.cache_hits;
  return true;
}

void KnnService::CacheInsert(const std::string& key,
                             std::vector<Neighbor> value) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    it->second.neighbors = std::move(value);
    return;
  }
  lru_.push_front(key);
  cache_.emplace(key, CacheEntry{lru_.begin(), std::move(value)});
  while (cache_.size() > config_.cache_capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace sweetknn::serve
