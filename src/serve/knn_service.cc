#include "serve/knn_service.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/shard_merge.h"

namespace sweetknn::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsBetween(SteadyClock::time_point from,
                      SteadyClock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Splits a profile's simulated kernel time by pipeline stage. Kernel
/// names are stable identifiers ("level1_calub", "level2_full_filter",
/// ...); everything that is neither level-1 nor level-2 filtering is
/// preprocessing (upload layout kernels, landmark clustering, member
/// scatter — the amortized Step-1 work plus per-batch query prep).
void AccumulateStageTimes(const gpusim::Profile& profile, double* level1,
                          double* level2, double* preprocess) {
  for (const gpusim::LaunchRecord& record : profile.launches) {
    if (record.kernel_name.rfind("level1", 0) == 0) {
      *level1 += record.sim_time_s;
    } else if (record.kernel_name.rfind("level2", 0) == 0) {
      *level2 += record.sim_time_s;
    } else {
      *preprocess += record.sim_time_s;
    }
  }
}

}  // namespace

KnnService::KnnService(const HostMatrix& target, const ServiceConfig& config)
    : config_(config), dims_(target.cols()), target_rows_(target.rows()) {
  SK_CHECK(!target.empty()) << "KnnService needs a non-empty target set";
  SK_CHECK_GT(config_.max_batch_size, 0);
  InitMetrics();
  const int num_shards = std::clamp(
      config_.num_shards, 1, static_cast<int>(target_rows_));

  // Each shard simulates its own device, so the shard fan-out below is the
  // host-parallel axis. The shard engines are pinned to one execution
  // thread: ThreadPool::ForkJoin is non-reentrant from slot 0, so a shard
  // running inside the fan-out must never open a nested region — and by
  // the execution engine's guarantee this changes nothing but wall-clock.
  core::TiOptions shard_options = config_.options;
  shard_options.sim_threads = 1;

  const size_t base = target_rows_ / static_cast<size_t>(num_shards);
  const size_t rem = target_rows_ % static_cast<size_t>(num_shards);
  std::vector<HostMatrix> slices;
  size_t offset = 0;
  for (int s = 0; s < num_shards; ++s) {
    const size_t rows = base + (static_cast<size_t>(s) < rem ? 1 : 0);
    HostMatrix slice(rows, dims_);
    std::memcpy(slice.mutable_data(), target.row(offset),
                rows * dims_ * sizeof(float));
    slices.push_back(std::move(slice));
    auto shard = std::make_unique<Shard>(config_.device, shard_options);
    shard->offset = static_cast<uint32_t>(offset);
    shard_offsets_.push_back(static_cast<uint32_t>(offset));
    shards_.push_back(std::move(shard));
    offset += rows;
  }
  // Warm start: restore the prepared indexes from the snapshot directory
  // if one is configured and its contents match this service exactly;
  // anything less falls back to the cold build below (correctness never
  // depends on the snapshots).
  std::vector<store::IndexSnapshot> snapshots;
  bool warm = false;
  if (!config_.snapshot_dir.empty()) {
    Result<std::vector<store::IndexSnapshot>> loaded =
        LoadShardSet(config_.snapshot_dir, num_shards, config_, dims_);
    if (loaded.ok()) {
      snapshots = std::move(loaded).value();
      warm = true;
      for (int s = 0; s < num_shards; ++s) {
        const auto idx = static_cast<size_t>(s);
        const store::IndexSnapshot& snap = snapshots[idx];
        if (snap.shard_offset != shard_offsets_[idx] ||
            snap.target.rows() != slices[idx].rows() ||
            std::memcmp(snap.target.data(), slices[idx].data(),
                        slices[idx].size() * sizeof(float)) != 0) {
          SK_LOG(Warning) << "KnnService: snapshot shard " << s
                          << " does not hold this target's bytes; "
                          << "cold-building all shards";
          warm = false;
          break;
        }
      }
    } else {
      SK_LOG(Warning) << "KnnService: warm start from '"
                      << config_.snapshot_dir << "' failed ("
                      << loaded.status().ToString()
                      << "); cold-building all shards";
    }
  }

  // Build the per-shard indexes in parallel; each PrepareTarget /
  // RestoreTarget touches only its own device.
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    if (warm) {
      shards_[idx]->engine.RestoreTarget(snapshots[idx].target,
                                         snapshots[idx].clustering);
    } else {
      shards_[idx]->engine.PrepareTarget(slices[idx]);
    }
  });
  if (warm) stats_.warm_started_shards = static_cast<uint64_t>(num_shards);

  dispatcher_ = std::thread(&KnnService::DispatchLoop, this);
}

KnnService::~KnnService() { Shutdown(); }

void KnnService::InitMetrics() {
  const std::vector<double> latency = common::LatencyBucketsSeconds();
  m_requests_ = metrics_.GetCounter(
      "sweetknn_requests_total", "Search/JoinBatch calls admitted");
  m_queries_ = metrics_.GetCounter(
      "sweetknn_queries_total",
      "Query rows answered, including cache hits");
  m_rejected_ = metrics_.GetCounter(
      "sweetknn_rejected_requests_total",
      "Requests rejected because the service was shutting down");
  m_batches_ = metrics_.GetCounter(
      "sweetknn_batches_total", "Micro-batches dispatched");
  m_engine_groups_ = metrics_.GetCounter(
      "sweetknn_engine_groups_total",
      "Same-k groups run through the shard engines");
  m_batched_queries_ = metrics_.GetCounter(
      "sweetknn_batched_queries_total",
      "Query rows that went through the engines");
  m_cache_lookups_ = metrics_.GetCounter(
      "sweetknn_cache_lookups_total", "Result-cache lookups");
  m_cache_hits_ = metrics_.GetCounter(
      "sweetknn_cache_hits_total", "Result-cache hits");
  m_cache_stale_drops_ = metrics_.GetCounter(
      "sweetknn_cache_stale_drops_total",
      "Cache inserts dropped because an index swap completed first");
  m_index_swaps_ = metrics_.GetCounter(
      "sweetknn_index_swaps_total", "Completed SwapIndex calls");
  m_distance_calcs_ = metrics_.GetCounter(
      "sweetknn_distance_calcs_total",
      "Level-2 distance computations summed over shards");
  m_sim_level1_ = metrics_.GetCounter(
      "sweetknn_sim_level1_seconds_total",
      "Simulated seconds in level-1 (landmark filter) kernels");
  m_sim_level2_ = metrics_.GetCounter(
      "sweetknn_sim_level2_seconds_total",
      "Simulated seconds in level-2 (point filter) kernels");
  m_sim_transfer_ = metrics_.GetCounter(
      "sweetknn_sim_transfer_seconds_total",
      "Simulated seconds in PCIe transfers");
  m_sim_preprocess_ = metrics_.GetCounter(
      "sweetknn_sim_preprocess_seconds_total",
      "Simulated seconds in preprocessing kernels (upload layout, "
      "clustering, member scatter)");
  m_sim_total_ = metrics_.GetCounter(
      "sweetknn_sim_device_seconds_total",
      "Simulated device seconds summed over every shard");
  m_sim_critical_ = metrics_.GetCounter(
      "sweetknn_sim_critical_seconds_total",
      "Per-group max shard time, summed (the latency cost)");
  m_filter_full_ = metrics_.GetCounter(
      "sweetknn_adaptive_filter_full_total",
      "Shard runs that used the full level-2 filter");
  m_filter_partial_ = metrics_.GetCounter(
      "sweetknn_adaptive_filter_partial_total",
      "Shard runs that used the partial level-2 filter");
  m_placement_global_ = metrics_.GetCounter(
      "sweetknn_adaptive_placement_global_total",
      "Shard runs with the kNearests array in global memory");
  m_placement_shared_ = metrics_.GetCounter(
      "sweetknn_adaptive_placement_shared_total",
      "Shard runs with the kNearests array in shared memory");
  m_placement_registers_ = metrics_.GetCounter(
      "sweetknn_adaptive_placement_registers_total",
      "Shard runs with the kNearests array in registers");
  m_threads_per_query_ = metrics_.GetHistogram(
      "sweetknn_adaptive_threads_per_query",
      "Threads cooperating on one query, per shard run",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048});
  m_queue_wait_ = metrics_.GetHistogram(
      "sweetknn_queue_wait_seconds",
      "Admission to dequeue by the dispatcher", latency);
  m_batch_assembly_ = metrics_.GetHistogram(
      "sweetknn_batch_assembly_seconds",
      "First dequeue to micro-batch sealed", latency);
  m_shard_fanout_ = metrics_.GetHistogram(
      "sweetknn_shard_fanout_seconds",
      "Host wall-clock of the shard fan-out critical path", latency);
  m_merge_ = metrics_.GetHistogram(
      "sweetknn_merge_seconds", "Host wall-clock of the shard merge",
      latency);
  m_request_latency_ = metrics_.GetHistogram(
      "sweetknn_request_latency_seconds",
      "Admission to promise fulfillment, end to end", latency);
  m_batch_rows_ = metrics_.GetHistogram(
      "sweetknn_batch_size_rows", "Query rows per dispatched micro-batch",
      {1, 2, 4, 8, 16, 32, 64, 128, 256});
  m_queue_depth_ = metrics_.GetGauge(
      "sweetknn_queue_depth", "Admission-queue depth");
  m_peak_queue_depth_ = metrics_.GetGauge(
      "sweetknn_peak_queue_depth", "Admission-queue high-water mark");
  m_index_generation_ = metrics_.GetGauge(
      "sweetknn_index_generation", "Live index generation (SwapIndex count)");
}

void KnnService::Shutdown() {
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

Result<std::future<KnnResult>> KnnService::Submit(RequestPtr request) {
  const size_t rows = request->num_rows;
  request->admit_time = SteadyClock::now();
  std::future<KnnResult> future = request->promise.get_future();
  // Push() refuses once Shutdown() has closed the queue — including when
  // the close lands between our caller's checks and here. Rejection is a
  // clean Unavailable, never an abort: a serving process must survive
  // clients racing its shutdown.
  if (!queue_.Push(std::move(request))) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected_requests;
    }
    m_rejected_->Increment();
    return Status::Unavailable(
        "KnnService is shut down; request rejected");
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
    stats_.queries += rows;
  }
  m_requests_->Increment();
  m_queries_->Increment(static_cast<double>(rows));
  m_queue_depth_->Set(static_cast<double>(queue_.size()));
  return future;
}

Result<std::vector<Neighbor>> KnnService::Search(
    const std::vector<float>& query_point, int k) {
  SK_CHECK_EQ(query_point.size(), dims_);
  SK_CHECK_GT(k, 0);
  const SteadyClock::time_point start = SteadyClock::now();
  // Captured before the answer is computed: if a SwapIndex completes
  // while this request is in flight, the insert below must be dropped.
  const uint64_t generation =
      index_generation_.load(std::memory_order_acquire);
  std::string key;
  if (config_.cache_capacity > 0) {
    key = CacheKey(query_point.data(), dims_, k);
    std::vector<Neighbor> cached;
    if (CacheLookup(key, &cached)) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.requests;
        ++stats_.queries;
      }
      m_requests_->Increment();
      m_queries_->Increment();
      m_request_latency_->Observe(SecondsBetween(start, SteadyClock::now()));
      return cached;
    }
  }

  auto request = std::make_unique<Request>();
  request->rows = query_point;
  request->num_rows = 1;
  request->k = k;
  Result<std::future<KnnResult>> submitted = Submit(std::move(request));
  if (!submitted.ok()) return submitted.status();
  const KnnResult result = submitted.value().get();
  std::vector<Neighbor> neighbors(result.row(0), result.row(0) + result.k());
  if (config_.cache_capacity > 0) {
    if (pre_cache_insert_hook_) pre_cache_insert_hook_();
    CacheInsert(key, neighbors, generation);
  }
  return neighbors;
}

Result<KnnResult> KnnService::JoinBatch(const HostMatrix& queries, int k) {
  SK_CHECK(!queries.empty());
  SK_CHECK_EQ(queries.cols(), dims_);
  SK_CHECK_GT(k, 0);
  auto request = std::make_unique<Request>();
  request->rows = queries.storage();
  request->num_rows = queries.rows();
  request->k = k;
  Result<std::future<KnnResult>> submitted = Submit(std::move(request));
  if (!submitted.ok()) return submitted.status();
  return submitted.value().get();
}

void KnnService::DispatchLoop() {
  RequestPtr first;
  while (queue_.WaitPop(&first)) {
    // Micro-batching: coalesce admitted requests until max_batch_size
    // query rows are on board or max_batch_wait has passed since the
    // batch opened.
    const SteadyClock::time_point opened = SteadyClock::now();
    m_queue_wait_->Observe(SecondsBetween(first->admit_time, opened));
    std::vector<RequestPtr> batch;
    size_t rows = first->num_rows;
    batch.push_back(std::move(first));
    const auto deadline = opened + config_.max_batch_wait;
    while (rows < static_cast<size_t>(config_.max_batch_size)) {
      RequestPtr next;
      if (!queue_.TryPop(&next)) {
        const auto now = SteadyClock::now();
        if (now >= deadline || !queue_.WaitPopFor(&next, deadline - now)) {
          break;  // the batch is as full as it will get
        }
      }
      m_queue_wait_->Observe(
          SecondsBetween(next->admit_time, SteadyClock::now()));
      rows += next->num_rows;
      batch.push_back(std::move(next));
    }
    m_batch_assembly_->Observe(SecondsBetween(opened, SteadyClock::now()));
    m_batch_rows_->Observe(static_cast<double>(rows));
    m_queue_depth_->Set(static_cast<double>(queue_.size()));
    // One micro-batch dispatched; the per-k engine groups below are
    // accounted separately (engine_groups), so mixed-k traffic cannot
    // inflate the batch count and skew occupancy.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
    }
    m_batches_->Increment();

    // One engine batch per distinct k, preserving admission order within
    // each group (and deterministic k order across groups).
    std::map<int, std::vector<RequestPtr>> by_k;
    for (RequestPtr& request : batch) {
      by_k[request->k].push_back(std::move(request));
    }
    for (auto& [k, group] : by_k) {
      (void)k;
      RunGroup(std::move(group));
    }
  }
}

void KnnService::RunGroup(std::vector<RequestPtr> group) {
  const int k = group[0]->k;
  size_t rows = 0;
  for (const RequestPtr& request : group) rows += request->num_rows;
  HostMatrix queries(rows, dims_);
  size_t row = 0;
  for (const RequestPtr& request : group) {
    std::memcpy(queries.mutable_row(row), request->rows.data(),
                request->num_rows * dims_ * sizeof(float));
    row += request->num_rows;
  }

  // The whole group runs against one index generation: a concurrent
  // SwapIndex waits here (or we wait for it), so no request's rows can
  // straddle a swap.
  std::lock_guard<std::mutex> index_lock(index_mutex_);
  const int num_shards = static_cast<int>(shards_.size());
  std::vector<KnnResult> shard_results(static_cast<size_t>(num_shards));
  std::vector<core::KnnRunStats> shard_stats(
      static_cast<size_t>(num_shards));
  const SteadyClock::time_point fanout_start = SteadyClock::now();
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    shard_results[idx] =
        shards_[idx]->engine.RunQueries(queries, k, &shard_stats[idx]);
  });
  const SteadyClock::time_point merge_start = SteadyClock::now();
  m_shard_fanout_->Observe(SecondsBetween(fanout_start, merge_start));
  const KnnResult merged =
      core::MergeShardResults(shard_results, shard_offsets_, k);
  m_merge_->Observe(SecondsBetween(merge_start, SteadyClock::now()));

  RecordGroupStats(shard_stats, rows);

  // Slice the merged result back into per-request answers.
  row = 0;
  for (RequestPtr& request : group) {
    KnnResult answer(request->num_rows, k);
    for (size_t q = 0; q < request->num_rows; ++q) {
      std::memcpy(answer.mutable_row(q), merged.row(row + q),
                  static_cast<size_t>(k) * sizeof(Neighbor));
    }
    row += request->num_rows;
    m_request_latency_->Observe(
        SecondsBetween(request->admit_time, SteadyClock::now()));
    request->promise.set_value(std::move(answer));
  }
}

void KnnService::RecordGroupStats(
    const std::vector<core::KnnRunStats>& shard_stats, size_t rows) {
  double slowest = 0.0;
  double total = 0.0;
  double level1 = 0.0;
  double level2 = 0.0;
  double transfer = 0.0;
  double preprocess = 0.0;
  uint64_t distance_calcs = 0;
  for (const core::KnnRunStats& s : shard_stats) {
    total += s.sim_time_s;
    slowest = std::max(slowest, s.sim_time_s);
    distance_calcs += s.distance_calcs;
    AccumulateStageTimes(s.profile, &level1, &level2, &preprocess);
    transfer += s.profile.transfer_time_s;
    (s.filter_used == core::Level2Filter::kFull ? m_filter_full_
                                                : m_filter_partial_)
        ->Increment();
    switch (s.placement_used) {
      case core::KnearestsPlacement::kGlobal:
        m_placement_global_->Increment();
        break;
      case core::KnearestsPlacement::kShared:
        m_placement_shared_->Increment();
        break;
      case core::KnearestsPlacement::kRegisters:
        m_placement_registers_->Increment();
        break;
    }
    m_threads_per_query_->Observe(static_cast<double>(s.threads_per_query));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.engine_groups;
    stats_.batched_queries += rows;
    stats_.total_sim_time_s += total;
    stats_.critical_sim_time_s += slowest;
    stats_.distance_calcs += distance_calcs;
  }
  m_engine_groups_->Increment();
  m_batched_queries_->Increment(static_cast<double>(rows));
  m_sim_total_->Increment(total);
  m_sim_critical_->Increment(slowest);
  m_distance_calcs_->Increment(static_cast<double>(distance_calcs));
  m_sim_level1_->Increment(level1);
  m_sim_level2_->Increment(level2);
  m_sim_transfer_->Increment(transfer);
  m_sim_preprocess_->Increment(preprocess);
}

Result<std::vector<store::IndexSnapshot>> KnnService::LoadShardSet(
    const std::string& dir, int num_shards, const ServiceConfig& config,
    size_t dims) {
  Result<std::vector<std::string>> listed = store::ListShardSnapshots(dir);
  if (!listed.ok()) return listed.status();
  if (static_cast<int>(listed.value().size()) != num_shards) {
    return Status::InvalidArgument(
        dir + " holds " + std::to_string(listed.value().size()) +
        " shard snapshots, this service has " + std::to_string(num_shards) +
        " shards");
  }

  // Snapshot files parse and validate independently: fan the reads out
  // over the host pool.
  std::vector<store::IndexSnapshot> snapshots(
      static_cast<size_t>(num_shards));
  std::vector<Status> statuses(static_cast<size_t>(num_shards));
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    Result<store::IndexSnapshot> snap = store::LoadIndexSnapshot(
        store::ShardSnapshotPath(dir, s, num_shards));
    if (snap.ok()) {
      snapshots[idx] = std::move(snap).value();
    } else {
      statuses[idx] = snap.status();
    }
  });

  const std::string want_options = store::OptionsFingerprint(config.options);
  const std::string want_device = store::DeviceFingerprint(config.device);
  uint64_t next_offset = 0;
  for (int s = 0; s < num_shards; ++s) {
    const auto idx = static_cast<size_t>(s);
    SK_RETURN_IF_ERROR(statuses[idx]);
    const store::IndexSnapshot& snap = snapshots[idx];
    const std::string where =
        store::ShardSnapshotPath(dir, s, num_shards);
    if (snap.shard_index != static_cast<uint32_t>(s) ||
        snap.shard_count != static_cast<uint32_t>(num_shards)) {
      return Status::InvalidArgument(
          where + " records shard " + std::to_string(snap.shard_index) +
          "-of-" + std::to_string(snap.shard_count) + ", expected " +
          std::to_string(s) + "-of-" + std::to_string(num_shards));
    }
    if (snap.target.cols() != dims) {
      return Status::InvalidArgument(
          where + " holds " + std::to_string(snap.target.cols()) +
          "-dimensional points, this service serves " +
          std::to_string(dims) + " dimensions");
    }
    if (snap.options_fingerprint != want_options) {
      return Status::InvalidArgument(
          where + " was built under different options: file has [" +
          snap.options_fingerprint + "], this service is [" + want_options +
          "]");
    }
    if (snap.device_fingerprint != want_device) {
      return Status::InvalidArgument(
          where + " was built for a different device: file has [" +
          snap.device_fingerprint + "], this service is [" + want_device +
          "]");
    }
    if (snap.shard_offset != next_offset) {
      return Status::InvalidArgument(
          where + " starts at global row " +
          std::to_string(snap.shard_offset) + ", expected " +
          std::to_string(next_offset) + " (shards must tile the target)");
    }
    next_offset += snap.target.rows();
  }
  return snapshots;
}

store::IndexSnapshot KnnService::ExportShard(int s) const {
  const Shard& shard = *shards_[static_cast<size_t>(s)];
  store::IndexSnapshot snap;
  snap.dataset_name = config_.dataset_name;
  snap.builder = "KnnService::SaveSnapshots";
  snap.shard_index = static_cast<uint32_t>(s);
  snap.shard_count = static_cast<uint32_t>(shards_.size());
  snap.shard_offset = shard.offset;
  snap.target = shard.engine.ExportTarget();
  snap.clustering = shard.engine.ExportTargetClustering();
  snap.options_fingerprint = store::OptionsFingerprint(config_.options);
  snap.device_fingerprint = store::DeviceFingerprint(config_.device);
  return snap;
}

Status KnnService::SaveSnapshots(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create snapshot directory " + dir + ": " +
                           ec.message());
  }
  std::lock_guard<std::mutex> index_lock(index_mutex_);
  const int num_shards = static_cast<int>(shards_.size());
  for (int s = 0; s < num_shards; ++s) {
    SK_RETURN_IF_ERROR(store::SaveIndexSnapshot(
        ExportShard(s), store::ShardSnapshotPath(dir, s, num_shards)));
  }
  return Status::Ok();
}

Status KnnService::SwapIndex(const std::string& dir) {
  const int num_shards = static_cast<int>(shards_.size());
  Result<std::vector<store::IndexSnapshot>> loaded =
      LoadShardSet(dir, num_shards, config_, dims_);
  if (!loaded.ok()) return loaded.status();
  std::vector<store::IndexSnapshot>& snapshots = loaded.value();

  // Re-materialize the replacement generation off to the side; the live
  // index keeps serving while this runs.
  core::TiOptions shard_options = config_.options;
  shard_options.sim_threads = 1;
  std::vector<std::unique_ptr<Shard>> fresh;
  std::vector<uint32_t> fresh_offsets;
  size_t total_rows = 0;
  for (int s = 0; s < num_shards; ++s) {
    const auto idx = static_cast<size_t>(s);
    auto shard = std::make_unique<Shard>(config_.device, shard_options);
    shard->offset = static_cast<uint32_t>(snapshots[idx].shard_offset);
    fresh_offsets.push_back(shard->offset);
    total_rows += snapshots[idx].target.rows();
    fresh.push_back(std::move(shard));
  }
  common::ThreadPool::Global()->ForkJoin(num_shards, [&](int s) {
    const auto idx = static_cast<size_t>(s);
    fresh[idx]->engine.RestoreTarget(snapshots[idx].target,
                                     snapshots[idx].clustering);
  });

  {
    std::lock_guard<std::mutex> index_lock(index_mutex_);
    shards_.swap(fresh);
    shard_offsets_ = std::move(fresh_offsets);
    target_rows_ = total_rows;
    // Bump the generation before the cache clear below: any in-flight
    // request that computed its answer against the old shards now holds
    // a stale generation tag, so its CacheInsert is dropped whether it
    // lands before or after the clear.
    index_generation_.fetch_add(1, std::memory_order_acq_rel);
  }
  m_index_generation_->Set(
      static_cast<double>(index_generation_.load(std::memory_order_acquire)));
  // `fresh` now holds the previous generation; it dies here, after the
  // lock, so teardown never blocks the dispatcher.
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    cache_.clear();
    lru_.clear();
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.index_swaps;
  }
  m_index_swaps_->Increment();
  return Status::Ok();
}

ServiceStats KnnService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ServiceStats snapshot = stats_;
  snapshot.peak_queue_depth = queue_.peak_depth();
  return snapshot;
}

std::string KnnService::ExportMetricsJson() const {
  m_queue_depth_->Set(static_cast<double>(queue_.size()));
  m_peak_queue_depth_->Set(static_cast<double>(queue_.peak_depth()));
  return metrics_.ExportJson();
}

std::string KnnService::ExportMetricsText() const {
  m_queue_depth_->Set(static_cast<double>(queue_.size()));
  m_peak_queue_depth_->Set(static_cast<double>(queue_.peak_depth()));
  return metrics_.ExportPrometheusText();
}

std::string KnnService::CacheKey(const float* row, size_t dims, int k) {
  std::string key(sizeof(int) + dims * sizeof(float), '\0');
  std::memcpy(key.data(), &k, sizeof(int));
  std::memcpy(key.data() + sizeof(int), row, dims * sizeof(float));
  return key;
}

bool KnnService::CacheLookup(const std::string& key,
                             std::vector<Neighbor>* out) {
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      *out = it->second.neighbors;
      hit = true;
    }
  }
  // Stats are recorded after releasing cache_mutex_: stats_mutex_ never
  // nests inside the cache lock (see the lock-order note in the header).
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.cache_lookups;
    if (hit) ++stats_.cache_hits;
  }
  m_cache_lookups_->Increment();
  if (hit) m_cache_hits_->Increment();
  return hit;
}

void KnnService::CacheInsert(const std::string& key,
                             std::vector<Neighbor> value,
                             uint64_t generation) {
  bool stale = false;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    // A SwapIndex that completed after this answer was computed has
    // already bumped the generation (under index_mutex_, before clearing
    // the cache): inserting now would serve pre-swap neighbors forever.
    if (index_generation_.load(std::memory_order_acquire) != generation) {
      stale = true;
    } else {
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        it->second.neighbors = std::move(value);
      } else {
        lru_.push_front(key);
        cache_.emplace(key, CacheEntry{lru_.begin(), std::move(value)});
        while (cache_.size() > config_.cache_capacity) {
          cache_.erase(lru_.back());
          lru_.pop_back();
        }
      }
    }
  }
  if (stale) {
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.cache_stale_drops;
    }
    m_cache_stale_drops_->Increment();
  }
}

}  // namespace sweetknn::serve
