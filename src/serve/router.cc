#include "serve/router.h"

#include <errno.h>
#include <signal.h>
#include <spawn.h>
#include <stdlib.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>

#include "common/logging.h"
#include "net/socket.h"
#include "net/wire.h"
#include "store/snapshot.h"

extern char** environ;

namespace sweetknn::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsBetween(SteadyClock::time_point from,
                      SteadyClock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Budget for the initial connect to a freshly spawned worker (the
/// Connect retries while the socket file does not exist yet).
constexpr std::chrono::seconds kConnectTimeout{10};
/// Best-effort budget for the clean Shutdown RPC per worker.
constexpr std::chrono::seconds kShutdownRpcTimeout{2};
/// How long Shutdown waits for a worker to exit before SIGKILLing it.
constexpr std::chrono::seconds kReapTimeout{2};

/// Waits for `pid` to exit; escalates to SIGKILL after kReapTimeout.
void ReapWorker(pid_t pid) {
  const SteadyClock::time_point deadline = SteadyClock::now() + kReapTimeout;
  int wstatus = 0;
  for (;;) {
    const pid_t r = waitpid(pid, &wstatus, WNOHANG);
    if (r == pid || (r < 0 && errno == ECHILD)) return;
    if (SteadyClock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill(pid, SIGKILL);
  waitpid(pid, &wstatus, 0);
}

}  // namespace

// --- WorkerChannel -----------------------------------------------------------

Router::WorkerChannel::WorkerChannel(int index, pid_t pid,
                                     net::Connection conn,
                                     common::Histogram* rpc_seconds,
                                     common::Counter* rpcs,
                                     common::Counter* failures)
    : index_(index),
      pid_(pid),
      conn_(std::move(conn)),
      rpc_seconds_(rpc_seconds),
      rpcs_(rpcs),
      failures_(failures),
      io_(&WorkerChannel::IoLoop, this) {}

Router::WorkerChannel::~WorkerChannel() { Join(); }

bool Router::WorkerChannel::Submit(Call call) {
  return outbox_.Push(std::move(call));
}

void Router::WorkerChannel::Poison() {
  poisoned_.store(true, std::memory_order_release);
  conn_.Close();  // unblocks an in-flight poll on the IO thread
}

void Router::WorkerChannel::Join() {
  outbox_.Close();
  if (io_.joinable()) io_.join();
}

void Router::WorkerChannel::IoLoop() {
  Call call;
  while (outbox_.WaitPop(&call)) {
    RpcReply reply;
    reply.worker = index_;
    if (poisoned_.load(std::memory_order_acquire)) {
      reply.status = Status::Unavailable(
          "worker " + std::to_string(index_) + ": channel poisoned");
    } else {
      const SteadyClock::time_point start = SteadyClock::now();
      const SteadyClock::time_point deadline = start + call.timeout;
      Status status = net::SendFrame(conn_, call.type, call.payload, deadline);
      if (status.ok()) {
        Result<net::Frame> frame = net::RecvFrame(conn_, deadline);
        if (frame.ok()) {
          reply.frame = std::move(frame).value();
        } else {
          status = frame.status();
        }
      }
      rpcs_->Increment();
      rpc_seconds_->Observe(SecondsBetween(start, SteadyClock::now()));
      if (!status.ok()) {
        // The protocol is strictly request/reply in order: one failed or
        // timed-out exchange leaves the stream unusable (a late reply
        // could be taken for the next call's), so the first failure
        // poisons the channel for good.
        failures_->Increment();
        reply.status = status;
        poisoned_.store(true, std::memory_order_release);
        conn_.Close();
      }
    }
    if (call.reply_to) call.reply_to->Push(std::move(reply));
  }
}

// --- Construction ------------------------------------------------------------

Router::Router(const RouterConfig& config, size_t dims, size_t rows)
    : config_(config),
      dims_(dims),
      initial_rows_(static_cast<uint32_t>(rows)),
      next_id_(static_cast<uint32_t>(rows)),
      target_rows_(rows) {
  num_shards_ = std::clamp(config_.service.num_shards, 1,
                           static_cast<int>(rows));
  config_.service.num_shards = num_shards_;
  config_.num_workers = std::clamp(config_.num_workers, 1, num_shards_);
  config_.replicas =
      std::clamp(config_.replicas, 0, config_.num_workers - 1);
  InitMetrics();
}

Result<std::unique_ptr<Router>> Router::Start(const HostMatrix& target,
                                              const RouterConfig& config) {
  if (target.empty()) {
    return Status::InvalidArgument("Router needs a non-empty target set");
  }
  if (config.worker_binary.empty()) {
    return Status::InvalidArgument(
        "RouterConfig.worker_binary must name the shard-worker executable");
  }
  if (config.service.max_batch_size <= 0) {
    return Status::InvalidArgument("max_batch_size must be > 0");
  }
  std::unique_ptr<Router> router(
      new Router(config, target.cols(), target.rows()));
  const Status boot = router->Bootstrap(target);
  if (!boot.ok()) {
    router->Shutdown();
    return boot;
  }
  router->dispatcher_ = std::thread(&Router::DispatchLoop, router.get());
  return router;
}

Router::~Router() { Shutdown(); }

void Router::InitMetrics() {
  m_requests_ = metrics_.GetCounter("sweetknn_router_requests_total",
                                    "Search/JoinBatch calls admitted");
  m_queries_ = metrics_.GetCounter("sweetknn_router_queries_total",
                                   "Query rows answered");
  m_rejected_ = metrics_.GetCounter(
      "sweetknn_router_rejected_requests_total",
      "Requests rejected because the router was shutting down");
  m_batches_ = metrics_.GetCounter("sweetknn_router_batches_total",
                                   "Micro-batches dispatched");
  m_engine_groups_ = metrics_.GetCounter(
      "sweetknn_router_engine_groups_total",
      "Same-k groups fanned out to the workers");
  m_batched_queries_ = metrics_.GetCounter(
      "sweetknn_router_batched_queries_total",
      "Query rows that went through worker fan-outs");
  m_inserts_ = metrics_.GetCounter("sweetknn_router_inserts_total",
                                   "Points admitted through Insert");
  m_removes_ = metrics_.GetCounter("sweetknn_router_removes_total",
                                   "Successful Remove calls");
  m_remove_misses_ = metrics_.GetCounter(
      "sweetknn_router_remove_misses_total",
      "Remove calls naming an id that was never live or already removed");
  m_compactions_ = metrics_.GetCounter(
      "sweetknn_router_compactions_total",
      "Shard compactions applied across the cluster");
  m_worker_deaths_ = metrics_.GetCounter(
      "sweetknn_router_worker_deaths_total",
      "Workers declared dead (timeout, transport error, or bad reply)");
  m_rpc_timeouts_ = metrics_.GetCounter(
      "sweetknn_router_rpc_timeouts_total", "RPCs that missed rpc_timeout");
  m_retried_groups_ = metrics_.GetCounter(
      "sweetknn_router_retried_groups_total",
      "Query groups re-fanned after a failover");
  m_replicas_restored_ = metrics_.GetCounter(
      "sweetknn_router_replicas_restored_total",
      "Replicas re-established by snapshot catch-up");
  m_jobs_ = metrics_.GetCounter(
      "sweetknn_router_jobs_total",
      "Completed cluster jobs (radius search, self-join, knn graph)");
  m_queue_wait_ = metrics_.GetHistogram(
      "sweetknn_router_queue_wait_seconds",
      "Admission-to-dispatch wait per request",
      common::LatencyBucketsSeconds());
  m_merge_ = metrics_.GetHistogram("sweetknn_router_merge_seconds",
                                   "Final cross-shard merge per group",
                                   common::LatencyBucketsSeconds());
  m_request_latency_ = metrics_.GetHistogram(
      "sweetknn_router_request_latency_seconds",
      "End-to-end latency per request", common::LatencyBucketsSeconds());
  m_workers_alive_ = metrics_.GetGauge("sweetknn_router_workers_alive",
                                       "Live worker processes");
  for (int w = 0; w < config_.num_workers; ++w) {
    const std::string prefix =
        "sweetknn_router_worker" + std::to_string(w) + "_";
    m_worker_rpc_seconds_.push_back(metrics_.GetHistogram(
        prefix + "rpc_seconds", "RPC round-trip latency to this worker",
        common::LatencyBucketsSeconds()));
    m_worker_rpcs_.push_back(metrics_.GetCounter(
        prefix + "rpcs_total", "RPCs issued to this worker"));
    m_worker_failures_.push_back(metrics_.GetCounter(
        prefix + "rpc_failures_total",
        "RPCs to this worker that failed or timed out"));
    m_worker_alive_.push_back(metrics_.GetGauge(
        prefix + "alive", "1 while this worker is considered live"));
  }
}

Result<pid_t> Router::SpawnWorker(const std::string& socket_path) const {
  const std::string socket_arg = "--socket=" + socket_path;
  std::vector<char*> argv;
  std::string binary = config_.worker_binary;
  std::string command = "shard-worker";
  std::string arg = socket_arg;
  argv.push_back(binary.data());
  argv.push_back(command.data());
  argv.push_back(arg.data());
  argv.push_back(nullptr);
  pid_t pid = -1;
  const int rc = posix_spawn(&pid, config_.worker_binary.c_str(),
                             /*file_actions=*/nullptr, /*attrp=*/nullptr,
                             argv.data(), environ);
  if (rc != 0) {
    return Status::IoError("cannot spawn " + config_.worker_binary + ": " +
                           std::strerror(rc));
  }
  return pid;
}

Status Router::Bootstrap(const HostMatrix& target) {
  // Work directory: sockets + catch-up snapshots.
  if (config_.work_dir.empty()) {
    std::string tmpl = "/tmp/sweetknn-cluster-XXXXXX";
    if (mkdtemp(tmpl.data()) == nullptr) {
      return Status::IoError(std::string("mkdtemp failed: ") +
                             std::strerror(errno));
    }
    config_.work_dir = tmpl;
    own_work_dir_ = true;
  } else {
    std::error_code ec;
    std::filesystem::create_directories(config_.work_dir, ec);
    if (ec) {
      return Status::IoError("cannot create work dir " + config_.work_dir +
                             ": " + ec.message());
    }
  }

  // Spawn and connect the workers.
  const int num_workers = config_.num_workers;
  for (int w = 0; w < num_workers; ++w) {
    const std::string socket_path =
        config_.work_dir + "/worker-" + std::to_string(w) + ".sock";
    Result<pid_t> pid = SpawnWorker(socket_path);
    SK_RETURN_IF_ERROR(pid.status());
    Result<net::Connection> conn = net::Connection::Connect(
        socket_path, SteadyClock::now() + kConnectTimeout);
    if (!conn.ok()) {
      ReapWorker(pid.value());
      return Status::Unavailable(
          "worker " + std::to_string(w) +
          " never came up: " + conn.status().ToString());
    }
    workers_.push_back(std::make_unique<WorkerChannel>(
        w, pid.value(), std::move(conn).value(),
        m_worker_rpc_seconds_[static_cast<size_t>(w)],
        m_worker_rpcs_[static_cast<size_t>(w)],
        m_worker_failures_[static_cast<size_t>(w)]));
    alive_.push_back(true);
    m_worker_alive_[static_cast<size_t>(w)]->Set(1.0);
  }
  m_workers_alive_->Set(static_cast<double>(num_workers));

  // Placement: shard s's primary is worker s % W, its replicas the next
  // `replicas` workers around the ring (distinct because replicas < W).
  primary_.resize(static_cast<size_t>(num_shards_));
  replicas_.resize(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    primary_[static_cast<size_t>(s)] = s % num_workers;
    for (int r = 1; r <= config_.replicas; ++r) {
      replicas_[static_cast<size_t>(s)].push_back((s + r) % num_workers);
    }
  }

  // The same contiguous slices KnnService builds, cold-built on every
  // host of each shard. All prepares are submitted up front (workers
  // cluster their slices concurrently), then the acks collected.
  const size_t base = target.rows() / static_cast<size_t>(num_shards_);
  const size_t rem = target.rows() % static_cast<size_t>(num_shards_);
  auto replies = std::make_shared<ReplyQueue>();
  int outstanding = 0;
  size_t offset = 0;
  for (int s = 0; s < num_shards_; ++s) {
    const size_t rows = base + (static_cast<size_t>(s) < rem ? 1 : 0);
    net::PrepareColdRequest req;
    req.shard_index = static_cast<uint32_t>(s);
    req.offset = offset;
    req.slice = HostMatrix(rows, dims_);
    std::memcpy(req.slice.mutable_data(), target.row(offset),
                rows * dims_ * sizeof(float));
    req.options = config_.service.options;
    req.device = config_.service.device;
    req.planner = config_.service.planner;
    req.enable_ann = config_.service.enable_ann;
    req.ann_params = config_.service.ann_params;
    req.tenant = config_.tenant;
    shard_offsets_.push_back(static_cast<uint32_t>(offset));
    offset += rows;
    const std::string payload = net::EncodePrepareCold(req);
    for (const int host : ShardHostsLocked(s)) {
      Call call;
      call.type = static_cast<uint32_t>(net::MsgType::kPrepareCold);
      call.payload = payload;
      call.timeout = config_.prepare_timeout;
      call.reply_to = replies;
      workers_[static_cast<size_t>(host)]->Submit(std::move(call));
      ++outstanding;
    }
  }
  const SteadyClock::time_point deadline =
      SteadyClock::now() + config_.prepare_timeout;
  for (int i = 0; i < outstanding; ++i) {
    RpcReply reply;
    switch (replies->WaitPopUntil(&reply, deadline)) {
      case common::PopResult::kItem:
        break;
      case common::PopResult::kTimeout:
        return Status::DeadlineExceeded("cluster prepare timed out");
      case common::PopResult::kClosed:
        return Status::Unavailable("router shut down during prepare");
    }
    SK_RETURN_IF_ERROR(reply.status);
    if (reply.frame.type == static_cast<uint32_t>(net::MsgType::kError)) {
      return net::DecodeError(reply.frame.payload);
    }
    if (reply.frame.type != static_cast<uint32_t>(net::MsgType::kAck)) {
      return Status::IoError("unexpected prepare reply type " +
                             std::to_string(reply.frame.type));
    }
  }
  return Status::Ok();
}

// --- RPC plumbing ------------------------------------------------------------

Result<net::Frame> Router::CallWorker(int w, net::MsgType type,
                                      std::string payload,
                                      std::chrono::milliseconds timeout,
                                      net::MsgType expect_type) {
  auto replies = std::make_shared<ReplyQueue>();
  Call call;
  call.type = static_cast<uint32_t>(type);
  call.payload = std::move(payload);
  call.timeout = timeout;
  call.reply_to = replies;
  if (!workers_[static_cast<size_t>(w)]->Submit(std::move(call))) {
    return Status::Unavailable("worker " + std::to_string(w) +
                               " is shut down");
  }
  RpcReply reply;
  switch (replies->WaitPopUntil(&reply, SteadyClock::now() + timeout)) {
    case common::PopResult::kItem:
      break;
    case common::PopResult::kTimeout:
      // Genuinely no answer inside the budget: the worker is slow or
      // wedged. Counts toward the failover health accounting.
      NoteRpcTimeout();
      return Status::DeadlineExceeded("worker " + std::to_string(w) +
                                      " RPC timed out");
    case common::PopResult::kClosed:
      // Shutdown, not sickness — do not charge an RPC timeout.
      return Status::Unavailable("worker " + std::to_string(w) +
                                 " channel closed");
  }
  if (reply.status.code() == StatusCode::kDeadlineExceeded) {
    NoteRpcTimeout();
  }
  SK_RETURN_IF_ERROR(reply.status);
  if (reply.frame.type == static_cast<uint32_t>(net::MsgType::kError)) {
    return net::DecodeError(reply.frame.payload);
  }
  if (reply.frame.type != static_cast<uint32_t>(expect_type)) {
    return Status::IoError("worker " + std::to_string(w) +
                           " replied with unexpected type " +
                           std::to_string(reply.frame.type));
  }
  return std::move(reply.frame);
}

void Router::NoteRpcTimeout() {
  m_rpc_timeouts_->Increment();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.rpc_timeouts;
}

void Router::MarkWorkerDeadLocked(int w, const std::string& why) {
  const auto idx = static_cast<size_t>(w);
  if (!alive_[idx]) return;
  SK_LOG(Warning) << "Router: declaring worker " << w << " dead (" << why
                  << ")";
  alive_[idx] = false;
  workers_[idx]->Poison();
  // A wedged (e.g. SIGSTOPped) worker still holds its socket and pid;
  // make the death real so a later restart of the shard cannot race it.
  kill(workers_[idx]->pid(), SIGKILL);
  m_worker_alive_[idx]->Set(0.0);
  m_workers_alive_->Add(-1.0);
  m_worker_deaths_->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.worker_deaths;
  }
  for (int s = 0; s < num_shards_; ++s) {
    const auto sidx = static_cast<size_t>(s);
    std::vector<int>& reps = replicas_[sidx];
    if (primary_[sidx] == w) {
      // Promote the first live replica; with none, the shard is lost
      // until RestoreReplication (or forever without replicas).
      primary_[sidx] = -1;
      for (size_t r = 0; r < reps.size(); ++r) {
        if (alive_[static_cast<size_t>(reps[r])]) {
          primary_[sidx] = reps[r];
          reps.erase(reps.begin() + static_cast<long>(r));
          break;
        }
      }
    }
    reps.erase(std::remove(reps.begin(), reps.end(), w), reps.end());
  }
}

std::vector<int> Router::ShardHostsLocked(int s) const {
  const auto sidx = static_cast<size_t>(s);
  std::vector<int> hosts;
  if (primary_[sidx] >= 0 && alive_[static_cast<size_t>(primary_[sidx])]) {
    hosts.push_back(primary_[sidx]);
  }
  for (const int r : replicas_[sidx]) {
    if (alive_[static_cast<size_t>(r)]) hosts.push_back(r);
  }
  return hosts;
}

int Router::OwningShardLocked(uint32_t id) const {
  if (id < initial_rows_) {
    // Initial rows live where the constructor sliced them; compactions
    // never move an id across shards.
    const auto it = std::upper_bound(shard_offsets_.begin(),
                                     shard_offsets_.end(), id);
    return static_cast<int>(it - shard_offsets_.begin()) - 1;
  }
  // Inserted rows land on shard id % S, same as KnnService::InsertBatch.
  return static_cast<int>(id % static_cast<uint32_t>(num_shards_));
}

Result<net::Frame> Router::MutateShardLocked(int s, net::MsgType type,
                                             const std::string& payload,
                                             net::MsgType expect_type) {
  const std::chrono::milliseconds timeout =
      type == net::MsgType::kCompact ? config_.prepare_timeout
                                     : config_.rpc_timeout;
  // Snapshot the hosts first: marking one dead rewrites the placement.
  const std::vector<int> hosts = ShardHostsLocked(s);
  if (hosts.empty()) {
    return Status::Unavailable("shard " + std::to_string(s) +
                               " has no live host");
  }
  Result<net::Frame> first = Status::Unavailable("no host answered");
  bool have_reply = false;
  for (const int host : hosts) {
    Result<net::Frame> reply = CallWorker(host, type, payload, timeout,
                                          expect_type);
    if (reply.ok()) {
      if (!have_reply) {
        first = std::move(reply);
        have_reply = true;
      }
    } else if (reply.status().code() == StatusCode::kDeadlineExceeded ||
               reply.status().code() == StatusCode::kUnavailable) {
      // Transport-level death; application errors (InvalidArgument,
      // NotFound) are real answers and must not trigger failover.
      MarkWorkerDeadLocked(host, reply.status().ToString());
    } else if (!have_reply) {
      first = std::move(reply);
      have_reply = true;
    }
  }
  return first;
}

// --- Admission + dispatch ----------------------------------------------------

Result<std::vector<Neighbor>> Router::Search(
    const std::vector<float>& query_point, int k) {
  return Search(query_point, k, ann::SearchMode::Exact());
}

Result<std::vector<Neighbor>> Router::Search(
    const std::vector<float>& query_point, int k,
    const ann::SearchMode& mode) {
  SK_CHECK_EQ(query_point.size(), dims_);
  SK_CHECK_GT(k, 0);
  auto request = std::make_unique<Request>();
  request->rows = query_point;
  request->num_rows = 1;
  request->k = k;
  request->mode = ann::Normalize(mode);
  Result<std::future<Result<KnnResult>>> submitted =
      Submit(std::move(request));
  if (!submitted.ok()) return submitted.status();
  Result<KnnResult> result = submitted.value().get();
  if (!result.ok()) return result.status();
  const KnnResult& answer = result.value();
  return std::vector<Neighbor>(answer.row(0), answer.row(0) + answer.k());
}

Result<KnnResult> Router::JoinBatch(const HostMatrix& queries, int k) {
  return JoinBatch(queries, k, ann::SearchMode::Exact());
}

Result<KnnResult> Router::JoinBatch(const HostMatrix& queries, int k,
                                    const ann::SearchMode& mode) {
  SK_CHECK(!queries.empty());
  SK_CHECK_EQ(queries.cols(), dims_);
  SK_CHECK_GT(k, 0);
  auto request = std::make_unique<Request>();
  request->rows = queries.storage();
  request->num_rows = queries.rows();
  request->k = k;
  request->mode = ann::Normalize(mode);
  Result<std::future<Result<KnnResult>>> submitted =
      Submit(std::move(request));
  if (!submitted.ok()) return submitted.status();
  return submitted.value().get();
}

Result<std::future<Result<KnnResult>>> Router::Submit(RequestPtr request) {
  const size_t rows = request->num_rows;
  request->admit_time = SteadyClock::now();
  std::future<Result<KnnResult>> future = request->promise.get_future();
  if (!queue_.Push(std::move(request))) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected_requests;
    }
    m_rejected_->Increment();
    return Status::Unavailable("Router is shut down; request rejected");
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
    stats_.queries += rows;
  }
  m_requests_->Increment();
  m_queries_->Increment(static_cast<double>(rows));
  return future;
}

void Router::DispatchLoop() {
  RequestPtr first;
  while (queue_.WaitPop(&first)) {
    // The same micro-batching policy as KnnService::DispatchLoop.
    const SteadyClock::time_point opened = SteadyClock::now();
    m_queue_wait_->Observe(SecondsBetween(first->admit_time, opened));
    std::vector<RequestPtr> batch;
    size_t rows = first->num_rows;
    batch.push_back(std::move(first));
    const auto deadline = opened + config_.service.max_batch_wait;
    while (rows < static_cast<size_t>(config_.service.max_batch_size)) {
      RequestPtr next;
      if (!queue_.TryPop(&next)) {
        const auto now = SteadyClock::now();
        if (now >= deadline ||
            queue_.WaitPopFor(&next, deadline - now) !=
                common::PopResult::kItem) {
          break;  // batch window over (or shutdown: outer WaitPop ends)
        }
      }
      m_queue_wait_->Observe(
          SecondsBetween(next->admit_time, SteadyClock::now()));
      rows += next->num_rows;
      batch.push_back(std::move(next));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
      stats_.batched_queries += rows;
    }
    m_batches_->Increment();
    m_batched_queries_->Increment(static_cast<double>(rows));

    // Same (k, normalized mode) grouping as KnnService::DispatchLoop —
    // exact groups first, deterministic order across groups.
    struct GroupKeyLess {
      bool operator()(const std::pair<int, ann::SearchMode>& a,
                      const std::pair<int, ann::SearchMode>& b) const {
        if (a.first != b.first) return a.first < b.first;
        return ann::SearchModeLess(a.second, b.second);
      }
    };
    std::map<std::pair<int, ann::SearchMode>, std::vector<RequestPtr>,
             GroupKeyLess>
        by_key;
    for (RequestPtr& request : batch) {
      by_key[{request->k, request->mode}].push_back(std::move(request));
    }
    for (auto& [key, group] : by_key) {
      (void)key;
      RunGroup(std::move(group));
    }
  }
}

bool Router::TryFanout(const HostMatrix& queries, int k,
                       const ann::SearchMode& mode,
                       std::vector<core::ShardAnswer>* answers,
                       std::vector<int>* failed) {
  // Per-worker primary shard lists.
  std::vector<std::vector<uint32_t>> plan(workers_.size());
  for (int s = 0; s < num_shards_; ++s) {
    const int p = primary_[static_cast<size_t>(s)];
    if (p < 0 || !alive_[static_cast<size_t>(p)]) return false;
    plan[static_cast<size_t>(p)].push_back(static_cast<uint32_t>(s));
  }
  auto replies = std::make_shared<ReplyQueue>();
  std::vector<bool> pending(workers_.size(), false);
  int outstanding = 0;
  for (size_t w = 0; w < workers_.size(); ++w) {
    if (plan[w].empty()) continue;
    net::QueryRequest req;
    req.k = static_cast<uint32_t>(k);
    req.queries = queries;
    req.shard_indices = plan[w];
    req.mode = mode;
    req.tenant = config_.tenant;
    Call call;
    call.type = static_cast<uint32_t>(net::MsgType::kQuery);
    call.payload = net::EncodeQuery(req);
    call.timeout = config_.rpc_timeout;
    call.reply_to = replies;
    if (!workers_[w]->Submit(std::move(call))) {
      failed->push_back(static_cast<int>(w));
      continue;
    }
    pending[w] = true;
    ++outstanding;
  }
  if (!failed->empty()) return false;

  const SteadyClock::time_point deadline =
      SteadyClock::now() + config_.rpc_timeout;
  bool ok = true;
  for (int i = 0; i < outstanding; ++i) {
    RpcReply reply;
    const common::PopResult got = replies->WaitPopUntil(&reply, deadline);
    if (got != common::PopResult::kItem) {
      // kTimeout: whoever has not answered by now is wedged or gone —
      // that is a health event. kClosed: the reply channel was torn
      // down under us (shutdown); the stragglers still failed this
      // fan-out, but it is not a worker-sickness signal.
      if (got == common::PopResult::kTimeout) NoteRpcTimeout();
      for (size_t w = 0; w < pending.size(); ++w) {
        if (pending[w]) failed->push_back(static_cast<int>(w));
      }
      return false;
    }
    const auto widx = static_cast<size_t>(reply.worker);
    pending[widx] = false;
    if (!reply.status.ok()) {
      if (reply.status.code() == StatusCode::kDeadlineExceeded) {
        NoteRpcTimeout();
      }
      failed->push_back(reply.worker);
      ok = false;
      continue;
    }
    if (reply.frame.type != static_cast<uint32_t>(net::MsgType::kQueryReply)) {
      // An Error frame (or junk) on the query path means the worker's
      // view of the placement disagrees with ours — treat as dead and
      // let the retry re-plan.
      failed->push_back(reply.worker);
      ok = false;
      continue;
    }
    net::QueryReply decoded;
    const Status status = net::DecodeQueryReply(reply.frame.payload, &decoded);
    if (!status.ok() || decoded.shard_indices != plan[widx]) {
      failed->push_back(reply.worker);
      ok = false;
      continue;
    }
    for (size_t j = 0; j < decoded.shard_indices.size(); ++j) {
      (*answers)[decoded.shard_indices[j]] = std::move(decoded.answers[j]);
    }
  }
  return ok;
}

void Router::RunGroup(std::vector<RequestPtr> group) {
  const int k = group[0]->k;
  const ann::SearchMode mode = group[0]->mode;
  size_t rows = 0;
  for (const RequestPtr& request : group) rows += request->num_rows;
  HostMatrix queries(rows, dims_);
  size_t row = 0;
  for (const RequestPtr& request : group) {
    std::memcpy(queries.mutable_row(row), request->rows.data(),
                request->num_rows * dims_ * sizeof(float));
    row += request->num_rows;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.engine_groups;
  }
  m_engine_groups_->Increment();

  Status failure = Status::Ok();
  KnnResult merged;
  {
    // One consistent cluster state per group, like index_mutex_: the
    // fan-out excludes mutations, compactions, and topology changes.
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<core::ShardAnswer> answers(
        static_cast<size_t>(num_shards_));
    int attempts = 0;
    for (;;) {
      std::vector<int> failed;
      if (TryFanout(queries, k, mode, &answers, &failed)) break;
      for (const int w : failed) {
        MarkWorkerDeadLocked(w, "query fan-out failed");
      }
      bool lost = false;
      for (int s = 0; s < num_shards_; ++s) {
        const int p = primary_[static_cast<size_t>(s)];
        if (p < 0 || !alive_[static_cast<size_t>(p)]) lost = true;
      }
      if (lost) {
        failure = Status::Unavailable(
            "a shard has no live host; cluster cannot answer");
        break;
      }
      if (++attempts > static_cast<int>(workers_.size())) {
        failure = Status::Unavailable("query fan-out kept failing");
        break;
      }
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.retried_groups;
      }
      m_retried_groups_->Increment();
    }
    if (failure.ok()) {
      // The identical exact merge the in-process backend runs — this is
      // where cluster answers become bit-identical to local ones.
      const SteadyClock::time_point merge_start = SteadyClock::now();
      merged = core::MergeShardAnswers(answers, k);
      m_merge_->Observe(SecondsBetween(merge_start, SteadyClock::now()));
    }
  }

  row = 0;
  for (RequestPtr& request : group) {
    if (!failure.ok()) {
      request->promise.set_value(failure);
      continue;
    }
    KnnResult answer(request->num_rows, k);
    for (size_t q = 0; q < request->num_rows; ++q) {
      std::memcpy(answer.mutable_row(q), merged.row(row + q),
                  static_cast<size_t>(k) * sizeof(Neighbor));
    }
    row += request->num_rows;
    m_request_latency_->Observe(
        SecondsBetween(request->admit_time, SteadyClock::now()));
    request->promise.set_value(std::move(answer));
  }
}

// --- Offline jobs (docs/modalities.md) --------------------------------------

namespace {

/// True for failures that mean the worker (or its channel) is gone, as
/// opposed to a clean worker-side Error frame.
bool IsTransportFailure(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kIoError;
}

}  // namespace

Result<std::vector<std::pair<int, std::vector<uint32_t>>>>
Router::JobPlanLocked() const {
  std::vector<std::pair<int, std::vector<uint32_t>>> plan;
  for (int s = 0; s < num_shards_; ++s) {
    const int p = primary_[static_cast<size_t>(s)];
    if (p < 0 || !alive_[static_cast<size_t>(p)]) {
      return Status::Unavailable("shard " + std::to_string(s) +
                                 " has no live host; cluster cannot run "
                                 "the job");
    }
    auto it = std::find_if(plan.begin(), plan.end(),
                           [p](const auto& e) { return e.first == p; });
    if (it == plan.end()) {
      plan.emplace_back(p, std::vector<uint32_t>{static_cast<uint32_t>(s)});
    } else {
      it->second.push_back(static_cast<uint32_t>(s));
    }
  }
  std::sort(plan.begin(), plan.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return plan;
}

Status Router::RunWireJobLocked(
    net::WireJobKind kind, float radius, uint32_t k,
    const HostMatrix& queries,
    const std::vector<std::pair<int, std::vector<uint32_t>>>& plan,
    std::vector<net::JobResultReply>* replies) {
  const uint64_t job_id = next_wire_job_id_++;
  // Best-effort cleanup on any failure: drop the job from every worker
  // that might still hold it (cancel is idempotent on the worker).
  auto cancel_all = [&] {
    net::JobCancelRequest cancel;
    cancel.job_id = job_id;
    for (const auto& [w, shards] : plan) {
      (void)shards;
      if (!alive_[static_cast<size_t>(w)]) continue;
      (void)CallWorker(w, net::MsgType::kJobCancel,
                       net::EncodeJobCancel(cancel), config_.rpc_timeout,
                       net::MsgType::kAck);
    }
  };
  auto fail = [&](int w, const Status& status) {
    if (IsTransportFailure(status)) {
      MarkWorkerDeadLocked(w, "job RPC failed: " + status.ToString());
    }
    cancel_all();
    return Status::Unavailable("cluster job failed on worker " +
                               std::to_string(w) + ": " + status.ToString());
  };

  for (const auto& [w, shards] : plan) {
    net::JobSubmitRequest req;
    req.job_id = job_id;
    req.kind = kind;
    req.radius = radius;
    req.k = k;
    req.queries = queries;
    req.shard_indices = shards;
    req.tenant = config_.tenant;
    Result<net::Frame> reply =
        CallWorker(w, net::MsgType::kJobSubmit, net::EncodeJobSubmit(req),
                   config_.rpc_timeout, net::MsgType::kAck);
    if (!reply.ok()) return fail(w, reply.status());
  }

  // Poll rounds: each poll advances its worker by one chunk, so the
  // cluster's workers make progress concurrently, one bounded RPC each.
  std::vector<bool> done(plan.size(), false);
  size_t remaining = plan.size();
  net::JobPollRequest poll;
  poll.job_id = job_id;
  while (remaining > 0) {
    for (size_t i = 0; i < plan.size(); ++i) {
      if (done[i]) continue;
      const int w = plan[i].first;
      Result<net::Frame> reply =
          CallWorker(w, net::MsgType::kJobPoll, net::EncodeJobPoll(poll),
                     config_.rpc_timeout, net::MsgType::kJobPollReply);
      if (!reply.ok()) return fail(w, reply.status());
      net::JobPollReply progress;
      const Status decoded =
          net::DecodeJobPollReply(reply.value().payload, &progress);
      if (!decoded.ok()) return fail(w, decoded);
      if (progress.state == net::WireJobState::kFailed) {
        return fail(w, Status::Internal("worker job failed: " +
                                        progress.error));
      }
      if (progress.state == net::WireJobState::kDone) {
        done[i] = true;
        --remaining;
      }
    }
  }

  replies->clear();
  replies->reserve(plan.size());
  net::JobResultRequest fetch;
  fetch.job_id = job_id;
  for (const auto& [w, shards] : plan) {
    (void)shards;
    Result<net::Frame> reply =
        CallWorker(w, net::MsgType::kJobResult, net::EncodeJobResult(fetch),
                   config_.rpc_timeout, net::MsgType::kJobResultReply);
    if (!reply.ok()) return fail(w, reply.status());
    net::JobResultReply result;
    const Status decoded =
        net::DecodeJobResultReply(reply.value().payload, &result);
    if (!decoded.ok()) return fail(w, decoded);
    const size_t answered = kind == net::WireJobKind::kRange
                                ? result.range.num_queries()
                                : result.knn.num_queries();
    if (result.kind != kind || answered != queries.rows()) {
      return fail(w, Status::IoError("job result shape mismatch"));
    }
    replies->push_back(std::move(result));
  }
  return Status::Ok();
}

Status Router::ExportLiveLocked(
    const std::vector<std::pair<int, std::vector<uint32_t>>>& plan,
    std::vector<uint32_t>* ids, HostMatrix* points) {
  std::vector<net::ExportLiveReply> parts;
  parts.reserve(plan.size());
  size_t total = 0;
  for (const auto& [w, shards] : plan) {
    net::ExportLiveRequest req;
    req.shard_indices = shards;
    req.tenant = config_.tenant;
    Result<net::Frame> reply =
        CallWorker(w, net::MsgType::kExportLive, net::EncodeExportLive(req),
                   config_.rpc_timeout, net::MsgType::kExportLiveReply);
    if (!reply.ok()) {
      if (IsTransportFailure(reply.status())) {
        MarkWorkerDeadLocked(w, "export-live RPC failed");
      }
      return Status::Unavailable("cluster export-live failed on worker " +
                                 std::to_string(w) + ": " +
                                 reply.status().ToString());
    }
    net::ExportLiveReply part;
    SK_RETURN_IF_ERROR(
        net::DecodeExportLiveReply(reply.value().payload, &part));
    total += part.ids.size();
    parts.push_back(std::move(part));
  }
  // Shards interleave in id space; the global ascending order is a
  // cross-worker sort, same as KnnService::SnapshotLive's.
  std::vector<std::pair<uint32_t, std::pair<size_t, size_t>>> order;
  order.reserve(total);
  for (size_t p = 0; p < parts.size(); ++p) {
    for (size_t r = 0; r < parts[p].ids.size(); ++r) {
      order.emplace_back(parts[p].ids[r], std::make_pair(p, r));
    }
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ids->clear();
  ids->reserve(total);
  *points = HostMatrix(total, dims_);
  for (size_t r = 0; r < order.size(); ++r) {
    ids->push_back(order[r].first);
    std::memcpy(
        points->mutable_row(r),
        parts[order[r].second.first].points.row(order[r].second.second),
        dims_ * sizeof(float));
  }
  return Status::Ok();
}

void Router::NoteJobDone() {
  m_jobs_->Increment();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.jobs;
}

Result<RangeResult> Router::RadiusSearch(const HostMatrix& queries,
                                         float radius) {
  SK_CHECK(!queries.empty());
  SK_CHECK_EQ(queries.cols(), dims_);
  SK_CHECK_GE(radius, 0.0f);
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::Unavailable("Router is shut down; job rejected");
  }
  Result<std::vector<std::pair<int, std::vector<uint32_t>>>> plan =
      JobPlanLocked();
  if (!plan.ok()) return plan.status();
  std::vector<net::JobResultReply> replies;
  SK_RETURN_IF_ERROR(RunWireJobLocked(net::WireJobKind::kRange, radius, 0,
                                      queries, plan.value(), &replies));
  // Per-query concat + NeighborLess sort across workers — with each
  // worker already merged over its shards, this equals the flat
  // MergeRangeShardAnswers the in-process backend runs: bit-identical.
  RangeResult out;
  std::vector<Neighbor> row;
  for (size_t q = 0; q < queries.rows(); ++q) {
    row.clear();
    for (const net::JobResultReply& reply : replies) {
      row.insert(row.end(), reply.range.begin(q), reply.range.end(q));
    }
    std::sort(row.begin(), row.end(), NeighborLess);
    out.AppendRow(row);
  }
  NoteJobDone();
  return out;
}

Result<std::vector<SelfJoinPair>> Router::SelfJoin(float radius) {
  SK_CHECK_GE(radius, 0.0f);
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::Unavailable("Router is shut down; job rejected");
  }
  Result<std::vector<std::pair<int, std::vector<uint32_t>>>> plan =
      JobPlanLocked();
  if (!plan.ok()) return plan.status();
  std::vector<uint32_t> ids;
  HostMatrix live;
  SK_RETURN_IF_ERROR(ExportLiveLocked(plan.value(), &ids, &live));
  std::vector<SelfJoinPair> pairs;
  if (ids.empty()) {
    NoteJobDone();
    return pairs;
  }
  std::vector<net::JobResultReply> replies;
  SK_RETURN_IF_ERROR(RunWireJobLocked(net::WireJobKind::kRange, radius, 0,
                                      live, plan.value(), &replies));
  // The same pair reduction KnnService::RunJob applies: query rows in
  // ascending id order, each row's matches kept for ids above the
  // query's own — every unordered pair lands exactly once.
  std::vector<Neighbor> row;
  for (size_t q = 0; q < ids.size(); ++q) {
    row.clear();
    for (const net::JobResultReply& reply : replies) {
      row.insert(row.end(), reply.range.begin(q), reply.range.end(q));
    }
    std::sort(row.begin(), row.end(), NeighborLess);
    for (const Neighbor& nb : row) {
      if (nb.index > ids[q]) {
        pairs.push_back(SelfJoinPair{ids[q], nb.index, nb.distance});
      }
    }
  }
  NoteJobDone();
  return pairs;
}

Result<JobOutput> Router::KnnGraph(int k) {
  SK_CHECK_GT(k, 0);
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::Unavailable("Router is shut down; job rejected");
  }
  Result<std::vector<std::pair<int, std::vector<uint32_t>>>> plan =
      JobPlanLocked();
  if (!plan.ok()) return plan.status();
  JobOutput out;
  out.kind = JobKind::kKnnGraph;
  HostMatrix live;
  SK_RETURN_IF_ERROR(ExportLiveLocked(plan.value(), &out.query_ids, &live));
  out.graph = KnnResult(out.query_ids.size(), k);
  if (out.query_ids.empty()) {
    NoteJobDone();
    return out;
  }
  std::vector<net::JobResultReply> replies;
  SK_RETURN_IF_ERROR(RunWireJobLocked(net::WireJobKind::kKnn, 0.0f,
                                      static_cast<uint32_t>(k) + 1, live,
                                      plan.value(), &replies));
  // Cross-worker top-(k+1) under NeighborLess, then the same self-drop
  // KnnService::RunJob applies — the one extra slot absorbs the query
  // point itself, so the graph row is the exact k nearest others.
  std::vector<Neighbor> candidates;
  std::vector<Neighbor> rowbuf;
  for (size_t q = 0; q < out.query_ids.size(); ++q) {
    candidates.clear();
    for (const net::JobResultReply& reply : replies) {
      const Neighbor* row = reply.knn.row(q);
      for (int j = 0; j < k + 1; ++j) {
        if (row[j].index == kInvalidNeighbor) break;
        candidates.push_back(row[j]);
      }
    }
    std::sort(candidates.begin(), candidates.end(), NeighborLess);
    if (candidates.size() > static_cast<size_t>(k) + 1) {
      candidates.resize(static_cast<size_t>(k) + 1);
    }
    rowbuf.clear();
    bool dropped_self = false;
    for (const Neighbor& nb : candidates) {
      if (!dropped_self && nb.index == out.query_ids[q]) {
        dropped_self = true;
        continue;
      }
      if (static_cast<int>(rowbuf.size()) == k) break;
      rowbuf.push_back(nb);
    }
    out.graph.SetRow(q, rowbuf);
  }
  NoteJobDone();
  return out;
}

// --- Mutations ---------------------------------------------------------------

Result<uint32_t> Router::Insert(const std::vector<float>& point) {
  SK_CHECK_EQ(point.size(), dims_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::Unavailable("Router is shut down; insert rejected");
  }
  // Same id allocation and placement as KnnService::InsertBatch: ids
  // count upward, id lands on shard id % S.
  const uint32_t id = next_id_++;
  const int s = static_cast<int>(id % static_cast<uint32_t>(num_shards_));
  net::InsertRequest req;
  req.shard_index = static_cast<uint32_t>(s);
  req.id = id;
  req.point = point;
  Result<net::Frame> reply = MutateShardLocked(
      s, net::MsgType::kInsert, net::EncodeInsert(req), net::MsgType::kAck);
  if (!reply.ok()) return reply.status();
  ++target_rows_;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.inserts;
  }
  m_inserts_->Increment();
  return id;
}

Result<bool> Router::Remove(uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::Unavailable("Router is shut down; remove rejected");
  }
  const int s = OwningShardLocked(id);
  net::RemoveRequest req;
  req.shard_index = static_cast<uint32_t>(s);
  req.id = id;
  Result<net::Frame> reply =
      MutateShardLocked(s, net::MsgType::kRemove, net::EncodeRemove(req),
                        net::MsgType::kRemoveReply);
  if (!reply.ok()) return reply.status();
  net::RemoveReply decoded;
  SK_RETURN_IF_ERROR(net::DecodeRemoveReply(reply.value().payload, &decoded));
  if (decoded.found) --target_rows_;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    if (decoded.found) {
      ++stats_.removes;
    } else {
      ++stats_.remove_misses;
    }
  }
  (decoded.found ? m_removes_ : m_remove_misses_)->Increment();
  return decoded.found;
}

Status Router::CompactShard(int shard) {
  if (shard < 0 || shard >= num_shards_) {
    return Status::InvalidArgument("no such shard: " +
                                   std::to_string(shard));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::Unavailable("Router is shut down; compact rejected");
  }
  net::CompactRequest req;
  req.shard_index = static_cast<uint32_t>(shard);
  // Every host of the shard compacts; the rebuilds are deterministic
  // functions of the (identical) shard state, so primaries and replicas
  // land on byte-identical fresh bases.
  Result<net::Frame> reply =
      MutateShardLocked(shard, net::MsgType::kCompact,
                        net::EncodeCompact(req), net::MsgType::kAck);
  if (!reply.ok()) return reply.status();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.compactions;
  }
  m_compactions_->Increment();
  return Status::Ok();
}

Status Router::CompactAll() {
  for (int s = 0; s < num_shards_; ++s) {
    SK_RETURN_IF_ERROR(CompactShard(s));
  }
  return Status::Ok();
}

Status Router::RestoreReplication() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::Unavailable("Router is shut down");
  }
  const int num_workers = static_cast<int>(workers_.size());
  for (int s = 0; s < num_shards_; ++s) {
    const auto sidx = static_cast<size_t>(s);
    if (primary_[sidx] < 0 || !alive_[static_cast<size_t>(primary_[sidx])]) {
      return Status::Unavailable("shard " + std::to_string(s) +
                                 " has no live host to catch up from");
    }
    while (static_cast<int>(replicas_[sidx].size()) < config_.replicas) {
      // First live worker around the ring not already hosting the shard.
      int candidate = -1;
      for (int step = 1; step < num_workers; ++step) {
        const int w = (primary_[sidx] + step) % num_workers;
        if (!alive_[static_cast<size_t>(w)]) continue;
        if (std::find(replicas_[sidx].begin(), replicas_[sidx].end(), w) !=
            replicas_[sidx].end()) {
          continue;
        }
        candidate = w;
        break;
      }
      if (candidate < 0) break;  // not enough live workers; not an error

      // Catch-up: the primary exports the shard, the candidate adopts it
      // (the bulk bytes travel through the filesystem, not the socket).
      const std::string path =
          config_.work_dir + "/catchup-" + std::to_string(s) + "-" +
          std::to_string(++catchup_counter_) + ".sksnap";
      net::SaveShardRequest save;
      save.shard_index = static_cast<uint32_t>(s);
      save.shard_count = static_cast<uint32_t>(num_shards_);
      save.path = path;
      save.dataset_name = config_.service.dataset_name;
      save.next_id = next_id_;
      Result<net::Frame> saved = CallWorker(
          primary_[sidx], net::MsgType::kSaveShard,
          net::EncodeSaveShard(save), config_.prepare_timeout,
          net::MsgType::kAck);
      if (!saved.ok()) {
        MarkWorkerDeadLocked(primary_[sidx], saved.status().ToString());
        return Status::Unavailable("shard " + std::to_string(s) +
                                   " export failed: " +
                                   saved.status().ToString());
      }
      net::PrepareSnapshotRequest prep;
      prep.shard_index = static_cast<uint32_t>(s);
      prep.path = path;
      prep.options = config_.service.options;
      prep.device = config_.service.device;
      prep.planner = config_.service.planner;
      prep.enable_ann = config_.service.enable_ann;
      prep.ann_params = config_.service.ann_params;
      prep.tenant = config_.tenant;
      Result<net::Frame> adopted = CallWorker(
          candidate, net::MsgType::kPrepareSnapshot,
          net::EncodePrepareSnapshot(prep), config_.prepare_timeout,
          net::MsgType::kAck);
      std::error_code ec;
      std::filesystem::remove(path, ec);
      if (!adopted.ok()) {
        MarkWorkerDeadLocked(candidate, adopted.status().ToString());
        continue;  // try the next candidate
      }
      replicas_[sidx].push_back(candidate);
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.replicas_restored;
      }
      m_replicas_restored_->Increment();
    }
  }
  return Status::Ok();
}

// --- Shutdown / accessors ----------------------------------------------------

void Router::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t w = 0; w < workers_.size(); ++w) {
      if (!alive_[w]) continue;
      // Best effort: a wedged worker just gets reaped below.
      (void)CallWorker(static_cast<int>(w), net::MsgType::kShutdown, "",
                       kShutdownRpcTimeout, net::MsgType::kAck);
    }
  }
  for (const std::unique_ptr<WorkerChannel>& channel : workers_) {
    channel->Join();
  }
  for (const std::unique_ptr<WorkerChannel>& channel : workers_) {
    ReapWorker(channel->pid());
  }
  if (own_work_dir_ && !config_.work_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(config_.work_dir, ec);
  }
}

RouterStats Router::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::string Router::ExportMetricsJson() const { return metrics_.ExportJson(); }

size_t Router::target_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return target_rows_;
}

bool Router::worker_alive(int w) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return alive_[static_cast<size_t>(w)];
}

pid_t Router::worker_pid(int w) const {
  return workers_[static_cast<size_t>(w)]->pid();
}

Result<std::vector<std::string>> Router::ListWorkerIndexes(int w) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (w < 0 || static_cast<size_t>(w) >= workers_.size()) {
    return Status::InvalidArgument("no worker " + std::to_string(w));
  }
  if (!alive_[static_cast<size_t>(w)]) {
    return Status::Unavailable("worker " + std::to_string(w) + " is dead");
  }
  Result<net::Frame> reply =
      CallWorker(w, net::MsgType::kListIndexes, "", config_.rpc_timeout,
                 net::MsgType::kListIndexesReply);
  SK_RETURN_IF_ERROR(reply.status());
  net::ListIndexesReply decoded;
  SK_RETURN_IF_ERROR(
      net::DecodeListIndexesReply(reply.value().payload, &decoded));
  return std::move(decoded.names);
}

}  // namespace sweetknn::serve
