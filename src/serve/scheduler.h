#ifndef SWEETKNN_SERVE_SCHEDULER_H_
#define SWEETKNN_SERVE_SCHEDULER_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/blocking_queue.h"  // common::PopResult
#include "common/status.h"

namespace sweetknn::serve {

/// Parses a comma-separated weight list ("4,1,2"); every entry must be a
/// positive number. Used by serve-bench `--weights=` and the
/// multi-tenant bench.
Result<std::vector<double>> ParseWeightList(const std::string& spec);

/// The admission scheduler of the multi-tenant service: one bounded
/// sub-queue per tenant, drained by deficit round-robin (DRR) so the
/// dispatcher's service rate follows the configured per-tenant weights
/// under saturation — a 4:1 weighted pair is served 4:1 in cost units
/// (query rows), no matter how either tenant floods its queue.
///
/// How the accounting works: each tenant carries a `deficit` of cost
/// units it is allowed to consume. When the round-robin cursor arrives
/// at a non-empty tenant, the tenant earns `quantum * weight`; items
/// are served while the deficit covers their cost. The micro-batcher
/// may also pull *specific* tenants out of turn (TryPopTenant /
/// WaitPopTenantUntil) to coalesce a batch — those pops charge the same
/// deficit, which simply goes negative: the tenant borrowed ahead and
/// the cursor skips it until refills repay the debt. Fairness holds in
/// the long run regardless of batch shapes.
///
/// Admission is bounded: beyond `max_queue_depth` total queued items,
/// Submit sheds (the service maps that to Status kUnavailable) instead
/// of growing memory and tail latency without limit.
///
/// Thread-safe; one mutex guards all state. Close() ends the stream
/// with the same drain guarantee as BlockingQueue: admitted items keep
/// popping until every sub-queue is empty, then pops report kClosed.
template <typename T>
class FairScheduler {
 public:
  struct Options {
    /// Total queued items across all tenants before Submit sheds.
    /// 0 = unbounded (the legacy single-FIFO behavior).
    size_t max_queue_depth = 0;
    /// Cost units (query rows) a weight-1.0 tenant earns per cursor
    /// visit. Any positive value gives the same long-run ratios; the
    /// service uses its max_batch_size so one visit roughly funds one
    /// micro-batch.
    size_t quantum = 64;
  };

  enum class Admit {
    kAdmitted,  ///< Queued; a dispatcher pop will deliver it.
    kShed,      ///< Bounced by the depth bound — map to kUnavailable.
    kClosed,    ///< The scheduler is shut down.
  };

  explicit FairScheduler(Options opts) : opts_(opts) {
    opts_.quantum = std::max<size_t>(1, opts_.quantum);
  }
  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Sets (or updates) a tenant's weight; creates the sub-queue. Higher
  /// weight = proportionally more service under contention. Clamped to
  /// a small positive floor so every tenant always makes progress.
  void SetWeight(const std::string& tenant, double weight) {
    std::lock_guard<std::mutex> lock(mutex_);
    SubQueue& sub = queues_[tenant];
    sub.weight = std::max(weight, 1e-3);
    if (cursor_.empty()) cursor_ = tenant;
  }

  /// Drops the bookkeeping of an empty sub-queue (after DropIndex). A
  /// tenant with queued items is kept — the dispatcher still has to
  /// drain and fail them.
  void Forget(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queues_.find(tenant);
    if (it == queues_.end() || !it->second.items.empty()) return;
    if (cursor_ == tenant) AdvanceCursorLocked();
    queues_.erase(it);
    if (queues_.empty()) cursor_.clear();
  }

  /// Enqueues `item` on the tenant's sub-queue at `cost` cost units
  /// (the service uses query rows, so wide JoinBatch calls weigh what
  /// they cost). Unknown tenants get a weight-1.0 sub-queue on first
  /// use.
  Admit Submit(const std::string& tenant, T item, size_t cost) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return Admit::kClosed;
      if (opts_.max_queue_depth > 0 && total_ >= opts_.max_queue_depth) {
        return Admit::kShed;
      }
      SubQueue& sub = queues_[tenant];
      if (cursor_.empty()) cursor_ = tenant;
      sub.items.emplace_back(std::move(item), std::max<size_t>(1, cost));
      ++total_;
      peak_depth_ = std::max(peak_depth_, total_);
    }
    cv_.notify_all();
    return Admit::kAdmitted;
  }

  /// Blocks for the next item in DRR order; fills *tenant_out with the
  /// owning tenant. kItem or (closed and fully drained) kClosed.
  common::PopResult WaitPop(T* out, std::string* tenant_out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || total_ > 0; });
    if (total_ == 0) return common::PopResult::kClosed;
    PopDrrLocked(out, tenant_out);
    return common::PopResult::kItem;
  }

  /// Non-blocking pop from one specific tenant (batch coalescing).
  bool TryPopTenant(const std::string& tenant, T* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    return PopTenantLocked(tenant, out);
  }

  /// Waits until `deadline` for an item of one specific tenant — the
  /// micro-batcher keeping a batch window open for its current tenant.
  /// kTimeout when the window closes empty-handed; kClosed when the
  /// scheduler is closed and THIS tenant's queue is drained (other
  /// tenants' backlogs do not keep the window open).
  template <typename Clock, typename Duration>
  common::PopResult WaitPopTenantUntil(
      const std::string& tenant, T* out,
      std::chrono::time_point<Clock, Duration> deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_until(lock, deadline, [this, &tenant] {
      return closed_ || TenantDepthLocked(tenant) > 0;
    });
    if (PopTenantLocked(tenant, out)) return common::PopResult::kItem;
    return closed_ ? common::PopResult::kClosed : common::PopResult::kTimeout;
  }

  /// Rejects future submits and wakes every waiter; queued items keep
  /// draining. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Total queued items across every tenant right now.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  /// High-water mark of size() (queue-depth pressure).
  size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_depth_;
  }

  size_t tenant_depth(const std::string& tenant) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return TenantDepthLocked(tenant);
  }

 private:
  struct SubQueue {
    std::deque<std::pair<T, size_t>> items;  // (item, cost)
    double weight = 1.0;
    double deficit = 0.0;
  };

  size_t TenantDepthLocked(const std::string& tenant) const {
    const auto it = queues_.find(tenant);
    return it == queues_.end() ? 0 : it->second.items.size();
  }

  /// Moves the cursor to the next tenant in name order (wrapping).
  void AdvanceCursorLocked() {
    auto it = queues_.upper_bound(cursor_);
    if (it == queues_.end()) it = queues_.begin();
    cursor_ = it == queues_.end() ? std::string() : it->first;
  }

  /// DRR pick. Precondition: total_ > 0 (so some queue is non-empty and
  /// the loop terminates — every cursor arrival at a non-empty tenant
  /// grows its deficit by quantum * weight > 0 until it covers the
  /// head's cost).
  void PopDrrLocked(T* out, std::string* tenant_out) {
    for (;;) {
      SubQueue& sub = queues_[cursor_];
      if (sub.items.empty()) {
        // Idle tenants earn no credit while skipped (classic DRR
        // resets on empty); debt from out-of-turn pops is kept.
        sub.deficit = std::min(sub.deficit, 0.0);
        AdvanceLocked();
        continue;
      }
      if (sub.deficit >= static_cast<double>(sub.items.front().second)) {
        *tenant_out = cursor_;
        PopFrontLocked(&sub, out);
        return;
      }
      AdvanceLocked();
    }
  }

  /// One cursor step of the DRR round: move to the next tenant and pay
  /// the arrival credit if it has work queued. EVERY advance must grant
  /// — including the step off an idle tenant — or a lone backlogged
  /// tenant whose head costs more than its deficit never earns anything
  /// while the cursor bounces over its idle neighbors, and the pick
  /// loop spins forever.
  void AdvanceLocked() {
    AdvanceCursorLocked();
    SubQueue& next = queues_[cursor_];
    if (!next.items.empty()) {
      next.deficit += static_cast<double>(opts_.quantum) * next.weight;
    }
  }

  bool PopTenantLocked(const std::string& tenant, T* out) {
    auto it = queues_.find(tenant);
    if (it == queues_.end() || it->second.items.empty()) return false;
    PopFrontLocked(&it->second, out);
    return true;
  }

  void PopFrontLocked(SubQueue* sub, T* out) {
    *out = std::move(sub->items.front().first);
    sub->deficit -= static_cast<double>(sub->items.front().second);
    sub->items.pop_front();
    --total_;
  }

  Options opts_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, SubQueue> queues_;  // name order == round order
  std::string cursor_;  ///< Tenant the DRR round is currently serving.
  size_t total_ = 0;
  size_t peak_depth_ = 0;
  bool closed_ = false;
};

}  // namespace sweetknn::serve

#endif  // SWEETKNN_SERVE_SCHEDULER_H_
