#include "serve/shard_backend.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "core/device_points.h"

namespace sweetknn::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsBetween(SteadyClock::time_point from,
                      SteadyClock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Splits a profile's simulated kernel time by pipeline stage. Kernel
/// names are stable identifiers ("level1_calub", "level2_full_filter",
/// ...); everything that is neither level-1 nor level-2 filtering is
/// preprocessing (upload layout kernels, landmark clustering, member
/// scatter — the amortized Step-1 work plus per-batch query prep).
void AccumulateStageTimes(const gpusim::Profile& profile, double* level1,
                          double* level2, double* preprocess) {
  for (const gpusim::LaunchRecord& record : profile.launches) {
    if (record.kernel_name.rfind("level1", 0) == 0) {
      *level1 += record.sim_time_s;
    } else if (record.kernel_name.rfind("level2", 0) == 0) {
      *level2 += record.sim_time_s;
    } else {
      *preprocess += record.sim_time_s;
    }
  }
}

}  // namespace

void ShardHost::BuildCold(const HostMatrix& slice) {
  engine.PrepareTarget(slice);
  clustering_cache_.reset();
  packed_base =
      simd::PackedTargets::Pack(slice.data(), slice.rows(), slice.cols());
  set_base_rows(slice.rows());
  delta.dims = slice.cols();
  if (ann_enabled_ && slice.rows() > 0) {
    ann = ann::AnnIndex::Build(
        slice, core::SimdDistFor(engine.options().metric), ann_params_,
        core::AnnEntryPointsFromClustering(engine.ExportTargetClustering()));
  }
}

void ShardHost::RestoreBase(const HostMatrix& target,
                            const core::TargetClusteringHost& clustering) {
  engine.RestoreTarget(target, clustering);
  clustering_cache_.reset();
  packed_base = simd::PackedTargets::Pack(target.data(), target.rows(),
                                          target.cols());
  if (ann_enabled_ && target.rows() > 0) {
    const simd::Dist dist_kind = core::SimdDistFor(engine.options().metric);
    if (pending_graph_.num_nodes == target.rows()) {
      // The snapshot carried the graph: adopt it verbatim (node ids are
      // local base rows, valid as-is) instead of re-running NN-descent.
      ann = ann::AnnIndex::Adopt(target, dist_kind,
                                 std::move(pending_graph_));
    } else {
      ann = ann::AnnIndex::Build(
          target, dist_kind, ann_params_,
          core::AnnEntryPointsFromClustering(
              engine.ExportTargetClustering()));
    }
  }
  pending_graph_ = ann::KnnGraph{};
}

void ShardHost::AdoptOverlay(const store::IndexSnapshot& snap) {
  pending_graph_ = snap.ann_graph;
  offset = static_cast<uint32_t>(snap.shard_offset);
  set_base_rows(snap.target.rows());
  id_map = snap.id_map;
  delta.dims = snap.target.cols();
  delta.ids = snap.delta_ids;
  delta.points = snap.delta_points.storage();
  delta.tombstones.insert(snap.tombstones.begin(), snap.tombstones.end());
}

core::ShardAnswer ShardHost::SearchGroup(const HostMatrix& queries, int k,
                                         core::QueryRoute route,
                                         core::Metric metric,
                                         const ann::SearchMode& mode) {
  core::ShardAnswer answer;
  answer.offset = offset;
  answer.pristine = Pristine();
  // Effectively exact modes — and approx against a graph-free shard —
  // run the exact base scan below, bit-identically to a plain call.
  const bool approx = !mode.EffectiveExact() && !ann.empty();
  answer.approx = approx;
  answer.device_routed = !approx && route == core::QueryRoute::kDevice;
  // A pristine shard's contribution is the same whether the rest of the
  // service is mutated or not (base_k = k + 0 tombstones; offset remap
  // equals the identity merge source), so the pristine/mutated decision
  // is purely local — no cross-shard coordination crosses the wire.
  const int base_k =
      k + (answer.pristine ? 0
                           : static_cast<int>(delta.tombstones.size()));
  const simd::Dist dist_kind = core::SimdDistFor(metric);
  core::KnnRunStats stats;
  KnnResult base_result;
  KnnResult delta_result;
  const SteadyClock::time_point start = SteadyClock::now();
  if (approx) {
    // The graph search over-queries at base_k too, so tombstone masking
    // below never eats into the requested k.
    const int ef = std::max(ann::EffectiveEf(mode, k), base_k);
    ann::AnnSearchStats ann_stats;
    // workers=1: the shard fan-out is already the host-parallel axis.
    base_result = ann.Search(queries, base_k, ef, /*workers=*/1, &ann_stats);
    answer.ann_hops = ann_stats.hops;
    answer.ann_candidates = ann_stats.candidates_visited;
  } else if (route == core::QueryRoute::kHost) {
    base_result = simd::PackedKnn(queries, packed_base, base_k, dist_kind,
                                  /*workers=*/1);
  } else {
    base_result = engine.RunQueries(queries, base_k, &stats);
  }
  const bool has_delta = delta.size() > 0;
  if (!answer.pristine && has_delta) {
    // The delta scan contributes no simulated device time — it models
    // host-side work the GPU index never sees.
    delta_result = core::ScanDelta(delta, queries, k, metric);
  }
  answer.route_seconds = SecondsBetween(start, SteadyClock::now());

  if (answer.pristine) {
    answer.result = std::move(base_result);
  } else {
    // Shard-local exact merge: over-queried base (tombstones masked,
    // local indices -> stable ids) plus the delta side scan. The rows
    // are this shard's exact live top-k under (distance, stable id).
    std::vector<core::MergeSource> sources;
    core::MergeSource base;
    base.result = &base_result;
    base.id_map = id_map.empty() ? nullptr : id_map.data();
    base.offset = offset;
    base.tombstones = delta.tombstones.empty() ? nullptr : &delta.tombstones;
    sources.push_back(base);
    if (has_delta) {
      core::MergeSource side;
      side.result = &delta_result;
      side.id_map = delta.ids.data();
      sources.push_back(side);
    }
    answer.result = core::MergeMutableResults(sources, k);
  }

  if (answer.device_routed) {
    answer.sim_time_s = stats.sim_time_s;
    answer.distance_calcs = stats.distance_calcs;
    answer.total_pairs = stats.total_pairs;
    answer.filter_used = stats.filter_used;
    answer.placement_used = stats.placement_used;
    answer.threads_per_query = stats.threads_per_query;
    AccumulateStageTimes(stats.profile, &answer.level1_s, &answer.level2_s,
                         &answer.preprocess_s);
    answer.transfer_s = stats.profile.transfer_time_s;
  }
  return answer;
}

const core::TargetClusteringHost& ShardHost::CachedClustering() {
  if (clustering_cache_ == nullptr) {
    clustering_cache_ = std::make_unique<core::TargetClusteringHost>(
        engine.ExportTargetClustering());
  }
  return *clustering_cache_;
}

core::RangeShardAnswer ShardHost::RangeGroup(const HostMatrix& queries,
                                             float radius,
                                             core::QueryRoute route,
                                             core::Metric metric) {
  core::RangeShardAnswer answer;
  answer.device_routed = route == core::QueryRoute::kDevice;
  const simd::Dist dist_kind = core::SimdDistFor(metric);
  const SteadyClock::time_point start = SteadyClock::now();
  RangeResult base;
  if (base_rows() > 0) {
    base = answer.device_routed
               ? core::TiRangeScan(queries, packed_base, CachedClustering(),
                                   radius, dist_kind, &answer.stats)
               : core::FullRangeScan(queries, packed_base, radius, dist_kind,
                                     &answer.stats);
  } else {
    for (size_t q = 0; q < queries.rows(); ++q) {
      base.AppendRow(nullptr, 0);
    }
  }
  const bool has_delta = delta.size() > 0;
  RangeResult delta_matches;
  if (has_delta) {
    delta_matches = core::RangeScanDelta(delta, queries, radius, metric);
  }
  // Stable-id substitution happens here unconditionally — range answers
  // have no pristine fast path (a pristine shard's BaseId is just the
  // offset shift), so the merge side never sees local indices.
  std::vector<Neighbor> row;
  for (size_t q = 0; q < queries.rows(); ++q) {
    row.clear();
    for (const Neighbor* nb = base.begin(q); nb != base.end(q); ++nb) {
      const uint32_t id = BaseId(nb->index);
      if (delta.tombstones.count(id) != 0) continue;
      row.push_back(Neighbor{id, nb->distance});
    }
    if (has_delta) {
      for (const Neighbor* nb = delta_matches.begin(q);
           nb != delta_matches.end(q); ++nb) {
        row.push_back(Neighbor{delta.ids[nb->index], nb->distance});
      }
    }
    std::sort(row.begin(), row.end(), NeighborLess);
    answer.result.AppendRow(row);
  }
  answer.route_seconds = SecondsBetween(start, SteadyClock::now());
  return answer;
}

void ShardHost::ExportLive(std::vector<uint32_t>* ids,
                           HostMatrix* points) const {
  const HostMatrix base = engine.ExportTarget();
  const size_t dims = base.cols() > 0 ? base.cols() : delta.dims;
  std::vector<std::pair<uint32_t, const float*>> live;
  live.reserve(base.rows() + delta.size());
  for (size_t i = 0; i < base.rows(); ++i) {
    const uint32_t id = BaseId(i);
    if (delta.tombstones.count(id) == 0) live.emplace_back(id, base.row(i));
  }
  for (size_t j = 0; j < delta.size(); ++j) {
    if (delta.tombstones.count(delta.ids[j]) == 0) {
      live.emplace_back(delta.ids[j], delta.point(j));
    }
  }
  ids->clear();
  ids->reserve(live.size());
  *points = HostMatrix(live.size(), dims);
  for (size_t r = 0; r < live.size(); ++r) {
    ids->push_back(live[r].first);
    std::memcpy(points->mutable_row(r), live[r].second,
                dims * sizeof(float));
  }
}

bool ShardHost::Owns(uint32_t id) const {
  if (delta.Find(id) != core::DeltaBuffer::kNotFound) return true;
  if (id_map.empty()) {
    return id >= offset && id < offset + base_rows();
  }
  return std::binary_search(id_map.begin(), id_map.end(), id);
}

bool ShardHost::ApplyRemove(uint32_t id) {
  if (!Owns(id)) return false;
  if (delta.tombstones.count(id) != 0) return false;  // already removed
  const size_t pos = delta.Find(id);
  if (pos == core::DeltaBuffer::kNotFound ||
      (compact_watermark != kNoCompaction && pos < compact_watermark)) {
    // A base point, or a delta entry an in-flight compaction has
    // already consumed (the rebuild contains it): mask it. Erasing
    // a consumed entry would resurrect the point at install.
    delta.tombstones.insert(id);
  } else {
    delta.EraseAt(pos);
  }
  return true;
}

store::IndexSnapshot ShardHost::Export(const std::string& dataset_name,
                                       const std::string& builder,
                                       uint32_t shard_index,
                                       uint32_t shard_count,
                                       const std::string& options_fingerprint,
                                       const std::string& device_fingerprint,
                                       uint32_t next_id) const {
  store::IndexSnapshot snap;
  snap.dataset_name = dataset_name;
  snap.builder = builder;
  snap.shard_index = shard_index;
  snap.shard_count = shard_count;
  snap.shard_offset = offset;
  snap.target = engine.ExportTarget();
  snap.clustering = engine.ExportTargetClustering();
  snap.options_fingerprint = options_fingerprint;
  snap.device_fingerprint = device_fingerprint;
  if (!Pristine()) {
    const size_t dims = delta.dims;
    snap.id_map = id_map;
    // Normalization: a tombstoned delta entry (the transient state of a
    // remove that hit a compaction-consumed row) is simply dead — the
    // snapshot drops both the entry and its tombstone, restoring the
    // file invariant that tombstones name base rows only.
    for (size_t j = 0; j < delta.size(); ++j) {
      if (delta.tombstones.count(delta.ids[j]) == 0) {
        snap.delta_ids.push_back(delta.ids[j]);
      }
    }
    snap.delta_points = HostMatrix(snap.delta_ids.size(), dims);
    size_t out = 0;
    for (size_t j = 0; j < delta.size(); ++j) {
      if (delta.tombstones.count(delta.ids[j]) == 0) {
        std::memcpy(snap.delta_points.mutable_row(out++), delta.point(j),
                    dims * sizeof(float));
      }
    }
    for (uint32_t id : delta.tombstones) {
      if (delta.Find(id) == core::DeltaBuffer::kNotFound) {
        snap.tombstones.push_back(id);
      }
    }
    std::sort(snap.tombstones.begin(), snap.tombstones.end());
    snap.next_id = next_id;
  }
  if (!ann.empty()) snap.ann_graph = ann.graph();
  return snap;
}

void CaptureCompaction(ShardHost* shard, int shard_index,
                       CompactionPlan* plan) {
  SK_CHECK_EQ(shard->compact_watermark, ShardHost::kNoCompaction);
  plan->shard = shard_index;
  plan->epoch = shard->epoch;
  plan->watermark = shard->delta.size();
  plan->captured_tombstones = shard->delta.tombstones;
  shard->compact_watermark = plan->watermark;

  // The new base: base survivors, then consumed live delta entries —
  // ascending stable-id order, because every delta id postdates (and
  // exceeds) every base id of its shard.
  const HostMatrix base = shard->engine.ExportTarget();
  const size_t dims = base.cols();
  std::vector<size_t> base_survivors;
  for (size_t i = 0; i < base.rows(); ++i) {
    if (plan->captured_tombstones.count(shard->BaseId(i)) == 0) {
      base_survivors.push_back(i);
    }
  }
  std::vector<size_t> delta_survivors;
  for (size_t j = 0; j < plan->watermark; ++j) {
    if (plan->captured_tombstones.count(shard->delta.ids[j]) == 0) {
      delta_survivors.push_back(j);
    }
  }
  plan->points =
      HostMatrix(base_survivors.size() + delta_survivors.size(), dims);
  plan->ids.reserve(plan->points.rows());
  size_t out = 0;
  for (size_t i : base_survivors) {
    std::memcpy(plan->points.mutable_row(out++), base.row(i),
                dims * sizeof(float));
    plan->ids.push_back(shard->BaseId(i));
  }
  for (size_t j : delta_survivors) {
    std::memcpy(plan->points.mutable_row(out++), shard->delta.point(j),
                dims * sizeof(float));
    plan->ids.push_back(shard->delta.ids[j]);
  }
}

std::unique_ptr<ShardHost> RebuildCompacted(const CompactionPlan& plan,
                                            const gpusim::DeviceSpec& device,
                                            const core::TiOptions& options,
                                            size_t dims, bool ann_enabled,
                                            const ann::GraphBuildParams&
                                                ann_params) {
  auto fresh = std::make_unique<ShardHost>(device, options);
  fresh->ConfigureAnn(ann_enabled, ann_params);
  fresh->engine.PrepareTarget(plan.points);
  fresh->packed_base = simd::PackedTargets::Pack(
      plan.points.data(), plan.points.rows(), plan.points.cols());
  fresh->set_base_rows(plan.points.rows());
  fresh->delta.dims = dims;
  if (ann_enabled && plan.points.rows() > 0) {
    // Fresh base, fresh graph — part of the off-lock rebuild, so graph
    // construction never blocks serving.
    fresh->ann = ann::AnnIndex::Build(
        plan.points, core::SimdDistFor(options.metric), ann_params,
        core::AnnEntryPointsFromClustering(
            fresh->engine.ExportTargetClustering()));
  }
  const bool identity =
      !plan.ids.empty() && plan.ids.front() == 0 &&
      plan.ids.back() == static_cast<uint32_t>(plan.ids.size()) - 1;
  if (identity) {
    fresh->offset = 0;  // ids are literally 0..n-1: back to pristine form
  } else {
    fresh->id_map = plan.ids;
    fresh->offset = 0;  // unused once an explicit id map is set
  }
  return fresh;
}

void CarryOverlayForward(const ShardHost& old_shard,
                         const CompactionPlan& plan, ShardHost* fresh) {
  for (size_t j = plan.watermark; j < old_shard.delta.size(); ++j) {
    fresh->delta.Append(old_shard.delta.ids[j], old_shard.delta.point(j));
  }
  for (uint32_t id : old_shard.delta.tombstones) {
    if (plan.captured_tombstones.count(id) == 0) {
      fresh->delta.tombstones.insert(id);
    }
  }
}

}  // namespace sweetknn::serve
