#include "serve/scheduler.h"

#include <cstdlib>

namespace sweetknn::serve {

Result<std::vector<double>> ParseWeightList(const std::string& spec) {
  std::vector<double> weights;
  if (spec.empty()) return weights;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    if (token.empty()) {
      return Status::InvalidArgument("empty weight in '" + spec + "'");
    }
    char* end = nullptr;
    const double w = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !(w > 0.0)) {
      return Status::InvalidArgument("weight '" + token +
                                     "' is not a positive number");
    }
    weights.push_back(w);
    pos = comma + 1;
  }
  return weights;
}

}  // namespace sweetknn::serve
